#!/usr/bin/env bash
# The repo's verification gate: build, test, docs.
#
#   ./ci/check.sh          # everything (tier-1 + docs gate + bench compile)
#   ./ci/check.sh --quick  # tier-1 only (build + tests)
#
# Tier-1 (must stay green on every PR):
#   cargo build --release && cargo test -q
#
# Docs gate: `nn` and `splash` carry `#![deny(missing_docs)]`, and their
# rustdoc builds must be warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> quick mode: skipping docs gate and bench compile"
    exit 0
fi

echo "==> lint gate: clippy warning-free across the workspace"
cargo clippy --workspace -- -D warnings

echo "==> docs gate: rustdoc warning-free on nn + splash"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p nn -p splash

echo "==> docs gate: doc examples execute (the service façade's docs can't rot)"
cargo test -q --doc

echo "==> examples: the serving-façade examples compile and run"
cargo build --release --examples
cargo run --release --example streaming_inference
cargo run --release --example hot_swap_serving
cargo run --release --example sharded_serving
cargo run --release --example online_learning
cargo run --release --example http_serving
cargo run --release --example durable_serving

echo "==> scenario matrix: smoke report bytes are deterministic for a fixed seed"
# Two independent smoke runs (drift + anomaly regimes × SPLASH, its online
# twin, and two baseline engines through the multi-tenant registry) must
# produce byte-identical report artifacts.
SCEN_DIR=$(mktemp -d)
trap 'rm -rf "$SCEN_DIR"' EXIT
cargo run --release -q -p cli -- scenarios --smoke true --seed 7 --out "$SCEN_DIR/a" >/dev/null
cargo run --release -q -p cli -- scenarios --smoke true --seed 7 --out "$SCEN_DIR/b" >/dev/null
cmp "$SCEN_DIR/a/report.json" "$SCEN_DIR/b/report.json"
cmp "$SCEN_DIR/a/report.md" "$SCEN_DIR/b/report.md"
grep -q '"regime":"drift"' "$SCEN_DIR/a/report.json"
grep -q '"regime":"anomaly"' "$SCEN_DIR/a/report.json"
grep -q '"model":"splash+online"' "$SCEN_DIR/a/report.json"

echo "==> serial fallback: nn alone without 'parallel'"
# nn must be tested by itself: any workspace sibling that depends on nn
# with default features would re-enable 'parallel' via feature unification.
cargo test -q -p nn --no-default-features

echo "==> serial fallback: splash without its 'parallel' chunking"
cargo test -q -p splash --no-default-features

echo "==> serial fallback: shard parity with the fan-out pinned off"
# The sharded engine must be bit-identical to the single engine on the
# strictly sequential dispatch path too (NN_THREADS=1 disables the
# thread-per-shard scatter even with the 'parallel' feature on).
NN_THREADS=1 cargo test -q -p splash --test shard --test proptests

echo "==> forced threading: the 1-core container never spawns by default"
NN_THREADS=4 cargo test -q -p nn -p splash

echo "==> alloc regression: steady-state streaming stays off the allocator"
cargo test -q -p splash --test alloc

echo "==> corrupt-artifact fuzz-lite: crafted files load as typed errors, never aborts"
# Patched-byte artifacts (dimension bombs, invalid configs, damaged
# SAVEDOPT trailers) plus the full persist corruption matrix, serially.
NN_THREADS=1 cargo test -q -p splash --lib persist::

echo "==> resume equivalence: fine-tune → checkpoint → restart is bit-identical (serial)"
NN_THREADS=1 cargo test -q -p splash --test online

echo "==> crash recovery: snapshot+WAL restart is bit-identical at every kill offset (serial)"
# Fault-injected crash matrices (shards 1 and 3), WAL byte-level kill
# sweep, corrupt-WAL fuzz-lite, and the checkpoint-policy suite.
NN_THREADS=1 cargo test -q -p splash --test durable

echo "==> wire serving: socket-level suite (bit-identity, fuzz-lite, backpressure), serial"
# The server's engine thread is the only service owner either way;
# NN_THREADS=1 additionally pins the sharded wire-replay leg to the
# sequential scatter path, matching the in-process comparison run.
NN_THREADS=1 cargo test -q -p splash_repro --test server

echo "==> benches compile"
cargo bench --no-run -p bench

echo "==> quick bench: hot-loop timings + allocation counts"
cargo bench -p bench --bench hotloop

echo "==> quick bench: shard-scaling timings + allocation counts"
cargo bench -p bench --bench shard_scaling

echo "==> quick bench: wire mixed-load throughput + server-side latency percentiles"
cargo bench -p bench --bench server_load

echo "==> quick bench: restart cost — full stream replay vs checkpoint+WAL recovery"
cargo bench -p bench --bench restart

echo "==> all checks passed"
