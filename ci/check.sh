#!/usr/bin/env bash
# The repo's verification gate: build, test, docs.
#
#   ./ci/check.sh          # everything (tier-1 + docs gate + bench compile)
#   ./ci/check.sh --quick  # tier-1 only (build + tests)
#
# Tier-1 (must stay green on every PR):
#   cargo build --release && cargo test -q
#
# Docs gate: `nn` and `splash` carry `#![deny(missing_docs)]`, and their
# rustdoc builds must be warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> quick mode: skipping docs gate and bench compile"
    exit 0
fi

echo "==> lint gate: clippy warning-free across the workspace"
cargo clippy --workspace -- -D warnings

echo "==> docs gate: rustdoc warning-free on nn + splash"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p nn -p splash

echo "==> docs gate: doc examples execute (the service façade's docs can't rot)"
cargo test -q --doc

echo "==> examples: the serving-façade examples compile and run"
cargo build --release --examples
cargo run --release --example streaming_inference
cargo run --release --example hot_swap_serving
cargo run --release --example sharded_serving
cargo run --release --example online_learning
cargo run --release --example http_serving
cargo run --release --example durable_serving

echo "==> scenario matrix: smoke report bytes are deterministic for a fixed seed"
# Two independent smoke runs (drift + anomaly regimes × SPLASH, its online
# twin, and two baseline engines through the multi-tenant registry) must
# produce byte-identical report artifacts.
SCEN_DIR=$(mktemp -d)
TELEM_DIR=$(mktemp -d)
trap 'rm -rf "$SCEN_DIR" "$TELEM_DIR"' EXIT
cargo run --release -q -p cli -- scenarios --smoke true --seed 7 --out "$SCEN_DIR/a" >/dev/null
cargo run --release -q -p cli -- scenarios --smoke true --seed 7 --out "$SCEN_DIR/b" >/dev/null
cmp "$SCEN_DIR/a/report.json" "$SCEN_DIR/b/report.json"
cmp "$SCEN_DIR/a/report.md" "$SCEN_DIR/b/report.md"
grep -q '"regime":"drift"' "$SCEN_DIR/a/report.json"
grep -q '"regime":"anomaly"' "$SCEN_DIR/a/report.json"
grep -q '"model":"splash+online"' "$SCEN_DIR/a/report.json"

echo "==> telemetry: deterministic statz dumps + live /metrics exposition grammar"
# A tiny trained artifact to serve.
cargo run --release -q -p cli -- generate --dataset wiki --out "$TELEM_DIR" >/dev/null
cargo run --release -q -p cli -- run \
    --edges "$TELEM_DIR/wiki.edges.csv" --queries "$TELEM_DIR/wiki.queries.csv" \
    --task anomaly --epochs 1 --k 4 --dv 8 --hidden 16 \
    --save "$TELEM_DIR/wiki.bin" >/dev/null
# Two identical in-process replays write byte-identical registry dumps:
# --statz-out gates every timing-dependent field off.
for side in a b; do
    cargo run --release -q -p cli -- serve \
        --model-file "$TELEM_DIR/wiki.bin" \
        --edges "$TELEM_DIR/wiki.edges.csv" --queries "$TELEM_DIR/wiki.queries.csv" \
        --task anomaly --statz-out "$TELEM_DIR/statz.$side.json" >/dev/null
done
cmp "$TELEM_DIR/statz.a.json" "$TELEM_DIR/statz.b.json"
# A live server's /metrics must satisfy the Prometheus text-exposition
# grammar, scraped and validated by the in-repo promcheck binary. The
# fifo keeps stdin open (the server drains on stdin EOF).
mkfifo "$TELEM_DIR/ctl"
cargo run --release -q -p cli -- serve \
    --model-file "$TELEM_DIR/wiki.bin" \
    --edges "$TELEM_DIR/wiki.edges.csv" --queries "$TELEM_DIR/wiki.queries.csv" \
    --task anomaly --listen 127.0.0.1:0 --slow-ms 250 \
    > "$TELEM_DIR/serve.log" < "$TELEM_DIR/ctl" &
SERVE_PID=$!
exec 3> "$TELEM_DIR/ctl"
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR=$(sed -n 's|^serving .* on http://\([0-9.:]*\) .*|\1|p' "$TELEM_DIR/serve.log")
    [[ -n "$SERVE_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$SERVE_ADDR" ]] || { echo "server never announced its address"; exit 1; }
cargo run --release -q -p cli --bin promcheck -- scrape "$SERVE_ADDR" /healthz >/dev/null
cargo run --release -q -p cli --bin promcheck -- scrape "$SERVE_ADDR" /metrics --out "$TELEM_DIR/metrics.prom"
cargo run --release -q -p cli --bin promcheck -- grammar "$TELEM_DIR/metrics.prom"
grep -q '^splash_healthz_requests_total 1$' "$TELEM_DIR/metrics.prom"
grep -q '^# TYPE splash_request_latency_seconds histogram$' "$TELEM_DIR/metrics.prom"
exec 3>&-   # stdin EOF: the server drains and prints its telemetry summary
wait "$SERVE_PID"
grep -q '^telemetry      : ' "$TELEM_DIR/serve.log"

echo "==> serial fallback: nn alone without 'parallel'"
# nn must be tested by itself: any workspace sibling that depends on nn
# with default features would re-enable 'parallel' via feature unification.
cargo test -q -p nn --no-default-features

echo "==> serial fallback: splash without its 'parallel' chunking"
cargo test -q -p splash --no-default-features

echo "==> serial fallback: shard parity with the fan-out pinned off"
# The sharded engine must be bit-identical to the single engine on the
# strictly sequential dispatch path too (NN_THREADS=1 disables the
# thread-per-shard scatter even with the 'parallel' feature on).
NN_THREADS=1 cargo test -q -p splash --test shard --test proptests

echo "==> forced threading: the 1-core container never spawns by default"
NN_THREADS=4 cargo test -q -p nn -p splash

echo "==> alloc regression: steady-state streaming stays off the allocator"
cargo test -q -p splash --test alloc

echo "==> corrupt-artifact fuzz-lite: crafted files load as typed errors, never aborts"
# Patched-byte artifacts (dimension bombs, invalid configs, damaged
# SAVEDOPT trailers) plus the full persist corruption matrix, serially.
NN_THREADS=1 cargo test -q -p splash --lib persist::

echo "==> resume equivalence: fine-tune → checkpoint → restart is bit-identical (serial)"
NN_THREADS=1 cargo test -q -p splash --test online

echo "==> crash recovery: snapshot+WAL restart is bit-identical at every kill offset (serial)"
# Fault-injected crash matrices (shards 1 and 3), WAL byte-level kill
# sweep, corrupt-WAL fuzz-lite, and the checkpoint-policy suite.
NN_THREADS=1 cargo test -q -p splash --test durable

echo "==> wire serving: socket-level suite (bit-identity, fuzz-lite, backpressure), serial"
# The server's engine thread is the only service owner either way;
# NN_THREADS=1 additionally pins the sharded wire-replay leg to the
# sequential scatter path, matching the in-process comparison run.
NN_THREADS=1 cargo test -q -p splash_repro --test server

echo "==> perf baseline gate: splash bench --baseline / --check round-trip"
# Records a machine-keyed baseline (time + steady-state allocator calls
# over the serving hot loops) and immediately checks against it: the
# check leg proves the gate mechanism end-to-end every run, and the
# alloc half is exact — any steady-state allocation regression fails
# here even between back-to-back runs. Serial, like the other perf legs.
NN_THREADS=1 cargo run --release -q -p cli -- bench --baseline "$TELEM_DIR/bench-baseline.json" --iters 3
NN_THREADS=1 cargo run --release -q -p cli -- bench --check "$TELEM_DIR/bench-baseline.json" --iters 3

echo "==> benches compile"
cargo bench --no-run -p bench

echo "==> quick bench: hot-loop timings + allocation counts"
cargo bench -p bench --bench hotloop

echo "==> quick bench: shard-scaling timings + allocation counts"
cargo bench -p bench --bench shard_scaling

echo "==> quick bench: wire mixed-load throughput + server-side latency percentiles"
cargo bench -p bench --bench server_load

echo "==> quick bench: restart cost — full stream replay vs checkpoint+WAL recovery"
cargo bench -p bench --bench restart

echo "==> all checks passed"
