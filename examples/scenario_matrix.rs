//! The scenario matrix in miniature: two dataset regimes × four contenders
//! served prequentially through one multi-tenant `SplashService` per
//! regime, rendered as the Table III-style report artifact.
//!
//! The drift regime registers SPLASH twice — a frozen slot and an online
//! continual-learning twin that starts from bit-identical weights — next
//! to two baseline engines behind the same registry surface. SLADE is
//! listed on both regimes to show the typed N/A cell: it only supports
//! anomaly detection, so the drift row reports the refusal instead of a
//! number.
//!
//! ```sh
//! cargo run --release --example scenario_matrix
//! ```

use splash_repro::baselines::{engine_factory, parse_variant};
use splash_repro::datasets;
use splash_repro::splash::{
    run_matrix, truncate_to_available, EngineSpec, FineTunePolicy, ModelSpec, OnlineConfig,
    ScenarioConfig, ScenarioSpec, SplashConfig,
};

fn contenders(online_splash: bool) -> Vec<ModelSpec> {
    let mut models = vec![ModelSpec {
        name: "splash".into(),
        engine: EngineSpec::Splash { online: false },
    }];
    if online_splash {
        models.push(ModelSpec {
            name: "splash+online".into(),
            engine: EngineSpec::Splash { online: true },
        });
    }
    for name in ["jodie", "tgn+RF", "slade"] {
        let variant = parse_variant(name).expect("roster name");
        models.push(ModelSpec { name: name.into(), engine: EngineSpec::External(engine_factory(variant)) });
    }
    models
}

fn main() {
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let specs = [
        ScenarioSpec {
            regime: "drift".into(),
            dataset: truncate_to_available(&datasets::synthetic_shift(50, cfg.seed), 0.25),
            models: contenders(true),
        },
        ScenarioSpec {
            regime: "anomaly".into(),
            // mooc's anomalies cluster late; 0.4 keeps positives in the
            // test split so the AP column is non-degenerate.
            dataset: truncate_to_available(&datasets::mooc(), 0.4),
            models: contenders(false),
        },
    ];
    let scfg = ScenarioConfig {
        splash: cfg,
        online: OnlineConfig {
            policy: FineTunePolicy::EveryLabels(25),
            buffer_capacity: 128,
            batch_size: 16,
            steps_per_tune: 5,
            lr: 5e-3,
        },
        timing: true, // wall-clock cells on: edges/s and predict p99
    };
    let report = run_matrix(&specs, &scfg).expect("matrix runs");
    print!("{}", report.to_markdown());

    let drift = &report.regimes[0];
    let frozen = drift.cells.iter().find(|c| c.model == "splash").unwrap();
    let online = drift.cells.iter().find(|c| c.model == "splash+online").unwrap();
    println!(
        "\ncontinual learning on drift: frozen {:.4} → online {:.4}",
        frozen.metric.unwrap(),
        online.metric.unwrap()
    );
}
