//! Bring-your-own-data: serialize a CTDG benchmark to the CSV interchange
//! format, load it back (the path an external dataset would take into this
//! library), and run the full SPLASH pipeline on the reloaded copy.
//!
//! ```sh
//! cargo run --release --example csv_roundtrip
//! ```

use splash_repro::datasets::{
    edges_from_csv, edges_to_csv, queries_from_csv, queries_to_csv, synthetic_shift, Dataset,
};
use splash_repro::splash::{run_splash, SplashConfig};

fn main() {
    // Any CTDG works here; we use the Synthetic-70 generator as the stand-in
    // for "your" data.
    let original = synthetic_shift(70, 42);
    println!(
        "original: {} — {} edges, {} queries, {} classes",
        original.name,
        original.stream.len(),
        original.queries.len(),
        original.num_classes
    );

    // Export to the two-file CSV interchange format…
    let edges_csv = edges_to_csv(&original);
    let queries_csv = queries_to_csv(&original);
    println!(
        "exported {} bytes of edges, {} bytes of queries",
        edges_csv.len(),
        queries_csv.len()
    );

    // …and load it back exactly the way external data would enter.
    let stream = edges_from_csv(&edges_csv).expect("edge CSV parses");
    let queries = queries_from_csv(&queries_csv, original.task).expect("query CSV parses");
    assert_eq!(stream.len(), original.stream.len());
    assert_eq!(queries.len(), original.queries.len());

    let reloaded = Dataset {
        name: format!("{}-reloaded", original.name),
        task: original.task,
        stream,
        queries,
        num_classes: original.num_classes,
        node_feats: None,
    };
    reloaded.validate();

    // The reloaded dataset must behave identically under the pipeline.
    let cfg = SplashConfig::default();
    let out_orig = run_splash(&original, &cfg);
    let out_reload = run_splash(&reloaded, &cfg);
    println!(
        "metric original {:.4} vs reloaded {:.4} (selected {:?} / {:?})",
        out_orig.metric,
        out_reload.metric,
        out_orig.selected.map(|p| p.name()),
        out_reload.selected.map(|p| p.name()),
    );
    assert!(
        (out_orig.metric - out_reload.metric).abs() < 1e-9,
        "CSV round-trip must be lossless for the pipeline"
    );
    println!("round-trip verified: identical pipeline results");
}
