//! Production-shaped serving with [`SplashService`]: a registry of named
//! models, persisted artifacts hot-swapped under live traffic, a
//! late-edge policy, and typed errors that never abort the process.
//!
//! ```sh
//! cargo run --release --example hot_swap_serving
//! ```

use splash_repro::ctdg::TemporalEdge;
use splash_repro::datasets::synthetic_shift;
use splash_repro::splash::{
    truncate_to_available, FeatureProcess, IngestRequest, LateEdgePolicy, PredictRequest,
    SplashConfig, SplashError, SplashService,
};

fn main() {
    let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;

    // One service, two independently trained models in the registry.
    let mut service = SplashService::builder(cfg)
        .late_edge_policy(LateEdgePolicy::Error)
        .build()
        .expect("stock config is valid");
    service
        .train_model_with_process("blue", &dataset, FeatureProcess::Random)
        .expect("training succeeds");
    service
        .train_model_with_process("green", &dataset, FeatureProcess::Positional)
        .expect("training succeeds");
    println!("registry: {:?}", service.model_names().collect::<Vec<_>>());

    // Persist "blue" so it can be swapped back in later.
    let artifact = std::env::temp_dir()
        .join(format!("splash-hot-swap-{}.bin", std::process::id()));
    service.save_model("blue", &artifact).expect("artifact writes");

    // Serve the unseen tail to both models.
    let tail: Vec<TemporalEdge> =
        dataset.stream.edges()[dataset.stream.len() / 2..].to_vec();
    for name in ["blue", "green"] {
        let report = service.ingest(name, IngestRequest::new(&tail)).expect("tail is clean");
        println!("{name}: ingested {} edges up to t={}", report.ingested, report.last_time);
    }
    let t_now = service.model("blue").unwrap().last_time();
    let blue_answer = service.predict("blue", PredictRequest::new(5, t_now + 1.0)).unwrap();

    // Typed errors instead of aborts: an out-of-order batch is rejected
    // (state untouched), a past-time query is refused, and serving
    // continues either way.
    let late = [TemporalEdge::plain(0, 1, t_now - 1e6)];
    match service.ingest("blue", IngestRequest::new(&late)) {
        Err(SplashError::OutOfOrderEdge { got, last }) => {
            println!("rejected batch: edge at t={got} behind the clock at t={last}")
        }
        other => panic!("expected OutOfOrderEdge, got {other:?}"),
    }
    match service.predict("blue", PredictRequest::new(5, t_now - 50.0)) {
        Err(SplashError::PastQuery { .. }) => println!("refused a query about the past"),
        other => panic!("expected PastQuery, got {other:?}"),
    }

    // Under DropLate the same batch is absorbed: late edges are counted,
    // the model state is what the filtered stream would have produced.
    let report = service
        .ingest("blue", IngestRequest::new(&late).with_policy(LateEdgePolicy::DropLate))
        .expect("DropLate absorbs late edges");
    println!("DropLate: ingested {}, dropped {}", report.ingested, report.dropped);

    // Hot-swap: replace "green" with the persisted "blue" artifact while
    // the service keeps running, replay the same tail, and the swapped
    // slot now answers exactly like "blue".
    service.load_model("green", &artifact, &dataset).expect("artifact restores");
    std::fs::remove_file(&artifact).ok();
    service.ingest("green", IngestRequest::new(&tail)).expect("tail replays");
    let swapped_answer = service.predict("green", PredictRequest::new(5, t_now + 1.0)).unwrap();
    assert_eq!(
        blue_answer.logits, swapped_answer.logits,
        "a restored artifact serves bit-identical predictions"
    );
    println!("hot-swapped \"green\" ← blue artifact: predictions bit-identical");

    let stats = service.stats();
    println!(
        "served {} queries, ingested {} edges (+{} dropped)",
        stats.queries_served, stats.edges_ingested, stats.edges_dropped
    );
}
