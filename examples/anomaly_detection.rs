//! Dynamic anomaly detection on the Wikipedia analogue: SPLASH vs the
//! label-free SLADE baseline and TGAT+RF, reporting ROC-AUC.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use splash_repro::baselines::{run, BaselineKind};
use splash_repro::datasets::wiki;
use splash_repro::splash::{run_splash, InputFeatures, SplashConfig};

fn main() {
    let dataset = wiki();
    let cfg = SplashConfig::default();
    println!(
        "dynamic anomaly detection on '{}' ({} edges, {} queries)",
        dataset.name,
        dataset.stream.len(),
        dataset.queries.len()
    );

    let splash_out = run_splash(&dataset, &cfg);
    println!(
        "SPLASH      AUC {:.3}  (selected process {:?}, {} params)",
        splash_out.metric,
        splash_out.selected.map(|p| p.name()),
        splash_out.num_params
    );

    let slade = run(BaselineKind::Slade, &dataset, InputFeatures::External, &cfg);
    println!(
        "SLADE       AUC {:.3}  (self-supervised, no labels, {} params)",
        slade.metric, slade.num_params
    );

    let tgat_rf = run(BaselineKind::Tgat, &dataset, InputFeatures::RawRandom, &cfg);
    println!(
        "TGAT+RF     AUC {:.3}  ({} params)",
        tgat_rf.metric, tgat_rf.num_params
    );

    assert!(splash_out.metric > 0.5, "SPLASH should beat random scoring");
}
