//! Distribution-shift robustness at a glance: run SPLASH, one complex TGNN
//! (+RF), and the two DTDG-based shift-robust methods (DIDA, SLID) on the
//! Synthetic-50/90 datasets and watch who degrades as the shift intensifies
//! — a miniature of the paper's Fig. 12.
//!
//! ```sh
//! cargo run --release --example shift_robustness
//! ```

use splash_repro::baselines::{run, run_dtdg, BaselineKind, DtdgKind};
use splash_repro::datasets::synthetic_shift;
use splash_repro::splash::{run_splash, truncate_to_available, InputFeatures, SplashConfig};

fn main() {
    // Fewer epochs keep the example quick.
    let cfg = SplashConfig { epochs: 5, ..SplashConfig::default() };

    println!(
        "{:<14} {:>10} {:>14} {:>10} {:>10}",
        "intensity", "SPLASH", "dygformer+RF", "dida+RF", "slid+RF"
    );
    let mut splash_drop = 0.0;
    let mut tgnn_drop = 0.0;
    let mut prev: Option<(f64, f64)> = None;
    for intensity in [50u32, 90] {
        // Scale down for example runtime; the bench binary fig12 runs full size.
        let dataset = truncate_to_available(&synthetic_shift(intensity, 1), 0.5);
        let splash_out = run_splash(&dataset, &cfg);
        let tgnn = run(BaselineKind::DyGFormer, &dataset, InputFeatures::RawRandom, &cfg);
        let dida = run_dtdg(DtdgKind::Dida, &dataset, InputFeatures::RawRandom, &cfg);
        let slid = run_dtdg(DtdgKind::Slid, &dataset, InputFeatures::RawRandom, &cfg);
        println!(
            "{:<14} {:>10.4} {:>14.4} {:>10.4} {:>10.4}",
            intensity, splash_out.metric, tgnn.metric, dida.metric, slid.metric
        );
        if let Some((s0, t0)) = prev {
            splash_drop = s0 - splash_out.metric;
            tgnn_drop = t0 - tgnn.metric;
        }
        prev = Some((splash_out.metric, tgnn.metric));
    }
    println!(
        "\nF1 lost from intensity 50 → 90: SPLASH {:.4}, DyGFormer+RF {:.4}",
        splash_drop, tgnn_drop
    );
}
