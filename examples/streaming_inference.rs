//! Streaming deployment (paper Fig. 4) through the serving façade: train
//! SPLASH once, register it in a [`SplashService`], then consume a live
//! edge stream in micro-batches, answering label queries immediately from
//! sub-linear state.
//!
//! Everything fallible goes through typed requests — an out-of-order
//! batch or a past-time query would come back as a `SplashError` value
//! instead of aborting the process.
//!
//! ```sh
//! cargo run --release --example streaming_inference
//! ```

use splash_repro::ctdg::{replay, Event, TemporalEdge};
use splash_repro::datasets::synthetic_shift;
use splash_repro::eval::weighted_f1;
use splash_repro::splash::{
    split_bounds, IngestRequest, PredictRequest, PredictResponse, SplashConfig, SplashService,
};

fn main() {
    let dataset = synthetic_shift(50, 7);
    let cfg = SplashConfig::default();

    println!("training SPLASH on the first 10% of queries…");
    let mut service = SplashService::builder(cfg).build().expect("stock config is valid");
    let selected = service.train_model("live", &dataset).expect("training succeeds");
    println!("selected augmentation process: {}", selected.name());

    // Go live: replay the post-training stream as if it were arriving now.
    // Edges between two queries form one ingest micro-batch; each query is
    // answered from the state accumulated so far.
    let (_, val_end) = split_bounds(dataset.queries.len());
    let prefix = dataset
        .stream
        .prefix_len_at(service.model("live").expect("just registered").last_time());
    let mut pending: Vec<TemporalEdge> = Vec::new();
    let mut resp = PredictResponse::default();
    let mut preds = Vec::new();
    let mut truth = Vec::new();
    let started = std::time::Instant::now();
    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    pending.push(edge.clone());
                }
            }
            Event::Query(qi, q) => {
                if !pending.is_empty() {
                    service
                        .ingest("live", IngestRequest::new(&pending))
                        .expect("replayed edges are chronological");
                    pending.clear();
                }
                if qi >= val_end {
                    // The reused response keeps this loop allocation-free.
                    service
                        .predict_into("live", PredictRequest::new(q.node, q.time), &mut resp)
                        .expect("replayed queries are never in the past");
                    preds.push(resp.top_class().expect("logits are non-empty"));
                    truth.push(q.label.class());
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = service.stats();
    let f1 = weighted_f1(&preds, &truth, dataset.num_classes);
    println!(
        "ingested {} edges, answered {} live queries in {elapsed:.2}s \
         ({:.0} queries/s), weighted F1 {f1:.3}",
        stats.edges_ingested,
        stats.queries_served,
        stats.queries_served as f64 / elapsed
    );
    assert!(f1 > 0.2, "streaming predictions should beat chance");
}
