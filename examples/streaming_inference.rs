//! Streaming deployment (paper Fig. 4): train SPLASH once, then consume a
//! live edge stream one event at a time, answering label queries
//! immediately from sub-linear state.
//!
//! ```sh
//! cargo run --release --example streaming_inference
//! ```

use splash_repro::ctdg::{replay, Event};
use splash_repro::datasets::synthetic_shift;
use splash_repro::eval::weighted_f1;
use splash_repro::splash::{split_bounds, SplashConfig, StreamingPredictor};

fn main() {
    let dataset = synthetic_shift(50, 7);
    let cfg = SplashConfig::default();

    println!("training SPLASH on the first 10% of queries…");
    let mut predictor = StreamingPredictor::train(&dataset, &cfg);
    println!("selected augmentation process: {}", predictor.process().name());

    // Go live: replay the post-training stream as if it were arriving now.
    let (_, val_end) = split_bounds(dataset.queries.len());
    let prefix = dataset.stream.prefix_len_at(predictor.last_time());
    let mut preds = Vec::new();
    let mut truth = Vec::new();
    let mut answered = 0usize;
    let started = std::time::Instant::now();
    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    predictor.observe_edge(edge); // O(d_v) per edge
                }
            }
            Event::Query(qi, q) => {
                if qi >= val_end {
                    let logits = predictor.predict(q.node, q.time);
                    let pred = logits
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .map(|(i, _)| i)
                        .unwrap();
                    preds.push(pred);
                    truth.push(q.label.class());
                    answered += 1;
                }
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let f1 = weighted_f1(&preds, &truth, dataset.num_classes);
    println!(
        "answered {answered} live queries in {elapsed:.2}s \
         ({:.0} queries/s), weighted F1 {f1:.3}",
        answered as f64 / elapsed
    );
    assert!(f1 > 0.2, "streaming predictions should beat chance");
}
