//! Node affinity prediction on the TGBN-trade analogue (NDCG@10), plus a
//! simple non-learned baseline: predicting each node's *historical* affinity
//! (the empirical distribution of its past edges) — the "persistent
//! forecast" that any learned model has to beat.
//!
//! ```sh
//! cargo run --release --example affinity_prediction
//! ```

use splash_repro::ctdg::Label;
use splash_repro::datasets::tgbn_trade;
use splash_repro::eval::mean_ndcg_at_k;
use splash_repro::splash::{run_splash, split_bounds, SplashConfig};

fn main() {
    let dataset = tgbn_trade();
    let cfg = SplashConfig::default();
    println!(
        "node affinity prediction on '{}' (d_a = {}, {} checkpoint queries)",
        dataset.name, dataset.num_classes, dataset.queries.len()
    );

    // Persistent-history baseline: affinity ∝ accumulated past edge weights.
    let (_, val_end) = split_bounds(dataset.queries.len());
    let mut history = vec![vec![0.0f32; dataset.num_classes]; dataset.stream.num_nodes()];
    let mut edge_idx = 0usize;
    let edges = dataset.stream.edges();
    let mut queries_eval = Vec::new();
    for (qi, q) in dataset.queries.iter().enumerate() {
        while edge_idx < edges.len() && edges[edge_idx].time <= q.time {
            let e = &edges[edge_idx];
            let dst = e.dst as usize % dataset.num_classes;
            history[e.src as usize][dst] += e.weight;
            edge_idx += 1;
        }
        if qi >= val_end {
            if let Label::Affinity(truth) = &q.label {
                queries_eval.push((history[q.node as usize].clone(), truth.to_vec()));
            }
        }
    }
    let persistent = mean_ndcg_at_k(&queries_eval, 10);
    println!("persistent-history baseline  NDCG@10 {persistent:.3}");

    let out = run_splash(&dataset, &cfg);
    println!(
        "SPLASH (selected {:?})        NDCG@10 {:.3}  ({} params)",
        out.selected.map(|p| p.name()),
        out.metric,
        out.num_params
    );
}
