//! Quickstart: build a tiny edge stream by hand, run the full SPLASH
//! pipeline on it, and inspect what was selected and how well it predicts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use splash_repro::ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};
use splash_repro::datasets::{Dataset, Task};
use splash_repro::splash::{run_splash, SplashConfig};

use rand::{rngs::StdRng, RngExt, SeedableRng};

fn main() {
    // A two-community interaction network: nodes 0..30 form community A,
    // nodes 30..60 community B; 90% of edges stay within a community. The
    // property of a node is its community. New nodes keep arriving so the
    // test period contains nodes unseen during training.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 60u32;
    let community = |v: u32| (v >= 30) as usize;
    let arrival: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 3_000.0).collect();

    let mut edges = Vec::new();
    let mut queries = Vec::new();
    for i in 0..6_000 {
        let t = i as f64;
        let arrived: Vec<u32> = (0..n).filter(|&v| arrival[v as usize] <= t).collect();
        if arrived.len() < 2 {
            continue;
        }
        let src = arrived[rng.random_range(0..arrived.len())];
        let same = rng.random::<f64>() < 0.9;
        let candidates: Vec<u32> = arrived
            .iter()
            .copied()
            .filter(|&v| v != src && (community(v) == community(src)) == same)
            .collect();
        let Some(&dst) = candidates.get(rng.random_range(0..candidates.len().max(1))) else {
            continue;
        };
        edges.push(TemporalEdge::plain(src, dst, t));
        queries.push(PropertyQuery {
            node: src,
            time: t,
            label: Label::Class(community(src)),
        });
    }

    let dataset = Dataset {
        name: "quickstart".into(),
        task: Task::Classification,
        stream: EdgeStream::new(edges).expect("edges are chronological"),
        queries,
        num_classes: 2,
        node_feats: None,
    };

    // Run the full pipeline: augmentation → automatic selection → SLIM.
    let out = run_splash(&dataset, &SplashConfig::default());

    println!("SPLASH on a hand-built two-community stream");
    println!(
        "  selected augmentation process: {:?} (risks R/P/S: {:?})",
        out.selected.map(|p| p.name()),
        out.risks.map(|r| r.map(|x| (x * 100.0).round() / 100.0))
    );
    println!("  test weighted F1: {:.3}", out.metric);
    println!("  model parameters: {}", out.num_params);
    println!("  train {:.2}s / inference {:.3}s", out.train_secs, out.infer_secs);
    assert!(out.metric > 0.6, "community labels should be easy for SPLASH");
}
