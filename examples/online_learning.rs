//! Online continual learning behind the service: a deployed model keeps
//! fine-tuning itself from the live label stream — without downtime — and
//! a checkpointed deployment resumes bit-identically after a restart.
//!
//! ```sh
//! cargo run --release --example online_learning
//! ```

use splash_repro::ctdg::{Label, PropertyQuery};
use splash_repro::datasets::synthetic_shift;
use splash_repro::splash::{
    seen_end_time, truncate_to_available, FeatureProcess, FineTunePolicy, IngestRequest,
    OnlineConfig, PredictRequest, SplashConfig, SplashService, SEEN_FRAC,
};

fn main() {
    let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;

    // A service with continual learning on: fine-tune (and publish)
    // automatically after every 20 absorbed labels.
    let online = OnlineConfig {
        policy: FineTunePolicy::EveryLabels(20),
        ..OnlineConfig::default()
    };
    let mut service = SplashService::builder(cfg)
        .online(online)
        .build()
        .expect("stock config is valid");
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .expect("training succeeds");

    // Go live: stream the unseen tail in, prequentially — predict first,
    // then reveal the ground truth to the trainer.
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = &dataset.stream.edges()[prefix..];
    let mid = tail.len() / 2;
    service.ingest("live", IngestRequest::new(&tail[..mid])).expect("clean batch");
    let t_now = service.model_last_time("live").expect("model exists");

    let frozen_answer = service.predict("live", PredictRequest::new(3, t_now + 500.0)).unwrap();
    let labels: Vec<PropertyQuery> = (0..50u32)
        .map(|i| PropertyQuery {
            node: (i * 7) % 40,
            time: t_now + i as f64 * 0.1,
            label: Label::Class((i % 2) as usize),
        })
        .collect();
    let report = service.observe_labels("live", &labels).expect("labels absorb");
    println!(
        "absorbed {} labels → {} automatic fine-tune rounds ({} Adam steps)",
        report.buffered, report.tunes, report.steps
    );
    let tuned_answer = service.predict("live", PredictRequest::new(3, t_now + 500.0)).unwrap();
    assert_ne!(
        frozen_answer.logits, tuned_answer.logits,
        "published fine-tuned weights change the served predictions"
    );
    println!("served logits moved after publish: the model is learning in place");

    // Checkpoint mid-deployment. The artifact carries the weights AND the
    // optimizer (SAVEDOPT section) — but not the replay buffer, so flush
    // it first: fine_tune consumes the 10 labels still waiting (50 labels
    // at cadence 20 leave a remainder) and publishes. From a drained
    // buffer, a restarted service that re-delivers the stream continues
    // bit-identically to one that never stopped.
    service.fine_tune("live").expect("flush before checkpoint");
    let artifact = std::env::temp_dir()
        .join(format!("splash-online-example-{}.bin", std::process::id()));
    service.save_model("live", &artifact).expect("checkpoint writes");

    let mut restarted = SplashService::builder(cfg)
        .online(online)
        .build()
        .expect("stock config is valid");
    restarted.load_model("live", &artifact, &dataset).expect("checkpoint restores");
    std::fs::remove_file(&artifact).ok();
    // Streaming state rebuilds from the training prefix; re-deliver what
    // the original deployment already saw.
    restarted.ingest("live", IngestRequest::new(&tail[..mid])).expect("replay");

    // Both deployments now live through the same second phase...
    for svc in [&mut service, &mut restarted] {
        svc.ingest("live", IngestRequest::new(&tail[mid..])).expect("clean batch");
        let t2 = svc.model_last_time("live").unwrap();
        let labels2: Vec<PropertyQuery> = (0..40u32)
            .map(|i| PropertyQuery {
                node: (i * 3) % 40,
                time: t2 + i as f64 * 0.1,
                label: Label::Class(((i / 2) % 2) as usize),
            })
            .collect();
        svc.observe_labels("live", &labels2).expect("labels absorb");
        svc.fine_tune("live").expect("manual round");
    }

    // ...and answer identically, bit for bit.
    let t_end = service.model_last_time("live").unwrap();
    for node in [0u32, 7, 19, 33] {
        let a = service.predict("live", PredictRequest::new(node, t_end + 1.0)).unwrap();
        let b = restarted.predict("live", PredictRequest::new(node, t_end + 1.0)).unwrap();
        assert_eq!(a.logits, b.logits, "resume must be bit-identical");
    }
    println!("checkpoint → restart → resume: predictions bit-identical to never restarting");
    print!("{}", service.stats());
}
