//! Durable serving: a deployment that survives `kill -9`. The service
//! checkpoints its full streaming state (rings, augmenter, stream clock,
//! replay buffer, counters) and group-commits every accepted request to a
//! write-ahead log, so a crashed process restarts in O(state + WAL tail)
//! — no dataset replay — bit-identical to one that never crashed.
//!
//! ```sh
//! cargo run --release --example durable_serving
//! ```

use splash_repro::ctdg::{Label, PropertyQuery};
use splash_repro::datasets::synthetic_shift;
use splash_repro::splash::{
    seen_end_time, truncate_to_available, DurabilityConfig, FaultPlan, FeatureProcess,
    FineTunePolicy, IngestRequest, OnlineConfig, PredictRequest, SplashConfig, SplashService,
    SEEN_FRAC,
};

fn build(cfg: SplashConfig, online: OnlineConfig) -> SplashService {
    SplashService::builder(cfg)
        .online(online)
        .build()
        .expect("stock config is valid")
}

fn main() {
    let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let online = OnlineConfig { policy: FineTunePolicy::Manual, ..OnlineConfig::default() };
    let dir = std::env::temp_dir()
        .join(format!("splash-durable-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- Day 0: train, then make the deployment durable. The directory is
    // empty, so this seeds checkpoint epoch 0 and opens its WAL.
    let mut service = build(cfg, online);
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .expect("training succeeds");
    let faults = FaultPlan::new(); // the crash we will inject below
    service
        .make_durable(
            "live",
            DurabilityConfig::new(&dir).checkpoint_every(4).faults(faults.clone()),
        )
        .expect("fresh directory seeds");

    // Go live: stream edges and labels in. Every accepted request is in
    // the WAL before it is acknowledged; every 4th record cuts a fresh
    // snapshot automatically.
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = &dataset.stream.edges()[prefix..];
    let mid = tail.len() / 2;
    for batch in tail[..mid].chunks(8) {
        service.ingest("live", IngestRequest::new(batch)).expect("clean batch");
    }
    let t_now = service.model_last_time("live").expect("model exists");
    let labels: Vec<PropertyQuery> = (0..24u32)
        .map(|i| PropertyQuery {
            node: (i * 7) % 40,
            time: t_now + i as f64 * 0.1,
            label: Label::Class((i % 2) as usize),
        })
        .collect();
    service.observe_labels("live", &labels).expect("labels absorb");
    service.fine_tune("live").expect("manual round");

    // --- The disaster: kill the process mid-write. The fault plan tears
    // the very next durable file write after 10 bytes — exactly what
    // `kill -9` during a snapshot leaves on disk.
    faults.arm_write(0, 10);
    let batch = &tail[mid..mid + 8.min(tail.len() - mid)];
    let err = service.ingest("live", IngestRequest::new(batch)).unwrap_err();
    println!("crash injected : {err}");
    drop(service); // the process is gone; only the directory survives

    // --- Restart: point a *freshly built* service at the directory — no
    // retraining, no dataset replay, no saved artifact to pass around.
    // Recovery loads the committed snapshot, replays the WAL tail through
    // the live code paths, truncates any torn record, and installs the
    // model exactly where the crashed process stopped.
    let started = std::time::Instant::now();
    let mut restarted = build(cfg, online);
    let report = restarted
        .make_durable("live", DurabilityConfig::new(&dir).checkpoint_every(4))
        .expect("recovery succeeds")
        .expect("the directory holds a committed checkpoint");
    println!("restart took   : {:?} (snapshot + WAL tail, not the stream)", started.elapsed());
    println!(
        "recovered      : epoch {}, {} WAL records replayed ({} edges){}",
        report.epoch,
        report.wal_records_replayed,
        report.wal_edges_replayed,
        if report.wal_tail_truncated { ", torn tail truncated" } else { "" },
    );

    // --- Proof: a reference deployment that never crashed serves the
    // same stream; the recovered one answers bit-identically.
    let mut reference = build(cfg, online);
    reference
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .expect("training succeeds");
    for batch in tail[..mid].chunks(8) {
        reference.ingest("live", IngestRequest::new(batch)).expect("clean batch");
    }
    reference.observe_labels("live", &labels).expect("labels absorb");
    reference.fine_tune("live").expect("manual round");

    for svc in [&mut restarted, &mut reference] {
        svc.ingest("live", IngestRequest::new(&tail[mid..])).expect("resume the stream");
    }
    let t_end = reference.model_last_time("live").unwrap();
    for node in [0u32, 7, 19, 33] {
        let a = restarted.predict("live", PredictRequest::new(node, t_end + 1.0)).unwrap();
        let b = reference.predict("live", PredictRequest::new(node, t_end + 1.0)).unwrap();
        assert_eq!(a.logits, b.logits, "recovery must be bit-identical");
    }
    println!("crash → restart → resume: predictions bit-identical to never crashing");
    print!("{}", restarted.stats());
    std::fs::remove_dir_all(&dir).ok();
}
