//! Scale-out serving with the sharding subsystem: hash-partition a trained
//! model across N engines, route a live stream through the scatter–gather
//! service, persist the sharded artifact, and reload it at a *different*
//! shard count — all with predictions bit-identical to the single engine.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use splash_repro::ctdg::{Label, PropertyQuery, TemporalEdge};
use splash_repro::datasets::synthetic_shift;
use splash_repro::nn::Matrix;
use splash_repro::splash::{
    truncate_to_available, FeatureProcess, IngestRequest, ShardedPredictor, SplashConfig,
    SplashService, StreamingPredictor,
};

fn main() {
    let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;

    // One training run; the single engine below is the ground truth the
    // sharded engines must reproduce bit for bit.
    println!("training SPLASH once…");
    let mut single =
        StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);

    // A service serving the same weights from 4 hash-partitioned shards.
    let mut service = SplashService::builder(cfg).shards(4).build().expect("valid config");
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .expect("training succeeds");

    // Go live: the unseen tail arrives as one micro-batch. The shared
    // witness observes each edge exactly once and materializes its ring
    // snapshots; the owner shard(s) of its endpoints consume them.
    let tail: Vec<TemporalEdge> =
        dataset.stream.edges()[dataset.stream.len() / 2..].to_vec();
    single.try_push_edges(&tail).expect("tail is chronological");
    let report = service.ingest("live", IngestRequest::new(&tail)).expect("tail is clean");
    println!("ingested {} edges across 4 shards", report.ingested);

    // Scatter–gather queries: answered by owner shards, gathered back in
    // query order, byte-for-byte the single engine's logits.
    let t0 = report.last_time;
    let queries: Vec<PropertyQuery> = (0..48u32)
        .map(|i| PropertyQuery {
            node: (i * 5) % 50, // includes ids past the training universe
            time: t0 + i as f64,
            label: Label::Class(0),
        })
        .collect();
    let expected = single.try_predict_batch(&queries).expect("valid queries");
    let mut gathered = Matrix::default();
    service
        .predict_batch_into("live", &queries, &mut gathered)
        .expect("scatter-gather succeeds");
    assert_eq!(
        expected.data(),
        gathered.data(),
        "sharded predictions must be bit-identical to the single engine"
    );
    println!("48 scattered queries match the single engine bit for bit");

    // The partition at work: each shard owns a slice of the ring state and
    // answered only its own nodes' queries; the witness watched each edge
    // exactly once, globally.
    for s in service.shard_stats("live").expect("sharded model") {
        println!(
            "  shard {}: {} ring nodes, {} owned edges, {} queries",
            s.shard, s.owned_nodes, s.owned_edges, s.queries_served
        );
    }
    println!("  witness : {} edges observed once", service.stats().edges_witnessed);

    // Sharded persistence: a manifest plus one shared model file —
    // and resharding-on-load, here 4 → 2 engines serving identically.
    let artifact = std::env::temp_dir()
        .join(format!("splash-sharded-serving-{}.manifest", std::process::id()));
    service.save_model("live", &artifact).expect("artifact writes");
    let mut resharded =
        ShardedPredictor::try_load(&artifact, &dataset, Some(2)).expect("artifact reshards");
    resharded.try_push_edges(&tail).expect("tail replays");
    let replayed = resharded.try_predict_batch(&queries).expect("valid queries");
    assert_eq!(
        expected.data(),
        replayed.data(),
        "a model saved at 4 shards must serve identically at 2"
    );
    println!("artifact saved at 4 shards reloaded at 2: still bit-identical");
    let model_file = splash_repro::splash::persist::shard_file_path(&artifact, 0);
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!(
        "artifact on disk: {} B manifest + {} B shared model file (shards share weights, stored once)",
        size(&artifact),
        size(&model_file)
    );
    std::fs::remove_file(&model_file).ok();
    std::fs::remove_file(&artifact).ok();

    let stats = service.stats();
    print!("{stats}");
}
