//! Dynamic node classification on the Email-EU analogue, showing why the
//! paper's feature augmentation matters: the same SLIM model is run with
//! zero features, raw random features, and the automatically selected
//! augmented features.
//!
//! ```sh
//! cargo run --release --example node_classification
//! ```

use splash_repro::datasets::email_eu;
use splash_repro::splash::{run_slim_with, run_splash, InputFeatures, SplashConfig};

fn main() {
    let dataset = email_eu();
    let cfg = SplashConfig::default();
    println!(
        "dynamic node classification on '{}' ({} classes, {} queries)",
        dataset.name, dataset.num_classes, dataset.queries.len()
    );

    let zf = run_slim_with(&dataset, &cfg, InputFeatures::Zero);
    println!("SLIM + zero features      F1 {:.3}", zf.metric);

    let rf = run_slim_with(&dataset, &cfg, InputFeatures::RawRandom);
    println!("SLIM + raw random feats   F1 {:.3}", rf.metric);

    let full = run_splash(&dataset, &cfg);
    println!(
        "SPLASH (selected {:?})     F1 {:.3}",
        full.selected.map(|p| p.name()),
        full.metric
    );

    assert!(
        full.metric > zf.metric,
        "augmented features must beat zero features on identity-driven labels"
    );
}
