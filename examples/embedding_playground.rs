//! Compare the three snapshot embedding functions the paper discusses
//! (§II-D / Eq. 1) on a community-structured training snapshot: node2vec,
//! DeepWalk (its p = q = 1 case), and GraRep — scored by how well each
//! separates the ground-truth communities (silhouette) — plus PageRank as
//! the structural score it contrasts them with.
//!
//! ```sh
//! cargo run --release --example embedding_playground
//! ```

use splash_repro::ctdg::{EdgeStream, GraphSnapshot, TemporalEdge};
use splash_repro::embed::{
    grarep, node2vec, pagerank, GraRepConfig, Node2VecConfig, PageRankConfig,
};
use splash_repro::eval::silhouette_score;

use rand::{rngs::StdRng, RngExt, SeedableRng};

fn main() {
    // Three communities of 30 nodes; 85% of edges stay inside a community.
    // One hub per community gets 10x activity so PageRank has something to
    // find.
    let mut rng = StdRng::seed_from_u64(3);
    let n = 90u32;
    let community = |v: u32| (v / 30) as usize;
    let is_hub = |v: u32| v.is_multiple_of(30);
    let mut edges = Vec::new();
    for t in 0..8_000 {
        let src = loop {
            let v = rng.random_range(0..n);
            if is_hub(v) || rng.random::<f64>() < 0.1 {
                break v;
            }
        };
        let dst = loop {
            let v = rng.random_range(0..n);
            if v != src && (community(v) == community(src)) == (rng.random::<f64>() < 0.85) {
                break v;
            }
        };
        edges.push(TemporalEdge::plain(src, dst, t as f64));
    }
    let stream = EdgeStream::new(edges).expect("chronological");
    let snapshot = GraphSnapshot::from_stream_prefix(&stream, stream.len());
    let labels: Vec<usize> = (0..n).map(community).collect();

    println!("community separation (silhouette; higher = better):");
    let mut n2v = Node2VecConfig::fast(16);
    let emb = node2vec(&snapshot, &n2v, 7);
    println!("  node2vec (q=0.5) : {:+.3}", silhouette_score(&emb, &labels));

    n2v.walk.p = 1.0;
    n2v.walk.q = 1.0;
    let emb = node2vec(&snapshot, &n2v, 7);
    println!("  deepwalk (p=q=1) : {:+.3}", silhouette_score(&emb, &labels));

    let gr = GraRepConfig { dim: 16, transition_steps: 2, svd_iters: 4 };
    let emb = grarep(&snapshot, &gr, 7);
    let gr_score = silhouette_score(&emb, &labels);
    println!("  grarep (K=2)     : {gr_score:+.3}");

    // PageRank is structural, not positional: it ranks hubs, it does not
    // separate communities.
    let pr = pagerank(&snapshot, &PageRankConfig::default());
    let mut ranked: Vec<u32> = (0..n).collect();
    ranked.sort_by(|&a, &b| pr[b as usize].partial_cmp(&pr[a as usize]).unwrap());
    println!(
        "\npagerank top-3 nodes: {:?} (the three planted hubs are {:?})",
        &ranked[..3],
        [0u32, 30, 60]
    );
    let hubs_found = ranked[..3].iter().filter(|&&v| is_hub(v)).count();
    assert_eq!(hubs_found, 3, "PageRank must surface the planted hubs");
    assert!(gr_score > 0.05, "GraRep should separate planted communities");
}
