//! Networked serving with [`SplashServer`]: the in-process service behind
//! a real socket — typed error statuses, admission control, and latency
//! percentiles — driven here by a raw `TcpStream` client.
//!
//! ```sh
//! cargo run --release --example http_serving
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use splash_repro::ctdg::TemporalEdge;
use splash_repro::datasets::synthetic_shift;
use splash_repro::splash::{
    seen_end_time, truncate_to_available, FeatureProcess, ServerConfig, SplashConfig,
    SplashServer, SplashService, SEEN_FRAC,
};

/// One HTTP/1.1 exchange on a kept-alive connection (length-delimited
/// bodies, exactly the dialect the server speaks).
fn request(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> (u16, String) {
    let head =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut len = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        if header.trim_end().is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut reply = vec![0u8; len];
    reader.read_exact(&mut reply).unwrap();
    (status, String::from_utf8(reply).unwrap())
}

fn main() {
    // Train a tiny model and put it behind the wire front end on an
    // ephemeral port.
    let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let mut service = SplashService::builder(cfg).build().expect("valid config");
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .expect("training succeeds");

    let handle = SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default())
        .expect("ephemeral port binds");
    println!("serving on http://{}", handle.addr());
    let mut client = TcpStream::connect(handle.addr()).expect("connect");

    // The unseen tail arrives over the wire as edge CSV; queries as
    // node,time lines; logits come back as text that round-trips bits.
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail: Vec<TemporalEdge> = dataset.stream.edges()[prefix..].to_vec();
    let mut csv = String::from("src,dst,time,weight\n");
    for e in &tail {
        csv.push_str(&format!("{},{},{},{}\n", e.src, e.dst, e.time, e.weight));
    }
    let (status, body) = request(&mut client, "POST", "/models/live/ingest", &csv);
    println!("ingest tail    : {status} {}", body.trim_end());
    assert_eq!(status, 200);

    let t_now = tail.last().expect("non-empty tail").time;
    let (status, body) =
        request(&mut client, "POST", "/models/live/predict", &format!("5,{t_now}\n7,{t_now}\n"));
    println!("predict 5,7    : {status} logits {}", body.trim_end().replace('\n', " | "));
    assert_eq!(status, 200);

    // Typed errors cross the wire as statuses: an edge behind the stream
    // clock is 409 (Conflict), an unknown model 404 — and the server keeps
    // serving either way.
    let stale = format!("src,dst,time,weight\n0,1,{},1\n", t_now - 1e6);
    let (status, body) = request(&mut client, "POST", "/models/live/ingest", &stale);
    println!("stale edge     : {status} {}", body.trim_end());
    assert_eq!(status, 409);
    let (status, _) = request(&mut client, "POST", "/models/nope/predict", "0,1e12\n");
    println!("unknown model  : {status}");
    assert_eq!(status, 404);

    // The stats page carries the zero-alloc latency histogram.
    let (status, body) = request(&mut client, "GET", "/stats", "");
    assert_eq!(status, 200);
    println!("--- /stats ---\n{body}");

    // Shutdown drains in-flight work and hands the service back for
    // in-process inspection — the same engine, same counters.
    let service = handle.shutdown();
    let stats = service.stats();
    assert_eq!(stats.edges_ingested, tail.len() as u64);
    assert!(stats.latency.count() > 0);
    println!("wire p99       : {:.3}ms", stats.latency.p99_ns() as f64 / 1e6);
    println!("done: server drained, service recovered in-process");
}
