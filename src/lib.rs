//! Umbrella crate: re-exports every crate of the SPLASH reproduction so that
//! workspace-level examples and integration tests have one import root.
pub use baselines;
pub use ctdg;
pub use datasets;
pub use embed;
pub use eval;
pub use nn;
pub use splash;
