//! Allocation-regression tests: the steady-state streaming hot paths must
//! stay off the global allocator.
//!
//! This integration test binary installs a counting wrapper around the
//! system allocator (each test binary is its own process, so the wrapper
//! does not affect the rest of the suite), warms the predictor's reusable
//! buffers up, and then pins the exact number of allocator calls the hot
//! loops may make: zero for `predict_into`, one (the returned vector) for
//! `predict`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ctdg::{Label, PropertyQuery, TemporalEdge};
use splash::{
    seen_end_time, DurabilityConfig, FeatureProcess, FineTunePolicy, IngestRequest, OnlineConfig,
    PredictRequest, PredictResponse, ShardedPredictor, SplashConfig, SplashService,
    StreamingPredictor, SEEN_FRAC,
};

/// Counts every `alloc`/`realloc` that reaches the system allocator.
///
/// Kept in sync with the identical wrapper in
/// `crates/bench/benches/hotloop.rs` (a global allocator must live in the
/// binary that uses it, and the bench crate sits above `splash` in the
/// dependency graph, so the two copies cannot share a crate below both).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocator calls it made.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

fn trained_predictor() -> (StreamingPredictor, Vec<TemporalEdge>) {
    let dataset = splash::truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let predictor =
        StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    (predictor, tail)
}

/// After warm-up, `predict_into` performs zero heap allocations per query,
/// and `predict` performs at most one (the returned logits vector).
#[test]
fn steady_state_predict_is_allocation_free() {
    let (mut predictor, tail) = trained_predictor();
    assert!(tail.len() > 20, "fixture too small");
    predictor.try_push_edges(&tail).unwrap();
    let t0 = predictor.last_time();

    // Query a spread of nodes, including one far outside the ring table
    // (no ring at all → zero neighbors): alternating between full and
    // empty neighbor lists exercises the slot-parking path in query
    // assembly. Warm every buffer: the workspace, the packed batch, the
    // assembled query, and the output vector.
    let mut nodes: Vec<u32> = (0..32u32).map(|i| i * 3 % 40).collect();
    nodes.insert(7, 9_999); // never seen: rings.get(..) is None
    nodes.insert(21, 9_999);
    let mut out = Vec::new();
    for (i, &v) in nodes.iter().enumerate() {
        predictor.try_predict_into(v, t0 + i as f64, &mut out).unwrap();
    }

    // Steady state: repeat the same query mix; not a single allocator call
    // may happen.
    let mut sink = 0.0f32;
    let allocs = count_allocs(|| {
        for (i, &v) in nodes.iter().enumerate() {
            predictor
                .try_predict_into(v, t0 + (nodes.len() + i) as f64, &mut out)
                .unwrap();
            sink += out[0];
        }
    });
    assert!(sink.is_finite());
    assert_eq!(
        allocs, 0,
        "steady-state predict_into must not allocate ({allocs} calls over {} queries)",
        nodes.len()
    );

    // The convenience form may allocate exactly its returned Vec.
    let warm = predictor.try_predict(nodes[0], t0 + 1000.0).unwrap();
    assert!(!warm.is_empty());
    let allocs = count_allocs(|| {
        let logits = predictor.try_predict(nodes[0], t0 + 1001.0).unwrap();
        sink += logits[0];
    });
    assert!(
        allocs <= 1,
        "predict should allocate at most the returned vector, saw {allocs}"
    );
}

/// The `SplashService` façade must not reintroduce per-query heap
/// traffic: a steady-state `PredictRequest` through
/// `SplashService::predict_into` (registry lookup, policy checks, typed
/// response, serving counters and all) performs **zero** allocator calls,
/// exactly like the bare predictor.
#[test]
fn steady_state_service_predict_is_allocation_free() {
    let dataset = splash::truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let mut service = SplashService::builder(cfg).build().unwrap();
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = &dataset.stream.edges()[prefix..];
    let report = service.ingest("live", IngestRequest::new(tail)).unwrap();
    let t0 = report.last_time;

    // Same query mix as the bare-predictor test: a spread of nodes
    // including never-seen ones, warming every reusable buffer.
    let mut nodes: Vec<u32> = (0..32u32).map(|i| i * 3 % 40).collect();
    nodes.insert(7, 9_999);
    nodes.insert(21, 9_999);
    let mut resp = PredictResponse::default();
    for (i, &v) in nodes.iter().enumerate() {
        service
            .predict_into("live", PredictRequest::new(v, t0 + i as f64), &mut resp)
            .unwrap();
    }

    let mut sink = 0.0f32;
    let tel = service.telemetry();
    let served_before = tel.queries_served.get();
    let allocs = count_allocs(|| {
        for (i, &v) in nodes.iter().enumerate() {
            let req = PredictRequest::new(v, t0 + (nodes.len() + i) as f64);
            match service.predict_into("live", req, &mut resp) {
                Ok(()) => sink += resp.logits[0],
                Err(_) => unreachable!("valid steady-state query"),
            }
        }
    });
    assert!(sink.is_finite());
    assert_eq!(
        allocs, 0,
        "steady-state service predict_into must not allocate ({allocs} calls over {} queries)",
        nodes.len()
    );
    // The counted section went through the live telemetry registry — the
    // zero above prices the metrics counters in, not around.
    assert_eq!(tel.queries_served.get() - served_before, nodes.len() as u64);
}

/// One WAL-committed ingest on a warmed **durable** service performs zero
/// heap allocations: the record encodes into the log's reusable payload
/// scratch, the frame builds in its reusable record buffer, and the
/// telemetry counters (edges ingested, WAL records appended, commit-time
/// staging) are plain atomics.
#[test]
fn steady_state_durable_ingest_is_allocation_free() {
    let dataset = splash::truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let mut service = SplashService::builder(cfg).build().unwrap();
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let dir = std::env::temp_dir().join(format!("splash-alloc-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // A checkpoint cadence past anything this test appends: the counted
    // section must hit the WAL append seam, never the snapshot writer.
    let durability = DurabilityConfig::new(&dir).checkpoint_every(1_000_000);
    service.make_durable("live", durability).unwrap();

    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    assert!(tail.len() > 40, "fixture too small");
    service.ingest("live", IngestRequest::new(&tail)).unwrap();

    // Warm-up: replay the tail (re-timed) until every touched ring is at
    // capacity and the log's scratch buffers reached their high-water
    // sizes — identical batch shape to the counted ingest below.
    let k = SplashConfig::tiny().k;
    let mut replay: Vec<TemporalEdge> = tail.clone();
    let retime = |replay: &mut Vec<TemporalEdge>, t0: f64| {
        for (i, e) in replay.iter_mut().enumerate() {
            e.time = t0 + i as f64;
        }
    };
    for _ in 0..k {
        let t0 = service.model_last_time("live").unwrap();
        retime(&mut replay, t0);
        service.ingest("live", IngestRequest::new(&replay)).unwrap();
    }

    let t0 = service.model_last_time("live").unwrap();
    retime(&mut replay, t0);
    let tel = service.telemetry();
    let (edges_before, wal_before) =
        (tel.edges_ingested.get(), tel.wal_records_appended.get());
    let allocs = count_allocs(|| {
        service.ingest("live", IngestRequest::new(&replay)).unwrap();
    });
    assert_eq!(
        allocs, 0,
        "a WAL-committed steady-state ingest must not allocate \
         ({allocs} calls over {} edges)",
        replay.len()
    );
    // The counted ingest really was WAL-committed and counted.
    assert_eq!(tel.edges_ingested.get() - edges_before, replay.len() as u64);
    assert_eq!(tel.wal_records_appended.get() - wal_before, 1);
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

/// The sharded scatter–gather serving paths must be as allocation-free as
/// the single engine: after warm-up, a routed single-node
/// `try_predict_into` and a scattered `try_predict_batch_into` with a
/// reused output matrix perform **zero** allocator calls — registry of
/// per-shard sub-batches, index maps, per-shard logit blocks and all.
///
/// The counted section is pinned to the serial path
/// (`with_serial_backend`): with threads available the scatter fans out
/// thread-per-shard, and spawning threads allocates by design.
#[test]
fn steady_state_sharded_predict_is_allocation_free() {
    let (base, tail) = trained_predictor();
    let mut sharded = ShardedPredictor::from_predictor(base, 3).unwrap();
    assert!(tail.len() > 20, "fixture too small");
    sharded.try_push_edges(&tail).unwrap();
    let t0 = sharded.last_time();

    // The same query spread as the single-engine test (never-seen nodes
    // included), batched; warm both the routed single-query path and the
    // scatter–gather batch path.
    let mut nodes: Vec<u32> = (0..32u32).map(|i| i * 3 % 40).collect();
    nodes.insert(7, 9_999);
    nodes.insert(21, 9_999);
    let batch = |t_base: f64| -> Vec<PropertyQuery> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| PropertyQuery {
                node: v,
                time: t_base + i as f64,
                label: Label::Class(0),
            })
            .collect()
    };
    let mut out = Vec::new();
    let mut logits = nn::Matrix::default();
    nn::backend::with_serial_backend(|| {
        // Warm-up: several full single-then-batch cycles. Two pools reach
        // their steady state here: the parked-slot pool that the
        // single-query and batch paths *share* (so the alternation, not
        // each path alone, is what must stabilize), and each shard's
        // workspace pool, which grows toward its high-water buffer set
        // over the first few batched forwards rather than in one call.
        for cycle in 0..6 {
            let warm = batch(t0 + 100.0 * cycle as f64);
            for q in &warm {
                sharded.try_predict_into(q.node, q.time, &mut out).unwrap();
            }
            sharded.try_predict_batch_into(&warm, &mut logits).unwrap();
        }

        // Steady state: same mix at later times, zero allocator calls.
        let steady = batch(t0 + 1_000.0);
        let mut sink = 0.0f32;
        let allocs = count_allocs(|| {
            for q in &steady {
                sharded.try_predict_into(q.node, q.time, &mut out).unwrap();
                sink += out[0];
            }
        });
        assert!(sink.is_finite());
        assert_eq!(
            allocs, 0,
            "steady-state sharded try_predict_into must not allocate \
             ({allocs} calls over {} queries)",
            steady.len()
        );

        let steady = batch(t0 + 2_000.0);
        let allocs = count_allocs(|| {
            sharded.try_predict_batch_into(&steady, &mut logits).unwrap();
            sink += logits.row(0)[0];
        });
        assert!(sink.is_finite());
        assert_eq!(
            allocs, 0,
            "steady-state sharded try_predict_batch_into must not allocate \
             ({allocs} calls over {} queries)",
            steady.len()
        );
    });
}

/// The steady-state online continual-learning path — absorb a batch of
/// labeled observations, run a bounded fine-tune round, publish the
/// weights — performs **zero** heap allocations after warm-up: capture
/// recycles replay-buffer slots, packing/forward/backward run through the
/// trainer's workspace, the Adam step goes through the allocation-free
/// visitor, and the publish copies weights into the engine's existing
/// buffers.
///
/// The counted section is pinned to the serial backend like the sharded
/// test (threads would allocate by design under NN_THREADS>1).
#[test]
fn steady_state_fine_tune_is_allocation_free() {
    let dataset = splash::truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let online = OnlineConfig {
        policy: FineTunePolicy::Manual,
        buffer_capacity: 64,
        batch_size: 16,
        steps_per_tune: 4,
        lr: 1e-3,
    };
    let mut service = SplashService::builder(cfg).online(online).build().unwrap();
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = &dataset.stream.edges()[prefix..];
    let report = service.ingest("live", IngestRequest::new(tail)).unwrap();
    let t0 = report.last_time;

    // Class labels only: affinity labels carry a boxed slice whose reuse
    // is covered by `Label::clone_from`, but this dataset is categorical.
    let labels = |t_base: f64| -> Vec<PropertyQuery> {
        (0..32usize)
            .map(|i| PropertyQuery {
                node: (i as u32 * 3) % 40,
                time: t_base + i as f64 * 0.1,
                label: Label::Class(i % 2),
            })
            .collect()
    };

    nn::backend::with_serial_backend(|| {
        // Warm-up: several full absorb → tune → publish cycles (the
        // trainer's workspace pool grows toward its high-water buffer set
        // over the first few batched forwards, like every other pool).
        for cycle in 0..6 {
            let batch = labels(t0 + 100.0 * cycle as f64);
            service.observe_labels("live", &batch).unwrap();
            service.fine_tune("live").unwrap();
        }

        let steady = labels(t0 + 10_000.0);
        let mut sink = 0.0f32;
        let allocs = count_allocs(|| {
            service.observe_labels("live", &steady).unwrap();
            let r = service.fine_tune("live").unwrap();
            sink += r.mean_loss;
        });
        assert!(sink.is_finite());
        assert_eq!(
            allocs, 0,
            "steady-state observe_labels + fine_tune must not allocate \
             ({allocs} calls over {} labels)",
            steady.len()
        );
    });
}

/// Steady-state edge ingestion reuses ring slots and augmenter scratch:
/// once every touched ring is at capacity `k` and the propagated-feature
/// slots exist, pushing further edges does not allocate.
#[test]
fn steady_state_ingest_is_allocation_free() {
    let (mut predictor, tail) = trained_predictor();
    assert!(tail.len() > 40, "fixture too small");
    // Warm-up: fill the rings to capacity `k`, grow the ring table, and
    // create propagated-feature slots for unseen endpoints. A node seen `e`
    // times per pass needs ⌈k/e⌉ passes to saturate its ring, so replay the
    // tail k times — afterwards every touched ring slot exists.
    predictor.try_push_edges(&tail).unwrap();
    let k = SplashConfig::tiny().k;
    let mut replay: Vec<TemporalEdge> = tail.to_vec();
    for _ in 0..k {
        let t0 = predictor.last_time();
        for (i, e) in replay.iter_mut().enumerate() {
            e.time = t0 + i as f64;
        }
        predictor.try_push_edges(&replay).unwrap();
    }

    // Steady state: the same endpoints again, strictly buffer reuse.
    let t0 = predictor.last_time();
    for (i, e) in replay.iter_mut().enumerate() {
        e.time = t0 + i as f64;
    }
    let allocs = count_allocs(|| {
        predictor.try_push_edges(&replay).unwrap();
    });
    assert_eq!(
        allocs, 0,
        "steady-state push_edges must not allocate ({allocs} calls over {} edges)",
        replay.len()
    );
}
