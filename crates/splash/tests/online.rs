//! Online continual learning behind the service: policy behavior and the
//! checkpoint/resume bit-identity contract.
//!
//! The load-bearing test is `resume_after_restart_is_bit_identical…`: a
//! fine-tune → checkpoint → restart → resume deployment must produce
//! exactly the weights and predictions of the run that never restarted —
//! at shard count 1 *and* 3, and sharded must equal unsharded. The
//! `SAVEDOPT` optimizer section plus deterministic tune rounds are what
//! make this hold; any hidden nondeterminism (shuffling, unpersisted
//! optimizer state, shard-dependent capture) breaks it immediately.

use ctdg::{Label, PropertyQuery, TemporalEdge};
use datasets::{synthetic_shift, Dataset};
use splash::{
    seen_end_time, truncate_to_available, FeatureProcess, FineTunePolicy, IngestRequest,
    LateEdgePolicy, OnlineConfig, PredictRequest, SplashConfig, SplashService, SEEN_FRAC,
};

const MODEL: &str = "live";
const NODES: u32 = 40;

fn fixture() -> (Dataset, SplashConfig, Vec<TemporalEdge>, Vec<TemporalEdge>) {
    let dataset = truncate_to_available(&synthetic_shift(NODES, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = &dataset.stream.edges()[prefix..];
    assert!(tail.len() > 40, "fixture too small");
    let mid = tail.len() / 2;
    (dataset.clone(), cfg, tail[..mid].to_vec(), tail[mid..].to_vec())
}

fn online_cfg(policy: FineTunePolicy) -> OnlineConfig {
    OnlineConfig {
        policy,
        buffer_capacity: 64,
        batch_size: 16,
        steps_per_tune: 5,
        lr: 5e-3,
    }
}

fn build_service(cfg: &SplashConfig, shards: usize) -> SplashService {
    SplashService::builder(*cfg)
        .shards(shards)
        .online(online_cfg(FineTunePolicy::Manual))
        .build()
        .unwrap()
}

/// Synthetic ground-truth observations arriving at/after `t0` (labels do
/// not advance the stream clock, so later edge ingest stays valid).
fn labels_at(t0: f64, n: usize) -> Vec<PropertyQuery> {
    (0..n)
        .map(|i| PropertyQuery {
            node: (i as u32 * 7) % NODES,
            time: t0 + i as f64 * 0.25,
            label: Label::Class(i % 2),
        })
        .collect()
}

/// One full deployment: train → ingest phase 1 → labels → fine-tune →
/// (optionally: checkpoint, restart into a fresh service, re-deliver the
/// stream) → ingest phase 2 → labels → fine-tune → probe predictions.
/// Returns the concatenated probe logits plus the trainer's Adam clock.
fn deploy(shards: usize, restart: bool, tag: &str) -> (Vec<f32>, u64) {
    let (dataset, cfg, phase1, phase2) = fixture();
    let mut service = build_service(&cfg, shards);
    service
        .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
        .unwrap();
    service.ingest(MODEL, IngestRequest::new(&phase1)).unwrap();
    let t1 = service.model_last_time(MODEL).unwrap();
    service.observe_labels(MODEL, &labels_at(t1, 24)).unwrap();
    let report = service.fine_tune(MODEL).unwrap();
    assert_eq!(report.steps, 5);
    assert_eq!(report.examples, 24);
    assert!(report.published);

    if restart {
        let path = std::env::temp_dir().join(format!(
            "splash-online-{tag}-{shards}-{}.bin",
            std::process::id()
        ));
        service.save_model(MODEL, &path).unwrap();
        drop(service);
        let mut fresh = build_service(&cfg, shards);
        fresh.load_model(MODEL, &path, &dataset).unwrap();
        std::fs::remove_file(&path).ok();
        for i in 0..shards {
            std::fs::remove_file(splash::persist::shard_file_path(&path, i)).ok();
        }
        // Streaming state is rebuilt from the training prefix; the
        // deployment re-delivers the live stream it already saw.
        fresh.ingest(MODEL, IngestRequest::new(&phase1)).unwrap();
        service = fresh;
    }

    service.ingest(MODEL, IngestRequest::new(&phase2)).unwrap();
    let t2 = service.model_last_time(MODEL).unwrap();
    service.observe_labels(MODEL, &labels_at(t2, 24)).unwrap();
    service.fine_tune(MODEL).unwrap();

    let mut logits = Vec::new();
    for i in 0..12u32 {
        let resp = service
            .predict(MODEL, PredictRequest::new((i * 3) % NODES, t2 + 100.0 + i as f64))
            .unwrap();
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        logits.extend(resp.logits);
    }
    (logits, service.trainer(MODEL).unwrap().steps())
}

/// The acceptance matrix: checkpoint/restart/resume is bit-identical to
/// the uninterrupted run at shard counts 1 and 3, and the sharded
/// deployment is bit-identical to the single-engine one.
#[test]
fn resume_after_restart_is_bit_identical_at_shards_1_and_3() {
    let single = deploy(1, false, "base");
    for shards in [1usize, 3] {
        let uninterrupted = if shards == 1 { single.clone() } else { deploy(shards, false, "base") };
        let resumed = deploy(shards, true, "resume");
        assert_eq!(
            uninterrupted.1, resumed.1,
            "shards={shards}: Adam step clock diverged across the restart"
        );
        assert_eq!(
            uninterrupted.0, resumed.0,
            "shards={shards}: predictions diverged across the restart"
        );
        if shards != 1 {
            assert_eq!(
                single.0, uninterrupted.0,
                "sharded deployment must be bit-identical to the single engine"
            );
        }
    }
}

/// Fine-tuning on real labels actually moves the served model (the whole
/// point), and hot weights only change at publish time.
#[test]
fn fine_tune_updates_served_predictions() {
    let (dataset, cfg, phase1, _) = fixture();
    let mut service = build_service(&cfg, 1);
    service
        .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
        .unwrap();
    service.ingest(MODEL, IngestRequest::new(&phase1)).unwrap();
    let t1 = service.model_last_time(MODEL).unwrap();
    let probe = PredictRequest::new(3, t1 + 500.0);
    let frozen = service.predict(MODEL, probe).unwrap();
    service.observe_labels(MODEL, &labels_at(t1, 24)).unwrap();
    // Labels alone change nothing...
    assert_eq!(service.predict(MODEL, probe).unwrap().logits, frozen.logits);
    // ...fine_tune (which publishes) does.
    let report = service.fine_tune(MODEL).unwrap();
    assert!(report.steps > 0 && report.mean_loss.is_finite());
    assert_ne!(service.predict(MODEL, probe).unwrap().logits, frozen.logits);
}

/// `EveryLabels(n)` fires automatically during label ingest, drains the
/// buffer each round, and shows up in the reports and counters.
#[test]
fn automatic_fine_tune_policy_fires_on_cadence() {
    let (dataset, cfg, phase1, _) = fixture();
    let mut service = SplashService::builder(cfg)
        .online(online_cfg(FineTunePolicy::EveryLabels(10)))
        .build()
        .unwrap();
    service
        .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
        .unwrap();
    service.ingest(MODEL, IngestRequest::new(&phase1)).unwrap();
    let t1 = service.model_last_time(MODEL).unwrap();
    let report = service.observe_labels(MODEL, &labels_at(t1, 25)).unwrap();
    assert_eq!(report.buffered, 25);
    assert_eq!(report.tunes, 2, "25 labels at cadence 10 → 2 automatic rounds");
    assert_eq!(report.steps, 10);
    assert_eq!(service.trainer(MODEL).unwrap().buffered(), 5, "rounds drain the buffer");
    let stats = service.stats();
    assert_eq!(stats.labels_buffered, 25);
    assert_eq!(stats.fine_tunes, 2);
    assert_eq!(stats.fine_tune_steps, 10);
    assert_eq!(stats.publishes, 2);
}

/// Past-time labels follow the service's late policy: batch-atomic
/// rejection under `Error`, drop-and-count under `DropLate`.
#[test]
fn past_labels_follow_the_late_policy() {
    let (dataset, cfg, phase1, _) = fixture();
    for policy in [LateEdgePolicy::Error, LateEdgePolicy::DropLate] {
        let mut service = SplashService::builder(cfg)
            .late_edge_policy(policy)
            .online(online_cfg(FineTunePolicy::Manual))
            .build()
            .unwrap();
        service
            .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
            .unwrap();
        service.ingest(MODEL, IngestRequest::new(&phase1)).unwrap();
        let t1 = service.model_last_time(MODEL).unwrap();
        let mut labels = labels_at(t1, 6);
        labels[3].time = t1 - 50.0; // in the past
        match policy {
            LateEdgePolicy::Error => {
                let err = service.observe_labels(MODEL, &labels).unwrap_err();
                assert!(matches!(err, splash::SplashError::PastQuery { .. }), "{err:?}");
                assert_eq!(service.trainer(MODEL).unwrap().buffered(), 0, "batch-atomic");
            }
            LateEdgePolicy::DropLate => {
                let report = service.observe_labels(MODEL, &labels).unwrap();
                assert_eq!(report.buffered, 5);
                assert_eq!(report.dropped, 1);
                assert_eq!(service.stats().labels_dropped, 1);
            }
        }
    }
}

/// The label-ingest write path honors the same guardrails as the read
/// paths, batch-atomically: a task-mismatched label is `LabelMismatch`,
/// and under strict node checking an unknown node is `UnknownNode` —
/// in both cases nothing from the batch is absorbed.
#[test]
fn label_ingest_validates_batches_atomically() {
    let (dataset, cfg, phase1, _) = fixture();
    let mut service = SplashService::builder(cfg)
        .strict_nodes(true)
        .online(online_cfg(FineTunePolicy::Manual))
        .build()
        .unwrap();
    service
        .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
        .unwrap();
    service.ingest(MODEL, IngestRequest::new(&phase1)).unwrap();
    let t1 = service.model_last_time(MODEL).unwrap();

    // One affinity label hidden inside an otherwise clean batch.
    let mut labels = labels_at(t1, 5);
    labels[4].label = Label::Affinity(Box::new([0.5, 0.5]));
    let err = service.observe_labels(MODEL, &labels).unwrap_err();
    assert!(matches!(err, splash::SplashError::LabelMismatch { .. }), "{err:?}");
    assert_eq!(service.trainer(MODEL).unwrap().buffered(), 0, "batch-atomic");

    // One unknown node inside an otherwise clean batch (strict mode).
    let mut labels = labels_at(t1, 5);
    labels[2].node = 9_999;
    let err = service.observe_labels(MODEL, &labels).unwrap_err();
    assert!(matches!(err, splash::SplashError::UnknownNode { .. }), "{err:?}");
    assert_eq!(service.trainer(MODEL).unwrap().buffered(), 0, "batch-atomic");

    // The clean version of the same batch lands in full.
    assert_eq!(service.observe_labels(MODEL, &labels_at(t1, 5)).unwrap().buffered, 5);
}

/// Continual-learning calls on a service built without `.online(..)`
/// report the typed `OnlineDisabled` error.
#[test]
fn online_calls_without_a_trainer_are_typed_errors() {
    let (dataset, cfg, _, _) = fixture();
    let mut service = SplashService::builder(cfg).build().unwrap();
    service
        .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
        .unwrap();
    let t = service.model_last_time(MODEL).unwrap();
    for err in [
        service.observe_labels(MODEL, &labels_at(t, 2)).unwrap_err(),
        service.fine_tune(MODEL).unwrap_err(),
        service.publish(MODEL).unwrap_err(),
        service.trainer(MODEL).err().unwrap(),
    ] {
        assert!(matches!(err, splash::SplashError::OnlineDisabled { .. }), "{err:?}");
    }
}
