//! Scenario-matrix pins: (1) on the drift regime, the online SPLASH slot
//! strictly beats its bit-identically initialized frozen twin at a fixed
//! seed — continual learning must buy real metric, prequentially, through
//! the service; (2) with timing off, the rendered report artifacts are
//! byte-deterministic across independent runs; (3) the anomaly regime
//! carries an AP cell next to AUC.

use datasets::Task;
use splash::{
    run_matrix, run_scenario, EngineSpec, FineTunePolicy, ModelSpec, OnlineConfig, ScenarioConfig,
    ScenarioSpec, SplashConfig,
};

fn drift_spec(frac: f64) -> ScenarioSpec {
    let dataset = datasets::synthetic_shift(80, 7);
    ScenarioSpec {
        regime: "drift".into(),
        dataset: splash::truncate_to_available(&dataset, frac),
        models: vec![
            ModelSpec { name: "splash".into(), engine: EngineSpec::Splash { online: false } },
            ModelSpec { name: "splash+online".into(), engine: EngineSpec::Splash { online: true } },
        ],
    }
}

fn drift_cfg() -> ScenarioConfig {
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    ScenarioConfig {
        splash: cfg,
        online: OnlineConfig {
            policy: FineTunePolicy::EveryLabels(20),
            buffer_capacity: 128,
            batch_size: 16,
            steps_per_tune: 5,
            lr: 5e-3,
        },
        timing: false,
    }
}

/// Under distribution shift, label feedback through the service must beat
/// the frozen twin that started from the same trained weights.
#[test]
fn online_splash_strictly_beats_frozen_on_drift() {
    let report = run_scenario(&drift_spec(0.5), &drift_cfg()).unwrap();
    assert_eq!(report.task, Task::Classification);
    let frozen = report.cells[0].metric.unwrap();
    let online = report.cells[1].metric.unwrap();
    assert!(!report.cells[0].online && report.cells[1].online);
    assert_eq!(report.cells[0].queries, report.cells[1].queries);
    assert!(
        online > frozen,
        "continual learning must improve on drift: online {online} vs frozen {frozen}"
    );
}

/// Timing off ⇒ report bytes are a pure function of (specs, seed).
#[test]
fn report_artifacts_are_byte_deterministic() {
    let run = || {
        let specs = [drift_spec(0.3)];
        run_matrix(&specs, &drift_cfg()).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_markdown(), b.to_markdown());
    assert!(a.to_json().contains("\"seed\":"));
}

/// The anomaly regime reports AP next to the AUC metric cell.
#[test]
fn anomaly_regime_reports_average_precision() {
    // mooc's anomalous labels cluster late in the stream; 0.4 is the
    // smallest truncation whose test split still contains positives.
    let dataset = datasets::mooc();
    let spec = ScenarioSpec {
        regime: "anomaly".into(),
        dataset: splash::truncate_to_available(&dataset, 0.4),
        models: vec![ModelSpec {
            name: "splash".into(),
            engine: EngineSpec::Splash { online: false },
        }],
    };
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 1;
    let report = run_scenario(&spec, &ScenarioConfig::new(cfg)).unwrap();
    assert_eq!(report.task, Task::Anomaly);
    assert_eq!(report.metric_name, "AUC");
    let cell = &report.cells[0];
    let ap = cell.ap.expect("anomaly regime must carry an AP cell");
    assert!(ap > 0.0 && ap <= 1.0, "AP out of range: {ap}");
    assert!(cell.metric.unwrap() > 0.0);
}
