//! Property-based tests for the SPLASH core invariants.

use ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};
use datasets::{Dataset, Task};
use proptest::prelude::*;
use splash::{capture, encodings, Augmenter, FeatureProcess, InputFeatures, SplashConfig};

fn arb_dataset(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((0..max_nodes, 0..max_nodes, 0.0f64..500.0), 2..max_edges),
        prop::collection::vec((0..max_nodes, 0.0f64..500.0, 0..3usize), 1..40),
    )
        .prop_map(|(mut raw_edges, mut raw_queries)| {
            raw_edges.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            raw_queries.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let edges: Vec<TemporalEdge> = raw_edges
                .into_iter()
                .map(|(s, d, t)| TemporalEdge::plain(s, d, t))
                .collect();
            let num_nodes = edges
                .iter()
                .map(|e| e.src.max(e.dst) + 1)
                .max()
                .unwrap_or(1);
            let queries: Vec<PropertyQuery> = raw_queries
                .into_iter()
                .map(|(v, t, c)| PropertyQuery {
                    node: v % num_nodes,
                    time: t,
                    label: Label::Class(c),
                })
                .collect();
            Dataset {
                name: "prop".into(),
                task: Task::Classification,
                stream: EdgeStream::new_unchecked(edges),
                queries,
                num_classes: 3,
                node_feats: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Propagated features are convex combinations of seen features, so
    /// their magnitude never exceeds the largest seen-feature magnitude.
    #[test]
    fn propagation_stays_in_convex_hull(dataset in arb_dataset(10, 60)) {
        let cfg = SplashConfig::tiny();
        let prefix = dataset.stream.len() / 2;
        let mut aug = Augmenter::new(
            &dataset.stream, prefix, dataset.stream.num_nodes(),
            cfg.feat_dim, &cfg.node2vec, cfg.degree_alpha, 1,
        );
        let mut max_seen = 0.0f32;
        for v in 0..dataset.stream.num_nodes() as u32 {
            if aug.is_seen(v) {
                for x in aug.feature(FeatureProcess::Random, v) {
                    max_seen = max_seen.max(x.abs());
                }
            }
        }
        for e in &dataset.stream.edges()[prefix..] {
            aug.observe(e);
        }
        for v in 0..dataset.stream.num_nodes() as u32 {
            if !aug.is_seen(v) {
                for x in aug.feature(FeatureProcess::Random, v) {
                    prop_assert!(
                        x.abs() <= max_seen + 1e-4,
                        "propagated |{x}| exceeds seen max {max_seen}"
                    );
                }
            }
        }
    }

    /// Capture respects k, produces finite features, and aligns 1:1 with
    /// the dataset's queries.
    #[test]
    fn capture_invariants(dataset in arb_dataset(12, 80)) {
        let cfg = SplashConfig::tiny();
        for mode in [
            InputFeatures::Zero,
            InputFeatures::RawRandom,
            InputFeatures::Process(FeatureProcess::Structural),
            InputFeatures::Joint,
        ] {
            let cap = capture(&dataset, mode, &cfg, 0.5);
            prop_assert_eq!(cap.queries.len(), dataset.queries.len());
            for (cq, dq) in cap.queries.iter().zip(&dataset.queries) {
                prop_assert_eq!(cq.node, dq.node);
                prop_assert!(cq.neighbors.len() <= cfg.k);
                prop_assert!(cq.target_feat.iter().all(|v| v.is_finite()));
                prop_assert!(cq
                    .neighbors
                    .iter()
                    .all(|nb| nb.time <= cq.time && nb.feat.iter().all(|v| v.is_finite())));
            }
        }
    }

    /// Node encodings (Eq. 7) are finite and have the documented width.
    #[test]
    fn encoding_shape_and_finiteness(dataset in arb_dataset(8, 50)) {
        let cfg = SplashConfig::tiny();
        let cap = capture(
            &dataset,
            InputFeatures::Process(FeatureProcess::Random),
            &cfg,
            0.5,
        );
        let enc = encodings(&cap);
        prop_assert_eq!(enc.shape(), (dataset.queries.len(), 2 * cfg.feat_dim));
        prop_assert!(enc.data().iter().all(|v| v.is_finite()));
    }

    /// The augmenter is insensitive to how the stream suffix is chunked:
    /// observing edges one-by-one equals observing them in any grouping.
    #[test]
    fn augmenter_is_incremental(dataset in arb_dataset(8, 40), split in 0usize..40) {
        let cfg = SplashConfig::tiny();
        let prefix = dataset.stream.len() / 3;
        let make = || Augmenter::new(
            &dataset.stream, prefix, dataset.stream.num_nodes(),
            cfg.feat_dim, &cfg.node2vec, cfg.degree_alpha, 2,
        );
        let tail = &dataset.stream.edges()[prefix..];
        let split = split.min(tail.len());
        let mut a = make();
        for e in tail { a.observe(e); }
        let mut b = make();
        for e in &tail[..split] { b.observe(e); }
        for e in &tail[split..] { b.observe(e); }
        for v in 0..dataset.stream.num_nodes() as u32 {
            for p in FeatureProcess::ALL {
                prop_assert_eq!(a.feature(p, v), b.feature(p, v));
            }
        }
    }
}
