//! Property-based tests for the SPLASH core invariants.

use ctdg::{EdgeStream, Label, PropertyQuery, TemporalEdge};
use datasets::{Dataset, Task};
use proptest::prelude::*;
use splash::{
    capture, encodings, Augmenter, FeatureProcess, InputFeatures, ShardedPredictor,
    SplashConfig, SplashError, StreamingPredictor,
};

fn arb_dataset(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((0..max_nodes, 0..max_nodes, 0.0f64..500.0), 2..max_edges),
        prop::collection::vec((0..max_nodes, 0.0f64..500.0, 0..3usize), 1..40),
    )
        .prop_map(|(mut raw_edges, mut raw_queries)| {
            raw_edges.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            raw_queries.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let edges: Vec<TemporalEdge> = raw_edges
                .into_iter()
                .map(|(s, d, t)| TemporalEdge::plain(s, d, t))
                .collect();
            let num_nodes = edges
                .iter()
                .map(|e| e.src.max(e.dst) + 1)
                .max()
                .unwrap_or(1);
            let queries: Vec<PropertyQuery> = raw_queries
                .into_iter()
                .map(|(v, t, c)| PropertyQuery {
                    node: v % num_nodes,
                    time: t,
                    label: Label::Class(c),
                })
                .collect();
            Dataset {
                name: "prop".into(),
                task: Task::Classification,
                stream: EdgeStream::new_unchecked(edges),
                queries,
                num_classes: 3,
                node_feats: None,
            }
        })
}

/// Shard counts every sharding property is checked at (1 is the identity
/// case; 7 exceeds the base fixture's per-shard node density).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// One trained streaming predictor per test thread, cloned per proptest
/// case: training is deterministic and by far the most expensive step, so
/// the property loops only pay for ingest + inference.
fn base_predictor() -> StreamingPredictor {
    thread_local! {
        static BASE: std::cell::OnceCell<StreamingPredictor> =
            const { std::cell::OnceCell::new() };
    }
    BASE.with(|cell| {
        cell.get_or_init(|| {
            let dataset =
                splash::truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
            let mut cfg = SplashConfig::tiny();
            cfg.epochs = 2;
            StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Structural)
        })
        .clone()
    })
}

/// A random live tail: per-edge (src, dst, Δt ≥ 0) offsets accumulated from
/// the predictor's clock, so the stream is always chronologically valid.
/// Node ids run past the training universe to exercise unseen-node
/// propagation across shard boundaries.
fn arb_tail(max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0u32..60, 0u32..60, 0.0f64..3.0), 1..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharding acceptance contract: for every shard count, routed
    /// ingest + scattered `predict_batch`/`predict_into` are byte-for-byte
    /// the single-engine results, on any valid stream.
    #[test]
    fn sharded_matches_unsharded_bitwise(
        raw_tail in arb_tail(60),
        raw_queries in prop::collection::vec((0u32..70, 0.0f64..4.0), 1..25),
        chunk in 1usize..9,
    ) {
        let mut single = base_predictor();
        let mut t = single.last_time();
        let tail: Vec<TemporalEdge> = raw_tail
            .iter()
            .map(|&(s, d, dt)| {
                t += dt;
                TemporalEdge::plain(s, d, t)
            })
            .collect();
        for c in tail.chunks(chunk) {
            single.try_push_edges(c).unwrap();
        }
        let t_end = single.last_time();
        let queries: Vec<PropertyQuery> = raw_queries
            .iter()
            .map(|&(v, dt)| PropertyQuery { node: v, time: t_end + dt, label: Label::Class(0) })
            .collect();
        let expected = single.try_predict_batch(&queries).unwrap();

        for shards in SHARD_COUNTS {
            let mut sharded =
                ShardedPredictor::from_predictor(base_predictor(), shards).unwrap();
            for c in tail.chunks(chunk) {
                sharded.try_push_edges(c).unwrap();
            }
            prop_assert_eq!(sharded.last_time(), t_end);

            // Scattered batch — gathered rows must be the single engine's.
            let got = sharded.try_predict_batch(&queries).unwrap();
            prop_assert_eq!(got.shape(), expected.shape());
            prop_assert_eq!(got.data(), expected.data(), "batch diverged at {} shards", shards);

            // The zero-alloc gather form and the single-query route agree.
            let mut gathered = nn::Matrix::default();
            sharded.try_predict_batch_into(&queries, &mut gathered).unwrap();
            prop_assert_eq!(gathered.data(), expected.data());
            let mut out = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                sharded.try_predict_into(q.node, q.time, &mut out).unwrap();
                prop_assert_eq!(&out[..], expected.row(i), "query {} diverged", i);
            }
        }
    }

    /// Sharded-artifact round-trip under the shared witness: ingest a
    /// random tail at N shards, save the artifact (one shared model file),
    /// reload it at every shard count M (resharding-on-load), replay the
    /// tail, and the scattered batch must be byte-identical to the single
    /// engine — with the global witness having seen each replayed edge
    /// exactly once regardless of M.
    #[test]
    fn sharded_artifact_roundtrips_across_shard_counts(
        raw_tail in arb_tail(40),
        raw_queries in prop::collection::vec((0u32..70, 0.0f64..4.0), 1..15),
        save_at in 0usize..SHARD_COUNTS.len(),
    ) {
        let dataset =
            splash::truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
        let mut single = base_predictor();
        let mut t = single.last_time();
        let tail: Vec<TemporalEdge> = raw_tail
            .iter()
            .map(|&(s, d, dt)| {
                t += dt;
                TemporalEdge::plain(s, d, t)
            })
            .collect();
        single.try_push_edges(&tail).unwrap();
        let t_end = single.last_time();
        let queries: Vec<PropertyQuery> = raw_queries
            .iter()
            .map(|&(v, dt)| PropertyQuery { node: v, time: t_end + dt, label: Label::Class(0) })
            .collect();
        let expected = single.try_predict_batch(&queries).unwrap();

        let n = SHARD_COUNTS[save_at];
        let mut origin = ShardedPredictor::from_predictor(base_predictor(), n).unwrap();
        origin.try_push_edges(&tail).unwrap();
        let path = std::env::temp_dir().join(format!(
            "splash-prop-artifact-{}-{n}.manifest",
            std::process::id()
        ));
        origin.save(&path).unwrap();

        for m in SHARD_COUNTS {
            let mut loaded = ShardedPredictor::try_load(&path, &dataset, Some(m)).unwrap();
            let witnessed_before = loaded.witnessed_edges();
            loaded.try_push_edges(&tail).unwrap();
            prop_assert_eq!(
                loaded.witnessed_edges() - witnessed_before,
                tail.len() as u64,
                "witness must observe each edge exactly once at {} shards",
                m
            );
            let got = loaded.try_predict_batch(&queries).unwrap();
            prop_assert_eq!(
                got.data(),
                expected.data(),
                "artifact saved at {} shards diverged reloaded at {}",
                n, m
            );
        }
        std::fs::remove_file(splash::persist::shard_file_path(&path, 0)).ok();
        std::fs::remove_file(&path).ok();
    }

    /// `DropLate`-shaped streams (some edges stale): every shard shares the
    /// single engine's clock, so per-edge drop decisions — and the state
    /// that survives them — are identical at every shard count.
    #[test]
    fn sharded_drop_decisions_match_unsharded(
        raw_tail in prop::collection::vec((0u32..60, 0u32..60, -2.0f64..2.0), 1..50),
        raw_queries in prop::collection::vec((0u32..70, 0.0f64..4.0), 1..15),
    ) {
        let mut single = base_predictor();
        let mut t = single.last_time();
        let tail: Vec<TemporalEdge> = raw_tail
            .iter()
            .map(|&(s, d, dt)| {
                t += dt; // may go backwards: stale edges to drop
                TemporalEdge::plain(s, d, t)
            })
            .collect();
        let mut dropped = Vec::new();
        for e in &tail {
            match single.try_observe_edge(e) {
                Ok(()) => dropped.push(false),
                Err(SplashError::OutOfOrderEdge { .. }) => dropped.push(true),
                Err(other) => return Err(TestCaseError::Fail(format!("{other}"))),
            }
        }
        let t_end = single.last_time();
        let queries: Vec<PropertyQuery> = raw_queries
            .iter()
            .map(|&(v, dt)| PropertyQuery { node: v, time: t_end + dt, label: Label::Class(0) })
            .collect();
        let expected = single.try_predict_batch(&queries).unwrap();

        for shards in SHARD_COUNTS {
            let mut sharded =
                ShardedPredictor::from_predictor(base_predictor(), shards).unwrap();
            for (e, &was_dropped) in tail.iter().zip(&dropped) {
                let verdict = sharded.try_observe_edge(e);
                prop_assert_eq!(
                    verdict.is_err(),
                    was_dropped,
                    "drop decision diverged at {} shards",
                    shards
                );
            }
            let got = sharded.try_predict_batch(&queries).unwrap();
            prop_assert_eq!(got.data(), expected.data(), "post-drop state diverged at {} shards", shards);
        }
    }

    /// Propagated features are convex combinations of seen features, so
    /// their magnitude never exceeds the largest seen-feature magnitude.
    #[test]
    fn propagation_stays_in_convex_hull(dataset in arb_dataset(10, 60)) {
        let cfg = SplashConfig::tiny();
        let prefix = dataset.stream.len() / 2;
        let mut aug = Augmenter::new(
            &dataset.stream, prefix, dataset.stream.num_nodes(),
            cfg.feat_dim, &cfg.node2vec, cfg.degree_alpha, 1,
        );
        let mut max_seen = 0.0f32;
        for v in 0..dataset.stream.num_nodes() as u32 {
            if aug.is_seen(v) {
                for x in aug.feature(FeatureProcess::Random, v) {
                    max_seen = max_seen.max(x.abs());
                }
            }
        }
        for e in &dataset.stream.edges()[prefix..] {
            aug.observe(e);
        }
        for v in 0..dataset.stream.num_nodes() as u32 {
            if !aug.is_seen(v) {
                for x in aug.feature(FeatureProcess::Random, v) {
                    prop_assert!(
                        x.abs() <= max_seen + 1e-4,
                        "propagated |{x}| exceeds seen max {max_seen}"
                    );
                }
            }
        }
    }

    /// Capture respects k, produces finite features, and aligns 1:1 with
    /// the dataset's queries.
    #[test]
    fn capture_invariants(dataset in arb_dataset(12, 80)) {
        let cfg = SplashConfig::tiny();
        for mode in [
            InputFeatures::Zero,
            InputFeatures::RawRandom,
            InputFeatures::Process(FeatureProcess::Structural),
            InputFeatures::Joint,
        ] {
            let cap = capture(&dataset, mode, &cfg, 0.5);
            prop_assert_eq!(cap.queries.len(), dataset.queries.len());
            for (cq, dq) in cap.queries.iter().zip(&dataset.queries) {
                prop_assert_eq!(cq.node, dq.node);
                prop_assert!(cq.neighbors.len() <= cfg.k);
                prop_assert!(cq.target_feat.iter().all(|v| v.is_finite()));
                prop_assert!(cq
                    .neighbors
                    .iter()
                    .all(|nb| nb.time <= cq.time && nb.feat.iter().all(|v| v.is_finite())));
            }
        }
    }

    /// Node encodings (Eq. 7) are finite and have the documented width.
    #[test]
    fn encoding_shape_and_finiteness(dataset in arb_dataset(8, 50)) {
        let cfg = SplashConfig::tiny();
        let cap = capture(
            &dataset,
            InputFeatures::Process(FeatureProcess::Random),
            &cfg,
            0.5,
        );
        let enc = encodings(&cap);
        prop_assert_eq!(enc.shape(), (dataset.queries.len(), 2 * cfg.feat_dim));
        prop_assert!(enc.data().iter().all(|v| v.is_finite()));
    }

    /// The augmenter is insensitive to how the stream suffix is chunked:
    /// observing edges one-by-one equals observing them in any grouping.
    #[test]
    fn augmenter_is_incremental(dataset in arb_dataset(8, 40), split in 0usize..40) {
        let cfg = SplashConfig::tiny();
        let prefix = dataset.stream.len() / 3;
        let make = || Augmenter::new(
            &dataset.stream, prefix, dataset.stream.num_nodes(),
            cfg.feat_dim, &cfg.node2vec, cfg.degree_alpha, 2,
        );
        let tail = &dataset.stream.edges()[prefix..];
        let split = split.min(tail.len());
        let mut a = make();
        for e in tail { a.observe(e); }
        let mut b = make();
        for e in &tail[..split] { b.observe(e); }
        for e in &tail[split..] { b.observe(e); }
        for v in 0..dataset.stream.num_nodes() as u32 {
            for p in FeatureProcess::ALL {
                prop_assert_eq!(a.feature(p, v), b.feature(p, v));
            }
        }
    }
}
