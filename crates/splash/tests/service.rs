//! Behavioral contract of the `SplashService` façade: typed errors leave
//! the process (and the model state) intact, the late-edge policy matrix
//! behaves as documented, hot-swapped models restore bit-for-bit, and the
//! façade never changes a prediction relative to the streaming core.

use ctdg::{Label, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use splash::{
    seen_end_time, truncate_to_available, FeatureProcess, IngestRequest, LateEdgePolicy,
    PredictRequest, PredictResponse, SplashConfig, SplashError, SplashService,
    StreamingPredictor, SEEN_FRAC,
};

fn fixture() -> (Dataset, SplashConfig, Vec<TemporalEdge>) {
    let dataset = truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    assert!(tail.len() > 20, "fixture too small");
    (dataset, cfg, tail)
}

fn service_with(
    dataset: &Dataset,
    cfg: &SplashConfig,
    policy: LateEdgePolicy,
) -> SplashService {
    let mut service = SplashService::builder(*cfg)
        .late_edge_policy(policy)
        .build()
        .unwrap();
    service
        .train_model_with_process("live", dataset, FeatureProcess::Random)
        .unwrap();
    service
}

/// Under the `Error` policy a bad batch is rejected wholesale, the model
/// state stays exactly as it was, and the service keeps serving — the
/// process-abort the old `assert!` surface caused is gone.
#[test]
fn error_policy_rejects_batch_and_service_survives() {
    let (dataset, cfg, tail) = fixture();
    let mut service = service_with(&dataset, &cfg, LateEdgePolicy::Error);
    let report = service.ingest("live", IngestRequest::new(&tail)).unwrap();
    assert_eq!(report.ingested, tail.len());
    assert_eq!(report.dropped, 0);

    let t0 = report.last_time;
    let before = service.predict("live", PredictRequest::new(3, t0 + 1.0)).unwrap();

    // A batch that goes backwards in time mid-way.
    let bad = [
        TemporalEdge::plain(0, 1, t0 + 2.0),
        TemporalEdge::plain(1, 2, t0 - 100.0),
    ];
    let err = service.ingest("live", IngestRequest::new(&bad)).unwrap_err();
    assert!(matches!(err, SplashError::OutOfOrderEdge { .. }), "{err:?}");

    // Nothing was applied: the same query answers identically, and a
    // corrected batch ingests fine.
    let after = service.predict("live", PredictRequest::new(3, t0 + 1.0)).unwrap();
    assert_eq!(before.logits, after.logits, "rejected batch must not mutate state");
    let good = [
        TemporalEdge::plain(0, 1, t0 + 2.0),
        TemporalEdge::plain(1, 2, t0 + 3.0),
    ];
    let report = service.ingest("live", IngestRequest::new(&good)).unwrap();
    assert_eq!(report.ingested, 2);

    let stats = service.stats();
    assert_eq!(stats.edges_ingested, (tail.len() + 2) as u64);
    assert_eq!(stats.edges_dropped, 0);
    assert_eq!(stats.queries_served, 2);
}

/// Under `DropLate`, late edges are counted and skipped, and the model is
/// left exactly as if it had consumed the chronologically filtered
/// stream — predictions are bit-identical to a model fed the clean
/// stream.
#[test]
fn drop_late_matches_filtered_stream() {
    let (dataset, cfg, tail) = fixture();
    let mut messy_service = service_with(&dataset, &cfg, LateEdgePolicy::DropLate);
    let mut clean_service = service_with(&dataset, &cfg, LateEdgePolicy::Error);

    // Build a messy batch: the real tail with stale duplicates spliced in
    // (each re-dated before its predecessor, so it must be dropped).
    let mut messy = Vec::new();
    let mut expect_dropped = 0usize;
    for (i, edge) in tail.iter().enumerate() {
        messy.push(edge.clone());
        if i % 5 == 2 {
            let mut stale = edge.clone();
            stale.time = edge.time - 1e6;
            messy.push(stale);
            expect_dropped += 1;
        }
    }

    let report = messy_service.ingest("live", IngestRequest::new(&messy)).unwrap();
    assert_eq!(report.dropped, expect_dropped);
    assert_eq!(report.ingested, tail.len());
    let clean_report = clean_service.ingest("live", IngestRequest::new(&tail)).unwrap();
    assert_eq!(report.last_time, clean_report.last_time);

    // The two models must now be indistinguishable, bit for bit.
    let t0 = report.last_time;
    let mut messy_resp = PredictResponse::default();
    let mut clean_resp = PredictResponse::default();
    for node in 0..40u32 {
        let req = PredictRequest::new(node, t0 + node as f64);
        messy_service.predict_into("live", req, &mut messy_resp).unwrap();
        clean_service.predict_into("live", req, &mut clean_resp).unwrap();
        assert_eq!(
            messy_resp.logits, clean_resp.logits,
            "node {node}: DropLate diverged from the filtered stream"
        );
    }
    assert_eq!(messy_service.stats().edges_dropped, expect_dropped as u64);
}

/// The façade adds policy and accounting, never arithmetic: single and
/// batched predictions through the service are bit-identical to the
/// underlying `StreamingPredictor`.
#[test]
fn service_predictions_match_core_bit_for_bit() {
    let (dataset, cfg, tail) = fixture();
    let mut service = service_with(&dataset, &cfg, LateEdgePolicy::Error);
    let mut core = StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);

    service.ingest("live", IngestRequest::new(&tail)).unwrap();
    core.try_push_edges(&tail).unwrap();

    let t0 = core.last_time();
    let queries: Vec<PropertyQuery> = (0..30u32)
        .map(|i| PropertyQuery {
            node: (i * 7) % 45, // includes ids past the training universe
            time: t0 + i as f64,
            label: Label::Class(0),
        })
        .collect();

    let mut resp = PredictResponse::default();
    for q in &queries {
        service.predict_into("live", PredictRequest::new(q.node, q.time), &mut resp).unwrap();
        assert_eq!(
            resp.logits,
            core.try_predict(q.node, q.time).unwrap(),
            "node {} diverged",
            q.node
        );
    }
    let batched = service.predict_batch("live", &queries).unwrap();
    let expected = core.try_predict_batch(&queries).unwrap();
    assert_eq!(batched.data(), expected.data(), "batched façade path diverged");
}

/// Models hot-swap by name: a persisted artifact loaded over a live slot
/// replaces it, and replaying the same stream reproduces the original
/// model's predictions exactly.
#[test]
fn hot_swap_restores_persisted_model_bitwise() {
    let (dataset, cfg, tail) = fixture();
    let mut service = service_with(&dataset, &cfg, LateEdgePolicy::Error);
    let path = std::env::temp_dir()
        .join(format!("splash-service-swap-{}.bin", std::process::id()));

    // Persist the freshly trained model, then serve the tail and remember
    // an answer.
    service.save_model("live", &path).unwrap();
    let report = service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t_q = report.last_time + 1.0;
    let original = service.predict("live", PredictRequest::new(5, t_q)).unwrap();

    // Hot-swap: retrain the slot with a *different* augmentation process.
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Positional)
        .unwrap();
    service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let swapped = service.predict("live", PredictRequest::new(5, t_q)).unwrap();
    assert_ne!(
        original.logits, swapped.logits,
        "a different process must serve different logits"
    );

    // Hot-swap back from the artifact and replay: bit-identical to the
    // original model.
    service.load_model("live", &path, &dataset).unwrap();
    std::fs::remove_file(&path).ok();
    service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let restored = service.predict("live", PredictRequest::new(5, t_q)).unwrap();
    assert_eq!(original.logits, restored.logits, "restored model must predict identically");
    assert_eq!(service.model_names().collect::<Vec<_>>(), vec!["live"]);
}

/// `strict_nodes` turns out-of-universe queries into `UnknownNode`; the
/// default (lenient) service serves them from propagated features.
#[test]
fn strict_nodes_rejects_out_of_universe_queries() {
    let (dataset, cfg, tail) = fixture();
    let mut strict = SplashService::builder(cfg).strict_nodes(true).build().unwrap();
    strict
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let report = strict.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t0 = report.last_time;

    let known = strict.model("live").unwrap().known_nodes();
    let err = strict
        .predict("live", PredictRequest::new(known as u32 + 10, t0 + 1.0))
        .unwrap_err();
    assert!(matches!(err, SplashError::UnknownNode { .. }), "{err:?}");
    let err = strict
        .predict_batch(
            "live",
            &[PropertyQuery { node: known as u32, time: t0 + 1.0, label: Label::Class(0) }],
        )
        .unwrap_err();
    assert!(matches!(err, SplashError::UnknownNode { .. }), "{err:?}");
    strict.predict("live", PredictRequest::new(0, t0 + 1.0)).unwrap();

    let lenient = service_with(&dataset, &cfg, LateEdgePolicy::Error);
    let resp = lenient
        .predict("live", PredictRequest::new(1_000_000, lenient.model("live").unwrap().last_time()))
        .unwrap();
    assert!(resp.logits.iter().all(|v| v.is_finite()));
}

/// A query about the past comes back as a typed error and the service
/// keeps answering valid queries afterwards.
#[test]
fn past_query_is_typed_and_survivable() {
    let (dataset, cfg, tail) = fixture();
    let mut service = service_with(&dataset, &cfg, LateEdgePolicy::Error);
    let report = service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t0 = report.last_time;

    let err = service.predict("live", PredictRequest::new(0, t0 - 50.0)).unwrap_err();
    assert!(matches!(err, SplashError::PastQuery { .. }), "{err:?}");
    let resp = service.predict("live", PredictRequest::new(0, t0 + 1.0)).unwrap();
    assert_eq!(resp.logits.len(), dataset.num_classes);
    assert_eq!(resp.top_class().unwrap(), splash::task::argmax(&resp.logits));
    // The failed query was not counted as served.
    assert_eq!(service.stats().queries_served, 1);
}

/// A per-request policy override beats the service-wide policy.
#[test]
fn per_request_policy_override() {
    let (dataset, cfg, tail) = fixture();
    let mut service = service_with(&dataset, &cfg, LateEdgePolicy::Error);
    service.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t0 = service.model("live").unwrap().last_time();

    let mixed = [
        TemporalEdge::plain(0, 1, t0 + 1.0),
        TemporalEdge::plain(1, 2, t0 - 1e6), // late
        TemporalEdge::plain(2, 3, t0 + 2.0),
    ];
    let report = service
        .ingest(
            "live",
            IngestRequest::new(&mixed).with_policy(LateEdgePolicy::DropLate),
        )
        .unwrap();
    assert_eq!((report.ingested, report.dropped), (2, 1));
}
