//! Behavioral contract of the sharding subsystem: sharded artifacts
//! round-trip through the manifest at any shard count, corruption is
//! typed, the service façade serves sharded engines bit-identically to
//! single engines, and the late-edge policy matrix holds under sharding.

use ctdg::{Label, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use splash::{
    load_manifest, seen_end_time, truncate_to_available, FeatureProcess, IngestRequest,
    LateEdgePolicy, PredictRequest, PredictResponse, ShardedPredictor, SplashConfig,
    SplashError, SplashService, StreamingPredictor, SEEN_FRAC,
};

fn fixture() -> (Dataset, SplashConfig, Vec<TemporalEdge>) {
    let dataset = truncate_to_available(&datasets::synthetic_shift(40, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    assert!(tail.len() > 20, "fixture too small");
    (dataset, cfg, tail)
}

fn spread_queries(t0: f64, n_nodes: u32) -> Vec<PropertyQuery> {
    (0..32u32)
        .map(|i| PropertyQuery {
            node: (i * 7) % (n_nodes + 12), // includes never-seen ids
            time: t0 + i as f64,
            label: Label::Class(0),
        })
        .collect()
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("splash-shard-{tag}-{}.bin", std::process::id()))
}

/// A model saved at N shards loads and serves identically at M shards —
/// for M below, equal to, and above N — and identically to the unsharded
/// engine. This is the persistence half of the bit-identity acceptance
/// contract.
#[test]
fn sharded_artifact_reshards_on_load_bitwise() {
    let (dataset, cfg, tail) = fixture();
    let mut single =
        StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Positional);
    let mut sharded = ShardedPredictor::from_predictor(single.clone(), 3).unwrap();

    let path = tmp("reshard");
    sharded.save(&path).unwrap();

    single.try_push_edges(&tail).unwrap();
    let t0 = single.last_time();
    let queries = spread_queries(t0, dataset.stream.num_nodes() as u32);
    let expected = single.try_predict_batch(&queries).unwrap();

    for m in [1usize, 2, 3, 7] {
        let mut restored = ShardedPredictor::try_load(&path, &dataset, Some(m)).unwrap();
        assert_eq!(restored.num_shards(), m);
        restored.try_push_edges(&tail).unwrap();
        let got = restored.try_predict_batch(&queries).unwrap();
        assert_eq!(
            got.data(),
            expected.data(),
            "model saved at 3 shards diverged when served at {m}"
        );
    }
    // `None` keeps the artifact's saved count.
    let restored = ShardedPredictor::try_load(&path, &dataset, None).unwrap();
    assert_eq!(restored.num_shards(), 3);

    // The model bytes are stored once: a v2 manifest records the shard
    // count as data and names exactly one model file.
    let manifest = load_manifest(&path).unwrap();
    assert_eq!(manifest.shards, 3);
    assert_eq!(manifest.files.len(), 1);
    std::fs::remove_file(splash::persist::shard_file_path(&path, 0)).ok();
    std::fs::remove_file(&path).ok();
}

/// The shared model file of a sharded artifact is a complete, standalone
/// model file (shards share weights, stored once; state is rebuilt on
/// load).
#[test]
fn shared_model_file_is_independently_loadable() {
    let (dataset, cfg, tail) = fixture();
    let mut sharded =
        ShardedPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random, 2).unwrap();
    let path = tmp("standalone");
    sharded.save(&path).unwrap();

    sharded.try_push_edges(&tail).unwrap();
    let t0 = sharded.last_time();
    let queries = spread_queries(t0, dataset.stream.num_nodes() as u32);
    let expected = sharded.try_predict_batch(&queries).unwrap();

    let shard_file = splash::persist::shard_file_path(&path, 0);
    let saved = splash::load_model(&shard_file).unwrap();
    let mut solo = StreamingPredictor::try_from_saved(saved, &dataset).unwrap();
    solo.try_push_edges(&tail).unwrap();
    let got = solo.try_predict_batch(&queries).unwrap();
    assert_eq!(got.data(), expected.data(), "shared model file diverged");
    std::fs::remove_file(&shard_file).ok();
    std::fs::remove_file(&path).ok();
}

/// Manifest damage is typed: bad magic / truncation / checksum mismatch /
/// missing shard file load as `CorruptModel`, a foreign format revision as
/// `PersistVersionMismatch` — never a panic, never a half-built engine.
#[test]
fn corrupt_sharded_artifacts_are_typed() {
    let (dataset, cfg, _) = fixture();
    let mut sharded =
        ShardedPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random, 2).unwrap();
    let path = tmp("corrupt");
    sharded.save(&path).unwrap();
    let manifest_bytes = std::fs::read(&path).unwrap();

    // Truncations anywhere inside the manifest body.
    for keep in [9usize, 13, manifest_bytes.len() - 1] {
        std::fs::write(&path, &manifest_bytes[..keep]).unwrap();
        let err = ShardedPredictor::try_load(&path, &dataset, None).unwrap_err();
        assert!(
            matches!(err, SplashError::CorruptModel { .. }),
            "truncation to {keep} bytes: {err:?}"
        );
    }

    // A foreign format revision reports the found/supported pair.
    let mut versioned = manifest_bytes.clone();
    versioned[8..12].copy_from_slice(&42u32.to_le_bytes());
    std::fs::write(&path, &versioned).unwrap();
    match ShardedPredictor::try_load(&path, &dataset, None).unwrap_err() {
        SplashError::PersistVersionMismatch { found, supported } => {
            assert_eq!(found, 42);
            assert_eq!(supported, 2);
        }
        other => panic!("expected PersistVersionMismatch, got {other:?}"),
    }

    // A tampered shard file fails its manifest checksum, by name.
    std::fs::write(&path, &manifest_bytes).unwrap();
    let shard0 = splash::persist::shard_file_path(&path, 0);
    let mut shard_bytes = std::fs::read(&shard0).unwrap();
    let mid = shard_bytes.len() / 2;
    shard_bytes[mid] ^= 0xFF;
    std::fs::write(&shard0, &shard_bytes).unwrap();
    let err = ShardedPredictor::try_load(&path, &dataset, None).unwrap_err();
    match &err {
        SplashError::CorruptModel { what } => {
            assert!(what.contains("checksum"), "{what}");
            assert!(what.contains(".shard0"), "{what}");
        }
        other => panic!("expected CorruptModel, got {other:?}"),
    }

    // A missing shard file is named too.
    std::fs::remove_file(&shard0).unwrap();
    let err = ShardedPredictor::try_load(&path, &dataset, None).unwrap_err();
    assert!(
        matches!(&err, SplashError::CorruptModel { what } if what.contains("missing")),
        "{err:?}"
    );

    std::fs::remove_file(splash::persist::shard_file_path(&path, 1)).ok();
    std::fs::remove_file(&path).ok();
}

/// The service façade over a sharded engine: ingest/predict/batch are
/// bit-identical to a single-engine service, the engine accessors are
/// typed, and the stats counters see every shard.
#[test]
fn sharded_service_matches_single_service_bitwise() {
    let (dataset, cfg, tail) = fixture();
    let mut single = SplashService::builder(cfg).build().unwrap();
    single
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let mut sharded = SplashService::builder(cfg).shards(3).build().unwrap();
    sharded
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();

    let a = single.ingest("live", IngestRequest::new(&tail)).unwrap();
    let b = sharded.ingest("live", IngestRequest::new(&tail)).unwrap();
    assert_eq!(a, b, "ingest reports diverged");

    let t0 = b.last_time;
    let queries = spread_queries(t0, dataset.stream.num_nodes() as u32);
    let mut resp_a = PredictResponse::default();
    let mut resp_b = PredictResponse::default();
    for q in &queries {
        let req = PredictRequest::new(q.node, q.time);
        single.predict_into("live", req, &mut resp_a).unwrap();
        sharded.predict_into("live", req, &mut resp_b).unwrap();
        assert_eq!(resp_a.logits, resp_b.logits, "node {} diverged", q.node);
    }
    let batch_a = single.predict_batch("live", &queries).unwrap();
    let batch_b = sharded.predict_batch("live", &queries).unwrap();
    assert_eq!(batch_a.data(), batch_b.data(), "batched path diverged");
    let mut batch_c = nn::Matrix::default();
    sharded.predict_batch_into("live", &queries, &mut batch_c).unwrap();
    assert_eq!(batch_c.data(), batch_a.data(), "scatter-gather path diverged");

    // Engine accessors are typed per engine form.
    assert!(single.model("live").is_ok());
    assert!(matches!(
        single.sharded_model("live").unwrap_err(),
        SplashError::ShardedModel { shards: 1, .. }
    ));
    assert!(matches!(
        sharded.model("live").unwrap_err(),
        SplashError::ShardedModel { shards: 3, .. }
    ));
    let engine = sharded.sharded_model("live").unwrap();
    assert_eq!(engine.num_shards(), 3);
    assert_eq!(single.model_last_time("live").unwrap(), t0);
    assert_eq!(sharded.model_last_time("live").unwrap(), t0);

    // Per-shard counters: every edge lands on 1–2 owner shards, every
    // query on exactly one; the witness watches each edge exactly once,
    // globally (not per shard).
    let stats = sharded.shard_stats("live").unwrap();
    assert_eq!(stats.len(), 3);
    let owned: u64 = stats.iter().map(|s| s.owned_edges).sum();
    assert!(owned >= tail.len() as u64 && owned <= 2 * tail.len() as u64, "{owned}");
    let served: u64 = stats.iter().map(|s| s.queries_served).sum();
    // predict_into + predict_batch + predict_batch_into passes above.
    assert_eq!(served, 3 * queries.len() as u64);
    assert!(single.shard_stats("live").unwrap().is_empty());

    // Service-level counters count shard engines and the global witness.
    assert_eq!(sharded.stats().shards, 3);
    assert_eq!(single.stats().shards, 1);
    assert_eq!(sharded.stats().edges_witnessed, tail.len() as u64);
    assert_eq!(single.stats().edges_witnessed, 0);
    let rendered = sharded.stats().to_string();
    assert!(rendered.contains("shard engines  : 3"), "{rendered}");
    assert!(rendered.contains(&format!("edges witnessed: {}", tail.len())), "{rendered}");
    assert!(rendered.contains("edges ingested"), "{rendered}");
}

/// Save/load through the service registry, across engine forms: a sharded
/// slot writes a manifest artifact that hot-swaps back bit-identically
/// into services configured with *different* shard counts (including 1),
/// and a single-file artifact loads into a sharded service.
#[test]
fn service_registry_roundtrips_sharded_artifacts() {
    let (dataset, cfg, tail) = fixture();
    let mut origin = SplashService::builder(cfg).shards(3).build().unwrap();
    origin
        .train_model_with_process("live", &dataset, FeatureProcess::Positional)
        .unwrap();
    let path = tmp("svc");
    origin.save_model("live", &path).unwrap();
    origin.ingest("live", IngestRequest::new(&tail)).unwrap();
    let t_q = origin.model_last_time("live").unwrap() + 1.0;
    let expected = origin.predict("live", PredictRequest::new(5, t_q)).unwrap();

    for shards in [1usize, 2, 5] {
        let mut svc = SplashService::builder(cfg).shards(shards).build().unwrap();
        svc.load_model("serving", &path, &dataset).unwrap();
        svc.ingest("serving", IngestRequest::new(&tail)).unwrap();
        let got = svc.predict("serving", PredictRequest::new(5, t_q)).unwrap();
        assert_eq!(expected.logits, got.logits, "diverged at {shards} shards");
        assert_eq!(svc.stats().shards, shards as u64);
    }

    // Single-file artifact → sharded service.
    let single_path = tmp("svc-single");
    let mut single_svc = SplashService::builder(cfg).build().unwrap();
    single_svc
        .train_model_with_process("live", &dataset, FeatureProcess::Positional)
        .unwrap();
    single_svc.save_model("live", &single_path).unwrap();
    let mut svc = SplashService::builder(cfg).shards(4).build().unwrap();
    svc.load_model("serving", &single_path, &dataset).unwrap();
    svc.ingest("serving", IngestRequest::new(&tail)).unwrap();
    let got = svc.predict("serving", PredictRequest::new(5, t_q)).unwrap();
    assert_eq!(expected.logits, got.logits, "single-file artifact diverged sharded");

    for i in 0..3 {
        std::fs::remove_file(splash::persist::shard_file_path(&path, i)).ok();
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&single_path).ok();
}

/// The `DropLate` policy under sharding: a messy batch leaves a 3-shard
/// service exactly where the chronologically filtered stream leaves a
/// single-engine service.
#[test]
fn sharded_drop_late_matches_filtered_stream() {
    let (dataset, cfg, tail) = fixture();
    let mut messy = SplashService::builder(cfg)
        .late_edge_policy(LateEdgePolicy::DropLate)
        .shards(3)
        .build()
        .unwrap();
    messy
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let mut clean = SplashService::builder(cfg).build().unwrap();
    clean
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();

    let mut batch = Vec::new();
    let mut expect_dropped = 0usize;
    for (i, edge) in tail.iter().enumerate() {
        batch.push(edge.clone());
        if i % 4 == 1 {
            let mut stale = edge.clone();
            stale.time = edge.time - 1e6;
            batch.push(stale);
            expect_dropped += 1;
        }
    }
    let report = messy.ingest("live", IngestRequest::new(&batch)).unwrap();
    assert_eq!(report.dropped, expect_dropped);
    assert_eq!(report.ingested, tail.len());
    clean.ingest("live", IngestRequest::new(&tail)).unwrap();

    let t0 = report.last_time;
    let mut resp_m = PredictResponse::default();
    let mut resp_c = PredictResponse::default();
    for node in 0..45u32 {
        let req = PredictRequest::new(node, t0 + node as f64);
        messy.predict_into("live", req, &mut resp_m).unwrap();
        clean.predict_into("live", req, &mut resp_c).unwrap();
        assert_eq!(resp_m.logits, resp_c.logits, "node {node} diverged");
    }
}

/// Engine-level edge cases: empty batches are no-ops with matching
/// shapes, a rejected batch leaves every shard untouched (atomicity), and
/// a zero shard count is a typed config error at the service builder.
#[test]
fn sharded_edge_cases_are_typed_and_atomic() {
    let (dataset, cfg, tail) = fixture();
    let mut sharded =
        ShardedPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random, 3).unwrap();
    sharded.try_push_edges(&[]).unwrap();
    assert_eq!(sharded.try_predict_batch(&[]).unwrap().shape(), (0, 0));

    sharded.try_push_edges(&tail).unwrap();
    let t0 = sharded.last_time();
    let before = sharded.try_predict(3, t0 + 1.0).unwrap();

    // A batch that goes backwards mid-way is rejected atomically.
    let bad = [
        TemporalEdge::plain(0, 1, t0 + 2.0),
        TemporalEdge::plain(1, 2, t0 - 100.0),
    ];
    let err = sharded.try_push_edges(&bad).unwrap_err();
    assert!(matches!(err, SplashError::OutOfOrderEdge { .. }), "{err:?}");
    assert_eq!(sharded.last_time(), t0, "clock must not advance on a rejected batch");
    assert_eq!(
        before,
        sharded.try_predict(3, t0 + 1.0).unwrap(),
        "rejected batch must not mutate any shard"
    );

    // A past-time query in a batch rejects the whole batch.
    let err = sharded
        .try_predict_batch(&[
            PropertyQuery { node: 0, time: t0 + 1.0, label: Label::Class(0) },
            PropertyQuery { node: 1, time: t0 - 50.0, label: Label::Class(0) },
        ])
        .unwrap_err();
    assert!(matches!(err, SplashError::PastQuery { .. }), "{err:?}");

    let err = SplashService::builder(cfg).shards(0).build().unwrap_err();
    assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
}
