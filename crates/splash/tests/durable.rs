//! Crash-injection durability harness: the PR-7 acceptance matrix.
//!
//! The load-bearing test family is `crash_at_every_traced_operation…`: a
//! durable deployment is killed — via the [`FaultPlan`] seam — at every
//! traced durable file operation (snapshot temp-file writes, their
//! renames, WAL appends, the `CURRENT` commit), at several byte offsets
//! per operation, and restarted. For **every** crash point, the restarted
//! process must end bit-identical (probe logits *and* streamed metric) to
//! a process that never crashed, at shard counts 1 and 3. A companion
//! test walks **every byte** of one WAL append record.
//!
//! The recovery contract per crash: the restored state equals the
//! never-crashed run after either `acked` or `acked + 1` requests, where
//! `acked` counts acknowledged requests — the `+ 1` case is a record that
//! became durable right before the crash (e.g. the append succeeded and
//! the threshold snapshot died), which a real client would retry or
//! reconcile. The harness detects the resume point from the persisted
//! counters, replays the remaining requests, and compares the end state.
//!
//! Alongside: WAL byte-flip/truncation fuzzing (typed error or clean
//! prefix, never a panic), the `CheckpointPolicy` contract for unflushed
//! replay buffers, and a proptest that snapshot→restore at a random cut
//! equals the never-snapshotted run.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use ctdg::{Label, PropertyQuery, TemporalEdge};
use datasets::{synthetic_shift, Dataset};
use proptest::prelude::*;
use splash::{
    seen_end_time, truncate_to_available, CheckpointPolicy, DurabilityConfig, FaultPlan,
    FeatureProcess, FineTunePolicy, IngestRequest, OnlineConfig, PredictRequest, SplashConfig,
    SplashError, SplashService, SEEN_FRAC,
};

const MODEL: &str = "live";
const NODES: u32 = 40;
/// Small threshold so the op sequence crosses several automatic
/// (WAL-rotation) checkpoints — their writes are crash points too.
const EVERY: u64 = 2;

/// One mutating request of the scripted deployment. The script is fixed
/// data so the clean run, every crash trial, and the reference replay all
/// issue byte-identical requests.
#[derive(Clone)]
enum Op {
    Ingest(Vec<TemporalEdge>),
    Labels(Vec<PropertyQuery>),
    FineTune,
    Publish,
}

struct Fixture {
    dataset: Dataset,
    cfg: SplashConfig,
    ops: Vec<Op>,
    /// Strictly after every edge, so probes are valid at any op prefix.
    probe_time: f64,
}

fn labels_at(t0: f64, n: usize) -> Vec<PropertyQuery> {
    (0..n)
        .map(|i| PropertyQuery {
            node: (i as u32 * 7) % NODES,
            time: t0 + i as f64 * 0.25,
            label: Label::Class(i % 2),
        })
        .collect()
}

fn fixture() -> Fixture {
    let dataset = truncate_to_available(&synthetic_shift(NODES, 6), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = &dataset.stream.edges()[prefix..];
    assert!(tail.len() > 40, "fixture too small");
    let third = tail.len() / 3;
    let (a, b, c) = (&tail[..third], &tail[third..2 * third], &tail[2 * third..]);
    let t_a = a.last().expect("non-empty").time;
    let t_b = b.last().expect("non-empty").time;
    let probe_time = tail.last().expect("non-empty").time + 100.0;
    let ops = vec![
        Op::Ingest(a.to_vec()),
        Op::Labels(labels_at(t_a, 24)),
        Op::FineTune,
        Op::Ingest(b.to_vec()),
        Op::Labels(labels_at(t_b, 10)),
        Op::Publish,
        Op::Ingest(c.to_vec()),
    ];
    Fixture { dataset, cfg, ops, probe_time }
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        policy: FineTunePolicy::Manual,
        buffer_capacity: 64,
        batch_size: 16,
        steps_per_tune: 5,
        lr: 5e-3,
    }
}

fn build_service(cfg: &SplashConfig, shards: usize, online: bool) -> SplashService {
    let mut builder = SplashService::builder(*cfg).shards(shards);
    if online {
        builder = builder.online(online_cfg());
    }
    builder.build().unwrap()
}

/// One trained artifact shared by every trial: training is deterministic
/// and by far the most expensive step, so the crash matrix only pays for
/// load + serve per trial.
fn model_file() -> &'static Path {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let fx = fixture();
        let mut service = build_service(&fx.cfg, 1, true);
        service
            .train_model_with_process(MODEL, &fx.dataset, FeatureProcess::Random)
            .unwrap();
        let path = std::env::temp_dir()
            .join(format!("splash-durable-model-{}.bin", std::process::id()));
        service.save_model(MODEL, &path).unwrap();
        path
    })
}

fn loaded_service(fx: &Fixture, shards: usize, online: bool) -> SplashService {
    let mut service = build_service(&fx.cfg, shards, online);
    service.load_model(MODEL, model_file(), &fx.dataset).unwrap();
    service
}

fn apply_op(service: &mut SplashService, op: &Op) -> Result<(), SplashError> {
    match op {
        Op::Ingest(edges) => service.ingest(MODEL, IngestRequest::new(edges)).map(|_| ()),
        Op::Labels(labels) => service.observe_labels(MODEL, labels).map(|_| ()),
        Op::FineTune => service.fine_tune(MODEL).map(|_| ()),
        Op::Publish => service.publish(MODEL).map(|_| ()),
    }
}

/// The durable slice of the service counters — exactly what a checkpoint
/// persists, and (because every op strictly grows it) a fingerprint of
/// how many ops a recovered state contains.
fn persisted_counters(service: &SplashService) -> [u64; 7] {
    let s = service.stats();
    [
        s.edges_ingested,
        s.edges_dropped,
        s.labels_buffered,
        s.labels_dropped,
        s.fine_tunes,
        s.fine_tune_steps,
        s.publishes,
    ]
}

fn probe(service: &mut SplashService, t: f64) -> Vec<f32> {
    let mut logits = Vec::new();
    for i in 0..12u32 {
        let resp = service
            .predict(MODEL, PredictRequest::new((i * 3) % NODES, t + i as f64))
            .unwrap();
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        logits.extend(resp.logits);
    }
    logits
}

/// The streamed evaluation metric over the probe set (the quantity the
/// operator actually reads), computed from the probe logits.
fn probe_metric(dataset: &Dataset, logits: &[f32]) -> f64 {
    let labels: Vec<Label> = (0..12).map(|i| Label::Class(i % 2)).collect();
    let refs: Vec<&Label> = labels.iter().collect();
    let out_dim = logits.len() / refs.len();
    splash::task::evaluate(
        dataset.task,
        &nn::Matrix::from_vec(refs.len(), out_dim, logits.to_vec()),
        &refs,
    )
}

/// The never-crashed run: counters after every op prefix (the resume
/// fingerprints) plus the end-state probe.
struct Reference {
    counters: Vec<[u64; 7]>,
    logits: Vec<f32>,
    metric: f64,
}

fn reference(fx: &Fixture, shards: usize, online: bool) -> Reference {
    let mut service = loaded_service(fx, shards, online);
    let mut counters = vec![persisted_counters(&service)];
    for op in &fx.ops {
        apply_op(&mut service, op).unwrap();
        counters.push(persisted_counters(&service));
    }
    let logits = probe(&mut service, fx.probe_time);
    let metric = probe_metric(&fx.dataset, &logits);
    Reference { counters, logits, metric }
}

/// Runs the scripted deployment cleanly with trace recording on, returning
/// every durable file operation (label, bytes) it performed.
fn traced_operations(fx: &Fixture, shards: usize, dir: &Path) -> Vec<(String, u64)> {
    let plan = FaultPlan::new();
    plan.record_trace();
    let mut service = loaded_service(fx, shards, true);
    let seeded = service
        .make_durable(
            MODEL,
            DurabilityConfig::new(dir).checkpoint_every(EVERY).faults(plan.clone()),
        )
        .unwrap();
    assert!(seeded.is_none(), "a fresh directory seeds, not recovers");
    for op in &fx.ops {
        apply_op(&mut service, op).unwrap();
    }
    plan.take_trace()
}

enum Crash {
    /// Kill the op's file write after exactly this many bytes.
    WriteAt(u64),
    /// Let the op's bytes land fully, die before its rename / right after
    /// its append.
    BeforeRename,
}

/// One full kill-and-restart cycle. Returns whether recovery truncated a
/// torn WAL tail (so the matrix can assert that case actually occurred).
fn crash_trial(
    fx: &Fixture,
    shards: usize,
    reference: &Reference,
    dir: &Path,
    op: u64,
    crash: &Crash,
    context: &str,
) -> bool {
    std::fs::remove_dir_all(dir).ok();
    let plan = FaultPlan::new();
    match crash {
        Crash::WriteAt(off) => plan.arm_write(op, *off),
        Crash::BeforeRename => plan.arm_rename(op),
    }

    // The doomed process.
    let mut service = loaded_service(fx, shards, true);
    let cfg = DurabilityConfig::new(dir).checkpoint_every(EVERY).faults(plan.clone());
    let mut acked = 0usize;
    match service.make_durable(MODEL, cfg) {
        Ok(seeded) => {
            assert!(seeded.is_none(), "{context}: fresh dir must seed");
            for step in &fx.ops {
                match apply_op(&mut service, step) {
                    Ok(()) => acked += 1,
                    Err(e) => {
                        assert!(matches!(e, SplashError::Io(_)), "{context}: {e:?}");
                        break;
                    }
                }
            }
        }
        Err(e) => assert!(matches!(e, SplashError::Io(_)), "{context}: {e:?}"),
    }
    assert!(plan.fired(), "{context}: the armed fault never fired");
    drop(service); // kill -9

    // The restarted process: recover, detect the resume point from the
    // durable counters, finish the script.
    let mut restarted = loaded_service(fx, shards, true);
    let report = restarted
        .make_durable(MODEL, DurabilityConfig::new(dir).checkpoint_every(EVERY))
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    let recovered = persisted_counters(&restarted);
    let resume = reference
        .counters
        .iter()
        .position(|c| *c == recovered)
        .unwrap_or_else(|| {
            panic!("{context}: recovered counters {recovered:?} match no op prefix")
        });
    assert!(
        resume == acked || resume == acked + 1,
        "{context}: recovered at op {resume}, but {acked} ops were acknowledged"
    );
    for op in &fx.ops[resume..] {
        apply_op(&mut restarted, op)
            .unwrap_or_else(|e| panic!("{context}: resumed op failed: {e}"));
    }
    assert_eq!(
        persisted_counters(&restarted),
        *reference.counters.last().unwrap(),
        "{context}: durable counters diverged from the never-crashed run"
    );
    let logits = probe(&mut restarted, fx.probe_time);
    assert_eq!(
        logits, reference.logits,
        "{context}: probe logits diverged from the never-crashed run"
    );
    let metric = probe_metric(&fx.dataset, &logits);
    assert_eq!(
        metric.to_bits(),
        reference.metric.to_bits(),
        "{context}: streamed metric diverged from the never-crashed run"
    );
    report.is_some_and(|r| r.wal_tail_truncated)
}

/// Byte offsets to kill a `bytes`-long write at. The three crash classes
/// per operation are nothing-written (offset 0), partially-written
/// (midway), and fully-written-but-uncommitted (`BeforeRename`); the
/// `every_byte…` test walks all offsets of a WAL append exhaustively, so
/// the matrix samples class representatives. The sharded matrix covers
/// many more operations, so it drops the offset-0 sample (an absent temp
/// file and an empty one recover identically) to bound runtime.
fn offsets_for(bytes: u64, full: bool) -> Vec<u64> {
    let mut offs = if full { vec![0, bytes / 2] } else { vec![bytes / 2] };
    offs.sort_unstable();
    offs.dedup();
    offs.retain(|&o| o < bytes.max(1));
    offs
}

/// The full kill matrix at one shard count: every traced durable file
/// operation × (several byte offsets + the before-rename point).
fn crash_matrix(shards: usize) {
    let fx = fixture();
    let reference = reference(&fx, shards, true);
    let base = std::env::temp_dir()
        .join(format!("splash-durable-matrix-{shards}-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let trace = traced_operations(&fx, shards, &base.join("trace"));
    // 1 seed checkpoint + 7 appends + 3 rotation checkpoints, each
    // checkpoint 6 ops unsharded (model, witness, ring shard, manifest,
    // WAL create, CURRENT) / 9 ops at 3 shards (one shared model file +
    // its manifest, witness, 3 ring shards, state manifest, WAL create,
    // CURRENT).
    let checkpoint_ops = if shards == 1 { 6 } else { 9 };
    assert_eq!(trace.len(), 4 * checkpoint_ops + fx.ops.len(), "unexpected op trace: {trace:?}");

    let dir = base.join("crash");
    let mut torn_tails = 0usize;
    for (op, (label, bytes)) in trace.iter().enumerate() {
        for off in offsets_for(*bytes, shards == 1) {
            let context = format!("shards={shards} op={op} ({label}, {bytes}B) write@{off}");
            if crash_trial(&fx, shards, &reference, &dir, op as u64, &Crash::WriteAt(off), &context)
            {
                torn_tails += 1;
            }
        }
        let context = format!("shards={shards} op={op} ({label}, {bytes}B) before-rename");
        if crash_trial(&fx, shards, &reference, &dir, op as u64, &Crash::BeforeRename, &context) {
            torn_tails += 1;
        }
    }
    assert!(torn_tails > 0, "the matrix never exercised torn-tail truncation");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn crash_at_every_traced_operation_recovers_bit_identically_unsharded() {
    crash_matrix(1);
}

#[test]
fn crash_at_every_traced_operation_recovers_bit_identically_at_3_shards() {
    crash_matrix(3);
}

/// The finest-grained slice of the matrix: one WAL append record, killed
/// at **every** byte offset (and after its full write), on a durable
/// deployment without continual learning — covering the trainer-less
/// checkpoint layout too.
#[test]
fn every_byte_of_a_wal_append_is_a_recoverable_crash_point() {
    let fx = fixture();
    let Op::Ingest(full) = &fx.ops[0] else { panic!("fixture starts with an ingest") };
    let edges = full[..2].to_vec();
    let probe_time = edges.last().unwrap().time + 100.0;

    // Never-crashed reference (no durability at all).
    let mut plain = loaded_service(&fx, 1, false);
    let before = persisted_counters(&plain);
    plain.ingest(MODEL, IngestRequest::new(&edges)).unwrap();
    let after = persisted_counters(&plain);
    let want = probe(&mut plain, probe_time);
    drop(plain);

    let base = std::env::temp_dir()
        .join(format!("splash-durable-bytes-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // Clean traced run to size the append record.
    let plan = FaultPlan::new();
    plan.record_trace();
    let mut service = loaded_service(&fx, 1, false);
    service
        .make_durable(
            MODEL,
            DurabilityConfig::new(base.join("trace")).faults(plan.clone()),
        )
        .unwrap();
    service.ingest(MODEL, IngestRequest::new(&edges)).unwrap();
    drop(service);
    let trace = plan.take_trace();
    assert_eq!(trace.len(), 7, "seed checkpoint (6 ops) + 1 append: {trace:?}");
    let (label, record_len) = &trace[6];
    assert_eq!(label, "wal.append");

    let dir = base.join("crash");
    let mut crashes: Vec<Crash> = (0..*record_len).map(Crash::WriteAt).collect();
    crashes.push(Crash::BeforeRename);
    for crash in &crashes {
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        let off_desc = match crash {
            Crash::WriteAt(off) => {
                plan.arm_write(6, *off);
                format!("write@{off}")
            }
            Crash::BeforeRename => {
                plan.arm_rename(6);
                "after-append".into()
            }
        };
        let mut service = loaded_service(&fx, 1, false);
        service
            .make_durable(MODEL, DurabilityConfig::new(&dir).faults(plan.clone()))
            .unwrap();
        let err = service.ingest(MODEL, IngestRequest::new(&edges)).unwrap_err();
        assert!(matches!(err, SplashError::Io(_)), "{off_desc}: {err:?}");
        assert!(plan.fired());
        drop(service);

        let mut restarted = loaded_service(&fx, 1, false);
        restarted
            .make_durable(MODEL, DurabilityConfig::new(&dir))
            .unwrap_or_else(|e| panic!("{off_desc}: recovery failed: {e}"));
        let recovered = persisted_counters(&restarted);
        if recovered == before {
            // The record did not survive: the request was never durable.
            restarted.ingest(MODEL, IngestRequest::new(&edges)).unwrap();
        } else {
            // The full record survived the crash (possible only once every
            // byte was written).
            assert_eq!(recovered, after, "{off_desc}: partial record replayed");
        }
        assert_eq!(probe(&mut restarted, probe_time), want, "{off_desc}: diverged");
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The global witness epoch file (`witness.<e>.bin`, new in the shared
/// witness-state layout) is a first-class crash point: kill its write at
/// several offsets — and right after it, before its rename — at every
/// checkpoint that emits one, and recovery must land on a committed
/// epoch bit-identically. The full matrix above covers these ops among
/// all others; this case pins them *by label*, so a layout change that
/// silently drops the witness file from the checkpoint sequence fails
/// loudly here rather than shifting indices in the matrix.
#[test]
fn killing_the_witness_file_mid_write_recovers_bit_identically() {
    let fx = fixture();
    let reference = reference(&fx, 1, true);
    let base = std::env::temp_dir()
        .join(format!("splash-durable-witness-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let trace = traced_operations(&fx, 1, &base.join("trace"));
    let witness_ops: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, (label, _))| label == "witness")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(witness_ops.len(), 4, "each checkpoint writes one witness file: {trace:?}");

    let dir = base.join("crash");
    for op in witness_ops {
        let bytes = trace[op].1;
        for crash in [Crash::WriteAt(0), Crash::WriteAt(bytes / 2), Crash::BeforeRename] {
            let off = match &crash {
                Crash::WriteAt(o) => format!("write@{o}"),
                Crash::BeforeRename => "before-rename".into(),
            };
            let context = format!("witness op={op} ({bytes}B) {off}");
            crash_trial(&fx, 1, &reference, &dir, op as u64, &crash, &context);
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Fuzz-lite WAL damage: flipping any byte or truncating at any length
/// must yield either a typed error or a clean-prefix recovery — never a
/// panic, and never silently-wrong state (a successful recovery must
/// still serve finite predictions and resume appends).
#[test]
fn corrupted_wal_bytes_are_typed_errors_or_clean_prefixes() {
    let fx = fixture();
    let base = std::env::temp_dir()
        .join(format!("splash-durable-fuzz-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // A committed directory whose single WAL holds the whole script
    // (threshold high enough that it never rotates).
    let mut service = loaded_service(&fx, 1, true);
    service
        .make_durable(MODEL, DurabilityConfig::new(&base).checkpoint_every(1_000))
        .unwrap();
    for op in &fx.ops {
        apply_op(&mut service, op).unwrap();
    }
    drop(service);
    let wal_path = base.join("wal.0.log");
    let pristine = std::fs::read(&wal_path).unwrap();
    assert!(pristine.len() > 100, "fixture WAL too small to fuzz");
    // Recovery itself mutates the directory (tail truncation, GC, and the
    // post-recovery checkpoint below rotates epochs), so every iteration
    // starts from a byte-identical copy of the committed directory.
    let committed: Vec<(std::ffi::OsString, Vec<u8>)> = std::fs::read_dir(&base)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name(), std::fs::read(e.path()).unwrap())
        })
        .collect();

    let recover = |mutated: &[u8], what: &str| {
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        for (name, bytes) in &committed {
            std::fs::write(base.join(name), bytes).unwrap();
        }
        std::fs::write(&wal_path, mutated).unwrap();
        // A bare service: recovery needs no dataset and no prior model,
        // and skipping the artifact load keeps ~300 mutations affordable.
        let mut restarted = build_service(&fx.cfg, 1, true);
        match restarted.make_durable(MODEL, DurabilityConfig::new(&base)) {
            Ok(report) => {
                let report = report.expect("a committed directory recovers");
                assert!(
                    report.wal_records_replayed <= fx.ops.len() as u64,
                    "{what}: replayed more records than were written"
                );
                // A clean-prefix recovery must leave a servable model that
                // accepts appends again.
                let logits = probe(&mut restarted, fx.probe_time);
                assert!(!logits.is_empty());
                restarted.checkpoint(MODEL).unwrap_or_else(|e| {
                    panic!("{what}: post-recovery checkpoint failed: {e}")
                });
            }
            Err(
                SplashError::WalCorrupt { .. }
                | SplashError::CorruptModel { .. }
                | SplashError::PersistVersionMismatch { .. },
            ) => {}
            Err(e) => panic!("{what}: untyped recovery failure: {e:?}"),
        }
    };

    // Byte flips: the header and the first record's framing byte-by-byte,
    // a stride through the rest (runtime is the only reason not to walk
    // every byte — any sampled byte must behave).
    let mut flip_points: Vec<usize> = (0..pristine.len().min(24)).collect();
    flip_points.extend((24..pristine.len()).step_by(997));
    for i in flip_points {
        let mut mutated = pristine.clone();
        mutated[i] ^= 0x41;
        recover(&mutated, &format!("flip byte {i}"));
    }
    // Truncations at a stride of prefix lengths plus the near-end cuts
    // (the torn-tail shapes a real crash leaves).
    let mut cut_points: Vec<usize> = (0..pristine.len()).step_by(1777).collect();
    cut_points.extend([pristine.len() - 9, pristine.len() - 1]);
    for len in cut_points {
        recover(&pristine[..len], &format!("truncate to {len}B"));
    }

    // The pristine directory still recovers in full afterwards.
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();
    for (name, bytes) in &committed {
        std::fs::write(base.join(name), bytes).unwrap();
    }
    let mut restarted = loaded_service(&fx, 1, true);
    let report = restarted
        .make_durable(MODEL, DurabilityConfig::new(&base))
        .unwrap()
        .expect("committed directory");
    assert_eq!(report.wal_records_replayed, fx.ops.len() as u64);
    assert!(!report.wal_tail_truncated);
    std::fs::remove_dir_all(&base).ok();
}

/// The flush-before-checkpoint hazard, both policies: `PersistBuffer`
/// (default) carries the un-trained replay buffer through the restart
/// bit-identically; `Refuse` rejects explicit checkpoints with the typed
/// 409 error and *defers* threshold checkpoints instead of failing the
/// triggering request.
#[test]
fn unflushed_replay_buffers_follow_the_checkpoint_policy() {
    let fx = fixture();
    let Op::Ingest(batch) = &fx.ops[0] else { panic!("fixture starts with an ingest") };
    let base = std::env::temp_dir()
        .join(format!("splash-durable-policy-{}", std::process::id()));

    // --- PersistBuffer: the buffer survives the restart, and the
    // fine-tune that eventually drains it matches the uninterrupted run.
    let mut uninterrupted = loaded_service(&fx, 1, true);
    for op in &fx.ops[..2] {
        apply_op(&mut uninterrupted, op).unwrap(); // ingest + 24 labels
    }
    uninterrupted.fine_tune(MODEL).unwrap();
    let want = probe(&mut uninterrupted, fx.probe_time);
    drop(uninterrupted);

    std::fs::remove_dir_all(&base).ok();
    let mut service = loaded_service(&fx, 1, true);
    service
        .make_durable(MODEL, DurabilityConfig::new(&base).checkpoint_every(1_000))
        .unwrap();
    for op in &fx.ops[..2] {
        apply_op(&mut service, op).unwrap();
    }
    assert_eq!(service.trainer(MODEL).unwrap().buffered(), 24);
    service.checkpoint(MODEL).unwrap(); // buffer rides inside the snapshot
    assert_eq!(service.checkpoint_epoch(MODEL).unwrap(), Some(1));
    drop(service);
    let mut restarted = loaded_service(&fx, 1, true);
    let report = restarted
        .make_durable(MODEL, DurabilityConfig::new(&base))
        .unwrap()
        .expect("committed directory");
    assert_eq!(report.wal_records_replayed, 0, "the snapshot already holds both ops");
    assert_eq!(restarted.trainer(MODEL).unwrap().buffered(), 24, "buffer restored");
    restarted.fine_tune(MODEL).unwrap();
    assert_eq!(probe(&mut restarted, fx.probe_time), want, "restored buffer diverged");
    drop(restarted);
    std::fs::remove_dir_all(&base).ok();

    // --- Refuse: explicit checkpoints (and `save_model`) reject a
    // non-empty buffer; threshold checkpoints defer until it drains.
    let mut service = SplashService::builder(fx.cfg)
        .online(online_cfg())
        .checkpoint_policy(CheckpointPolicy::Refuse)
        .build()
        .unwrap();
    service.load_model(MODEL, model_file(), &fx.dataset).unwrap();
    service
        .make_durable(MODEL, DurabilityConfig::new(&base).checkpoint_every(1))
        .unwrap();
    // Threshold 1: the ingest itself triggers a rotation (buffer empty).
    service.ingest(MODEL, IngestRequest::new(batch)).unwrap();
    assert_eq!(service.checkpoint_epoch(MODEL).unwrap(), Some(1));
    // A buffered label defers the rotation its own append triggered…
    let t = service.model_last_time(MODEL).unwrap();
    service.observe_labels(MODEL, &labels_at(t, 4)).unwrap();
    assert_eq!(
        service.checkpoint_epoch(MODEL).unwrap(),
        Some(1),
        "threshold checkpoint must defer while the buffer is non-empty"
    );
    // …and explicit checkpoints / artifact saves refuse with the typed 409.
    let err = service.checkpoint(MODEL).unwrap_err();
    assert!(matches!(err, SplashError::CheckpointUnflushed { buffered: 4 }), "{err:?}");
    assert_eq!(err.kind(), "CheckpointUnflushed");
    assert_eq!(err.http_status(), 409);
    let err = service
        .save_model(MODEL, &base.join("refused.bin"))
        .unwrap_err();
    assert!(matches!(err, SplashError::CheckpointUnflushed { .. }), "{err:?}");
    // Draining the buffer lifts the refusal: the fine-tune's own WAL
    // append rotates (buffer now empty), and explicit checkpoints work.
    service.fine_tune(MODEL).unwrap();
    service.checkpoint(MODEL).unwrap();
    assert!(service.checkpoint_epoch(MODEL).unwrap().unwrap() > 1);
    drop(service);
    std::fs::remove_dir_all(&base).ok();
}

/// `save_model` always refuses to drop a non-empty replay buffer, even
/// under the default `PersistBuffer` policy — the portable artifact has
/// no section to carry it, so silently discarding it would lose labels.
#[test]
fn save_model_never_discards_a_replay_buffer() {
    let fx = fixture();
    let mut service = loaded_service(&fx, 1, true);
    for op in &fx.ops[..2] {
        apply_op(&mut service, op).unwrap();
    }
    let path = std::env::temp_dir()
        .join(format!("splash-durable-save-{}.bin", std::process::id()));
    let err = service.save_model(MODEL, &path).unwrap_err();
    assert!(matches!(err, SplashError::CheckpointUnflushed { buffered: 24 }), "{err:?}");
    // Draining the buffer makes the same save legal.
    service.fine_tune(MODEL).unwrap();
    service.save_model(MODEL, &path).unwrap();
    std::fs::remove_file(&path).ok();
}

/// Recovery refuses configuration drift with typed errors instead of
/// serving subtly-wrong state: a checkpoint written with continual
/// learning cannot restore into a service without it (and vice versa),
/// and attaching twice is an error.
#[test]
fn recovery_rejects_mismatched_deployments() {
    let fx = fixture();
    let base = std::env::temp_dir()
        .join(format!("splash-durable-mismatch-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let mut service = loaded_service(&fx, 1, true);
    service.make_durable(MODEL, DurabilityConfig::new(&base)).unwrap();
    let err = service
        .make_durable(MODEL, DurabilityConfig::new(&base))
        .unwrap_err();
    assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    drop(service);

    // Online checkpoint → offline service: typed refusal.
    let mut offline = loaded_service(&fx, 1, false);
    let err = offline
        .make_durable(MODEL, DurabilityConfig::new(&base))
        .unwrap_err();
    assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    std::fs::remove_dir_all(&base).ok();

    // Offline checkpoint → online service: typed refusal.
    let mut offline = loaded_service(&fx, 1, false);
    offline.make_durable(MODEL, DurabilityConfig::new(&base)).unwrap();
    drop(offline);
    let mut online = loaded_service(&fx, 1, true);
    let err = online
        .make_durable(MODEL, DurabilityConfig::new(&base))
        .unwrap_err();
    assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    std::fs::remove_dir_all(&base).ok();
}

/// A restart needs no dataset and no prior model: a freshly *built*
/// service (nothing trained, nothing loaded) recovers the deployment from
/// the directory alone and serves bit-identically.
#[test]
fn recovery_installs_into_a_fresh_service() {
    let fx = fixture();
    let base = std::env::temp_dir()
        .join(format!("splash-durable-fresh-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let mut service = loaded_service(&fx, 1, true);
    service.make_durable(MODEL, DurabilityConfig::new(&base)).unwrap();
    for op in &fx.ops {
        apply_op(&mut service, op).unwrap();
    }
    let want = probe(&mut service, fx.probe_time);
    let want_counters = persisted_counters(&service);
    drop(service);

    let mut restarted = build_service(&fx.cfg, 1, true); // no model at all
    let report = restarted
        .make_durable(MODEL, DurabilityConfig::new(&base))
        .unwrap()
        .expect("committed directory");
    assert_eq!(report.wal_records_replayed, fx.ops.len() as u64);
    assert_eq!(persisted_counters(&restarted), want_counters);
    assert_eq!(probe(&mut restarted, fx.probe_time), want);

    // An empty directory, by contrast, cannot conjure a model.
    let empty = base.join("nothing-here");
    let mut bare = build_service(&fx.cfg, 1, true);
    let err = bare.make_durable(MODEL, DurabilityConfig::new(&empty)).unwrap_err();
    assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
    std::fs::remove_dir_all(&base).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Snapshot → restore at a random cut of the script, at a random
    /// checkpoint cadence, equals the never-snapshotted run bit-for-bit —
    /// at shard counts 1 and 3.
    #[test]
    fn snapshot_restore_equals_never_snapshotted(
        cut in 1usize..7,
        every in 1u64..5,
        sharded in any::<bool>(),
    ) {
        let shards = if sharded { 3 } else { 1 };
        let fx = fixture();

        let mut plain = loaded_service(&fx, shards, true);
        for op in &fx.ops {
            apply_op(&mut plain, op).unwrap();
        }
        let want = probe(&mut plain, fx.probe_time);
        let want_counters = persisted_counters(&plain);
        drop(plain);

        let base = std::env::temp_dir().join(format!(
            "splash-durable-prop-{shards}-{cut}-{every}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&base).ok();
        let mut service = loaded_service(&fx, shards, true);
        service
            .make_durable(MODEL, DurabilityConfig::new(&base).checkpoint_every(every))
            .unwrap();
        for op in &fx.ops[..cut] {
            apply_op(&mut service, op).unwrap();
        }
        drop(service); // clean snapshot+WAL state on disk, process gone

        let mut restarted = loaded_service(&fx, shards, true);
        restarted
            .make_durable(MODEL, DurabilityConfig::new(&base).checkpoint_every(every))
            .unwrap()
            .expect("committed directory");
        for op in &fx.ops[cut..] {
            apply_op(&mut restarted, op).unwrap();
        }
        prop_assert_eq!(persisted_counters(&restarted), want_counters);
        let logits = probe(&mut restarted, fx.probe_time);
        prop_assert_eq!(logits, want);
        std::fs::remove_dir_all(&base).ok();
    }
}
