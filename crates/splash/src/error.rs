//! The typed error taxonomy of the `splash` serving surface.
//!
//! Every fallible public operation — edge ingestion, label queries, config
//! validation, model persistence, registry lookups — reports a
//! [`SplashError`] instead of panicking or returning a reason-less
//! `Option`. The numeric core stays infallible (shape bugs are programmer
//! errors and still panic); *input* problems a caller can cause at runtime
//! are the error surface.
//!
//! The enum is `#[non_exhaustive]`: later PRs (sharding, async serving,
//! remote registries) can add variants without breaking downstream
//! matches.

use std::fmt;
use std::io;

use ctdg::NodeId;

/// Everything that can go wrong at the `splash` API surface.
///
/// Constructing a variant never allocates except where a field owns a
/// `String` (`InvalidConfig`, `CorruptModel`, `UnknownModel`) — and those
/// are built only on the failure path, so the steady-state serving hot
/// loops stay allocation-free.
#[non_exhaustive]
#[derive(Debug)]
pub enum SplashError {
    /// An ingested edge travelled back in time: its timestamp precedes the
    /// most recently observed edge's.
    OutOfOrderEdge {
        /// Timestamp of the offending edge.
        got: f64,
        /// Timestamp of the last edge already observed.
        last: f64,
    },
    /// A label query asked about the past: its timestamp precedes the most
    /// recently observed edge, so answering it would require state that has
    /// already been overwritten.
    PastQuery {
        /// Timestamp of the offending query.
        got: f64,
        /// Timestamp of the last edge already observed.
        last: f64,
    },
    /// A query named a node outside the service's known node universe
    /// (only reported when the service is built with strict node checking;
    /// the default is to serve unknown nodes from propagated features).
    UnknownNode {
        /// The offending node id.
        node: NodeId,
        /// Number of node ids currently known (valid ids are `0..known`).
        known: usize,
    },
    /// A request named a model that is not in the service's registry.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`crate::SplashConfig`] failed validation.
    InvalidConfig {
        /// Which field was rejected and why.
        what: String,
    },
    /// A saved model file carries a format version this build does not
    /// understand.
    PersistVersionMismatch {
        /// The version word found in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A saved model file is not a SPLASH model or has been damaged
    /// (bad magic, truncation, impossible tags or shapes).
    CorruptModel {
        /// What was wrong with the file.
        what: String,
    },
    /// A saved model cannot back a streaming predictor because its feature
    /// mode is not a single augmentation process (streaming state is
    /// defined per process).
    NotStreamable {
        /// Display name of the offending feature mode.
        mode: &'static str,
    },
    /// A request asked for the wrong engine form: single-engine access
    /// ([`crate::SplashService::model`]) to a model served by multiple
    /// shards, or sharded access ([`crate::SplashService::sharded_model`])
    /// to a single-engine model.
    ShardedModel {
        /// The registry name of the model.
        name: String,
        /// How many shards actually serve it.
        shards: usize,
    },
    /// A ground-truth observation fed to the continual learner cannot be
    /// trained on: the label does not fit the model's task or output
    /// width, carries non-finite affinity mass, or arrives with a
    /// non-finite timestamp. Training on it would panic deep in the loss
    /// or poison the published weights with NaN, so it is rejected up
    /// front (batch-atomically).
    LabelMismatch {
        /// What the model expects, and what arrived instead.
        expected: String,
    },
    /// A continual-learning request ([`crate::SplashService::fine_tune`],
    /// label ingest, publish) named a model that has no online trainer —
    /// the service was built without
    /// [`crate::SplashServiceBuilder::online`].
    OnlineDisabled {
        /// The registry name of the model.
        name: String,
    },
    /// A write-ahead-log file in a checkpoint directory is damaged beyond
    /// its recoverable prefix: a record in the *middle* of the log fails
    /// its checksum or decodes to an impossible payload. (A torn *tail* —
    /// the last record cut short by a crash — is not an error: recovery
    /// truncates it and carries on.)
    WalCorrupt {
        /// What was wrong, and where.
        what: String,
    },
    /// Recovery was asked to restart from a checkpoint directory that has
    /// no committed checkpoint (no `CURRENT` pointer) — nothing to restore
    /// from. A fresh deployment should install a model first and let the
    /// durable layer write epoch 0.
    CheckpointMissing {
        /// The directory that was searched.
        dir: String,
    },
    /// A checkpoint or artifact save was refused because the online replay
    /// buffer still holds captured labels that the destination cannot
    /// carry; persisting would silently drop them. Drain the buffer first
    /// ([`crate::SplashService::fine_tune`]) or build the service with
    /// [`crate::CheckpointPolicy::PersistBuffer`] and use a durable
    /// checkpoint, which persists the buffer alongside the state.
    CheckpointUnflushed {
        /// How many captured labels are still buffered.
        buffered: usize,
    },
    /// A model architecture was asked to serve a task it does not support
    /// (e.g. SLADE, a self-supervised anomaly scorer, on a classification
    /// or affinity workload — the paper reports N/A there). Registering or
    /// running such a pairing is refused up front instead of producing a
    /// nonsense metric.
    TaskUnsupported {
        /// The model (variant) name, e.g. `"slade"`.
        model: String,
        /// Display name of the requested task.
        task: &'static str,
    },
    /// An underlying I/O operation failed (file missing, permissions, …).
    Io(io::Error),
}

impl SplashError {
    /// Short machine-readable variant name, stable across `Display`
    /// wording changes. The wire front end ([`crate::server`]) echoes it
    /// in the `x-splash-error` response header so socket clients can match
    /// on the taxonomy without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            SplashError::OutOfOrderEdge { .. } => "OutOfOrderEdge",
            SplashError::PastQuery { .. } => "PastQuery",
            SplashError::UnknownNode { .. } => "UnknownNode",
            SplashError::UnknownModel { .. } => "UnknownModel",
            SplashError::InvalidConfig { .. } => "InvalidConfig",
            SplashError::PersistVersionMismatch { .. } => "PersistVersionMismatch",
            SplashError::CorruptModel { .. } => "CorruptModel",
            SplashError::NotStreamable { .. } => "NotStreamable",
            SplashError::ShardedModel { .. } => "ShardedModel",
            SplashError::LabelMismatch { .. } => "LabelMismatch",
            SplashError::OnlineDisabled { .. } => "OnlineDisabled",
            SplashError::WalCorrupt { .. } => "WalCorrupt",
            SplashError::CheckpointMissing { .. } => "CheckpointMissing",
            SplashError::CheckpointUnflushed { .. } => "CheckpointUnflushed",
            SplashError::TaskUnsupported { .. } => "TaskUnsupported",
            SplashError::Io(_) => "Io",
            // `#[non_exhaustive]`: a variant added later still maps.
            #[allow(unreachable_patterns)]
            _ => "SplashError",
        }
    }

    /// The HTTP status code the wire front end answers this error with.
    ///
    /// Everything a client can cause is 4xx (the request was understood
    /// and refused, the server keeps serving); only a genuine server-side
    /// failure ([`SplashError::Io`]) is 5xx. The full table is documented
    /// in ARCHITECTURE.md ("Wire protocol & backpressure").
    pub fn http_status(&self) -> u16 {
        match self {
            // The request contradicts the stream clock — a state conflict,
            // retryable after repair.
            SplashError::OutOfOrderEdge { .. } | SplashError::PastQuery { .. } => 409,
            // The named resource does not exist.
            SplashError::UnknownModel { .. } => 404,
            // Well-formed but semantically impossible payloads.
            SplashError::UnknownNode { .. }
            | SplashError::InvalidConfig { .. }
            | SplashError::PersistVersionMismatch { .. }
            | SplashError::CorruptModel { .. }
            | SplashError::NotStreamable { .. }
            | SplashError::LabelMismatch { .. }
            | SplashError::TaskUnsupported { .. } => 422,
            // Damaged or absent durable state: the *artifact* is the
            // problem, exactly like a corrupt model file.
            SplashError::WalCorrupt { .. } | SplashError::CheckpointMissing { .. } => 422,
            // The request asks for a capability this deployment lacks, or
            // conflicts with serving state that must be drained first.
            SplashError::ShardedModel { .. }
            | SplashError::OnlineDisabled { .. }
            | SplashError::CheckpointUnflushed { .. } => 409,
            SplashError::Io(_) => 500,
            // `#[non_exhaustive]`: unknown future variants are server-side.
            #[allow(unreachable_patterns)]
            _ => 500,
        }
    }
}

impl fmt::Display for SplashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplashError::OutOfOrderEdge { got, last } => write!(
                f,
                "edges must arrive chronologically ({got} < {last})"
            ),
            SplashError::PastQuery { got, last } => write!(
                f,
                "cannot predict in the past (query time {got} precedes the last \
                 observed edge at {last})"
            ),
            SplashError::UnknownNode { node, known } => write!(
                f,
                "unknown node {node} (this service knows nodes 0..{known})"
            ),
            SplashError::UnknownModel { name } => {
                write!(f, "no model named {name:?} in the registry")
            }
            SplashError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            SplashError::PersistVersionMismatch { found, supported } => write!(
                f,
                "saved model has format version {found}, this build supports {supported}"
            ),
            SplashError::CorruptModel { what } => write!(f, "corrupt model file: {what}"),
            SplashError::NotStreamable { mode } => write!(
                f,
                "feature mode {mode} cannot back a streaming predictor \
                 (streaming state needs a single augmentation process)"
            ),
            SplashError::ShardedModel { name, shards } => write!(
                f,
                "model {name:?} is served by {shards} shard(s), which does not \
                 match the requested engine access"
            ),
            SplashError::LabelMismatch { expected } => {
                write!(f, "label does not fit the model: expected {expected}")
            }
            SplashError::OnlineDisabled { name } => write!(
                f,
                "model {name:?} has no online trainer (build the service \
                 with .online(OnlineConfig) to enable continual learning)"
            ),
            SplashError::WalCorrupt { what } => {
                write!(f, "corrupt write-ahead log: {what}")
            }
            SplashError::CheckpointMissing { dir } => write!(
                f,
                "no committed checkpoint in {dir:?} (no CURRENT pointer; \
                 nothing to recover from)"
            ),
            SplashError::CheckpointUnflushed { buffered } => write!(
                f,
                "refusing to checkpoint: {buffered} captured label(s) still \
                 buffered would be dropped (fine_tune first, or persist the \
                 buffer with a durable checkpoint)"
            ),
            SplashError::TaskUnsupported { model, task } => write!(
                f,
                "model {model:?} does not support the {task} task (the paper \
                 reports N/A for this pairing)"
            ),
            SplashError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SplashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SplashError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SplashError {
    fn from(e: io::Error) -> Self {
        SplashError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_payload() {
        let e = SplashError::OutOfOrderEdge { got: 1.0, last: 2.0 };
        assert!(e.to_string().contains("chronologically"), "{e}");
        assert!(e.to_string().contains('1') && e.to_string().contains('2'), "{e}");
        let e = SplashError::PersistVersionMismatch { found: 9, supported: 1 };
        assert!(e.to_string().contains("version 9"), "{e}");
        let e = SplashError::UnknownModel { name: "prod".into() };
        assert!(e.to_string().contains("prod"), "{e}");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: SplashError = io.into();
        assert!(matches!(&e, SplashError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
