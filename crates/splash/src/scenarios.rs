//! Scenario matrix: every dataset regime × every registered model, driven
//! prequentially through one multi-tenant [`SplashService`].
//!
//! This is the repo's Table III analogue as a *serving* experiment rather
//! than an offline evaluation. Each regime (drift / anomaly /
//! classification / affinity / scalability) builds one service holding
//! every contender as a registry slot — SPLASH engines trained in-service,
//! external engines (e.g. the `baselines` crate's competitors behind
//! [`ServeEngine`] adapters) registered next to them — then replays the
//! post-training period as a live stream:
//!
//! 1. edges between queries are batched and ingested into **every** slot;
//! 2. each test query is answered by every slot *before* its label is
//!    revealed (prequential: predict-then-label);
//! 3. the ground truth is then fed back to slots marked online, so the
//!    drift regime shows continual learning against a bit-identically
//!    initialized frozen copy in the same service.
//!
//! The result is a single deterministic report artifact
//! ([`ScenarioReport::to_json`] / [`ScenarioReport::to_markdown`]) with one
//! cell per regime × model: task metric (plus AP next to AUC on the
//! anomaly regime), queries served, and — when [`ScenarioConfig::timing`]
//! is on — ingest throughput and predict p99 from a per-cell
//! [`LatencyHistogram`]. With timing off the report bytes are a pure
//! function of the datasets, the specs, and the seed (pinned in
//! `crates/splash/tests/scenarios.rs` and by the `ci/check.sh` smoke leg).

use std::fmt::Write as _;
use std::time::Instant;

use ctdg::{replay, Event, Label, TemporalEdge};
use datasets::{Dataset, Task};
use nn::Matrix;

use crate::config::SplashConfig;
use crate::error::SplashError;
use crate::online::OnlineConfig;
use crate::pipeline::split_bounds;
use crate::task::name as task_name;
use crate::service::{
    IngestRequest, LatencyHistogram, LateEdgePolicy, PredictRequest, PredictResponse,
    ServeEngine, SplashService,
};

/// Builds the external engine for one (dataset, config) pair — the seam
/// through which non-SPLASH models (baselines) enter the matrix without
/// this crate depending on theirs. The factory must return an engine
/// already trained on the dataset's training split and advanced to its
/// training prefix (same 10/10/80 protocol as the in-service SPLASH
/// training), or a typed error (e.g. [`SplashError::TaskUnsupported`]) —
/// which the runner records as an `n/a` cell instead of aborting the
/// regime.
pub type EngineFactory =
    Box<dyn Fn(&Dataset, &SplashConfig) -> Result<Box<dyn ServeEngine>, SplashError>>;

/// How one contender slot is built for a regime.
pub enum EngineSpec {
    /// SPLASH trained in-service with automatic feature selection.
    Splash {
        /// Feed ground truth back prequentially (continual learning). A
        /// frozen slot never observes labels and keeps its trained
        /// weights bit-identical through the whole stream.
        online: bool,
    },
    /// An external engine produced by a factory (see [`EngineFactory`]).
    External(EngineFactory),
}

/// One named contender in a scenario.
pub struct ModelSpec {
    /// Registry slot name (e.g. `"splash"`, `"splash+online"`, `"tgn+RF"`).
    pub name: String,
    /// How the slot is built.
    pub engine: EngineSpec,
}

/// One row of the matrix: a dataset regime plus the contenders to serve
/// through it.
pub struct ScenarioSpec {
    /// Regime label (e.g. `"drift"`, `"anomaly"`).
    pub regime: String,
    /// The dataset driven through the service.
    pub dataset: Dataset,
    /// The contenders, in report order.
    pub models: Vec<ModelSpec>,
}

/// Knobs shared by every cell of the matrix.
pub struct ScenarioConfig {
    /// Model/training config common to all contenders (seed, k, dims,
    /// epochs) — the determinism root of the whole report.
    pub splash: SplashConfig,
    /// Continual-learning knobs for the online slots.
    pub online: OnlineConfig,
    /// Record wall-clock cells (edges/s, predict p99). Off (the default),
    /// timing cells render as `null`/`-` and the report bytes are
    /// deterministic for a fixed seed.
    pub timing: bool,
}

impl ScenarioConfig {
    /// A config with the given model knobs, default online knobs, and
    /// timing off (deterministic report bytes).
    pub fn new(splash: SplashConfig) -> Self {
        ScenarioConfig { splash, online: OnlineConfig::default(), timing: false }
    }
}

/// One cell of the report: a (regime, model) pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Contender name.
    pub model: String,
    /// Engine kind serving the slot (from [`SplashService::models_info`]),
    /// `"-"` for a contender that could not enter the regime.
    pub engine: String,
    /// Whether the slot observed labels prequentially.
    pub online: bool,
    /// Test queries served through the slot.
    pub queries: usize,
    /// Task metric over the served test queries (`None` for a skipped
    /// contender).
    pub metric: Option<f64>,
    /// Average precision, reported next to AUC on the anomaly regime only.
    pub ap: Option<f64>,
    /// Ingest throughput (edges/second) — `None` unless
    /// [`ScenarioConfig::timing`] is on.
    pub edges_per_sec: Option<f64>,
    /// Predict p99 in microseconds from the per-cell
    /// [`LatencyHistogram`] — `None` unless timing is on.
    pub p99_us: Option<u64>,
    /// Why the contender was skipped (the typed error, rendered), e.g.
    /// SLADE outside the anomaly regime.
    pub note: Option<String>,
}

/// One regime's rendered row: the dataset it ran on and a cell per model.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeReport {
    /// Regime label from the spec.
    pub regime: String,
    /// Dataset name.
    pub dataset: String,
    /// Task the regime evaluates.
    pub task: Task,
    /// Display name of the task metric.
    pub metric_name: &'static str,
    /// One cell per contender, in spec order.
    pub cells: Vec<ScenarioCell>,
    /// Predict p99 (µs) pooled across every contender in the regime —
    /// the per-lane [`LatencyHistogram`]s folded together with
    /// [`LatencyHistogram::merge`]. `None` unless timing is on, and
    /// rendered only then, so timing-off artifacts keep their bytes.
    pub pooled_p99_us: Option<u64>,
}

/// The full matrix artifact: [`RegimeReport`] rows under one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The seed the whole matrix ran under.
    pub seed: u64,
    /// One row per scenario, in spec order.
    pub regimes: Vec<RegimeReport>,
}

/// Display name of a task's evaluation metric (the Table III headers).
pub fn metric_name(task: Task) -> &'static str {
    match task {
        Task::Anomaly => "AUC",
        Task::Classification => "weighted F1",
        Task::Affinity => "NDCG@10",
    }
}


/// Per-active-model accumulators over the prequential loop.
struct Lane {
    /// Index into the spec's model list (cell order).
    spec_idx: usize,
    name: String,
    online: bool,
    logits: Vec<f32>,
    served: usize,
    ingest_secs: f64,
    edges: u64,
    hist: LatencyHistogram,
}

/// Runs one regime: builds the multi-tenant service, registers every
/// contender, streams the post-training period prequentially, and scores
/// each slot. Contenders whose factory reports a typed error (task
/// mismatch, unstreamable mode) become `n/a` cells; infrastructure errors
/// (a slot rejecting the shared stream) abort the regime.
pub fn run_scenario(
    spec: &ScenarioSpec,
    cfg: &ScenarioConfig,
) -> Result<RegimeReport, SplashError> {
    let dataset = &spec.dataset;
    let any_online = spec
        .models
        .iter()
        .any(|m| matches!(m.engine, EngineSpec::Splash { online: true }));
    let mut builder =
        SplashService::builder(cfg.splash).late_edge_policy(LateEdgePolicy::Error);
    if any_online {
        builder = builder.online(cfg.online);
    }
    let mut service = builder.build()?;

    // Register every contender; factories that refuse the regime become
    // skipped cells rather than errors.
    let mut lanes: Vec<Lane> = Vec::new();
    let mut skipped: Vec<(usize, String)> = Vec::new();
    for (i, m) in spec.models.iter().enumerate() {
        let online = match &m.engine {
            EngineSpec::Splash { online: false } => {
                service.train_frozen_model(&m.name, dataset)?;
                false
            }
            EngineSpec::Splash { online: true } => {
                service.train_model(&m.name, dataset)?;
                true
            }
            EngineSpec::External(factory) => match factory(dataset, &cfg.splash) {
                Ok(engine) => {
                    service.register_engine(&m.name, engine)?;
                    false
                }
                Err(e) => {
                    skipped.push((i, e.to_string()));
                    continue;
                }
            },
        };
        lanes.push(Lane {
            spec_idx: i,
            name: m.name.clone(),
            online,
            logits: Vec::new(),
            served: 0,
            ingest_secs: 0.0,
            edges: 0,
            hist: LatencyHistogram::default(),
        });
    }

    // Every slot consumed the same training prefix, so the live period
    // starts at one shared clock; a mismatch means a factory violated the
    // protocol and the comparison would be apples-to-oranges.
    let mut t_live = f64::NEG_INFINITY;
    for lane in &lanes {
        t_live = t_live.max(service.model_last_time(&lane.name)?);
    }
    for lane in &lanes {
        let t = service.model_last_time(&lane.name)?;
        if t != t_live && !(t == f64::NEG_INFINITY && t_live == f64::NEG_INFINITY) {
            return Err(SplashError::InvalidConfig {
                what: format!(
                    "contender {:?} starts serving at t={t}, others at t={t_live}: \
                     every engine must consume the same training prefix",
                    lane.name
                ),
            });
        }
    }
    let prefix = dataset.stream.prefix_len_at(t_live);
    let (_, val_end) = split_bounds(dataset.queries.len());

    let mut pending: Vec<TemporalEdge> = Vec::new();
    let mut resp = PredictResponse::default();
    let mut labels: Vec<&Label> = Vec::new();
    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    pending.push(edge.clone());
                }
            }
            Event::Query(qi, q) => {
                if !pending.is_empty() {
                    for lane in &mut lanes {
                        let started = cfg.timing.then(Instant::now);
                        service.ingest(&lane.name, IngestRequest::new(&pending))?;
                        if let Some(t0) = started {
                            lane.ingest_secs += t0.elapsed().as_secs_f64();
                        }
                        lane.edges += pending.len() as u64;
                    }
                    pending.clear();
                }
                let scored = qi >= val_end && q.time >= t_live;
                if scored {
                    labels.push(&q.label);
                }
                // Prequential order: every slot answers before any slot
                // sees the ground truth.
                for lane in &mut lanes {
                    if scored {
                        let started = cfg.timing.then(Instant::now);
                        service.predict_into(
                            &lane.name,
                            PredictRequest::new(q.node, q.time),
                            &mut resp,
                        )?;
                        if let Some(t0) = started {
                            lane.hist.record_ns(t0.elapsed().as_nanos() as u64);
                        }
                        lane.logits.extend_from_slice(&resp.logits);
                        lane.served += 1;
                    }
                }
                for lane in &lanes {
                    if lane.online && q.time >= t_live {
                        service.observe_labels(&lane.name, std::slice::from_ref(q))?;
                    }
                }
            }
        }
    }
    if !pending.is_empty() {
        for lane in &mut lanes {
            let started = cfg.timing.then(Instant::now);
            service.ingest(&lane.name, IngestRequest::new(&pending))?;
            if let Some(t0) = started {
                lane.ingest_secs += t0.elapsed().as_secs_f64();
            }
            lane.edges += pending.len() as u64;
        }
    }

    // Score each lane and assemble the cells in spec order.
    let info = service.models_info();
    let engine_of = |name: &str| {
        info.iter()
            .find(|i| i.name == name)
            .map(|i| i.engine.clone())
            .unwrap_or_else(|| "-".to_string())
    };
    let mut cells: Vec<ScenarioCell> = Vec::with_capacity(spec.models.len());
    // The regime-wide latency view: every lane's histogram folded into
    // one, so the pooled p99 prices all contenders' serving together.
    let pooled_p99_us = cfg.timing.then(|| {
        let mut pooled = LatencyHistogram::default();
        for lane in &lanes {
            pooled.merge(&lane.hist);
        }
        pooled.p99_ns() / 1_000
    });
    let mut lane_iter = lanes.into_iter().peekable();
    for (i, m) in spec.models.iter().enumerate() {
        if let Some((_, note)) = skipped.iter().find(|(si, _)| *si == i) {
            cells.push(ScenarioCell {
                model: m.name.clone(),
                engine: "-".to_string(),
                online: false,
                queries: 0,
                metric: None,
                ap: None,
                edges_per_sec: None,
                p99_us: None,
                note: Some(note.clone()),
            });
            continue;
        }
        let lane = lane_iter
            .next()
            .expect("every non-skipped model has a lane, in spec order");
        debug_assert_eq!(lane.spec_idx, i);
        let out_dim = lane.logits.len().checked_div(lane.served).unwrap_or(0);
        let logits = Matrix::from_vec(lane.served, out_dim, lane.logits);
        let metric = crate::task::evaluate(dataset.task, &logits, &labels);
        let ap = (dataset.task == Task::Anomaly && out_dim >= 2).then(|| {
            let p = nn::softmax(&logits);
            let scores: Vec<f32> = (0..p.rows()).map(|r| p.get(r, 1)).collect();
            let truth: Vec<bool> = labels.iter().map(|l| l.class() == 1).collect();
            eval::average_precision(&scores, &truth)
        });
        cells.push(ScenarioCell {
            model: lane.name.clone(),
            engine: engine_of(&lane.name),
            online: lane.online,
            queries: lane.served,
            metric: Some(metric),
            ap,
            edges_per_sec: (cfg.timing && lane.ingest_secs > 0.0)
                .then(|| lane.edges as f64 / lane.ingest_secs),
            p99_us: cfg.timing.then(|| lane.hist.p99_ns() / 1_000),
            note: None,
        });
    }

    Ok(RegimeReport {
        regime: spec.regime.clone(),
        dataset: dataset.name.clone(),
        task: dataset.task,
        metric_name: metric_name(dataset.task),
        cells,
        pooled_p99_us,
    })
}

/// Runs every scenario in order and assembles the matrix artifact.
pub fn run_matrix(
    specs: &[ScenarioSpec],
    cfg: &ScenarioConfig,
) -> Result<ScenarioReport, SplashError> {
    let mut regimes = Vec::with_capacity(specs.len());
    for spec in specs {
        regimes.push(run_scenario(spec, cfg)?);
    }
    Ok(ScenarioReport { seed: cfg.splash.seed, regimes })
}

// ---------------------------------------------------------------------------
// Rendering. Both forms are pure functions of the report value; floats
// print through `{}` (shortest round-trip) in JSON and `{:.4}` in
// markdown, so fixed metric bits give fixed artifact bytes.

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

impl ScenarioReport {
    /// The machine-readable artifact (stable key order, shortest
    /// round-trip float formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seed\":{},\"regimes\":[", self.seed);
        for (ri, regime) in self.regimes.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"regime\":\"{}\",\"dataset\":\"{}\",\"task\":\"{}\",\"metric\":\"{}\",\"cells\":[",
                json_escape(&regime.regime),
                json_escape(&regime.dataset),
                task_name(regime.task),
                json_escape(regime.metric_name),
            );
            for (ci, cell) in regime.cells.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"model\":\"{}\",\"engine\":\"{}\",\"online\":{},\"queries\":{},\
                     \"metric\":{},\"ap\":{},\"edges_per_sec\":{},\"p99_us\":{},\"note\":{}}}",
                    json_escape(&cell.model),
                    json_escape(&cell.engine),
                    cell.online,
                    cell.queries,
                    json_f64(cell.metric),
                    json_f64(cell.ap),
                    json_f64(cell.edges_per_sec),
                    cell.p99_us.map_or("null".to_string(), |v| v.to_string()),
                    cell.note
                        .as_deref()
                        .map_or("null".to_string(), |n| format!("\"{}\"", json_escape(n))),
                );
            }
            out.push(']');
            // Timing-only key: absent (not null) with timing off, so the
            // deterministic artifact keeps its exact bytes.
            if let Some(p99) = regime.pooled_p99_us {
                let _ = write!(out, ",\"pooled_p99_us\":{p99}");
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// The human-readable artifact: one Table III-style table per regime.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Scenario matrix (seed {})", self.seed);
        for regime in &self.regimes {
            let _ = writeln!(
                out,
                "\n## {} — {} ({}, {})\n",
                regime.regime,
                regime.dataset,
                task_name(regime.task),
                regime.metric_name,
            );
            let _ = writeln!(
                out,
                "| model | engine | online | {} | AP | queries | edges/s | p99 (µs) |",
                regime.metric_name
            );
            let _ = writeln!(out, "|---|---|---|---:|---:|---:|---:|---:|");
            for cell in &regime.cells {
                let fmt_f = |v: Option<f64>| match v {
                    Some(x) if x.is_finite() => format!("{x:.4}"),
                    _ => "-".to_string(),
                };
                let row = format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} |",
                    cell.model,
                    cell.engine,
                    if cell.online { "on" } else { "off" },
                    match cell.note {
                        Some(ref n) => format!("n/a ({n})"),
                        None => fmt_f(cell.metric),
                    },
                    fmt_f(cell.ap),
                    cell.queries,
                    match cell.edges_per_sec {
                        Some(x) if x.is_finite() => format!("{x:.0}"),
                        _ => "-".to_string(),
                    },
                    cell.p99_us.map_or("-".to_string(), |v| v.to_string()),
                );
                let _ = writeln!(out, "{row}");
            }
            if let Some(p99) = regime.pooled_p99_us {
                let _ = writeln!(out, "\npooled predict p99 (µs): {p99}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> (ScenarioSpec, ScenarioConfig) {
        let dataset = datasets::synthetic_shift(50, 7);
        let dataset = crate::select::truncate_to_available(&dataset, 0.12);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let spec = ScenarioSpec {
            regime: "drift".into(),
            dataset,
            models: vec![ModelSpec {
                name: "splash".into(),
                engine: EngineSpec::Splash { online: false },
            }],
        };
        (spec, ScenarioConfig::new(cfg))
    }

    #[test]
    fn single_cell_matrix_runs_and_renders() {
        let (spec, cfg) = tiny_spec();
        let report = run_matrix(std::slice::from_ref(&spec), &cfg).unwrap();
        assert_eq!(report.regimes.len(), 1);
        let cell = &report.regimes[0].cells[0];
        assert!(cell.metric.is_some());
        assert!(cell.queries > 0);
        assert_eq!(cell.edges_per_sec, None, "timing off leaves timing cells empty");
        let json = report.to_json();
        assert!(json.contains("\"regime\":\"drift\""), "{json}");
        assert!(json.contains("\"edges_per_sec\":null"), "{json}");
        assert!(!json.contains("pooled_p99_us"), "timing off must omit the pooled key: {json}");
        let md = report.to_markdown();
        assert!(md.contains("| splash | splash | off |"), "{md}");
        assert!(!md.contains("pooled predict p99"), "{md}");
    }

    #[test]
    fn timing_pools_lane_histograms_into_a_regime_p99() {
        let (spec, mut cfg) = tiny_spec();
        cfg.timing = true;
        let report = run_scenario(&spec, &cfg).unwrap();
        let pooled = report.pooled_p99_us.expect("timing on fills the pooled cell");
        // One lane: the pooled (merged) histogram is that lane's histogram.
        assert_eq!(Some(pooled), report.cells[0].p99_us);
        let artifact = ScenarioReport { seed: 0, regimes: vec![report] };
        assert!(artifact.to_json().contains("\"pooled_p99_us\":"), "{}", artifact.to_json());
        assert!(
            artifact.to_markdown().contains("pooled predict p99 (µs):"),
            "{}",
            artifact.to_markdown()
        );
    }

    #[test]
    fn skipped_contender_renders_as_na_cell() {
        let (mut spec, cfg) = tiny_spec();
        spec.models.push(ModelSpec {
            name: "grumpy".into(),
            engine: EngineSpec::External(Box::new(|_, _| {
                Err(SplashError::TaskUnsupported { model: "grumpy".into(), task: "drift" })
            })),
        });
        let report = run_scenario(&spec, &cfg).unwrap();
        assert_eq!(report.cells.len(), 2);
        let cell = &report.cells[1];
        assert_eq!(cell.metric, None);
        assert!(cell.note.as_deref().unwrap().contains("does not support"), "{cell:?}");
        assert!(report.cells[0].metric.is_some());
    }

    #[test]
    fn json_escaping_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
