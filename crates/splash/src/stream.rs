//! Online streaming inference (paper Fig. 4).
//!
//! The batch pipeline in [`crate::pipeline`] trains and evaluates over
//! captured snapshots. Deployment looks different: temporal edges arrive one
//! at a time, each label query must be answered *immediately* from state
//! maintained so far, and the state must stay sub-linear in the number of
//! edges. [`StreamingPredictor`] packages a trained SLIM model with exactly
//! that state — the feature [`Augmenter`] (fixed seen-node features,
//! propagated unseen-node features, incremental degrees) and a per-node ring
//! of the `k` most recent incident edges with feature snapshots.
//!
//! The *witness* half of that state — the augmenter plus the stream clock —
//! is a global, single-writer function of the edge stream, factored into
//! its own `WitnessState` component: a standalone predictor owns one, while
//! the ring partitions inside a [`crate::shard::ShardedPredictor`] stay
//! witness-less — the engine's single shared witness either writes their
//! ring slots directly (serial ingest) or hands them pre-materialized
//! `EdgeSnapshot`s (thread-parallel ingest), so per-shard ingest work is
//! O(owned endpoints), not O(edges).
//!
//! Predictions are bit-identical to the batch pipeline's (verified by the
//! `streaming_matches_batch_pipeline` test): both paths snapshot neighbor
//! features at edge-arrival time, as Eq. 14 requires.

use std::cell::RefCell;

use ctdg::{Label, NodeId, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use nn::{Matrix, Workspace};

use crate::augment::{Augmenter, FeatureProcess};
use crate::capture::{capture, seen_end_time, CapturedNeighbor, CapturedQuery, InputFeatures};
use crate::config::SplashConfig;
use crate::error::SplashError;
use crate::pipeline::{split_bounds, train_slim, SEEN_FRAC};
use crate::select::select_features;
use crate::slim::{SlimBatch, SlimModel};
use crate::task::output_dim;

/// Chunk size [`StreamingPredictor::try_predict_batch`] hands to the
/// (chunk-parallel) batched forward pass.
const STREAM_BATCH: usize = 256;

/// A ring of the `k` most recent incident edges, with feature snapshots.
#[derive(Debug, Clone, Default)]
struct Ring {
    entries: Vec<CapturedNeighbor>,
    head: usize,
}

/// One node's ring as a durable checkpoint sees it: the owning node id, the
/// overwrite cursor, and the captured entries in *storage* order (the
/// oldest-first read order is `entries[head..]` then `entries[..head]`, and
/// restoring both fields verbatim preserves it bit for bit).
#[derive(Debug, Clone)]
pub(crate) struct RingState {
    /// Node id owning this ring.
    pub node: NodeId,
    /// Overwrite cursor (0 while the ring is still filling).
    pub head: usize,
    /// Captured neighbor snapshots in storage order.
    pub entries: Vec<CapturedNeighbor>,
}

/// Everything a [`StreamingPredictor`] holds that `persist::SavedModel`
/// does not: augmenter/tracker state, the non-empty per-node rings, and the
/// stream clock. Assembled by `assemble_stream_state` from a recovered
/// witness + ring partitions and consumed by
/// [`StreamingPredictor::try_from_saved_state`].
#[derive(Debug, Clone)]
pub(crate) struct StreamState {
    /// Feature-augmentation state (seen tables, propagated features, degrees).
    pub augmenter: crate::augment::AugmenterState,
    /// Non-empty rings only (empty rings are implicit).
    pub rings: Vec<RingState>,
    /// Ring capacity `k` at capture time (must match the model's config).
    pub k: usize,
    /// Arrival time of the most recently observed edge.
    pub last_time: f64,
}

/// Reassembles one unsharded [`StreamState`] from a recovered witness
/// snapshot plus the per-shard ring partitions: the single witness carries
/// the augmenter/clock, and the ring union restores every node's ring.
/// Rejects duplicate ring ownership — a shard set spliced together from
/// two different checkpoints.
pub(crate) fn assemble_stream_state(
    witness: WitnessSnapshot,
    ring_shards: Vec<Vec<RingState>>,
) -> Result<StreamState, SplashError> {
    let mut rings: Vec<RingState> = ring_shards.into_iter().flatten().collect();
    rings.sort_unstable_by_key(|r| r.node);
    if rings.windows(2).any(|w| w[0].node == w[1].node) {
        return Err(SplashError::CorruptModel {
            what: "two shard state files claim rings for the same node".into(),
        });
    }
    Ok(StreamState {
        augmenter: witness.augmenter,
        rings,
        k: witness.k,
        last_time: witness.last_time,
    })
}

/// The global *witness* state of an edge stream: the feature [`Augmenter`]
/// plus the stream clock. Degree encodings and propagated features are
/// global functions of the whole stream (the paper's core observation), so
/// there is exactly one writer of this state per logical model — a
/// standalone [`StreamingPredictor`] owns one, a
/// [`crate::shard::ShardedPredictor`] owns one shared by all of its ring
/// partitions.
#[derive(Debug, Clone)]
pub(crate) struct WitnessState {
    /// Feature tracker (seen tables, propagated features, degrees).
    pub augmenter: Augmenter,
    /// Arrival time of the most recently observed edge.
    pub last_time: f64,
}

impl WitnessState {
    /// Witnesses one edge: updates the tracker and the stream clock, and
    /// materializes everything a ring partition needs — the post-update
    /// endpoint feature snapshots, the edge payload, and the precomputed
    /// ring owners under an `shards`-way partition — into the reusable
    /// `snap` buffer. One call per edge per *batch*, shared by every
    /// shard; the snapshot buffers are reused across batches, so
    /// steady-state witnessing is allocation-free. Only the
    /// thread-parallel ingest path materializes snapshots (serial ingest
    /// writes ring slots directly), so this is unused without `parallel`.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    pub fn observe_into(
        &mut self,
        edge: &TemporalEdge,
        process: FeatureProcess,
        shards: usize,
        snap: &mut EdgeSnapshot,
    ) {
        self.augmenter.observe(edge);
        snap.src = edge.src;
        snap.dst = edge.dst;
        // Ring slots snapshot the *other* endpoint's post-observe features
        // (Eq. 14 snapshot-at-arrival): the src ring reads dst's, the dst
        // ring reads src's. A self-loop writes only the src ring.
        self.augmenter.feature_into(process, edge.dst, &mut snap.dst_feat);
        if edge.src != edge.dst {
            self.augmenter.feature_into(process, edge.src, &mut snap.src_feat);
        }
        snap.edge_feat.clear();
        snap.edge_feat.extend_from_slice(&edge.feat);
        snap.time = edge.time;
        snap.weight = edge.weight;
        snap.owner_src = crate::shard::shard_of(edge.src, shards);
        snap.owner_dst = crate::shard::shard_of(edge.dst, shards);
        self.last_time = edge.time;
    }
}

/// Everything one witnessed edge contributes to the ring partitions,
/// materialized once by `WitnessState::observe_into` and consumed by
/// `StreamingPredictor::apply_snapshots` on each shard. Plain owned data
/// (no references into the witness), so a batch of snapshots can be read
/// by every shard thread concurrently. Serial ingest bypasses snapshots
/// entirely (`StreamingPredictor::remember_side`), so the fields are only
/// read with the `parallel` feature.
#[derive(Debug, Clone, Default)]
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
pub(crate) struct EdgeSnapshot {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// `src`'s post-observe features (what the dst ring snapshots); left
    /// stale on self-loops, which never read it.
    pub src_feat: Vec<f32>,
    /// `dst`'s post-observe features (what the src ring snapshots).
    pub dst_feat: Vec<f32>,
    /// The edge's own feature payload.
    pub edge_feat: Vec<f32>,
    /// Edge arrival time.
    pub time: f64,
    /// Edge weight.
    pub weight: f32,
    /// Ring owner of `src` under the batch's shard count.
    pub owner_src: usize,
    /// Ring owner of `dst` under the batch's shard count.
    pub owner_dst: usize,
}

/// The witness half of a durable checkpoint: augmenter state, ring
/// capacity, and the stream clock — written once per checkpoint regardless
/// of the shard count (the rings travel separately, one file per shard).
#[derive(Debug, Clone)]
pub(crate) struct WitnessSnapshot {
    /// Feature-augmentation state (seen tables, propagated features, degrees).
    pub augmenter: crate::augment::AugmenterState,
    /// Ring capacity `k` at capture time (must match the model's config).
    pub k: usize,
    /// Arrival time of the most recently observed edge.
    pub last_time: f64,
}

/// Reusable buffers for steady-state query answering: assembled query
/// inputs, the packed batch, the model's workspace, and the logits buffer.
/// Warmed up by the first few predictions, then reused verbatim, so
/// [`StreamingPredictor::try_predict_into`] stays off the allocator.
#[derive(Debug, Clone, Default)]
struct PredictScratch {
    query: CapturedQuery,
    queries: Vec<CapturedQuery>,
    /// Parked neighbor slots: when a query has fewer neighbors than the
    /// previous one, the surplus slots move here instead of being dropped,
    /// keeping their feature buffers alive for the next longer query.
    spare: Vec<CapturedNeighbor>,
    batch: SlimBatch,
    ws: Workspace,
    logits: Matrix,
}

/// A trained SPLASH model plus all streaming state, ready to consume a live
/// edge stream and answer label queries in real time.
#[derive(Debug, Clone)]
pub struct StreamingPredictor {
    model: SlimModel,
    /// The global witness state. `Some` for a predictor that owns its
    /// stream (the standalone case); `None` for a ring-partition member
    /// inside a [`crate::shard::ShardedPredictor`], which reads the
    /// engine's single shared witness instead of carrying a copy.
    witness: Option<WitnessState>,
    process: FeatureProcess,
    rings: Vec<Ring>,
    k: usize,
    /// The full training config, kept so the predictor can persist itself
    /// ([`StreamingPredictor::save`]) without the caller re-supplying it.
    cfg: SplashConfig,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    /// Interior-mutable so the `&self` prediction methods can reuse their
    /// assembly buffers across calls. This makes the predictor
    /// single-threaded (`!Sync`) by design; for concurrent serving, clone
    /// one predictor per worker (cloning isolates the scratch) or use
    /// [`StreamingPredictor::try_predict_batch`], which parallelizes over
    /// query chunks internally.
    scratch: RefCell<PredictScratch>,
}

impl StreamingPredictor {
    /// Trains SPLASH on the dataset's training period (with automatic
    /// feature selection) and returns a predictor primed with every edge up
    /// to the end of the seen period, ready to continue from there.
    pub fn train(dataset: &Dataset, cfg: &SplashConfig) -> Self {
        let report = select_features(dataset, cfg, SEEN_FRAC);
        Self::train_with_process(dataset, cfg, report.selected)
    }

    /// Like [`StreamingPredictor::train`] but with a fixed augmentation
    /// process (skipping selection).
    pub fn train_with_process(
        dataset: &Dataset,
        cfg: &SplashConfig,
        process: FeatureProcess,
    ) -> Self {
        let cap = capture(dataset, InputFeatures::Process(process), cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (model, _) = train_slim(&cap, dataset, &cap.queries[..train_end], cfg);

        let t_seen = seen_end_time(dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        let augmenter = Augmenter::with_source(
            &dataset.stream,
            prefix,
            dataset.stream.num_nodes(),
            cfg.feat_dim,
            &cfg.node2vec,
            cfg.positional,
            cfg.degree_alpha,
            cfg.seed,
        );
        let mut predictor = Self {
            model,
            witness: Some(WitnessState { augmenter, last_time: f64::NEG_INFINITY }),
            process,
            rings: Vec::new(),
            k: cfg.k,
            cfg: *cfg,
            feat_dim: cap.feat_dim,
            edge_feat_dim: cap.edge_feat_dim,
            out_dim: output_dim(dataset.task, dataset.num_classes),
            scratch: RefCell::new(PredictScratch::default()),
        };
        // Prime the neighbor rings with the seen-period edges. The
        // augmenter already observed them in `Augmenter::new`, so only the
        // rings are updated here.
        let w = predictor.witness.as_mut().expect("just constructed with an owned witness");
        for edge in &dataset.stream.edges()[..prefix] {
            Self::remember(&mut predictor.rings, cfg.k, &w.augmenter, process, edge);
            w.last_time = edge.time;
        }
        predictor
    }

    /// Rebuilds a predictor from a model restored with
    /// [`crate::persist::load_model`], skipping training entirely: the
    /// augmenter is reconstructed deterministically from the training
    /// stream and the stored (seeded) config, so the result is identical to
    /// the predictor that existed when the model was saved.
    ///
    /// Returns [`SplashError::NotStreamable`] when the saved model's
    /// feature mode is not a single augmentation process (streaming state
    /// is defined per process).
    pub fn try_from_saved(
        saved: crate::persist::SavedModel,
        dataset: &Dataset,
    ) -> Result<Self, SplashError> {
        let Some(process) = saved.selected() else {
            return Err(SplashError::NotStreamable { mode: saved.mode.name() });
        };
        let cfg = saved.cfg;
        let t_seen = seen_end_time(dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        let augmenter = Augmenter::with_source(
            &dataset.stream,
            prefix,
            dataset.stream.num_nodes(),
            cfg.feat_dim,
            &cfg.node2vec,
            cfg.positional,
            cfg.degree_alpha,
            cfg.seed,
        );
        let mut predictor = Self {
            model: saved.model,
            witness: Some(WitnessState { augmenter, last_time: f64::NEG_INFINITY }),
            process,
            rings: Vec::new(),
            k: cfg.k,
            cfg,
            feat_dim: saved.feat_dim,
            edge_feat_dim: saved.edge_feat_dim,
            out_dim: saved.out_dim,
            scratch: RefCell::new(PredictScratch::default()),
        };
        let w = predictor.witness.as_mut().expect("just constructed with an owned witness");
        for edge in &dataset.stream.edges()[..prefix] {
            Self::remember(&mut predictor.rings, cfg.k, &w.augmenter, process, edge);
            w.last_time = edge.time;
        }
        Ok(predictor)
    }

    /// Clones the witness half of the streaming state a durable checkpoint
    /// must persist on top of the saved model: augmenter state, ring
    /// capacity, and the stream clock. Requires an owned witness (a shard
    /// member's witness lives on its `ShardedPredictor`).
    pub(crate) fn durable_witness(&self) -> WitnessSnapshot {
        let w = self.witness();
        WitnessSnapshot { augmenter: w.augmenter.durable_state(), k: self.k, last_time: w.last_time }
    }

    /// Clones this predictor's non-empty rings (in storage order, with
    /// cursors) — the partition half of a durable checkpoint.
    pub(crate) fn durable_rings(&self) -> Vec<RingState> {
        self.rings
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.entries.is_empty())
            .map(|(i, r)| RingState {
                node: i as NodeId,
                head: r.head,
                entries: r.entries.clone(),
            })
            .collect()
    }

    /// Rebuilds a predictor from a restored model *plus* a captured
    /// [`StreamState`] — the fast-restart path. Unlike
    /// [`StreamingPredictor::try_from_saved`], this neither rebuilds the
    /// positional embedding nor replays the training prefix: the cost is
    /// O(state), independent of the stream length, and the result is
    /// bit-identical to the predictor that produced the state.
    ///
    /// Dimension agreement between the model and the state is the caller's
    /// contract; the cheap invariants (process mode, feature dimension,
    /// ring capacity) are re-checked here and report
    /// [`SplashError::CorruptModel`] on mismatch.
    pub(crate) fn try_from_saved_state(
        saved: crate::persist::SavedModel,
        state: StreamState,
    ) -> Result<Self, SplashError> {
        let Some(process) = saved.selected() else {
            return Err(SplashError::NotStreamable { mode: saved.mode.name() });
        };
        let cfg = saved.cfg;
        if state.augmenter.dv != cfg.feat_dim {
            return Err(SplashError::CorruptModel {
                what: format!(
                    "state feature dim {} does not match the model's {}",
                    state.augmenter.dv, cfg.feat_dim
                ),
            });
        }
        if state.k != cfg.k {
            return Err(SplashError::CorruptModel {
                what: format!(
                    "state ring capacity {} does not match the model's k={}",
                    state.k, cfg.k
                ),
            });
        }
        let mut predictor = Self {
            model: saved.model,
            witness: Some(WitnessState {
                augmenter: Augmenter::from_durable_state(state.augmenter, cfg.degree_alpha),
                last_time: state.last_time,
            }),
            process,
            rings: Vec::new(),
            k: cfg.k,
            cfg,
            feat_dim: saved.feat_dim,
            edge_feat_dim: saved.edge_feat_dim,
            out_dim: saved.out_dim,
            scratch: RefCell::new(PredictScratch::default()),
        };
        for ring in state.rings {
            if ring.entries.len() > predictor.k
                || ring.head >= ring.entries.len().max(1)
                || (ring.entries.len() < predictor.k && ring.head != 0)
            {
                return Err(SplashError::CorruptModel {
                    what: format!(
                        "ring for node {} is inconsistent ({} entries, head {}, k={})",
                        ring.node,
                        ring.entries.len(),
                        ring.head,
                        predictor.k
                    ),
                });
            }
            Self::grow_rings(&mut predictor.rings, ring.node);
            let slot = &mut predictor.rings[ring.node as usize];
            slot.head = ring.head;
            slot.entries = ring.entries;
            // Keep the one-allocation-per-ring discipline: a partially
            // filled restored ring must not regrow through doubling.
            slot.entries.reserve_exact(predictor.k - slot.entries.len());
        }
        Ok(predictor)
    }

    /// Persists this predictor's model (and everything needed to restore
    /// it with [`StreamingPredictor::try_from_saved`]) to `path`.
    ///
    /// `&mut self` only because parameter access goes through
    /// `Parameterized::params_mut`; no value changes.
    pub fn save(&mut self, path: &std::path::Path) -> Result<(), SplashError> {
        self.save_with_opt(path, None)
    }

    /// [`StreamingPredictor::save`] plus an optional checkpoint of the
    /// online-fine-tuning optimizer (`SAVEDOPT` section — see
    /// [`crate::persist::save_model_with_opt`]).
    pub fn save_with_opt(
        &mut self,
        path: &std::path::Path,
        opt: Option<&crate::slim::AdamState>,
    ) -> Result<(), SplashError> {
        crate::persist::save_model_with_opt(
            path,
            &mut self.model,
            &self.cfg,
            InputFeatures::Process(self.process),
            self.feat_dim,
            self.edge_feat_dim,
            self.out_dim,
            opt,
        )
    }

    /// Serializes this predictor's model artifact (the exact bytes
    /// [`StreamingPredictor::save_with_opt`] would write) into memory, for
    /// the durable checkpoint layer to write through its crash-injection
    /// seam.
    pub(crate) fn model_artifact_bytes(
        &mut self,
        opt: Option<&crate::slim::AdamState>,
    ) -> Result<Vec<u8>, SplashError> {
        crate::persist::model_artifact_bytes(
            &mut self.model,
            &self.cfg,
            InputFeatures::Process(self.process),
            self.feat_dim,
            self.edge_feat_dim,
            self.out_dim,
            opt,
        )
    }

    /// Persists this predictor's model as a *sharded* artifact (manifest +
    /// `shards` model files); the sharded counterpart of
    /// [`StreamingPredictor::save`], used by
    /// [`crate::shard::ShardedPredictor::save`].
    pub(crate) fn save_sharded(
        &mut self,
        path: &std::path::Path,
        shards: usize,
        opt: Option<&crate::slim::AdamState>,
    ) -> Result<(), SplashError> {
        crate::persist::save_sharded_model_with_opt(
            path,
            &mut self.model,
            &self.cfg,
            InputFeatures::Process(self.process),
            self.feat_dim,
            self.edge_feat_dim,
            self.out_dim,
            shards,
            opt,
        )
    }

    /// The trained SLIM model this predictor serves (read-only; the online
    /// trainer clones it as its hot-standby training copy).
    pub(crate) fn model(&self) -> &SlimModel {
        &self.model
    }

    /// Atomically replaces the served weights with `src`'s (same
    /// architecture; allocation-free). The weight-publish half of online
    /// continual learning: streaming state (rings, augmenter, clock) is
    /// untouched, so the very next query runs the new weights over exactly
    /// the state the old weights saw.
    pub(crate) fn set_model_weights(&mut self, src: &SlimModel) {
        self.model.copy_weights_from(src);
    }

    /// The selected (or fixed) augmentation process this predictor uses.
    pub fn process(&self) -> FeatureProcess {
        self.process
    }

    /// Arrival time of the most recently observed edge.
    pub fn last_time(&self) -> f64 {
        self.witness().last_time
    }

    /// Number of node ids with allocated state (training universe plus
    /// everything ingested since); valid ids are `0..known_nodes()`.
    pub fn known_nodes(&self) -> usize {
        self.witness().augmenter.known_nodes()
    }

    /// The owned witness view every public query/ingest method reads.
    ///
    /// Panics on a detached shard member — by construction only
    /// [`crate::shard::ShardedPredictor`] holds witness-less predictors,
    /// and it routes every call through its shared witness via the
    /// `*_with` variants instead.
    fn witness(&self) -> &WitnessState {
        self.witness
            .as_ref()
            .expect("detached shard member: route through the ShardedPredictor")
    }

    /// Takes ownership of this predictor's witness state, leaving it a
    /// witness-less ring partition. Used once by
    /// [`crate::shard::ShardedPredictor`] construction: the base
    /// predictor's witness becomes the engine's single shared witness.
    pub(crate) fn detach_witness(&mut self) -> WitnessState {
        self.witness.take().expect("witness already detached")
    }

    /// Output (logit) width of the model: one column per class.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The configuration this predictor was trained (or restored) with.
    pub fn config(&self) -> &SplashConfig {
        &self.cfg
    }

    /// Grows the ring table to cover `node` (a free function over the
    /// `rings` field so callers can keep borrowing the augmenter).
    fn grow_rings(rings: &mut Vec<Ring>, node: NodeId) {
        let need = node as usize + 1;
        if rings.len() < need {
            rings.resize_with(need, Ring::default);
        }
    }

    /// Pre-grows the ring table to cover `node`, so a following
    /// [`StreamingPredictor::apply_snapshots`] never reallocates.
    /// Unwritten entries stay default (empty) rings — invisible to
    /// queries and to durable snapshots, which skip empty rings. Only
    /// the thread-parallel ingest path pre-grows (serial ingest grows on
    /// demand inside `push_slot`), so this is unused without `parallel`.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    pub(crate) fn ensure_ring_capacity(&mut self, node: NodeId) {
        Self::grow_rings(&mut self.rings, node);
    }

    /// Hands out the ring slot the next entry for `node` should overwrite,
    /// growing the ring table only during warm-up.
    fn push_slot(rings: &mut Vec<Ring>, k: usize, node: NodeId) -> &mut CapturedNeighbor {
        Self::grow_rings(rings, node);
        let ring = &mut rings[node as usize];
        if ring.entries.len() < k {
            if ring.entries.capacity() == 0 {
                // One allocation per ring, ever: the ring can only hold k
                // entries, so reserve them all on first touch instead of
                // growing through the doubling sequence.
                ring.entries.reserve_exact(k);
            }
            ring.entries.push(CapturedNeighbor::default());
            ring.entries.last_mut().expect("just pushed")
        } else {
            let head = ring.head;
            ring.head = (ring.head + 1) % k;
            &mut ring.entries[head]
        }
    }

    /// Fills one (reused) ring slot with the snapshot of `other` as seen
    /// from the slot owner's side of `edge` — a free function over the
    /// augmenter so the caller can keep its mutable borrow of the rings.
    fn fill_slot(
        augmenter: &Augmenter,
        process: FeatureProcess,
        slot: &mut CapturedNeighbor,
        other: NodeId,
        edge: &TemporalEdge,
    ) {
        slot.other = other;
        augmenter.feature_into(process, other, &mut slot.feat);
        slot.edge_feat.clear();
        slot.edge_feat.extend_from_slice(&edge.feat);
        slot.time = edge.time;
        slot.weight = edge.weight;
    }

    /// The *serial* sharded-ingest primitive: writes this engine's ring
    /// slot for one side of `edge` directly from the (just-updated)
    /// witness augmenter — the same single-copy path the unsharded
    /// [`StreamingPredictor::try_push_edges`] takes, so serial routed
    /// ingest materializes no intermediate snapshots at all. The
    /// thread-parallel path goes through
    /// [`StreamingPredictor::apply_snapshots`] instead (shard threads
    /// cannot read the witness while it advances).
    pub(crate) fn remember_side(
        &mut self,
        augmenter: &Augmenter,
        process: FeatureProcess,
        node: NodeId,
        other: NodeId,
        edge: &TemporalEdge,
    ) {
        let slot = Self::push_slot(&mut self.rings, self.k, node);
        Self::fill_slot(augmenter, process, slot, other, edge);
    }

    /// Snapshots both endpoints' current features into the rings, writing
    /// each snapshot directly into its (reused) ring slot — steady-state
    /// edge ingestion touches the allocator only when a ring or the ring
    /// table itself grows. An associated function over the ring fields so
    /// callers can keep borrowing the witness they just updated.
    fn remember(
        rings: &mut Vec<Ring>,
        k: usize,
        augmenter: &Augmenter,
        process: FeatureProcess,
        edge: &TemporalEdge,
    ) {
        let slot = Self::push_slot(rings, k, edge.src);
        Self::fill_slot(augmenter, process, slot, edge.dst, edge);
        if edge.src != edge.dst {
            let slot = Self::push_slot(rings, k, edge.dst);
            Self::fill_slot(augmenter, process, slot, edge.src, edge);
        }
    }

    /// Ingests one live temporal edge: O(d_v) feature propagation plus O(1)
    /// ring updates — independent of the total stream length. Returns
    /// [`SplashError::OutOfOrderEdge`] (leaving all state untouched) when
    /// the edge travels back in time.
    pub fn try_observe_edge(&mut self, edge: &TemporalEdge) -> Result<(), SplashError> {
        let w = self
            .witness
            .as_mut()
            .expect("detached shard member: route through the ShardedPredictor");
        if edge.time < w.last_time {
            return Err(SplashError::OutOfOrderEdge { got: edge.time, last: w.last_time });
        }
        w.augmenter.observe(edge);
        Self::remember(&mut self.rings, self.k, &w.augmenter, self.process, edge);
        w.last_time = edge.time;
        Ok(())
    }

    /// Ingests a chronologically ordered micro-batch of edges.
    ///
    /// Equivalent to calling [`StreamingPredictor::try_observe_edge`] on
    /// each edge in order — feature snapshots are still taken per edge, as
    /// Eq. 14 requires — but the fixed costs are paid once per batch
    /// instead of once per edge: the chronology check is a single pass,
    /// and the per-node ring table is grown to the batch's maximum
    /// endpoint up front so no ring push ever reallocates mid-batch.
    ///
    /// The whole batch is validated *before* any state changes, so on
    /// [`SplashError::OutOfOrderEdge`] the predictor is exactly as it was —
    /// the caller can drop or repair the batch and carry on serving.
    pub fn try_push_edges(&mut self, edges: &[TemporalEdge]) -> Result<(), SplashError> {
        let w = self
            .witness
            .as_mut()
            .expect("detached shard member: route through the ShardedPredictor");
        let Some(last) = edges.last() else { return Ok(()) };
        let mut prev = w.last_time;
        let mut max_node = 0;
        for edge in edges {
            if edge.time < prev {
                return Err(SplashError::OutOfOrderEdge { got: edge.time, last: prev });
            }
            prev = edge.time;
            max_node = max_node.max(edge.src).max(edge.dst);
        }
        Self::grow_rings(&mut self.rings, max_node);
        for edge in edges {
            w.augmenter.observe(edge);
            Self::remember(&mut self.rings, self.k, &w.augmenter, self.process, edge);
        }
        w.last_time = last.time;
        Ok(())
    }

    /// The sharded-ingest primitive behind [`crate::shard::ShardedPredictor`]:
    /// writes the ring snapshots this shard owns out of a batch of
    /// pre-materialized `EdgeSnapshot`s (one shared witness pass produced
    /// them — see `WitnessState::observe_into`). `idx` lists the snapshot
    /// indices routed to this shard (built once by that same pass), so
    /// work is O(edges owned): snapshots no endpoint of which this shard
    /// owns are never even looked at. The caller must have grown the ring
    /// table past the batch's highest node id
    /// ([`StreamingPredictor::ensure_ring_capacity`]) — computed once in
    /// the serial pass, not re-scanned per shard. Ring slots copy the
    /// snapshot buffers via `clone_from`, so steady-state application is
    /// allocation-free.
    ///
    /// For any partition of the node space, rings written this way are
    /// bit-identical to [`StreamingPredictor::try_push_edges`] over the
    /// same edges — the snapshots *are* the post-observe features that
    /// path would have read. Serial sharded ingest takes the direct
    /// [`StreamingPredictor::remember_side`] path instead, so this is
    /// unused without `parallel`.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    pub(crate) fn apply_snapshots(&mut self, snaps: &[EdgeSnapshot], idx: &[u32], shard: usize) {
        for &i in idx {
            let s = &snaps[i as usize];
            if s.owner_src == shard {
                let slot = Self::push_slot(&mut self.rings, self.k, s.src);
                slot.other = s.dst;
                slot.feat.clone_from(&s.dst_feat);
                slot.edge_feat.clone_from(&s.edge_feat);
                slot.time = s.time;
                slot.weight = s.weight;
            }
            if s.owner_dst == shard && s.src != s.dst {
                let slot = Self::push_slot(&mut self.rings, self.k, s.dst);
                slot.other = s.src;
                slot.feat.clone_from(&s.src_feat);
                slot.edge_feat.clone_from(&s.edge_feat);
                slot.time = s.time;
                slot.weight = s.weight;
            }
        }
    }

    /// Drops the ring state of every node `owns` disclaims, keeping the
    /// (global) feature tracker intact. [`crate::shard::ShardedPredictor`]
    /// applies this right after cloning the base predictor so each shard
    /// carries only its partition's rings — the dominant per-node memory.
    pub(crate) fn retain_ring_nodes(&mut self, owns: impl Fn(NodeId) -> bool) {
        for (i, ring) in self.rings.iter_mut().enumerate() {
            if !owns(i as NodeId) {
                *ring = Ring::default();
            }
        }
    }

    /// Number of nodes currently holding at least one ring entry (the
    /// shard-local state a partition actually pays for).
    pub(crate) fn active_rings(&self) -> usize {
        self.rings.iter().filter(|r| !r.entries.is_empty()).count()
    }

    /// Builds the model input for `node` as of time `t` into the reused
    /// query buffer: the target feature vector and every neighbor slot keep
    /// their allocations, and the ring is copied as (at most) two
    /// contiguous slices — oldest-first is `entries[head..]` then
    /// `entries[..head]` — instead of a per-entry modulo walk.
    fn query_input_into(
        &self,
        aug: &Augmenter,
        node: NodeId,
        time: f64,
        q: &mut CapturedQuery,
        spare: &mut Vec<CapturedNeighbor>,
    ) {
        q.node = node;
        q.time = time;
        // `q.label` is deliberately left as-is: predictions ignore labels,
        // and the labeled-capture path overwrites it via `Label::clone_from`
        // right after — resetting it here would drop a reusable affinity
        // buffer and force an allocation per absorbed label.
        aug.feature_into(self.process, node, &mut q.target_feat);
        let (older, newer) = match self.rings.get(node as usize) {
            None => (&[][..], &[][..]),
            Some(ring) => (&ring.entries[ring.head..], &ring.entries[..ring.head]),
        };
        // Shrink by parking surplus slots (keeping their buffers), grow by
        // unparking; every slot is overwritten via `clone_from`, which
        // reuses its feature allocations.
        let n = older.len() + newer.len();
        while q.neighbors.len() > n {
            spare.push(q.neighbors.pop().expect("len checked"));
        }
        for (i, src) in older.iter().chain(newer).enumerate() {
            match q.neighbors.get_mut(i) {
                Some(slot) => slot.clone_from(src),
                None => {
                    let mut slot = spare.pop().unwrap_or_default();
                    slot.clone_from(src);
                    q.neighbors.push(slot);
                }
            }
        }
    }

    /// Label-carrying ingest: assembles the model input for `node` at
    /// `time` — exactly the state a prediction at that instant would read —
    /// into the caller-owned `q`, and stamps it with `label`. This is how
    /// the online trainer turns a ground-truth observation from the live
    /// stream into an immutable training example (Eq. 14 snapshot
    /// semantics: the example is fixed at capture time, so later edges
    /// cannot leak into it).
    ///
    /// `q`'s buffers (and the `spare` slot pool) are reused across calls,
    /// so steady-state capture performs zero heap allocations. A `time`
    /// before the last observed edge reports [`SplashError::PastQuery`] —
    /// the ring state needed to honor it is already gone.
    pub fn capture_labeled_into(
        &self,
        node: NodeId,
        time: f64,
        label: &Label,
        q: &mut CapturedQuery,
        spare: &mut Vec<CapturedNeighbor>,
    ) -> Result<(), SplashError> {
        self.capture_labeled_into_with(self.witness(), node, time, label, q, spare)
    }

    /// [`StreamingPredictor::capture_labeled_into`] against an explicit
    /// witness view — how a witness-less shard member captures labels for
    /// nodes it owns, reading the sharded engine's shared witness.
    pub(crate) fn capture_labeled_into_with(
        &self,
        w: &WitnessState,
        node: NodeId,
        time: f64,
        label: &Label,
        q: &mut CapturedQuery,
        spare: &mut Vec<CapturedNeighbor>,
    ) -> Result<(), SplashError> {
        if time < w.last_time {
            return Err(SplashError::PastQuery { got: time, last: w.last_time });
        }
        self.query_input_into(&w.augmenter, node, time, q, spare);
        q.label.clone_from(label);
        Ok(())
    }

    /// Predicts the property logits of `node` at time `time` (which must
    /// not precede the last observed edge — a past-time query reports
    /// [`SplashError::PastQuery`]). Allocates only the returned vector;
    /// [`StreamingPredictor::try_predict_into`] is the fully
    /// allocation-free form.
    pub fn try_predict(&self, node: NodeId, time: f64) -> Result<Vec<f32>, SplashError> {
        let mut out = Vec::new();
        self.try_predict_into(node, time, &mut out)?;
        Ok(out)
    }

    /// [`StreamingPredictor::try_predict`] into a caller-owned vector. This
    /// is the steady-state serving path: query assembly, batch packing, and
    /// the SLIM forward all run in buffers reused across calls, so after a
    /// few warm-up queries it performs **zero heap allocations** (pinned by
    /// the `alloc` regression test); the [`SplashError::PastQuery`] error
    /// path allocates nothing either.
    pub fn try_predict_into(
        &self,
        node: NodeId,
        time: f64,
        out: &mut Vec<f32>,
    ) -> Result<(), SplashError> {
        self.try_predict_into_with(self.witness(), node, time, out)
    }

    /// [`StreamingPredictor::try_predict_into`] against an explicit witness
    /// view — the single-query serving path of a witness-less shard member.
    pub(crate) fn try_predict_into_with(
        &self,
        w: &WitnessState,
        node: NodeId,
        time: f64,
        out: &mut Vec<f32>,
    ) -> Result<(), SplashError> {
        if time < w.last_time {
            return Err(SplashError::PastQuery { got: time, last: w.last_time });
        }
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        self.query_input_into(&w.augmenter, node, time, &mut s.query, &mut s.spare);
        self.model.build_batch_into(&[&s.query], &mut s.batch);
        self.model.infer_into(&s.batch, &mut s.logits, &mut s.ws);
        out.clear();
        out.extend_from_slice(s.logits.row(0));
        Ok(())
    }

    /// Predicts logits for several nodes at once (single shared timestamp;
    /// a past timestamp reports [`SplashError::PastQuery`]).
    pub fn try_predict_many(&self, nodes: &[NodeId], time: f64) -> Result<Matrix, SplashError> {
        let w = self.witness();
        if time < w.last_time {
            return Err(SplashError::PastQuery { got: time, last: w.last_time });
        }
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        if s.queries.len() < nodes.len() {
            s.queries.resize_with(nodes.len(), CapturedQuery::default);
        }
        for (q, &v) in s.queries.iter_mut().zip(nodes) {
            self.query_input_into(&w.augmenter, v, time, q, &mut s.spare);
        }
        let refs: Vec<&CapturedQuery> = s.queries[..nodes.len()].iter().collect();
        self.model.build_batch_into(&refs, &mut s.batch);
        let mut out = Matrix::default();
        self.model.infer_into(&s.batch, &mut out, &mut s.ws);
        Ok(out)
    }

    /// Answers a micro-batch of label queries in one SLIM forward pass;
    /// row `i` of the result holds the logits for `queries[i]` (labels on
    /// the queries are ignored).
    ///
    /// Bit-identical to calling [`StreamingPredictor::try_predict`] per
    /// query (the `predict_batch_matches_single_predictions` test pins
    /// this): batching amortizes input assembly and lets the
    /// blocked/parallel matmul backend work on tall matrices instead of
    /// single rows, but every query's logits are still computed from
    /// exactly the same captured state. Queries may carry distinct
    /// timestamps; every query time is validated *before* any assembly
    /// work, and a past-time query reports [`SplashError::PastQuery`].
    pub fn try_predict_batch(&self, queries: &[PropertyQuery]) -> Result<Matrix, SplashError> {
        let w = self.witness();
        for q in queries {
            if q.time < w.last_time {
                return Err(SplashError::PastQuery { got: q.time, last: w.last_time });
            }
        }
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        // The assembled-query buffers persist across batches at their
        // high-water count; only a batch larger than any before grows them.
        if s.queries.len() < queries.len() {
            s.queries.resize_with(queries.len(), CapturedQuery::default);
        }
        for (dst, q) in s.queries.iter_mut().zip(queries) {
            self.query_input_into(&w.augmenter, q.node, q.time, dst, &mut s.spare);
        }
        Ok(crate::pipeline::predict_slim(
            &self.model,
            &s.queries[..queries.len()],
            STREAM_BATCH,
        ))
    }

    /// [`StreamingPredictor::try_predict_batch`] into a caller-owned
    /// matrix: row `i` holds the logits for `queries[i]` (labels ignored).
    ///
    /// This is the steady-state batched serving path — query assembly, the
    /// packed batch, the workspace, and the per-chunk logits all live in
    /// buffers reused across calls, and `out` is resized in place, so a
    /// warmed-up caller performs **zero** heap allocations per batch
    /// (pinned by the `alloc` regression test). Bit-identical to
    /// [`StreamingPredictor::try_predict_batch`]: each row depends only on
    /// its own query, so chunking never changes bits.
    pub fn try_predict_batch_into(
        &self,
        queries: &[PropertyQuery],
        out: &mut Matrix,
    ) -> Result<(), SplashError> {
        self.try_predict_batch_into_with(self.witness(), queries, out)
    }

    /// [`StreamingPredictor::try_predict_batch_into`] against an explicit
    /// witness view — the batched serving path of a witness-less shard
    /// member inside the sharded scatter–gather.
    pub(crate) fn try_predict_batch_into_with(
        &self,
        w: &WitnessState,
        queries: &[PropertyQuery],
        out: &mut Matrix,
    ) -> Result<(), SplashError> {
        for q in queries {
            if q.time < w.last_time {
                return Err(SplashError::PastQuery { got: q.time, last: w.last_time });
            }
        }
        if queries.is_empty() {
            // Match `try_predict_batch` (whose chunk map yields a 0×0
            // matrix) so the two forms are interchangeable bit for bit.
            out.resize_zeroed(0, 0);
            return Ok(());
        }
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        out.resize_zeroed(queries.len(), self.out_dim);
        let mut pos = 0;
        while pos < queries.len() {
            let end = (pos + STREAM_BATCH).min(queries.len());
            let m = end - pos;
            if s.queries.len() < m {
                s.queries.resize_with(m, CapturedQuery::default);
            }
            for (dst, q) in s.queries.iter_mut().zip(&queries[pos..end]) {
                self.query_input_into(&w.augmenter, q.node, q.time, dst, &mut s.spare);
            }
            self.model.build_batch_into(&s.queries[..m], &mut s.batch);
            self.model.infer_into(&s.batch, &mut s.logits, &mut s.ws);
            for i in 0..m {
                out.row_mut(pos + i).copy_from_slice(s.logits.row(i));
            }
            pos = end;
        }
        Ok(())
    }

    /// The dynamic representation `h_i(t)` of a node (Eq. 18). Reuses the
    /// predict scratch; allocates only the returned vector.
    pub fn represent(&self, node: NodeId, time: f64) -> Vec<f32> {
        let w = self.witness();
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        self.query_input_into(&w.augmenter, node, time, &mut s.query, &mut s.spare);
        self.model.build_batch_into(&[&s.query], &mut s.batch);
        self.model.represent_into(&s.batch, &mut s.logits, &mut s.ws);
        s.logits.row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::predict_slim;
    use crate::truncate_to_available;
    use ctdg::{replay, Event};
    use datasets::synthetic_shift;

    fn setup() -> (Dataset, SplashConfig) {
        let dataset = truncate_to_available(&synthetic_shift(50, 8), 0.4);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 3;
        (dataset, cfg)
    }

    /// The streaming path must produce exactly the batch pipeline's logits
    /// at every test query.
    #[test]
    fn streaming_matches_batch_pipeline() {
        let (dataset, cfg) = setup();
        let process = FeatureProcess::Random;

        // Batch path.
        let cap = capture(&dataset, InputFeatures::Process(process), &cfg, SEEN_FRAC);
        let (train_end, val_end) = split_bounds(cap.queries.len());
        let (model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let batch_logits = predict_slim(&model, &cap.queries[val_end..], 64);

        // Streaming path: same trained weights arrive via the same seeds.
        let mut predictor = StreamingPredictor::train_with_process(&dataset, &cfg, process);
        let t_seen = seen_end_time(&dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);

        // Replay the post-seen period event by event.
        let events = replay(&dataset.stream, &dataset.queries);
        let mut qi = 0usize;
        let mut checked = 0usize;
        for ev in events {
            match ev {
                Event::Edge(idx, edge) => {
                    if idx >= prefix {
                        predictor.try_observe_edge(edge).unwrap();
                    }
                }
                Event::Query(_, q) => {
                    if qi >= val_end {
                        let logits = predictor.try_predict(q.node, q.time).unwrap();
                        let expected = batch_logits.row(qi - val_end);
                        for (a, b) in logits.iter().zip(expected) {
                            assert!(
                                (a - b).abs() < 1e-4,
                                "query {qi}: streaming {a} vs batch {b}"
                            );
                        }
                        checked += 1;
                    }
                    qi += 1;
                }
            }
        }
        assert!(checked > 50, "only {checked} queries compared");
    }

    /// A predictor rebuilt from a saved model must behave exactly like the
    /// predictor trained in-process — including on edges observed after the
    /// save point.
    #[test]
    fn from_saved_matches_in_process_training() {
        let (dataset, cfg) = setup();
        let process = FeatureProcess::Positional;
        let mut live = StreamingPredictor::train_with_process(&dataset, &cfg, process);

        // Save the equivalent model through the lower-level path (training
        // is deterministic, so the weights are identical).
        let cap = capture(&dataset, InputFeatures::Process(process), &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = std::env::temp_dir()
            .join(format!("splash-stream-saved-{}.bin", std::process::id()));
        crate::persist::save_model(
            &path,
            &mut model,
            &cfg,
            InputFeatures::Process(process),
            cap.feat_dim,
            cap.edge_feat_dim,
            dataset.num_classes,
        )
        .unwrap();
        let saved = crate::persist::load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut restored = StreamingPredictor::try_from_saved(saved, &dataset)
            .expect("process-mode models restore");

        // Continue both predictors over the unseen tail and compare.
        let t_seen = seen_end_time(&dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        let tail = &dataset.stream.edges()[prefix..];
        for (i, edge) in tail.iter().enumerate() {
            live.try_observe_edge(edge).unwrap();
            restored.try_observe_edge(edge).unwrap();
            if i % 97 == 0 {
                let t = edge.time;
                for node in [edge.src, edge.dst] {
                    assert_eq!(
                        live.try_predict(node, t).unwrap(),
                        restored.try_predict(node, t).unwrap(),
                        "diverged at edge {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_saved_requires_a_process_mode() {
        let (dataset, cfg) = setup();
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = std::env::temp_dir()
            .join(format!("splash-stream-rf-{}.bin", std::process::id()));
        crate::persist::save_model(
            &path,
            &mut model,
            &cfg,
            InputFeatures::RawRandom,
            cap.feat_dim,
            cap.edge_feat_dim,
            dataset.num_classes,
        )
        .unwrap();
        let saved = crate::persist::load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(StreamingPredictor::try_from_saved(saved, &dataset).is_err());
    }

    #[test]
    fn streaming_predictor_trains_end_to_end() {
        let (dataset, cfg) = setup();
        let predictor = StreamingPredictor::train(&dataset, &cfg);
        // It can predict for any node, including ones it has never seen.
        let logits = predictor.try_predict(0, predictor.last_time() + 1.0).unwrap();
        assert_eq!(logits.len(), dataset.num_classes);
        assert!(logits.iter().all(|v| v.is_finite()));
        let unseen = dataset.stream.num_nodes() as u32 - 1;
        assert!(predictor
            .try_predict(unseen, predictor.last_time() + 1.0)
            .unwrap()
            .iter()
            .all(|v| v.is_finite()));
    }

    /// Batched ingestion + batched prediction must be *bit-identical* to
    /// the one-edge/one-query path: batching buys throughput, not a
    /// different model.
    #[test]
    fn predict_batch_matches_single_predictions() {
        let (dataset, cfg) = setup();
        let process = FeatureProcess::Random;
        let mut single = StreamingPredictor::train_with_process(&dataset, &cfg, process);
        let mut batched = single.clone();

        let t_seen = seen_end_time(&dataset, SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        let tail = &dataset.stream.edges()[prefix..];
        assert!(tail.len() > 20, "fixture too small to exercise batching");

        // Ingest the tail edge-by-edge on one predictor and in micro-batches
        // on its clone.
        for edge in tail {
            single.try_observe_edge(edge).unwrap();
        }
        for chunk in tail.chunks(17) {
            batched.try_push_edges(chunk).unwrap();
        }
        assert_eq!(single.last_time(), batched.last_time());

        // Query a spread of nodes (some never seen) at staggered times.
        let t0 = single.last_time();
        let queries: Vec<PropertyQuery> = (0..40u32)
            .map(|i| PropertyQuery {
                node: (i * 3) % dataset.stream.num_nodes() as u32,
                time: t0 + i as f64,
                label: Label::Class(0),
            })
            .collect();
        let logits = batched.try_predict_batch(&queries).unwrap();
        assert_eq!(logits.rows(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let one = single.try_predict(q.node, q.time).unwrap();
            assert_eq!(
                logits.row(i),
                &one[..],
                "query {i} (node {}, t {}) diverged",
                q.node,
                q.time
            );
        }
    }

    #[test]
    fn predict_batch_empty_is_empty() {
        let (dataset, cfg) = setup();
        let predictor =
            StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
        assert_eq!(predictor.try_predict_batch(&[]).unwrap().shape(), (0, 0));
    }

    /// Pins the out-of-order batch rejection (and that unwrapping it
    /// panics with the chronology message a caller would log).
    #[test]
    #[should_panic(expected = "chronologically")]
    fn push_edges_rejects_out_of_order_batches() {
        let (dataset, cfg) = setup();
        let mut predictor =
            StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
        let t = predictor.last_time();
        let batch = [
            TemporalEdge::plain(0, 1, t + 2.0),
            TemporalEdge::plain(1, 2, t + 1.0), // goes backwards inside the batch
        ];
        predictor.try_push_edges(&batch).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn predict_many_matches_predict() {
        let (dataset, cfg) = setup();
        let predictor =
            StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Structural);
        let t = predictor.last_time() + 5.0;
        let many = predictor.try_predict_many(&[0, 1, 2], t).unwrap();
        for (i, node) in [0u32, 1, 2].iter().enumerate() {
            let one = predictor.try_predict(*node, t).unwrap();
            for (a, b) in many.row(i).iter().zip(&one) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    /// Pins the out-of-order single-edge rejection (and that unwrapping it
    /// panics with the chronology message a caller would log).
    #[test]
    #[should_panic(expected = "chronologically")]
    fn rejects_out_of_order_edges() {
        let (dataset, cfg) = setup();
        let mut predictor =
            StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
        let stale = TemporalEdge::plain(0, 1, predictor.last_time() - 100.0);
        predictor.try_observe_edge(&stale).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn representations_have_model_width() {
        let (dataset, cfg) = setup();
        let predictor =
            StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
        let h = predictor.represent(3, predictor.last_time() + 1.0);
        assert_eq!(h.len(), cfg.hidden);
    }
}
