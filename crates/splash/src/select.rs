//! Automatic node feature selection (paper §IV-B).
//!
//! For each augmentation process, a *linear* model is fit by empirical risk
//! minimization on node encodings (Eq. 7) over the available property set
//! `Y_A` (everything before the test period). The set is split
//! chronologically at five split times (10/90 … 90/10 — footnote 1 of the
//! paper), simulating distribution shifts of varying strength; the process
//! whose linear model accumulates the lowest summed validation risk
//! (Eqs. 11–13) is selected. The three processes are evaluated in parallel
//! with scoped threads — feasible precisely because the selector
//! is linear, the paper's efficiency argument.

use ctdg::Label;
use datasets::{Dataset, Task};
use nn::{Adam, Linear, Matrix, Parameterized};
use rand::{rngs::StdRng, SeedableRng};

use crate::augment::FeatureProcess;
use crate::capture::{capture, encodings, InputFeatures};
use crate::config::SplashConfig;
use crate::task::{loss, loss_and_grad, output_dim};

/// The paper's five chronological split fractions (footnote 1).
pub const SPLIT_FRACTIONS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Outcome of feature selection.
#[derive(Debug, Clone)]
pub struct SelectionReport {
    /// The selected process `X*` (Eq. 13).
    pub selected: FeatureProcess,
    /// Summed validation risks per process, in [`FeatureProcess::ALL`] order.
    pub risks: [f64; 3],
}

/// Restricts a dataset to its available portion: the first `avail_frac` of
/// queries and the edges up to the last such query's time.
///
/// A dataset with no queries truncates to itself (empty queries, empty
/// stream) instead of panicking — `clamp(1, 0)` used to abort here; the
/// regression is pinned by `truncating_an_empty_dataset_is_empty`.
pub fn truncate_to_available(dataset: &Dataset, avail_frac: f64) -> Dataset {
    let n_queries = dataset.queries.len();
    let n_avail = if n_queries == 0 {
        0
    } else {
        (((n_queries as f64) * avail_frac) as usize).clamp(1, n_queries)
    };
    let queries: Vec<_> = dataset.queries[..n_avail].to_vec();
    let t_end = queries.last().map_or(f64::NEG_INFINITY, |q| q.time);
    let prefix = dataset.stream.prefix_len_at(t_end);
    let edges = dataset.stream.edges()[..prefix].to_vec();
    Dataset {
        name: dataset.name.clone(),
        task: dataset.task,
        stream: ctdg::EdgeStream::new_unchecked(edges),
        queries,
        num_classes: dataset.num_classes,
        node_feats: dataset.node_feats.clone(),
    }
}

/// Runs feature selection over the available portion of `dataset`
/// (`avail_frac` = 0.2 under the 10/10/80 protocol).
pub fn select_features(dataset: &Dataset, cfg: &SplashConfig, avail_frac: f64) -> SelectionReport {
    select_features_with_splits(dataset, cfg, avail_frac, &SPLIT_FRACTIONS)
}

/// [`select_features`] with custom split fractions (the "number of
/// validation splits" ablation from DESIGN.md).
pub fn select_features_with_splits(
    dataset: &Dataset,
    cfg: &SplashConfig,
    avail_frac: f64,
    splits: &[f64],
) -> SelectionReport {
    let available = truncate_to_available(dataset, avail_frac);
    let mut risks = [0.0f64; 3];
    std::thread::scope(|scope| {
        let handles: Vec<_> = FeatureProcess::ALL
            .iter()
            .map(|&process| {
                let available = &available;
                scope.spawn(move || process_risk(available, process, cfg, splits))
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            risks[i] = h.join().expect("selection worker panicked");
        }
    });

    let best = FeatureProcess::ALL[argmin_risk(&risks)];
    SelectionReport { selected: best, risks }
}

/// Index of the smallest risk under a **total** order, so a diverged
/// selector fit cannot panic the pipeline.
///
/// Policy (deterministic by construction):
/// * risks compare by [`f64::total_cmp`] — a NaN risk orders above `+∞`
///   (for the positive-sign NaNs arithmetic produces), so a process whose
///   fit diverged loses to any process with a finite (or even infinite)
///   risk;
/// * ties keep the **earliest** process in [`FeatureProcess::ALL`] order
///   (R, then P, then S) — in particular, if every fit diverged to the
///   same NaN, process R is selected rather than aborting.
fn argmin_risk(risks: &[f64]) -> usize {
    let mut best = 0;
    for (i, r) in risks.iter().enumerate().skip(1) {
        if r.total_cmp(&risks[best]) == std::cmp::Ordering::Less {
            best = i;
        }
    }
    best
}

/// Summed multi-split validation risk of one process (Eq. 13's inner sum).
///
/// Each split re-simulates deployment: the augmentation's "seen" period is
/// the split's training period, so nodes appearing after `t_split` get
/// *propagated* features — exactly the regime the real test period will
/// exhibit. This is what lets the selector detect that identity-like
/// features (process `R`) stop working for unseen nodes while propagated
/// positional features keep their meaning.
fn process_risk(
    available: &Dataset,
    process: FeatureProcess,
    cfg: &SplashConfig,
    splits: &[f64],
) -> f64 {
    let n = available.queries.len();
    let mut total = 0.0f64;
    for &frac in splits {
        let split = (((n as f64) * frac) as usize).clamp(0, n);
        if split == 0 || split == n {
            continue;
        }
        let cap = capture(available, InputFeatures::Process(process), cfg, frac);
        let enc = encodings(&cap);
        let labels: Vec<&Label> = cap.queries.iter().map(|q| &q.label).collect();
        let train_enc = enc.slice_rows(0, split);
        let val_enc = enc.slice_rows(split, n);
        let risk = fit_linear_and_risk(
            &train_enc,
            &labels[..split],
            &val_enc,
            &labels[split..],
            available.task,
            output_dim(available.task, available.num_classes),
            cfg,
        );
        total += risk as f64;
    }
    total
}

/// Trains one linear model with ERM on the training rows (Eq. 10) and
/// returns its empirical risk on the validation rows (Eq. 11).
pub fn fit_linear_and_risk(
    train_enc: &Matrix,
    train_labels: &[&Label],
    val_enc: &Matrix,
    val_labels: &[&Label],
    task: Task,
    out_dim: usize,
    cfg: &SplashConfig,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x11EA2);
    let mut model = Linear::new(train_enc.cols(), out_dim, &mut rng);
    let mut opt = Adam::new(cfg.selector_lr);
    let n = train_enc.rows();
    let bs = cfg.batch_size.min(n.max(1));
    for _epoch in 0..cfg.selector_epochs {
        let mut start = 0;
        while start < n {
            let end = (start + bs).min(n);
            let x = train_enc.slice_rows(start, end);
            let (logits, cache) = model.forward(&x);
            let (_, dlogits) = loss_and_grad(task, &logits, &train_labels[start..end]);
            model.backward(&cache, &dlogits);
            opt.step(model.params_mut());
            start = end;
        }
    }
    let logits = model.infer(val_enc);
    loss(task, &logits, val_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::{EdgeStream, PropertyQuery, TemporalEdge};
    use datasets::Task;
    use rand::RngExt;

    /// A dataset whose labels follow node *roles* (hub vs leaf) while new
    /// nodes of both roles keep arriving. Role is visible in a node's degree
    /// (a stationary structural signal) but not in its identity — new hubs
    /// were never seen during early splits — so the selector must pick `S`.
    fn structural_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 400usize;
        let is_hub: Vec<bool> = (0..n).map(|_| rng.random::<f64>() < 0.12).collect();
        let arrival: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 4000.0).collect();
        let activity: Vec<f32> = is_hub.iter().map(|&h| if h { 15.0 } else { 1.0 }).collect();
        let mut edges = Vec::new();
        let mut queries = Vec::new();
        for i in 0..6000 {
            let t = i as f64;
            let arrived = |v: usize| arrival[v] <= t;
            let Some(src) = crate::select::tests::pick(&activity, &arrived, &mut rng) else {
                continue;
            };
            let uniform: Vec<f32> = (0..n).map(|v| if arrived(v) { 1.0 } else { 0.0 }).collect();
            let Some(dst) = crate::select::tests::pick(&uniform, &|v| v != src, &mut rng) else {
                continue;
            };
            edges.push(TemporalEdge::plain(src as u32, dst as u32, t));
            // Query a uniformly random arrived node.
            if let Some(probe) = crate::select::tests::pick(&uniform, &|_| true, &mut rng) {
                queries.push(PropertyQuery {
                    node: probe as u32,
                    time: t,
                    label: Label::Class(is_hub[probe] as usize),
                });
            }
        }
        Dataset {
            name: "structural".into(),
            task: Task::Classification,
            stream: EdgeStream::new_unchecked(edges),
            queries,
            num_classes: 2,
            node_feats: None,
        }
    }

    /// Weighted choice helper shared by the test generators.
    pub(super) fn pick(
        weights: &[f32],
        eligible: &dyn Fn(usize) -> bool,
        rng: &mut StdRng,
    ) -> Option<usize> {
        let total: f64 = weights
            .iter()
            .enumerate()
            .filter(|(i, _)| eligible(*i))
            .map(|(_, &w)| w as f64)
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut r = rng.random::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if !eligible(i) {
                continue;
            }
            r -= w as f64;
            if r <= 0.0 {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn selects_structural_when_labels_follow_degree() {
        let d = structural_dataset();
        let cfg = SplashConfig::tiny();
        let report = select_features(&d, &cfg, 1.0);
        assert_eq!(
            report.selected,
            FeatureProcess::Structural,
            "risks: {:?}",
            report.risks
        );
        // And the winning risk is strictly smallest.
        assert!(report.risks[2] < report.risks[0]);
        assert!(report.risks[2] < report.risks[1]);
    }

    /// Labels follow stable community membership → positional or random
    /// features must beat structural ones.
    fn community_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 60u32;
        let community = |v: u32| (v % 2) as usize;
        let mut edges = Vec::new();
        let mut t = 0.0;
        for _ in 0..4000 {
            let a = rng.random_range(0..n);
            let b = loop {
                let b = rng.random_range(0..n);
                if b != a && (community(a) == community(b)) == (rng.random::<f64>() < 0.9) {
                    break b;
                }
            };
            edges.push(TemporalEdge::plain(a, b, t));
            t += 1.0;
        }
        let stream = EdgeStream::new_unchecked(edges);
        let queries: Vec<PropertyQuery> = stream
            .edges()
            .iter()
            .step_by(2)
            .map(|e| PropertyQuery {
                node: e.src,
                time: e.time,
                label: Label::Class(community(e.src)),
            })
            .collect();
        Dataset {
            name: "community".into(),
            task: Task::Classification,
            stream,
            queries,
            num_classes: 2,
            node_feats: None,
        }
    }

    #[test]
    fn rejects_structural_when_labels_follow_identity() {
        let d = community_dataset();
        let cfg = SplashConfig::tiny();
        let report = select_features(&d, &cfg, 1.0);
        assert_ne!(
            report.selected,
            FeatureProcess::Structural,
            "risks: {:?}",
            report.risks
        );
    }

    /// Regression: an empty dataset used to hit `clamp(1, 0)` ("min > max"
    /// panic) at `truncate_to_available`'s first line. It must truncate to
    /// an equally empty dataset instead.
    #[test]
    fn truncating_an_empty_dataset_is_empty() {
        let empty = Dataset {
            name: "empty".into(),
            task: Task::Classification,
            stream: EdgeStream::new_unchecked(Vec::new()),
            queries: Vec::new(),
            num_classes: 2,
            node_feats: None,
        };
        for frac in [0.0, 0.2, 1.0] {
            let out = truncate_to_available(&empty, frac);
            assert!(out.queries.is_empty());
            assert_eq!(out.stream.len(), 0);
        }
    }

    /// Regression: selection used `partial_cmp(..).unwrap()`, which panics
    /// the moment any selector fit diverges to NaN. The total-order argmin
    /// must instead treat NaN as worse than every real risk and break ties
    /// toward the earliest process.
    #[test]
    fn argmin_risk_handles_nan_and_ties_deterministically() {
        // A NaN risk loses to any finite risk, wherever it sits.
        assert_eq!(argmin_risk(&[f64::NAN, 2.0, 3.0]), 1);
        assert_eq!(argmin_risk(&[2.0, f64::NAN, 1.0]), 2);
        // ... and even to an infinite one (total order: NaN > +inf).
        assert_eq!(argmin_risk(&[f64::NAN, f64::INFINITY, f64::NAN]), 1);
        // All-NaN selects the first process instead of panicking.
        assert_eq!(argmin_risk(&[f64::NAN, f64::NAN, f64::NAN]), 0);
        // Exact ties keep the earliest process.
        assert_eq!(argmin_risk(&[1.5, 1.5, 1.5]), 0);
        assert_eq!(argmin_risk(&[2.0, 1.5, 1.5]), 1);
        // Plain minima still win.
        assert_eq!(argmin_risk(&[3.0, 0.5, 2.0]), 1);
    }

    #[test]
    fn truncation_respects_chronology() {
        let d = structural_dataset();
        let avail = truncate_to_available(&d, 0.25);
        assert_eq!(avail.queries.len(), d.queries.len() / 4);
        let t_last = avail.queries.last().unwrap().time;
        assert!(avail.stream.edges().iter().all(|e| e.time <= t_last));
    }
}
