//! Online continual learning: fine-tuning a served model from the live
//! stream, without downtime.
//!
//! The batch pipeline freezes a SLIM model at `train_model` time, yet
//! SPLASH's whole premise is that the data is a *stream* — the serving
//! stack can ingest and predict forever, but a frozen model can never
//! incorporate what the stream reveals after deployment. This module
//! closes that loop with a hot-standby trainer:
//!
//! 1. **Label-carrying ingest** — when ground truth for `(node, t)`
//!    arrives, [`StreamingPredictor::capture_labeled_into`] snapshots the
//!    model input *at that instant* (Eq. 14 semantics: the example is
//!    immutable from capture time on) into the trainer's bounded replay
//!    buffer.
//! 2. **Bounded fine-tuning** — [`OnlineTrainer::fine_tune`] sweeps the
//!    buffered examples oldest-first in `batch_size` windows and runs
//!    exactly `steps_per_tune` Adam steps on its *own* copy of the model
//!    (the served weights keep answering queries untouched), then
//!    consumes the examples it swept: each is trained on by exactly one
//!    round, and a backlog beyond `steps_per_tune` windows stays
//!    buffered for the next round rather than being discarded.
//! 3. **Atomic publication** — the service copies the tuned weights into
//!    the serving engine(s) between requests
//!    ([`crate::service::SplashService::fine_tune`] /
//!    [`crate::service::SplashService::publish`]); a sharded model's
//!    shards share weights, so one publish fans out to all of them.
//!
//! # Determinism and checkpointing
//!
//! A tune round is a pure function of (weights, Adam moments + step
//! count, buffer contents in insertion order): windows are swept in
//! insertion order (no shuffling), and the optimizer steps through
//! [`nn::Adam::step_visit`]. Checkpointing therefore only needs the
//! weights plus the optimizer state — exactly what
//! [`crate::persist::save_model_with_opt`]'s `SAVEDOPT` section carries —
//! and a restart that re-delivers the same stream continues
//! **bit-identically** to a run that never stopped (pinned at shard
//! counts 1 and 3 by `crates/splash/tests/online.rs`).
//!
//! The replay buffer itself is deliberately *not* persisted: buffered
//! examples are in-flight stream data, and streams are the source of
//! truth. For exact resume, checkpoint from a drained buffer (call
//! `fine_tune` first — the flush-before-checkpoint discipline) or
//! re-deliver the unconsumed labels after the restart.
//!
//! # Allocation discipline
//!
//! The steady-state step path — capture into a recycled buffer slot, pack
//! with [`SlimModel::build_batch_into`], forward/backward through the
//! shared [`Workspace`], step via the visitor — performs **zero** heap
//! allocations after warm-up (pinned by the counting-allocator test in
//! `crates/splash/tests/alloc.rs`).

use ctdg::{Label, NodeId};
use datasets::Task;
use nn::{soft_cross_entropy_into, softmax_cross_entropy_into, Adam, Matrix, Workspace};

use crate::capture::{CapturedNeighbor, CapturedQuery};
use crate::error::SplashError;
use crate::slim::{AdamState, SlimBatch, SlimCache, SlimModel};
use crate::stream::StreamingPredictor;
use crate::telemetry::Gauge;

/// When the service fine-tunes (and publishes) automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FineTunePolicy {
    /// Never automatically — only on an explicit
    /// [`crate::service::SplashService::fine_tune`] call (the default).
    #[default]
    Manual,
    /// After every `n` absorbed labels (`n > 0`, checked by
    /// [`OnlineConfig::validate`]).
    EveryLabels(usize),
}

/// Knobs of the online continual-learning subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// When fine-tuning triggers automatically.
    pub policy: FineTunePolicy,
    /// Bounded replay-buffer size: once full, the oldest unconsumed
    /// example is overwritten (the stream outranks history).
    pub buffer_capacity: usize,
    /// Minibatch size of one fine-tuning step.
    pub batch_size: usize,
    /// Adam steps per tune round (the buffer is swept cyclically when
    /// `steps_per_tune` exceeds the number of windows it holds).
    pub steps_per_tune: usize,
    /// Learning rate of the online Adam optimizer.
    pub lr: f32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            policy: FineTunePolicy::Manual,
            buffer_capacity: 512,
            batch_size: 64,
            steps_per_tune: 8,
            lr: 1e-3,
        }
    }
}

impl OnlineConfig {
    /// Checks that the knobs describe a runnable trainer; a bad value
    /// surfaces as one [`SplashError::InvalidConfig`] at service build (or
    /// trainer construction) instead of a panic mid-serve.
    pub fn validate(&self) -> Result<(), SplashError> {
        let invalid = |what: String| Err(SplashError::InvalidConfig { what });
        if self.buffer_capacity == 0 {
            return invalid("online buffer_capacity must be positive".into());
        }
        if self.batch_size == 0 {
            return invalid("online batch_size must be positive".into());
        }
        if self.steps_per_tune == 0 {
            return invalid("online steps_per_tune must be positive".into());
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return invalid(format!("online lr must be positive and finite, got {}", self.lr));
        }
        if let FineTunePolicy::EveryLabels(0) = self.policy {
            return invalid("FineTunePolicy::EveryLabels needs a positive cadence".into());
        }
        Ok(())
    }
}

/// What one tune round did ([`OnlineTrainer::fine_tune`],
/// [`crate::service::SplashService::fine_tune`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FineTuneReport {
    /// Adam steps executed (0 when the buffer was empty).
    pub steps: usize,
    /// Distinct buffered examples consumed by this round.
    pub examples: usize,
    /// Mean training loss across the executed steps (0 when none ran).
    pub mean_loss: f32,
    /// Whether the tuned weights were published to the serving engine
    /// (set by the service entry points; a bare trainer never publishes).
    pub published: bool,
}

/// The hot-standby continual learner: a private copy of the served model,
/// an Adam optimizer with persistent state, and a bounded replay buffer of
/// labeled examples captured from the live stream.
///
/// See the [module docs](self) for the full contract. The trainer is
/// deliberately decoupled from serving: it never answers queries, and the
/// serving engines never see its weights until a publish.
#[derive(Debug)]
pub struct OnlineTrainer {
    cfg: OnlineConfig,
    task: Task,
    model: SlimModel,
    opt: Adam,
    /// Replay-buffer slots, grown lazily toward `buffer_capacity` and then
    /// recycled forever (capture overwrites a slot in place).
    buffer: Vec<CapturedQuery>,
    /// Index of the oldest valid entry once the ring has wrapped.
    head: usize,
    /// Number of valid entries (`<= buffer_capacity`).
    filled: usize,
    /// Parked neighbor slots shared with capture (keeps feature buffers
    /// alive across examples of varying neighbor counts).
    spare: Vec<CapturedNeighbor>,
    /// Reused `(start, end)` window list of the current sweep.
    windows: Vec<(usize, usize)>,
    batch: SlimBatch,
    cache: SlimCache,
    ws: Workspace,
    logits: Matrix,
    h: Matrix,
    dlogits: Matrix,
    targets: Vec<usize>,
    target_mat: Matrix,
    labels_seen: u64,
    since_tune: usize,
    tunes: u64,
    /// Mirror of `filled` in the telemetry plane
    /// (`splash_online_buffered{model="..."}`), attached by the service at
    /// install time; a bare trainer carries none. An atomic store per
    /// absorb — no allocation on the steady-state label path.
    buffer_gauge: Option<Gauge>,
}

impl OnlineTrainer {
    /// A trainer continuing from `predictor`'s current weights, with fresh
    /// optimizer state. `task` selects the loss (softmax cross-entropy for
    /// anomaly/classification, soft cross-entropy for affinity).
    pub fn for_predictor(
        cfg: OnlineConfig,
        predictor: &StreamingPredictor,
        task: Task,
    ) -> Result<Self, SplashError> {
        Self::resume(cfg, predictor.model().clone(), task, None)
    }

    /// The resuming constructor: `saved` (a `SAVEDOPT` checkpoint) restores
    /// the Adam moments and step count so the optimizer continues exactly
    /// where the checkpointed run stopped. Without a checkpoint the
    /// optimizer state is genuinely fresh: the moments left behind by
    /// batch training are zeroed — they belong to a step clock this
    /// optimizer does not share, and feeding them through step-1 bias
    /// correction would inflate the first updates ~10×/1000×.
    pub(crate) fn resume(
        cfg: OnlineConfig,
        mut model: SlimModel,
        task: Task,
        saved: Option<&AdamState>,
    ) -> Result<Self, SplashError> {
        cfg.validate()?;
        let mut opt = Adam::new(cfg.lr);
        match saved {
            Some(state) => {
                model.restore_adam_state(state);
                opt.set_steps(state.steps);
            }
            None => {
                use nn::Parameterized;
                model.visit_params(&mut |p| {
                    let (m, v) = p.adam_state_mut();
                    m.fill_zero();
                    v.fill_zero();
                });
            }
        }
        Ok(Self {
            cfg,
            task,
            model,
            opt,
            buffer: Vec::new(),
            head: 0,
            filled: 0,
            spare: Vec::new(),
            windows: Vec::new(),
            batch: SlimBatch::default(),
            cache: SlimCache::default(),
            ws: Workspace::new(),
            logits: Matrix::default(),
            h: Matrix::default(),
            dlogits: Matrix::default(),
            targets: Vec::new(),
            target_mat: Matrix::default(),
            labels_seen: 0,
            since_tune: 0,
            tunes: 0,
            buffer_gauge: None,
        })
    }

    /// Captures one labeled example from `predictor`'s current streaming
    /// state into the replay buffer (the standalone form of the service's
    /// label ingest). `time` must not precede the predictor's last observed
    /// edge ([`SplashError::PastQuery`] otherwise — the state needed to
    /// honor it is gone), and the label must fit the model's task
    /// ([`SplashError::LabelMismatch`] otherwise — training on it would
    /// panic deep in the loss).
    pub fn absorb(
        &mut self,
        predictor: &StreamingPredictor,
        node: NodeId,
        time: f64,
        label: &Label,
    ) -> Result<(), SplashError> {
        self.validate_observation(time, label)?;
        self.absorb_with(|slot, spare| {
            predictor.capture_labeled_into(node, time, label, slot, spare)
        })
    }

    /// [`OnlineTrainer::validate_label`] plus a finiteness check on the
    /// observation timestamp: a NaN time slips past every `<` comparison
    /// (NaN compares false) and would be time-encoded straight into the
    /// training features, poisoning the published weights.
    pub fn validate_observation(&self, time: f64, label: &Label) -> Result<(), SplashError> {
        if !time.is_finite() {
            return Err(SplashError::LabelMismatch {
                expected: format!("a finite observation timestamp, got {time}"),
            });
        }
        self.validate_label(label)
    }

    /// Checks that a ground-truth label fits this trainer's task and the
    /// model's output width — and, for affinity labels, that every element
    /// is finite — so a malformed label is a typed
    /// [`SplashError::LabelMismatch`] instead of a panic inside (or NaN
    /// weights out of) a later tune round's loss.
    pub fn validate_label(&self, label: &Label) -> Result<(), SplashError> {
        let out_dim = self.model.out_dim();
        let expected = match (self.task, label) {
            (Task::Anomaly | Task::Classification, Label::Class(c)) if *c < out_dim => {
                return Ok(())
            }
            (Task::Affinity, Label::Affinity(a)) if a.len() == out_dim => {
                // Non-finite affinity mass would flow unclipped into the
                // gradients (NaN bypasses the clip-norm comparison) and
                // permanently poison the published weights.
                if let Some(bad) = a.iter().find(|v| !v.is_finite()) {
                    return Err(SplashError::LabelMismatch {
                        expected: format!("finite affinity mass, got {bad}"),
                    });
                }
                return Ok(());
            }
            (Task::Anomaly | Task::Classification, Label::Class(c)) => {
                format!("a class index below {out_dim}, got {c}")
            }
            (Task::Anomaly | Task::Classification, Label::Affinity(_)) => {
                "a class label, got an affinity vector".to_string()
            }
            (Task::Affinity, Label::Affinity(a)) => {
                format!("an affinity vector of width {out_dim}, got width {}", a.len())
            }
            (Task::Affinity, Label::Class(_)) => {
                "an affinity vector, got a class label".to_string()
            }
        };
        Err(SplashError::LabelMismatch { expected })
    }

    /// [`OnlineTrainer::absorb`] with the capture supplied by the caller —
    /// the engine-agnostic form the service uses (single and sharded
    /// engines capture differently, the ring bookkeeping is identical).
    /// The caller is responsible for label validation
    /// ([`OnlineTrainer::validate_label`]).
    pub(crate) fn absorb_with(
        &mut self,
        fill: impl FnOnce(&mut CapturedQuery, &mut Vec<CapturedNeighbor>) -> Result<(), SplashError>,
    ) -> Result<(), SplashError> {
        let cap = self.cfg.buffer_capacity;
        let idx = (self.head + self.filled) % cap;
        if idx == self.buffer.len() {
            // Grows only while the buffer approaches capacity, never after.
            self.buffer.push(CapturedQuery::default());
        }
        fill(&mut self.buffer[idx], &mut self.spare)?;
        if self.filled == cap {
            // Full ring: the slot just written was the oldest entry.
            self.head = (self.head + 1) % cap;
        } else {
            self.filled += 1;
        }
        self.labels_seen += 1;
        self.since_tune += 1;
        self.sync_buffer_gauge();
        Ok(())
    }

    /// Points the trainer's buffer-fill mirror at a registry gauge and
    /// seeds it with the current fill (the trainer may already hold
    /// restored state when the service attaches the gauge).
    pub(crate) fn attach_buffer_gauge(&mut self, gauge: Gauge) {
        gauge.set(self.filled as u64);
        self.buffer_gauge = Some(gauge);
    }

    fn sync_buffer_gauge(&self) {
        if let Some(g) = &self.buffer_gauge {
            g.set(self.filled as u64);
        }
    }

    /// Whether the configured policy calls for a tune round now.
    pub fn tune_due(&self) -> bool {
        match self.cfg.policy {
            FineTunePolicy::Manual => false,
            FineTunePolicy::EveryLabels(n) => self.since_tune >= n,
        }
    }

    /// Runs one bounded tune round: exactly `steps_per_tune` Adam steps
    /// sweeping the buffered examples oldest-first in `batch_size` windows
    /// (cycling — multiple epochs — when steps outnumber windows), then
    /// consumes exactly the examples it swept: a buffer holding more than
    /// `steps_per_tune` windows keeps the un-swept remainder for the next
    /// round, so no label is ever silently discarded. Returns immediately
    /// (0 steps) when nothing is buffered.
    ///
    /// Deterministic by construction — see the [module docs](self) — and
    /// allocation-free after warm-up.
    pub fn fine_tune(&mut self) -> FineTuneReport {
        let n = self.filled;
        if n == 0 {
            return FineTuneReport::default();
        }
        // The ring holds its entries as (at most) two contiguous segments;
        // windows never straddle the wrap point, so every batch is a plain
        // slice and packing stays allocation-free.
        self.windows.clear();
        let bs = self.cfg.batch_size;
        let cap = self.cfg.buffer_capacity;
        let (seg1, seg2) = if self.head + n <= cap {
            ((self.head, self.head + n), (0, 0))
        } else {
            ((self.head, cap), (0, self.head + n - cap))
        };
        for (start, end) in [seg1, seg2] {
            let mut pos = start;
            while pos < end {
                let e = (pos + bs).min(end);
                self.windows.push((pos, e));
                pos = e;
            }
        }
        let steps = self.cfg.steps_per_tune;
        let mut total_loss = 0.0f32;
        for s in 0..steps {
            let (a, b) = self.windows[s % self.windows.len()];
            let window = &self.buffer[a..b];
            self.model.build_batch_into(window, &mut self.batch);
            self.model.forward_into(
                &self.batch,
                &mut self.logits,
                &mut self.h,
                &mut self.cache,
                &mut self.ws,
            );
            let loss = match self.task {
                Task::Anomaly | Task::Classification => {
                    self.targets.clear();
                    self.targets.extend(window.iter().map(|q| q.label.class()));
                    softmax_cross_entropy_into(&self.logits, &self.targets, &mut self.dlogits)
                }
                Task::Affinity => {
                    // Every row is overwritten by set_row; skip the fill.
                    self.target_mat.resize_for_overwrite(b - a, self.logits.cols());
                    for (i, q) in window.iter().enumerate() {
                        self.target_mat.set_row(i, q.label.affinity());
                    }
                    soft_cross_entropy_into(&self.logits, &self.target_mat, &mut self.dlogits)
                }
            };
            total_loss += loss;
            self.model.backward_ws(&self.cache, &self.dlogits, &mut self.ws);
            self.opt.step_visit(&mut self.model);
        }
        // Consume exactly what was swept. Each trained-on example is
        // consumed by exactly one round; with more windows than steps the
        // un-swept tail stays buffered (it was never trained on). What
        // persists across a checkpoint is weights + optimizer state, not
        // the buffer — hence the flush-before-checkpoint discipline.
        let swept = steps.min(self.windows.len());
        let consumed: usize = self.windows[..swept].iter().map(|&(a, b)| b - a).sum();
        if swept == self.windows.len() {
            self.filled = 0;
            self.head = 0;
        } else {
            self.head = (self.head + consumed) % self.cfg.buffer_capacity;
            self.filled -= consumed;
        }
        self.since_tune = 0;
        self.tunes += 1;
        self.sync_buffer_gauge();
        FineTuneReport {
            steps,
            examples: consumed,
            mean_loss: total_loss / steps as f32,
            published: false,
        }
    }

    /// Publishes the trainer's current weights into `predictor` (the
    /// standalone counterpart of the service's atomic publish;
    /// allocation-free).
    pub fn publish_to(&self, predictor: &mut StreamingPredictor) {
        predictor.set_model_weights(&self.model);
    }

    /// Snapshots the optimizer for a checkpoint (`&mut` only because
    /// parameter access goes through `Parameterized::params_mut`).
    pub fn checkpoint(&mut self) -> AdamState {
        self.model.extract_adam_state(self.opt.steps())
    }

    /// Snapshots the replay buffer and lifetime counters for a durable
    /// checkpoint — storage order and ring cursors verbatim, so a restored
    /// trainer's window splits (and therefore its tune rounds) reproduce
    /// bit-identically. The weights + optimizer travel separately, in the
    /// model artifact's `SAVEDOPT` section ([`OnlineTrainer::checkpoint`]).
    pub(crate) fn durable_state(&self) -> crate::durable::TrainerState {
        crate::durable::TrainerState {
            task: self.task,
            buffer: self.buffer[..].to_vec(),
            head: self.head,
            filled: self.filled,
            capacity: self.cfg.buffer_capacity,
            labels_seen: self.labels_seen,
            tunes: self.tunes,
            since_tune: self.since_tune,
        }
    }

    /// Restores a [`OnlineTrainer::durable_state`] snapshot into a freshly
    /// resumed trainer. The configured buffer capacity must match the
    /// snapshot's — the ring cursors are only meaningful against the
    /// capacity they were written at.
    pub(crate) fn restore_durable_state(
        &mut self,
        state: crate::durable::TrainerState,
    ) -> Result<(), SplashError> {
        if state.capacity != self.cfg.buffer_capacity {
            return Err(SplashError::InvalidConfig {
                what: format!(
                    "checkpointed replay buffer has capacity {}, the service is \
                     configured for {} (online buffer_capacity must match across \
                     restarts)",
                    state.capacity, self.cfg.buffer_capacity
                ),
            });
        }
        if state.task != self.task {
            return Err(SplashError::InvalidConfig {
                what: format!(
                    "checkpointed trainer optimizes {:?}, this trainer {:?}",
                    state.task, self.task
                ),
            });
        }
        self.buffer = state.buffer;
        self.head = state.head;
        self.filled = state.filled;
        self.labels_seen = state.labels_seen;
        self.tunes = state.tunes;
        self.since_tune = state.since_tune;
        self.sync_buffer_gauge();
        Ok(())
    }

    /// The trainer's current (possibly unpublished) model.
    pub fn model(&self) -> &SlimModel {
        &self.model
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// The task whose loss this trainer optimizes — also the label format
    /// it accepts (class index vs. affinity vector), which is how the wire
    /// front end knows how to parse a label payload for this model.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Labeled examples currently waiting in the replay buffer.
    pub fn buffered(&self) -> usize {
        self.filled
    }

    /// Total labeled examples absorbed over the trainer's lifetime.
    pub fn labels_seen(&self) -> u64 {
        self.labels_seen
    }

    /// Tune rounds completed.
    pub fn tunes(&self) -> u64 {
        self.tunes
    }

    /// Adam steps taken (the optimizer's bias-correction clock — survives
    /// checkpoints).
    pub fn steps(&self) -> u64 {
        self.opt.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::FeatureProcess;
    use crate::config::SplashConfig;
    use crate::truncate_to_available;
    use datasets::synthetic_shift;

    fn setup() -> (datasets::Dataset, StreamingPredictor) {
        let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let p = StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
        (dataset, p)
    }

    #[test]
    fn invalid_online_configs_are_rejected() {
        for breakage in [
            (&|c: &mut OnlineConfig| c.buffer_capacity = 0) as &dyn Fn(&mut OnlineConfig),
            &|c| c.batch_size = 0,
            &|c| c.steps_per_tune = 0,
            &|c| c.lr = f32::NAN,
            &|c| c.lr = -1.0,
            &|c| c.policy = FineTunePolicy::EveryLabels(0),
        ] {
            let mut cfg = OnlineConfig::default();
            breakage(&mut cfg);
            assert!(matches!(cfg.validate(), Err(SplashError::InvalidConfig { .. })));
        }
        OnlineConfig::default().validate().unwrap();
    }

    #[test]
    fn fine_tune_on_an_empty_buffer_is_a_no_op() {
        let (dataset, predictor) = setup();
        let mut trainer =
            OnlineTrainer::for_predictor(OnlineConfig::default(), &predictor, dataset.task)
                .unwrap();
        let mut before = trainer.model().clone();
        let report = trainer.fine_tune();
        assert_eq!(report.steps, 0);
        assert_eq!(report.examples, 0);
        let mut after = trainer.model().clone();
        use nn::Parameterized;
        for (p, q) in before.params_mut().into_iter().zip(after.params_mut()) {
            assert_eq!(p.value.data(), q.value.data());
        }
    }

    #[test]
    fn absorb_then_tune_changes_the_trainer_not_the_served_model() {
        let (dataset, mut predictor) = setup();
        let mut trainer =
            OnlineTrainer::for_predictor(OnlineConfig::default(), &predictor, dataset.task)
                .unwrap();
        let t0 = predictor.last_time();
        for i in 0..20u32 {
            trainer
                .absorb(&predictor, i % 40, t0 + i as f64, &ctdg::Label::Class((i % 2) as usize))
                .unwrap();
        }
        assert_eq!(trainer.buffered(), 20);
        let probe = predictor.try_predict(3, t0 + 100.0).unwrap();
        let report = trainer.fine_tune();
        assert_eq!(report.steps, OnlineConfig::default().steps_per_tune);
        assert_eq!(report.examples, 20);
        assert_eq!(trainer.buffered(), 0, "tune rounds drain the buffer");
        // The served model is untouched until publish...
        assert_eq!(predictor.try_predict(3, t0 + 100.0).unwrap(), probe);
        trainer.publish_to(&mut predictor);
        // ...and changed after (fine-tuning on fresh labels moves weights).
        assert_ne!(predictor.try_predict(3, t0 + 100.0).unwrap(), probe);
    }

    #[test]
    fn replay_buffer_overwrites_the_oldest_when_full() {
        let (dataset, predictor) = setup();
        let cfg = OnlineConfig { buffer_capacity: 8, ..OnlineConfig::default() };
        let mut trainer = OnlineTrainer::for_predictor(cfg, &predictor, dataset.task).unwrap();
        let t0 = predictor.last_time();
        for i in 0..20u32 {
            trainer
                .absorb(&predictor, i % 40, t0 + i as f64, &ctdg::Label::Class(0))
                .unwrap();
        }
        assert_eq!(trainer.buffered(), 8);
        assert_eq!(trainer.labels_seen(), 20);
        let report = trainer.fine_tune();
        assert_eq!(report.examples, 8);
    }

    /// Regression: with more buffered windows than `steps_per_tune`, the
    /// round must consume only what it trained on — the backlog stays
    /// buffered instead of being silently discarded (and the report must
    /// not overstate the consumed count).
    #[test]
    fn backlog_beyond_the_step_budget_stays_buffered() {
        let (dataset, predictor) = setup();
        let cfg = OnlineConfig {
            buffer_capacity: 64,
            batch_size: 4,
            steps_per_tune: 2,
            ..OnlineConfig::default()
        };
        let mut trainer = OnlineTrainer::for_predictor(cfg, &predictor, dataset.task).unwrap();
        let t0 = predictor.last_time();
        for i in 0..20u32 {
            trainer
                .absorb(&predictor, i % 40, t0 + i as f64, &ctdg::Label::Class(0))
                .unwrap();
        }
        // 20 examples / batch 4 = 5 windows; 2 steps sweep 8 examples.
        let report = trainer.fine_tune();
        assert_eq!(report.steps, 2);
        assert_eq!(report.examples, 8);
        assert_eq!(trainer.buffered(), 12, "un-swept backlog must survive the round");
        // Two more rounds work through the backlog oldest-first.
        assert_eq!(trainer.fine_tune().examples, 8);
        let last = trainer.fine_tune();
        assert_eq!(last.examples, 4);
        assert_eq!(trainer.buffered(), 0);
    }

    /// Regression: a label that does not fit the model's task is a typed
    /// error at absorb time, not a panic inside a later tune round.
    #[test]
    fn mismatched_labels_are_typed_errors() {
        let (dataset, predictor) = setup();
        let mut trainer =
            OnlineTrainer::for_predictor(OnlineConfig::default(), &predictor, dataset.task)
                .unwrap();
        let t = predictor.last_time() + 1.0;
        // Classification model: affinity labels and out-of-range classes
        // are both rejected.
        for bad in [
            ctdg::Label::Affinity(Box::new([0.5, 0.5])),
            ctdg::Label::Class(usize::MAX),
        ] {
            let err = trainer.absorb(&predictor, 0, t, &bad).unwrap_err();
            assert!(matches!(err, SplashError::LabelMismatch { .. }), "{err:?}");
        }
        assert_eq!(trainer.buffered(), 0);
        // A fitting label still lands.
        trainer.absorb(&predictor, 0, t, &ctdg::Label::Class(1)).unwrap();
        assert_eq!(trainer.buffered(), 1);
    }

    /// Regression: NaN slips past every `<` comparison, so a NaN
    /// timestamp (or NaN affinity mass, on an affinity model) would be
    /// captured, trained on, and published as NaN weights. Both are typed
    /// errors at absorb time instead.
    #[test]
    fn non_finite_observations_are_rejected() {
        let (dataset, predictor) = setup();
        let mut trainer =
            OnlineTrainer::for_predictor(OnlineConfig::default(), &predictor, dataset.task)
                .unwrap();
        for bad_time in [f64::NAN, f64::INFINITY] {
            let err = trainer
                .absorb(&predictor, 0, bad_time, &ctdg::Label::Class(0))
                .unwrap_err();
            assert!(matches!(err, SplashError::LabelMismatch { .. }), "{err:?}");
        }
        assert_eq!(trainer.buffered(), 0);
        // Affinity-mass finiteness is validated on affinity models.
        let affinity_trainer =
            OnlineTrainer::for_predictor(OnlineConfig::default(), &predictor, Task::Affinity)
                .unwrap();
        let poisoned = {
            let mut mass = vec![0.0f32; predictor.out_dim()];
            mass[0] = f32::NAN;
            ctdg::Label::Affinity(mass.into())
        };
        let err = affinity_trainer.validate_label(&poisoned).unwrap_err();
        assert!(matches!(err, SplashError::LabelMismatch { .. }), "{err:?}");
    }

    #[test]
    fn past_time_labels_are_rejected() {
        let (dataset, predictor) = setup();
        let mut trainer =
            OnlineTrainer::for_predictor(OnlineConfig::default(), &predictor, dataset.task)
                .unwrap();
        let err = trainer
            .absorb(&predictor, 0, predictor.last_time() - 1.0, &ctdg::Label::Class(0))
            .unwrap_err();
        assert!(matches!(err, SplashError::PastQuery { .. }), "{err:?}");
        assert_eq!(trainer.buffered(), 0);
    }
}
