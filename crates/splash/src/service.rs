//! The serving façade: [`SplashService`].
//!
//! [`crate::stream::StreamingPredictor`] is the numeric core of
//! deployment; this module is the *operational* surface a production
//! system actually talks to. The service owns a registry of **named
//! models** (train in place, load from a persisted artifact, hot-swap
//! either way while serving), speaks **typed requests and responses**
//! ([`IngestRequest`]/[`IngestReport`], [`PredictRequest`]/
//! [`PredictResponse`]), reports every input problem as a
//! [`SplashError`] instead of aborting the process, and keeps cheap
//! serving counters ([`ServiceStats`]).
//!
//! Two properties are pinned by tests and worth relying on:
//!
//! * **Bit-identity** — a prediction served through the façade is exactly
//!   the prediction the underlying [`StreamingPredictor`] would produce;
//!   the service adds policy and accounting, never arithmetic.
//! * **Zero-alloc steady state** — [`SplashService::predict_into`] with a
//!   reused [`PredictResponse`] performs no heap allocation after warm-up
//!   (enforced by the counting-allocator test in
//!   `crates/splash/tests/alloc.rs`).
//!
//! ```
//! use datasets::synthetic_shift;
//! use splash::service::{IngestRequest, PredictRequest, SplashService};
//! use splash::{truncate_to_available, FeatureProcess, SplashConfig};
//!
//! let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
//! let mut cfg = SplashConfig::tiny();
//! cfg.epochs = 2;
//!
//! let mut service = SplashService::builder(cfg).build().unwrap();
//! service
//!     .train_model_with_process("live", &dataset, FeatureProcess::Random)
//!     .unwrap();
//!
//! // Serve: ingest the unseen tail, then answer a query.
//! let tail = &dataset.stream.edges()[dataset.stream.len() / 2..];
//! let report = service.ingest("live", IngestRequest::new(tail)).unwrap();
//! assert_eq!(report.dropped, 0);
//! let resp = service
//!     .predict("live", PredictRequest::new(0, report.last_time + 1.0))
//!     .unwrap();
//! assert!(resp.logits.iter().all(|v| v.is_finite()));
//! ```

use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ctdg::{NodeId, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use nn::Matrix;

use crate::augment::FeatureProcess;
use crate::capture::{CapturedNeighbor, CapturedQuery};
use crate::config::SplashConfig;
use crate::durable::{
    CheckpointData, DurabilityConfig, DurableLog, PersistedCounters, RecoveryReport, WalEntry,
    WalRecord,
};
use crate::error::SplashError;
use crate::online::{FineTuneReport, OnlineConfig, OnlineTrainer};
use crate::shard::{ShardStats, ShardedPredictor};
use crate::slim::{AdamState, SlimModel};
use crate::stream::StreamingPredictor;
use crate::telemetry::{escape_label_value, Gauge, Telemetry};
use crate::task::argmax;
use ctdg::Label;
use datasets::Task;

/// What a durable checkpoint does when the online replay buffer still
/// holds captured labels ([`SplashServiceBuilder::checkpoint_policy`]).
///
/// Plain artifact saves ([`SplashService::save_model`]) are unaffected by
/// this choice: the artifact format cannot carry the buffer, so a
/// non-empty buffer always refuses with
/// [`SplashError::CheckpointUnflushed`] there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Serialize the buffer into the checkpoint (the default): a restored
    /// trainer resumes with the exact buffered examples, cursors and
    /// cadence, so nothing is lost and replayed tune rounds stay
    /// bit-identical.
    #[default]
    PersistBuffer,
    /// Refuse to checkpoint while labels are buffered
    /// ([`SplashError::CheckpointUnflushed`]); the caller drains with
    /// [`SplashService::fine_tune`] first. Automatic (WAL-threshold)
    /// checkpoints are deferred — not failed — until the buffer drains;
    /// the WAL keeps every request durable in the meantime.
    Refuse,
}

/// What [`SplashService::ingest`] does with an edge whose timestamp
/// precedes the model's last observed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LateEdgePolicy {
    /// Reject the whole batch with [`SplashError::OutOfOrderEdge`],
    /// leaving the model's state exactly as it was (the default: loud,
    /// lossless, lets the caller repair and retry).
    #[default]
    Error,
    /// Silently drop late edges, count them in [`IngestReport::dropped`],
    /// and ingest the rest — the model behaves exactly as if it had been
    /// fed the chronologically filtered stream.
    DropLate,
}

/// A micro-batch of edges for [`SplashService::ingest`].
#[derive(Debug, Clone, Copy)]
pub struct IngestRequest<'a> {
    /// The edges, expected in chronological order.
    pub edges: &'a [TemporalEdge],
    /// Per-request override of the service's [`LateEdgePolicy`].
    pub policy: Option<LateEdgePolicy>,
}

impl<'a> IngestRequest<'a> {
    /// A request carrying `edges` under the service's configured policy.
    pub fn new(edges: &'a [TemporalEdge]) -> Self {
        Self { edges, policy: None }
    }

    /// Overrides the late-edge policy for this request only.
    pub fn with_policy(mut self, policy: LateEdgePolicy) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// What [`SplashService::ingest`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Edges applied to the model.
    pub ingested: usize,
    /// Late edges dropped (always 0 under [`LateEdgePolicy::Error`]).
    pub dropped: usize,
    /// The model's stream clock after the batch.
    pub last_time: f64,
}

/// One label query for [`SplashService::predict`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictRequest {
    /// The node whose property is queried.
    pub node: NodeId,
    /// Query time; must not precede the model's last observed edge.
    pub time: f64,
}

impl PredictRequest {
    /// A query for `node` at `time`.
    pub fn new(node: NodeId, time: f64) -> Self {
        Self { node, time }
    }
}

/// The answer to a [`PredictRequest`].
///
/// Reuse one response across calls ([`SplashService::predict_into`]) and
/// the logits buffer is recycled — that is the allocation-free serving
/// path.
#[derive(Debug, Clone, Default)]
pub struct PredictResponse {
    /// Property logits, one per class (width = the model's output dim).
    pub logits: Vec<f32>,
}

impl PredictResponse {
    /// Index of the highest logit, or `None` before the first prediction.
    pub fn top_class(&self) -> Option<usize> {
        if self.logits.is_empty() {
            None
        } else {
            Some(argmax(&self.logits))
        }
    }
}

/// What [`SplashService::observe_labels`] did with a batch of ground-truth
/// observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LabelReport {
    /// Labels captured into the model's replay buffer.
    pub buffered: usize,
    /// Past-time labels dropped (always 0 under [`LateEdgePolicy::Error`]).
    pub dropped: usize,
    /// Automatic tune rounds the batch triggered
    /// ([`crate::online::FineTunePolicy::EveryLabels`]); each one published.
    pub tunes: usize,
    /// Adam steps those rounds executed in total.
    pub steps: usize,
}

// The histogram moved into the telemetry plane (PR 9); the re-export
// keeps `splash::service::LatencyHistogram` paths working.
pub use crate::telemetry::{LatencyHistogram, LATENCY_BUCKETS};

/// Cheap serving counters, snapshotted by [`SplashService::stats`].
/// Aggregated across all models in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Edges applied to any model.
    pub edges_ingested: u64,
    /// Late edges dropped under [`LateEdgePolicy::DropLate`].
    pub edges_dropped: u64,
    /// Predictions served (single + batched).
    pub queries_served: u64,
    /// Shard engines across the registry (a single-engine model counts 1).
    pub shards: u64,
    /// Edges observed by the shared witness of sharded engines — exactly
    /// one count per engine regardless of its shard count (PR 10 replaced
    /// the per-shard `witness_edges` accounting, which multiplied the same
    /// work N-fold, with this single global counter).
    pub edges_witnessed: u64,
    /// Ground-truth labels captured for continual learning.
    pub labels_buffered: u64,
    /// Past-time labels dropped under [`LateEdgePolicy::DropLate`].
    pub labels_dropped: u64,
    /// Online tune rounds completed (manual + automatic).
    pub fine_tunes: u64,
    /// Adam steps executed across all tune rounds.
    pub fine_tune_steps: u64,
    /// Weight publications into serving engines (every fine-tune publishes
    /// once; explicit [`SplashService::publish`] calls count too).
    pub publishes: u64,
    /// Wire requests rejected by admission control (a full request queue
    /// sheds load with a typed 429 instead of building unbounded backlog).
    /// Always 0 for a purely in-process service; the wire front end
    /// ([`crate::server`]) counts them into the shared telemetry registry,
    /// so this snapshot and the server's own report are the same number.
    pub requests_shed: u64,
    /// Wire requests whose per-request deadline expired while they queued —
    /// answered with a typed 504, never executed against the model.
    pub deadlines_expired: u64,
    /// End-to-end request latency (arrival to completion) of executed wire
    /// requests. Empty for a purely in-process service.
    pub latency: LatencyHistogram,
    /// Durable checkpoints committed (epoch-0 creations, WAL-threshold
    /// rotations and explicit [`SplashService::checkpoint`] calls).
    pub snapshots_written: u64,
    /// Write-ahead-log records group-committed since the service started.
    pub wal_records_appended: u64,
    /// WAL records replayed on top of recovered snapshots.
    pub wal_records_replayed: u64,
    /// Crash recoveries completed ([`SplashService::make_durable`] finding
    /// a committed checkpoint and restoring from it).
    pub recoveries: u64,
    /// Torn WAL tails truncated at the last valid record during recovery.
    pub wal_truncations: u64,
}

impl fmt::Display for ServiceStats {
    /// The operator-facing rendering the CLI `serve` report embeds — one
    /// aligned `label : value` line per counter, newline-terminated. The
    /// continual-learning block renders only once labels have flowed, so a
    /// frozen-model report stays as terse as before.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "edges ingested : {} (+{} dropped)",
            self.edges_ingested, self.edges_dropped
        )?;
        writeln!(f, "queries served : {}", self.queries_served)?;
        writeln!(f, "shard engines  : {}", self.shards)?;
        if self.edges_witnessed > 0 {
            writeln!(f, "edges witnessed: {} (shared witness, counted once)", self.edges_witnessed)?;
        }
        if self.labels_buffered > 0 || self.labels_dropped > 0 || self.publishes > 0 {
            writeln!(
                f,
                "labels absorbed: {} (+{} dropped)",
                self.labels_buffered, self.labels_dropped
            )?;
            writeln!(
                f,
                "fine-tunes     : {} ({} steps, {} publishes)",
                self.fine_tunes, self.fine_tune_steps, self.publishes
            )?;
        }
        if self.snapshots_written > 0 || self.recoveries > 0 || self.wal_records_appended > 0 {
            writeln!(
                f,
                "durability     : {} snapshots, {} WAL records ({} replayed), \
                 {} recoveries, {} torn tails",
                self.snapshots_written,
                self.wal_records_appended,
                self.wal_records_replayed,
                self.recoveries,
                self.wal_truncations
            )?;
        }
        if self.latency.count() > 0 || self.requests_shed > 0 || self.deadlines_expired > 0 {
            writeln!(
                f,
                "wire requests  : {} served, {} shed, {} past deadline",
                self.latency.count(),
                self.requests_shed,
                self.deadlines_expired
            )?;
            let ms = |ns: u64| ns as f64 / 1e6;
            writeln!(
                f,
                "wire latency   : p50 {:.3}ms / p99 {:.3}ms / p999 {:.3}ms (max {:.3}ms)",
                ms(self.latency.p50_ns()),
                ms(self.latency.p99_ns()),
                ms(self.latency.p999_ns()),
                ms(self.latency.max_ns()),
            )?;
        }
        Ok(())
    }
}

/// An externally implemented serving engine, pluggable into a
/// [`SplashService`] registry slot next to the built-in SPLASH engines via
/// [`SplashService::register_engine`].
///
/// This is the seam that turns the registry into a genuinely multi-model,
/// multi-tenant serving plane: any model that can consume a chronological
/// edge stream and answer `(node, time)` property queries — the
/// `baselines` crate's Table III competitors, for instance — serves
/// through the **same** slots, policies ([`LateEdgePolicy`], strict node
/// checking), counters ([`ServiceStats`]) and typed [`SplashError`]
/// surface as SPLASH itself.
///
/// Contract expected of implementors (the same one the SPLASH engines
/// honor): edges arrive chronologically and a violated batch is rejected
/// **atomically** with [`SplashError::OutOfOrderEdge`] before any state
/// changes; queries before the stream clock are [`SplashError::PastQuery`];
/// prediction is read-only and deterministic for a given observed stream.
///
/// External engines are serving-only: they have no online trainer (label
/// feedback reports [`SplashError::OnlineDisabled`]) and no persistence
/// (saving or checkpointing the slot reports a typed error instead of
/// silently writing an artifact that could not restore the engine).
pub trait ServeEngine: std::fmt::Debug + Send {
    /// Short engine-kind label shown in [`ModelInfo`] and `GET /models`
    /// (e.g. `"baseline:tgn+rf"`).
    fn kind(&self) -> String;

    /// Arrival time of the most recently observed edge
    /// (`f64::NEG_INFINITY` before the first).
    fn last_time(&self) -> f64;

    /// Size of the known node universe (valid ids are `0..known`), used by
    /// strict node checking.
    fn known_nodes(&self) -> usize;

    /// Validates and applies a chronological edge batch atomically: a
    /// rejected batch ([`SplashError::OutOfOrderEdge`]) leaves the engine
    /// untouched.
    fn try_push_edges(&mut self, edges: &[TemporalEdge]) -> Result<(), SplashError>;

    /// Observes one edge, advancing the stream clock.
    fn try_observe_edge(&mut self, edge: &TemporalEdge) -> Result<(), SplashError>;

    /// Answers one query, writing the logits into `out` (cleared first;
    /// buffer reused across calls).
    fn try_predict_into(
        &self,
        node: NodeId,
        time: f64,
        out: &mut Vec<f32>,
    ) -> Result<(), SplashError>;

    /// Answers a micro-batch of queries; row `i` holds the logits for
    /// `queries[i]` (labels are ignored).
    fn try_predict_batch(&self, queries: &[PropertyQuery]) -> Result<Matrix, SplashError>;
}

/// Descriptive snapshot of one registry slot
/// ([`SplashService::models_info`]): which engine serves it and with what
/// capabilities — the inspectable face of a multi-tenant registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The registry name.
    pub name: String,
    /// Engine kind: `"splash"` for the built-in streaming engines, or the
    /// external engine's own label (e.g. `"baseline:tgn+rf"`).
    pub engine: String,
    /// How many hash-partitioned shards serve the slot (1 = single).
    pub shards: usize,
    /// Whether the slot has a hot-standby online trainer attached.
    pub online: bool,
    /// Whether the slot has a durable checkpoint + WAL log attached.
    pub durable: bool,
}

impl fmt::Display for ModelInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let onoff = |b: bool| if b { "on" } else { "off" };
        write!(
            f,
            "{} engine={} shards={} online={} durable={}",
            self.name,
            self.engine,
            self.shards,
            onoff(self.online),
            onoff(self.durable),
        )
    }
}

/// The serving engine behind one registry slot: a single streaming
/// predictor, a hash-partitioned group of them, or an externally
/// implemented [`ServeEngine`]. The enum delegates the handful of calls
/// the façade makes, so the policy/accounting code above it is
/// engine-agnostic — and so is the bit-identity contract, since the
/// sharded engine reproduces the single engine exactly.
#[derive(Debug)]
enum Engine {
    /// One streaming predictor (the default, `shards == 1`). Boxed so the
    /// enum stays small next to the `Vec`-backed sharded variant.
    Single(Box<StreamingPredictor>),
    /// `N` hash-partitioned predictors behind a scatter–gather router.
    /// Boxed for the same reason: the router carries per-shard scratch.
    Sharded(Box<ShardedPredictor>),
    /// An externally implemented engine behind the same slot surface
    /// (serving-only: no trainer, no persistence).
    External(Box<dyn ServeEngine>),
}

impl Engine {
    /// The [`ModelInfo`] engine-kind label.
    fn kind_label(&self) -> String {
        match self {
            Engine::Single(_) | Engine::Sharded(_) => "splash".to_string(),
            Engine::External(e) => e.kind(),
        }
    }

    fn shards(&self) -> usize {
        match self {
            Engine::Single(_) | Engine::External(_) => 1,
            Engine::Sharded(s) => s.num_shards(),
        }
    }

    /// Edges the engine's shared witness has observed — one global count
    /// per sharded engine (the single-writer witness pass); 0 for the
    /// other engine kinds, whose ingest shows in `edges_ingested`.
    fn witnessed_edges(&self) -> u64 {
        match self {
            Engine::Sharded(s) => s.witnessed_edges(),
            Engine::Single(_) | Engine::External(_) => 0,
        }
    }

    fn last_time(&self) -> f64 {
        match self {
            Engine::Single(p) => p.last_time(),
            Engine::Sharded(s) => s.last_time(),
            Engine::External(e) => e.last_time(),
        }
    }

    fn known_nodes(&self) -> usize {
        match self {
            Engine::Single(p) => p.known_nodes(),
            Engine::Sharded(s) => s.known_nodes(),
            Engine::External(e) => e.known_nodes(),
        }
    }

    fn try_push_edges(&mut self, edges: &[TemporalEdge]) -> Result<(), SplashError> {
        match self {
            Engine::Single(p) => p.try_push_edges(edges),
            Engine::Sharded(s) => s.try_push_edges(edges),
            Engine::External(e) => e.try_push_edges(edges),
        }
    }

    fn try_observe_edge(&mut self, edge: &TemporalEdge) -> Result<(), SplashError> {
        match self {
            Engine::Single(p) => p.try_observe_edge(edge),
            Engine::Sharded(s) => s.try_observe_edge(edge),
            Engine::External(e) => e.try_observe_edge(edge),
        }
    }

    fn try_predict_into(
        &self,
        node: NodeId,
        time: f64,
        out: &mut Vec<f32>,
    ) -> Result<(), SplashError> {
        match self {
            Engine::Single(p) => p.try_predict_into(node, time, out),
            Engine::Sharded(s) => s.try_predict_into(node, time, out),
            Engine::External(e) => e.try_predict_into(node, time, out),
        }
    }

    fn try_predict_batch(&self, queries: &[PropertyQuery]) -> Result<Matrix, SplashError> {
        match self {
            Engine::Single(p) => p.try_predict_batch(queries),
            Engine::Sharded(s) => s.try_predict_batch(queries),
            Engine::External(e) => e.try_predict_batch(queries),
        }
    }

    fn try_predict_batch_into(
        &mut self,
        queries: &[PropertyQuery],
        out: &mut Matrix,
    ) -> Result<(), SplashError> {
        match self {
            Engine::Single(p) => p.try_predict_batch_into(queries, out),
            Engine::Sharded(s) => s.try_predict_batch_into(queries, out),
            Engine::External(e) => {
                *out = e.try_predict_batch(queries)?;
                Ok(())
            }
        }
    }

    fn save(&mut self, path: &Path, opt: Option<&AdamState>) -> Result<(), SplashError> {
        match self {
            Engine::Single(p) => p.save_with_opt(path, opt),
            Engine::Sharded(s) => s.save_with_opt(path, opt),
            Engine::External(e) => Err(SplashError::InvalidConfig {
                what: format!(
                    "external engine {:?} cannot be persisted (serving-only slot)",
                    e.kind()
                ),
            }),
        }
    }

    /// Assembles a labeled training example from the engine's current
    /// streaming state (the owner shard's, for a sharded engine — same
    /// bits as the single engine by the sharding invariant).
    fn capture_labeled_into(
        &self,
        node: NodeId,
        time: f64,
        label: &Label,
        q: &mut CapturedQuery,
        spare: &mut Vec<CapturedNeighbor>,
    ) -> Result<(), SplashError> {
        match self {
            Engine::Single(p) => p.capture_labeled_into(node, time, label, q, spare),
            Engine::Sharded(s) => s.capture_labeled_into(node, time, label, q, spare),
            // Unreachable in practice: external slots carry no trainer, so
            // nothing ever captures through them — but keep it typed.
            Engine::External(e) => Err(SplashError::OnlineDisabled { name: e.kind() }),
        }
    }

    /// Atomically replaces the served weights (every shard of a sharded
    /// engine — shards share weights). Streaming state is untouched, so
    /// the next query runs the new weights over exactly the state the old
    /// weights saw.
    fn set_weights(&mut self, src: &SlimModel) {
        match self {
            Engine::Single(p) => p.set_model_weights(src),
            Engine::Sharded(s) => s.set_weights(src),
            // No SLIM weights to publish into; unreachable because external
            // slots have no trainer, and harmless if that ever changes.
            Engine::External(_) => {}
        }
    }

    /// The witness snapshot plus per-shard ring partitions for a durable
    /// checkpoint (one ring partition for the single engine).
    #[allow(clippy::type_complexity)]
    fn durable_stream_state(
        &self,
    ) -> Result<(crate::stream::WitnessSnapshot, Vec<Vec<crate::stream::RingState>>), SplashError>
    {
        match self {
            Engine::Single(p) => Ok((p.durable_witness(), vec![p.durable_rings()])),
            Engine::Sharded(s) => Ok((s.durable_witness(), s.durable_ring_shards())),
            // Unreachable in the checkpoint flow: an external slot fails
            // earlier, in `model_bytes` — but keep it typed.
            Engine::External(e) => Err(SplashError::InvalidConfig {
                what: format!(
                    "external engine {:?} cannot be checkpointed (serving-only slot)",
                    e.kind()
                ),
            }),
        }
    }

    /// The model-artifact bytes of the served weights (persist format,
    /// optional `SAVEDOPT` trailer) for a durable checkpoint.
    fn model_bytes(&mut self, opt: Option<&AdamState>) -> Result<Vec<u8>, SplashError> {
        match self {
            Engine::Single(p) => p.model_artifact_bytes(opt),
            Engine::Sharded(s) => s.model_artifact_bytes(opt),
            Engine::External(e) => Err(SplashError::InvalidConfig {
                what: format!(
                    "external engine {:?} cannot be checkpointed (serving-only slot)",
                    e.kind()
                ),
            }),
        }
    }

    /// A copy of the served weights (shards share them), for rebuilding a
    /// trainer at recovery. `None` for an external engine, which has no
    /// SLIM weights (recovery only ever constructs SPLASH engines).
    fn model_clone(&self) -> Option<SlimModel> {
        match self {
            Engine::Single(p) => Some(p.model().clone()),
            Engine::Sharded(s) => Some(
                s.shard(0).expect("a sharded engine has at least one shard").model().clone(),
            ),
            Engine::External(_) => None,
        }
    }
}

/// One named slot in the registry.
#[derive(Debug)]
struct ModelEntry {
    name: String,
    engine: Engine,
    /// The hot-standby continual learner, present when the service was
    /// built with [`SplashServiceBuilder::online`].
    trainer: Option<OnlineTrainer>,
    /// The durable checkpoint + WAL log, present after
    /// [`SplashService::make_durable`].
    durable: Option<DurableLog>,
}

/// Configures and checks a [`SplashService`] before it starts serving.
#[derive(Debug, Clone, Copy)]
pub struct SplashServiceBuilder {
    cfg: SplashConfig,
    policy: LateEdgePolicy,
    strict_nodes: bool,
    shards: usize,
    online: Option<OnlineConfig>,
    checkpoint_policy: CheckpointPolicy,
}

impl SplashServiceBuilder {
    /// Sets the service-wide late-edge policy (default:
    /// [`LateEdgePolicy::Error`]).
    pub fn late_edge_policy(mut self, policy: LateEdgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// When `true`, a [`PredictRequest`] naming a node outside the model's
    /// known universe is rejected with [`SplashError::UnknownNode`]
    /// instead of served from zero/propagated features (default: `false`,
    /// the paper's unseen-node semantics).
    pub fn strict_nodes(mut self, strict: bool) -> Self {
        self.strict_nodes = strict;
        self
    }

    /// How many hash-partitioned shards serve each registered model
    /// (default 1 = the plain single engine). Any count produces
    /// bit-identical predictions; more shards split state and scatter
    /// query compute ([`crate::shard`]). Must be positive — checked by
    /// [`SplashServiceBuilder::build`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables online continual learning: every model installed from now
    /// on gets a hot-standby [`OnlineTrainer`] behind it, fed by
    /// [`SplashService::observe_labels`] and flushed by
    /// [`SplashService::fine_tune`] (or automatically, per
    /// `online.policy`). Default: disabled — models stay frozen.
    pub fn online(mut self, online: OnlineConfig) -> Self {
        self.online = Some(online);
        self
    }

    /// What durable checkpoints do when the online replay buffer is
    /// non-empty (default: [`CheckpointPolicy::PersistBuffer`]).
    pub fn checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint_policy = policy;
        self
    }

    /// Validates the configuration and produces an empty service; add
    /// models with [`SplashService::train_model`] /
    /// [`SplashService::load_model`].
    pub fn build(self) -> Result<SplashService, SplashError> {
        self.cfg.validate()?;
        if self.shards == 0 {
            return Err(SplashError::InvalidConfig {
                what: "shard count must be positive".into(),
            });
        }
        if let Some(online) = &self.online {
            online.validate()?;
        }
        Ok(SplashService {
            cfg: self.cfg,
            policy: self.policy,
            strict_nodes: self.strict_nodes,
            shards: self.shards,
            online: self.online,
            checkpoint_policy: self.checkpoint_policy,
            models: Vec::new(),
            tel: Arc::new(Telemetry::new()),
        })
    }
}

/// A serving façade over a registry of named streaming models.
///
/// See the [module docs](self) for the full contract; in short: typed
/// fallible requests in, bit-identical predictions out, and the process
/// never aborts on bad input.
#[derive(Debug)]
pub struct SplashService {
    cfg: SplashConfig,
    policy: LateEdgePolicy,
    strict_nodes: bool,
    /// Shard count applied to every model installed from now on.
    shards: usize,
    /// Continual-learning knobs; `Some` attaches a trainer to every model
    /// installed from now on.
    online: Option<OnlineConfig>,
    /// Durable-checkpoint policy toward a non-empty replay buffer.
    checkpoint_policy: CheckpointPolicy,
    models: Vec<ModelEntry>,
    /// The unified telemetry plane: every counter the service keeps is a
    /// handle into this shared registry (atomics, so counting works
    /// through `&self` on the predict path and from the wire front end's
    /// worker threads). `Arc` so [`SplashService::telemetry`] can hand the
    /// same plane to the server without the service giving up ownership.
    tel: Arc<Telemetry>,
}

impl SplashService {
    /// Starts configuring a service around `cfg` (used by the in-service
    /// training entry points; loaded models carry their own config).
    pub fn builder(cfg: SplashConfig) -> SplashServiceBuilder {
        SplashServiceBuilder {
            cfg,
            policy: LateEdgePolicy::default(),
            strict_nodes: false,
            shards: 1,
            online: None,
            checkpoint_policy: CheckpointPolicy::default(),
        }
    }

    /// Builds the hot-standby trainer for a model about to be installed
    /// (`None` when the service has continual learning disabled). `saved`
    /// carries a checkpointed optimizer from a `SAVEDOPT` artifact section.
    fn trainer_for(
        &self,
        predictor: &StreamingPredictor,
        task: Task,
        saved: Option<&AdamState>,
    ) -> Result<Option<OnlineTrainer>, SplashError> {
        match &self.online {
            None => Ok(None),
            Some(cfg) => Ok(Some(OnlineTrainer::resume(
                *cfg,
                predictor.model().clone(),
                task,
                saved,
            )?)),
        }
    }

    /// Wraps a freshly built predictor in the engine form the service was
    /// configured for (single at `shards == 1`, scatter–gather otherwise).
    fn engine_for(&self, predictor: StreamingPredictor) -> Result<Engine, SplashError> {
        if self.shards == 1 {
            Ok(Engine::Single(Box::new(predictor)))
        } else {
            Ok(Engine::Sharded(Box::new(ShardedPredictor::from_predictor(
                predictor,
                self.shards,
            )?)))
        }
    }

    /// Trains a model on `dataset` with automatic feature selection and
    /// installs it under `name` (replacing — hot-swapping — any model
    /// already there). Returns the selected augmentation process.
    pub fn train_model(
        &mut self,
        name: &str,
        dataset: &Dataset,
    ) -> Result<FeatureProcess, SplashError> {
        let predictor = StreamingPredictor::train(dataset, &self.cfg);
        let process = predictor.process();
        let trainer = self.trainer_for(&predictor, dataset.task, None)?;
        let engine = self.engine_for(predictor)?;
        let idx = self.install(name, engine, trainer);
        self.checkpoint_barrier(idx)?;
        Ok(process)
    }

    /// Like [`SplashService::train_model`], but the installed copy never
    /// gets a continual-learning trainer — even when the service was built
    /// with [`SplashServiceBuilder::online`]. Training is deterministic,
    /// so a frozen slot and an online slot trained from the same dataset
    /// and config start from bit-identical weights; only the online copy
    /// then moves. This is what lets one multi-tenant service hold the
    /// frozen-vs-adapted comparison the scenario matrix reports.
    pub fn train_frozen_model(
        &mut self,
        name: &str,
        dataset: &Dataset,
    ) -> Result<FeatureProcess, SplashError> {
        let predictor = StreamingPredictor::train(dataset, &self.cfg);
        let process = predictor.process();
        let engine = self.engine_for(predictor)?;
        let idx = self.install(name, engine, None);
        self.checkpoint_barrier(idx)?;
        Ok(process)
    }

    /// Like [`SplashService::train_model`] but with a fixed augmentation
    /// process (skipping selection).
    pub fn train_model_with_process(
        &mut self,
        name: &str,
        dataset: &Dataset,
        process: FeatureProcess,
    ) -> Result<(), SplashError> {
        let predictor = StreamingPredictor::train_with_process(dataset, &self.cfg, process);
        let trainer = self.trainer_for(&predictor, dataset.task, None)?;
        let engine = self.engine_for(predictor)?;
        let idx = self.install(name, engine, trainer);
        self.checkpoint_barrier(idx)?;
        Ok(())
    }

    /// Loads a persisted model from `path`, rebuilds its streaming state
    /// from `dataset`'s training prefix, and installs it under `name`
    /// (hot-swapping any model already there — in-flight state of the
    /// replaced model is discarded).
    ///
    /// Both artifact kinds load interchangeably: a single-model file
    /// ([`SplashService::save_model`] at 1 shard) or a sharded manifest
    /// (more shards). Either way the model is served with the *service's*
    /// configured shard count — resharding-on-load, since streaming state
    /// is rebuilt and ownership recomputed here anyway.
    ///
    /// The saved file's own config is validated and used; the service's
    /// config only governs models trained in-service.
    ///
    /// When the service has continual learning enabled and the artifact
    /// carries a `SAVEDOPT` optimizer section, the restored trainer
    /// continues the checkpointed run's Adam schedule — resuming a
    /// fine-tuning deployment is bit-identical to never restarting it.
    pub fn load_model(
        &mut self,
        name: &str,
        path: &Path,
        dataset: &Dataset,
    ) -> Result<(), SplashError> {
        let mut saved = if crate::persist::is_sharded_artifact(path)? {
            crate::persist::load_sharded_model(path)?.1
        } else {
            crate::persist::load_model(path)?
        };
        saved.cfg.validate()?;
        let opt = saved.opt.take();
        let predictor = StreamingPredictor::try_from_saved(saved, dataset)?;
        let trainer = self.trainer_for(&predictor, dataset.task, opt.as_ref())?;
        let engine = self.engine_for(predictor)?;
        let idx = self.install(name, engine, trainer);
        self.checkpoint_barrier(idx)?;
        Ok(())
    }

    /// Persists the named model to `path`: a single-engine model writes
    /// one model file, a sharded model writes a manifest plus per-shard
    /// files. Either artifact restores through
    /// [`SplashService::load_model`] at any shard count.
    ///
    /// A model with an online trainer also writes the trainer's optimizer
    /// checkpoint (`SAVEDOPT` section), making the artifact a true
    /// continual-learning checkpoint.
    ///
    /// A non-empty online replay buffer refuses the save with
    /// [`SplashError::CheckpointUnflushed`]: the artifact format cannot
    /// carry buffered labels, so persisting now would silently drop them.
    /// Drain with [`SplashService::fine_tune`] first, or use a durable
    /// checkpoint ([`SplashService::checkpoint`]) under
    /// [`CheckpointPolicy::PersistBuffer`], which persists the buffer.
    pub fn save_model(&mut self, name: &str, path: &Path) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        let ModelEntry { engine, trainer, .. } = &mut self.models[idx];
        if let Some(buffered) = trainer.as_ref().map(|t| t.buffered()).filter(|&b| b > 0) {
            return Err(SplashError::CheckpointUnflushed { buffered });
        }
        let opt = trainer.as_mut().map(|t| t.checkpoint());
        engine.save(path, opt.as_ref())
    }

    /// Removes the named model from the registry, dropping its per-model
    /// telemetry series (per-shard counters, online buffer gauge) from
    /// exposition.
    pub fn remove_model(&mut self, name: &str) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        self.models.remove(idx);
        self.tel
            .registry()
            .remove_series_with_label(&format!("model=\"{}\"", escape_label_value(name)));
        self.sync_registry_gauges();
        Ok(())
    }

    /// The registered model names, in installation order.
    pub fn model_names(&self) -> impl Iterator<Item = &str> {
        self.models.iter().map(|e| e.name.as_str())
    }

    /// One [`ModelInfo`] row per registered slot, in installation order —
    /// the machine-readable registry inventory behind `GET /models` and
    /// the CLI `serve` report.
    pub fn models_info(&self) -> Vec<ModelInfo> {
        self.models
            .iter()
            .map(|e| ModelInfo {
                name: e.name.clone(),
                engine: e.engine.kind_label(),
                shards: e.engine.shards(),
                online: e.trainer.is_some(),
                durable: e.durable.is_some(),
            })
            .collect()
    }

    /// Registers an external engine (anything implementing
    /// [`ServeEngine`] — e.g. a baseline model adapted to streamed
    /// serving) under `name`, hot-swapping any model already there.
    ///
    /// External slots are serving-only tenants: they share the registry,
    /// [`ServiceStats`], late-edge policies, and typed-error surface with
    /// SPLASH slots, but carry no online trainer (labels observed on them
    /// report [`SplashError::OnlineDisabled`]) and cannot be persisted or
    /// made durable (typed [`SplashError::InvalidConfig`]).
    pub fn register_engine(
        &mut self,
        name: &str,
        engine: Box<dyn ServeEngine>,
    ) -> Result<(), SplashError> {
        let idx = self.install(name, Engine::External(engine), None);
        self.checkpoint_barrier(idx)?;
        Ok(())
    }

    /// Direct (read-only) access to a registered single-engine predictor —
    /// the escape hatch for callers that need core APIs the façade does
    /// not wrap (representations, `predict_many`, …). A model served by
    /// multiple shards has no single engine and reports
    /// [`SplashError::ShardedModel`]; use
    /// [`SplashService::sharded_model`] for those. An external engine has
    /// no [`StreamingPredictor`] at all and reports
    /// [`SplashError::InvalidConfig`].
    pub fn model(&self, name: &str) -> Result<&StreamingPredictor, SplashError> {
        let entry = self.entry(name)?;
        match &entry.engine {
            Engine::Single(p) => Ok(p.as_ref()),
            Engine::Sharded(s) => Err(SplashError::ShardedModel {
                name: name.to_string(),
                shards: s.num_shards(),
            }),
            Engine::External(e) => Err(SplashError::InvalidConfig {
                what: format!(
                    "model {name:?} is served by an external engine ({:?}); direct \
                     predictor access applies only to SPLASH engines",
                    e.kind()
                ),
            }),
        }
    }

    /// Direct (read-only) access to a registered sharded engine (per-shard
    /// stats, shard inspection). A single-engine or external model reports
    /// [`SplashError::ShardedModel`] with `shards: 1`.
    pub fn sharded_model(&self, name: &str) -> Result<&ShardedPredictor, SplashError> {
        let entry = self.entry(name)?;
        match &entry.engine {
            Engine::Sharded(s) => Ok(s.as_ref()),
            Engine::Single(_) | Engine::External(_) => Err(SplashError::ShardedModel {
                name: name.to_string(),
                shards: 1,
            }),
        }
    }

    /// Per-shard serving counters of the named model: one
    /// [`ShardStats`] row per shard for a sharded engine, an empty vector
    /// for a single-engine or external model (whose counters are the
    /// service-level [`ServiceStats`]).
    pub fn shard_stats(&self, name: &str) -> Result<Vec<ShardStats>, SplashError> {
        match &self.entry(name)?.engine {
            Engine::Sharded(s) => Ok(s.shard_stats()),
            Engine::Single(_) | Engine::External(_) => Ok(Vec::new()),
        }
    }

    /// The stream clock of the named model: arrival time of its most
    /// recently observed edge (engine-agnostic, unlike the
    /// [`SplashService::model`] escape hatch).
    pub fn model_last_time(&self, name: &str) -> Result<f64, SplashError> {
        Ok(self.entry(name)?.engine.last_time())
    }

    /// Applies a batch of edges to the named model under the request's (or
    /// the service's) [`LateEdgePolicy`].
    ///
    /// Under [`LateEdgePolicy::Error`] the whole batch is validated before
    /// any state changes, so a rejected batch leaves the model untouched
    /// and the service keeps serving. Under [`LateEdgePolicy::DropLate`]
    /// the model ends up exactly as if it had consumed the
    /// chronologically filtered stream.
    pub fn ingest(
        &mut self,
        name: &str,
        req: IngestRequest<'_>,
    ) -> Result<IngestReport, SplashError> {
        let policy = req.policy.unwrap_or(self.policy);
        let idx = self.index(name)?;
        let report = self.apply_ingest(idx, req.edges, policy)?;
        if !req.edges.is_empty() {
            self.append_wal(
                idx,
                WalRecord::Edges {
                    edges: req.edges,
                    drop_late: policy == LateEdgePolicy::DropLate,
                },
            )?;
        }
        Ok(report)
    }

    /// The engine-and-counter core of [`SplashService::ingest`], shared
    /// with WAL replay (which must reproduce the live path exactly, minus
    /// the re-append).
    fn apply_ingest(
        &mut self,
        idx: usize,
        edges: &[TemporalEdge],
        policy: LateEdgePolicy,
    ) -> Result<IngestReport, SplashError> {
        let engine = &mut self.models[idx].engine;
        let dropped = match policy {
            LateEdgePolicy::Error => {
                engine.try_push_edges(edges)?;
                0
            }
            LateEdgePolicy::DropLate => {
                // A clean batch (the common case) takes the batched path
                // with its single-pass validation and up-front ring
                // growth; only a batch that actually contains late edges
                // pays the per-edge filter.
                let mut prev = engine.last_time();
                let mut clean = true;
                for edge in edges {
                    if edge.time < prev {
                        clean = false;
                        break;
                    }
                    prev = edge.time;
                }
                if clean {
                    engine.try_push_edges(edges)?;
                    0
                } else {
                    let mut dropped = 0usize;
                    for edge in edges {
                        match engine.try_observe_edge(edge) {
                            Ok(()) => {}
                            Err(SplashError::OutOfOrderEdge { .. }) => dropped += 1,
                            Err(other) => return Err(other),
                        }
                    }
                    dropped
                }
            }
        };
        let ingested = edges.len() - dropped;
        self.tel.edges_ingested.add(ingested as u64);
        self.tel.edges_dropped.add(dropped as u64);
        Ok(IngestReport {
            ingested,
            dropped,
            last_time: self.models[idx].engine.last_time(),
        })
    }

    /// Feeds ground-truth observations from the live stream into the named
    /// model's continual learner: each `(node, time, label)` query is
    /// captured — against the model's *current* streaming state, exactly
    /// what a prediction at that instant would have seen — into the
    /// bounded replay buffer.
    ///
    /// The whole batch is validated **before anything is absorbed**
    /// (batch atomicity): a label that does not fit the model's task or
    /// output width is [`SplashError::LabelMismatch`] (training on it
    /// would panic deep in the loss), and under strict node checking
    /// ([`SplashServiceBuilder::strict_nodes`]) an unknown node is
    /// [`SplashError::UnknownNode`] — the write path that mutates weights
    /// honors the same guardrails as the read paths. Past-time labels
    /// (time before the model's last observed edge) follow the service's
    /// [`LateEdgePolicy`]: under `Error` they also reject the whole
    /// batch; under `DropLate` they are dropped and counted.
    ///
    /// Under [`crate::online::FineTunePolicy::EveryLabels`] this is also
    /// where automatic fine-tuning fires: the moment the cadence is
    /// reached mid-batch, a tune round runs and its weights publish — the
    /// remaining labels of the batch are then captured against the same
    /// streaming state (capture reads rings, not weights, so ordering
    /// stays deterministic).
    ///
    /// Steady-state absorption performs zero heap allocations (pinned in
    /// `crates/splash/tests/alloc.rs`).
    pub fn observe_labels(
        &mut self,
        name: &str,
        queries: &[PropertyQuery],
    ) -> Result<LabelReport, SplashError> {
        let idx = self.index(name)?;
        let report = self.apply_labels(idx, queries)?;
        if !queries.is_empty() {
            self.append_wal(idx, WalRecord::Labels(queries))?;
        }
        Ok(report)
    }

    /// The validate-capture-tune core of [`SplashService::observe_labels`],
    /// shared with WAL replay.
    fn apply_labels(
        &mut self,
        idx: usize,
        queries: &[PropertyQuery],
    ) -> Result<LabelReport, SplashError> {
        let policy = self.policy;
        let ModelEntry { name, engine, trainer, .. } = &mut self.models[idx];
        let Some(trainer) = trainer.as_mut() else {
            return Err(SplashError::OnlineDisabled { name: name.clone() });
        };
        for q in queries {
            trainer.validate_observation(q.time, &q.label)?;
        }
        if self.strict_nodes {
            let known = engine.known_nodes();
            if let Some(q) = queries.iter().find(|q| q.node as usize >= known) {
                return Err(SplashError::UnknownNode { node: q.node, known });
            }
        }
        let last = engine.last_time();
        if policy == LateEdgePolicy::Error {
            if let Some(q) = queries.iter().find(|q| q.time < last) {
                return Err(SplashError::PastQuery { got: q.time, last });
            }
        }
        let mut report = LabelReport::default();
        for q in queries {
            if q.time < last {
                report.dropped += 1;
                continue;
            }
            trainer.absorb_with(|slot, spare| {
                engine.capture_labeled_into(q.node, q.time, &q.label, slot, spare)
            })?;
            report.buffered += 1;
            if trainer.tune_due() {
                let r = trainer.fine_tune();
                engine.set_weights(trainer.model());
                report.tunes += 1;
                report.steps += r.steps;
            }
        }
        self.tel.labels_buffered.add(report.buffered as u64);
        self.tel.labels_dropped.add(report.dropped as u64);
        self.tel.fine_tunes.add(report.tunes as u64);
        self.tel.fine_tune_steps.add(report.steps as u64);
        self.tel.publishes.add(report.tunes as u64);
        Ok(report)
    }

    /// Runs one bounded tune round on the named model's continual learner
    /// and atomically publishes the updated weights into its serving
    /// engine(s) — all shards of a sharded model, which share weights, in
    /// one publish. An empty replay buffer is a cheap no-op (0 steps, but
    /// the publish still happens, making `fine_tune` idempotent).
    pub fn fine_tune(&mut self, name: &str) -> Result<FineTuneReport, SplashError> {
        let idx = self.index(name)?;
        let report = self.apply_fine_tune(idx)?;
        self.append_wal(idx, WalRecord::FineTune)?;
        Ok(report)
    }

    /// The tune-and-publish core of [`SplashService::fine_tune`], shared
    /// with WAL replay.
    fn apply_fine_tune(&mut self, idx: usize) -> Result<FineTuneReport, SplashError> {
        let ModelEntry { name, engine, trainer, .. } = &mut self.models[idx];
        let Some(trainer) = trainer.as_mut() else {
            return Err(SplashError::OnlineDisabled { name: name.clone() });
        };
        let mut report = trainer.fine_tune();
        engine.set_weights(trainer.model());
        report.published = true;
        self.tel.fine_tunes.inc();
        self.tel.fine_tune_steps.add(report.steps as u64);
        self.tel.publishes.inc();
        Ok(report)
    }

    /// Publishes the named model's trainer weights into its serving
    /// engine(s) without running any steps — for callers that want to
    /// decouple tuning cadence from publication cadence.
    pub fn publish(&mut self, name: &str) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        self.apply_publish(idx)?;
        self.append_wal(idx, WalRecord::Publish)?;
        Ok(())
    }

    /// The publish core of [`SplashService::publish`], shared with WAL
    /// replay.
    fn apply_publish(&mut self, idx: usize) -> Result<(), SplashError> {
        let ModelEntry { name, engine, trainer, .. } = &mut self.models[idx];
        let Some(trainer) = trainer.as_mut() else {
            return Err(SplashError::OnlineDisabled { name: name.clone() });
        };
        engine.set_weights(trainer.model());
        self.tel.publishes.inc();
        Ok(())
    }

    /// Read-only access to the named model's continual learner (buffer
    /// fill, lifetime counters, the unpublished model). Reports
    /// [`SplashError::OnlineDisabled`] when the service was built without
    /// [`SplashServiceBuilder::online`].
    pub fn trainer(&self, name: &str) -> Result<&OnlineTrainer, SplashError> {
        self.entry(name)?
            .trainer
            .as_ref()
            .ok_or_else(|| SplashError::OnlineDisabled { name: name.to_string() })
    }

    /// Answers one query, writing the logits into `resp` (whose buffer is
    /// reused across calls — the allocation-free serving path).
    ///
    /// The logits are bit-identical to
    /// [`StreamingPredictor::try_predict_into`] on the same model.
    pub fn predict_into(
        &self,
        name: &str,
        req: PredictRequest,
        resp: &mut PredictResponse,
    ) -> Result<(), SplashError> {
        let entry = self.entry(name)?;
        if self.strict_nodes {
            let known = entry.engine.known_nodes();
            if req.node as usize >= known {
                return Err(SplashError::UnknownNode { node: req.node, known });
            }
        }
        entry.engine.try_predict_into(req.node, req.time, &mut resp.logits)?;
        self.tel.queries_served.inc();
        Ok(())
    }

    /// Convenience form of [`SplashService::predict_into`] returning a
    /// fresh response (allocates the logits vector).
    pub fn predict(
        &self,
        name: &str,
        req: PredictRequest,
    ) -> Result<PredictResponse, SplashError> {
        let mut resp = PredictResponse::default();
        self.predict_into(name, req, &mut resp)?;
        Ok(resp)
    }

    /// Answers a micro-batch of queries in one forward pass; row `i` holds
    /// the logits for `queries[i]` (labels are ignored). Bit-identical to
    /// [`StreamingPredictor::try_predict_batch`].
    pub fn predict_batch(
        &self,
        name: &str,
        queries: &[PropertyQuery],
    ) -> Result<Matrix, SplashError> {
        let entry = self.entry(name)?;
        if self.strict_nodes {
            let known = entry.engine.known_nodes();
            if let Some(q) = queries.iter().find(|q| q.node as usize >= known) {
                return Err(SplashError::UnknownNode { node: q.node, known });
            }
        }
        let out = entry.engine.try_predict_batch(queries)?;
        self.tel.queries_served.add(queries.len() as u64);
        Ok(out)
    }

    /// [`SplashService::predict_batch`] into a caller-owned matrix — the
    /// zero-allocation batched serving path (buffers reused across calls),
    /// bit-identical to the allocating form. Takes `&mut self` because on
    /// a sharded model this is the scatter–gather path that may fan the
    /// per-shard forwards out thread-per-shard (see
    /// [`ShardedPredictor::try_predict_batch_into`]).
    pub fn predict_batch_into(
        &mut self,
        name: &str,
        queries: &[PropertyQuery],
        out: &mut Matrix,
    ) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        if self.strict_nodes {
            let known = self.models[idx].engine.known_nodes();
            if let Some(q) = queries.iter().find(|q| q.node as usize >= known) {
                return Err(SplashError::UnknownNode { node: q.node, known });
            }
        }
        self.models[idx].engine.try_predict_batch_into(queries, out)?;
        self.tel.queries_served.add(queries.len() as u64);
        Ok(())
    }

    /// A snapshot of the serving counters, read out of the shared
    /// [`Telemetry`] plane — `/stats`, `GET /metrics`, and this method all
    /// render the same atomics and can no longer disagree.
    pub fn stats(&self) -> ServiceStats {
        let tel = &self.tel;
        ServiceStats {
            edges_ingested: tel.edges_ingested.get(),
            edges_dropped: tel.edges_dropped.get(),
            queries_served: tel.queries_served.get(),
            shards: self.models.iter().map(|e| e.engine.shards() as u64).sum(),
            edges_witnessed: self.models.iter().map(|e| e.engine.witnessed_edges()).sum(),
            labels_buffered: tel.labels_buffered.get(),
            labels_dropped: tel.labels_dropped.get(),
            fine_tunes: tel.fine_tunes.get(),
            fine_tune_steps: tel.fine_tune_steps.get(),
            publishes: tel.publishes.get(),
            requests_shed: tel.requests_shed.get(),
            deadlines_expired: tel.deadlines_expired.get(),
            snapshots_written: tel.snapshots_written.get(),
            wal_records_appended: tel.wal_records_appended.get(),
            wal_records_replayed: tel.wal_records_replayed.get(),
            recoveries: tel.recoveries.get(),
            wal_truncations: tel.wal_truncations.get(),
            latency: tel.request_latency.snapshot(),
        }
    }

    /// The service's telemetry plane. The wire front end
    /// ([`crate::server`]) clones this `Arc` so worker threads can count
    /// sheds and health probes and serve `/metrics`, `/statz.json`, and
    /// `/trace` without queueing behind the engine thread.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.tel)
    }

    /// Counts one executed wire request that took `ns` nanoseconds end to
    /// end (arrival to completion). Called by the wire front end
    /// ([`crate::server`]); a single atomic increment, never allocates.
    pub fn record_request_latency_ns(&self, ns: u64) {
        self.tel.request_latency.record_ns(ns);
    }

    /// Counts one wire request whose deadline expired before execution
    /// (the front end answers it 504 without touching the model).
    pub fn note_deadline_expired(&self) {
        self.tel.deadlines_expired.inc();
    }

    /// The service-wide late-edge policy.
    pub fn late_edge_policy(&self) -> LateEdgePolicy {
        self.policy
    }

    /// Attaches a durable checkpoint + WAL log to the named model.
    ///
    /// If `cfg.dir` holds a committed checkpoint, the model is **recovered
    /// from disk**: the restored model is installed under `name` (hot-
    /// swapping any model already deployed there) with its streaming
    /// state, counters and replay buffer, at the service's configured
    /// shard count — resharding-on-restore. The WAL's surviving records
    /// are replayed through the exact live code paths, a torn tail is
    /// truncated at the last valid record, and the summary comes back as
    /// `Some(report)`. Recovery needs **no dataset and no prior model** —
    /// a freshly built service restarts in O(state + WAL tail), not
    /// O(stream).
    ///
    /// Otherwise the installed model's state is written as the directory's
    /// first checkpoint (epoch 0) and `None` comes back. Either way, every
    /// subsequent mutating request (ingest, labels, fine-tune, publish) is
    /// group-committed to the WAL before it is acknowledged, and a fresh
    /// snapshot is cut every `cfg.checkpoint_every` records (or on
    /// [`SplashService::checkpoint`]).
    ///
    /// Caveats: one durable directory serves one model (the durable
    /// counters are service-wide, so durability is designed for
    /// single-model deployments); the builder's `SplashConfig` /
    /// [`OnlineConfig`] must match across restarts (the buffer capacity
    /// and stream clock are validated, the rest is the deployment's
    /// contract); a service without [`SplashServiceBuilder::online`]
    /// cannot recover a checkpoint that carries a replay buffer, and vice
    /// versa.
    pub fn make_durable(
        &mut self,
        name: &str,
        cfg: DurabilityConfig,
    ) -> Result<Option<RecoveryReport>, SplashError> {
        cfg.validate()?;
        if let Ok(idx) = self.index(name) {
            if self.models[idx].durable.is_some() {
                return Err(SplashError::InvalidConfig {
                    what: format!("model {name:?} is already durable"),
                });
            }
        }
        if !DurableLog::exists(&cfg.dir) {
            // Nothing to recover: the *installed* model seeds epoch 0 (a
            // missing name is the usual typed error — an empty directory
            // cannot conjure a model).
            let idx = self.index(name)?;
            let data = self.checkpoint_data(idx)?;
            let log = DurableLog::create(&cfg, data)?;
            self.models[idx].durable = Some(log);
            self.tel.snapshots_written.inc();
            return Ok(None);
        }

        let (log, recovered) = DurableLog::recover(&cfg)?;
        let mut saved = recovered.saved;
        saved.cfg.validate()?;
        let opt = saved.opt.take();
        let state =
            crate::stream::assemble_stream_state(recovered.witness, recovered.ring_shards)?;
        let engine = if self.shards == 1 {
            Engine::Single(Box::new(StreamingPredictor::try_from_saved_state(saved, state)?))
        } else {
            Engine::Sharded(Box::new(ShardedPredictor::try_from_saved_state(
                saved,
                state,
                self.shards,
            )?))
        };
        let trainer = match (&self.online, recovered.trainer) {
            (None, None) => None,
            (None, Some(_)) => {
                return Err(SplashError::InvalidConfig {
                    what: "checkpoint carries an online replay buffer but this service \
                           has continual learning disabled"
                        .into(),
                });
            }
            (Some(_), None) => {
                return Err(SplashError::InvalidConfig {
                    what: "this service has continual learning enabled but the \
                           checkpoint was written without it"
                        .into(),
                });
            }
            (Some(ocfg), Some(state)) => {
                let model = engine
                    .model_clone()
                    .expect("recovery constructs only SPLASH engines, which carry SLIM weights");
                let mut trainer = OnlineTrainer::resume(*ocfg, model, state.task, opt.as_ref())?;
                trainer.restore_durable_state(state)?;
                Some(trainer)
            }
        };
        let idx = self.install(name, engine, trainer);

        let counters = recovered.counters;
        self.tel.edges_ingested.set(counters.edges_ingested);
        self.tel.edges_dropped.set(counters.edges_dropped);
        self.tel.labels_buffered.set(counters.labels_buffered);
        self.tel.labels_dropped.set(counters.labels_dropped);
        self.tel.fine_tunes.set(counters.fine_tunes);
        self.tel.fine_tune_steps.set(counters.fine_tune_steps);
        self.tel.publishes.set(counters.publishes);

        for (i, entry) in recovered.entries.into_iter().enumerate() {
            self.apply_wal_entry(idx, entry).map_err(|e| SplashError::WalCorrupt {
                what: format!("replaying record {i} failed: {e}"),
            })?;
        }
        let report = recovered.report;
        self.models[idx].durable = Some(log);
        self.tel.recoveries.inc();
        self.tel.wal_records_replayed.add(report.wal_records_replayed);
        self.tel.wal_truncations.add(u64::from(report.wal_tail_truncated));
        Ok(Some(report))
    }

    /// Cuts a fresh durable checkpoint of the named model now (snapshot +
    /// empty WAL + atomic `CURRENT` commit), independent of the automatic
    /// WAL-record threshold. Requires a prior
    /// [`SplashService::make_durable`].
    ///
    /// Under [`CheckpointPolicy::Refuse`], a non-empty online replay
    /// buffer refuses with [`SplashError::CheckpointUnflushed`].
    pub fn checkpoint(&mut self, name: &str) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        if self.models[idx].durable.is_none() {
            return Err(SplashError::InvalidConfig {
                what: format!("model {name:?} has no durable log (call make_durable first)"),
            });
        }
        self.checkpoint_idx(idx)
    }

    /// The committed checkpoint epoch of the named model's durable log,
    /// `None` before [`SplashService::make_durable`].
    pub fn checkpoint_epoch(&self, name: &str) -> Result<Option<u64>, SplashError> {
        Ok(self.entry(name)?.durable.as_ref().map(|log| log.epoch()))
    }

    /// Writes epoch `current + 1` from the entry's live state and swaps
    /// the WAL. On error the previous epoch stays committed and appends
    /// continue against it.
    fn checkpoint_idx(&mut self, idx: usize) -> Result<(), SplashError> {
        let data = self.checkpoint_data(idx)?;
        let log = self.models[idx]
            .durable
            .as_mut()
            .expect("checkpoint_idx requires an attached durable log");
        log.checkpoint(data)?;
        self.tel.snapshots_written.inc();
        Ok(())
    }

    /// Assembles everything one checkpoint persists, honoring the
    /// [`CheckpointPolicy`] toward a non-empty replay buffer.
    fn checkpoint_data(&mut self, idx: usize) -> Result<CheckpointData, SplashError> {
        let counters = PersistedCounters {
            edges_ingested: self.tel.edges_ingested.get(),
            edges_dropped: self.tel.edges_dropped.get(),
            labels_buffered: self.tel.labels_buffered.get(),
            labels_dropped: self.tel.labels_dropped.get(),
            fine_tunes: self.tel.fine_tunes.get(),
            fine_tune_steps: self.tel.fine_tune_steps.get(),
            publishes: self.tel.publishes.get(),
        };
        let policy = self.checkpoint_policy;
        let ModelEntry { engine, trainer, .. } = &mut self.models[idx];
        if policy == CheckpointPolicy::Refuse {
            if let Some(buffered) = trainer.as_ref().map(|t| t.buffered()).filter(|&b| b > 0) {
                return Err(SplashError::CheckpointUnflushed { buffered });
            }
        }
        let opt = trainer.as_mut().map(|t| t.checkpoint());
        let model_bytes = engine.model_bytes(opt.as_ref())?;
        let (witness, ring_shards) = engine.durable_stream_state()?;
        let trainer_state = trainer.as_ref().map(|t| t.durable_state());
        Ok(CheckpointData { model_bytes, witness, ring_shards, counters, trainer: trainer_state })
    }

    /// Group-commits one accepted mutating request to the entry's WAL (a
    /// no-op for non-durable entries), then cuts a snapshot if the WAL
    /// has crossed the configured threshold. A threshold checkpoint that
    /// [`CheckpointPolicy::Refuse`] would reject is deferred, not failed —
    /// the WAL keeps the backlog durable until the buffer drains.
    fn append_wal(&mut self, idx: usize, record: WalRecord<'_>) -> Result<(), SplashError> {
        let entry = &mut self.models[idx];
        let Some(log) = entry.durable.as_mut() else {
            return Ok(());
        };
        let start = Instant::now();
        log.append(record)?;
        // Stage the fsync cost for the span the engine thread is about to
        // record — the wire front end drains it per request.
        self.tel.note_wal_commit_ns(start.elapsed().as_nanos() as u64);
        self.tel.wal_records_appended.inc();
        let due = self.models[idx]
            .durable
            .as_ref()
            .is_some_and(|log| log.should_checkpoint());
        if due {
            let refused = self.checkpoint_policy == CheckpointPolicy::Refuse
                && self.models[idx]
                    .trainer
                    .as_ref()
                    .is_some_and(|t| t.buffered() > 0);
            if !refused {
                self.checkpoint_idx(idx)?;
            }
        }
        Ok(())
    }

    /// Re-applies one recovered WAL entry through the live code paths
    /// (minus the re-append) — replay is the same computation the original
    /// request ran, so the restored process is bit-identical to one that
    /// never crashed.
    fn apply_wal_entry(&mut self, idx: usize, entry: WalEntry) -> Result<(), SplashError> {
        match entry {
            WalEntry::Edges { edges, drop_late } => {
                let policy = if drop_late {
                    LateEdgePolicy::DropLate
                } else {
                    LateEdgePolicy::Error
                };
                self.apply_ingest(idx, &edges, policy)?;
            }
            WalEntry::Labels(queries) => {
                self.apply_labels(idx, &queries)?;
            }
            WalEntry::FineTune => {
                self.apply_fine_tune(idx)?;
            }
            WalEntry::Publish => {
                self.apply_publish(idx)?;
            }
        }
        Ok(())
    }

    /// Installs (or hot-swaps) a registry entry, preserving any attached
    /// durable log, and returns the entry's index.
    fn install(&mut self, name: &str, engine: Engine, trainer: Option<OnlineTrainer>) -> usize {
        let idx = match self.models.iter_mut().position(|e| e.name == name) {
            Some(idx) => {
                self.models[idx].engine = engine;
                self.models[idx].trainer = trainer;
                idx
            }
            None => {
                self.models.push(ModelEntry {
                    name: name.to_string(),
                    engine,
                    trainer,
                    durable: None,
                });
                self.models.len() - 1
            }
        };
        self.register_model_telemetry(idx);
        idx
    }

    /// (Re-)exposes one entry's per-model series in the shared registry —
    /// per-shard ingest/query counters for sharded engines, the online
    /// replay-buffer fill gauge — and refreshes the registry-shape gauges.
    /// Hot-swap safe: stale series under the same model label are dropped
    /// first, so a model re-installed at a different shard count does not
    /// leave orphan shard series behind.
    fn register_model_telemetry(&mut self, idx: usize) {
        let needle = format!("model=\"{}\"", escape_label_value(&self.models[idx].name));
        self.tel.registry().remove_series_with_label(&needle);
        let entry = &mut self.models[idx];
        if let Engine::Sharded(s) = &entry.engine {
            s.register_telemetry(self.tel.registry(), &entry.name);
        }
        if let Some(trainer) = entry.trainer.as_mut() {
            let gauge = Gauge::new();
            self.tel.registry().register_gauge(
                "splash_online_buffered",
                &needle,
                "Labeled snapshots currently held in the model's bounded replay buffer.",
                &gauge,
            );
            trainer.attach_buffer_gauge(gauge);
        }
        self.sync_registry_gauges();
    }

    /// Refreshes the registry-shape gauges (`splash_models`,
    /// `splash_shard_engines`) from the current model table.
    fn sync_registry_gauges(&self) {
        self.tel.models.set(self.models.len() as u64);
        self.tel
            .shards
            .set(self.models.iter().map(|e| e.engine.shards() as u64).sum());
    }

    /// After hot-swapping a durable model, the on-disk snapshot describes
    /// the *old* model and the WAL must not straddle the swap — write a
    /// fresh checkpoint immediately (the load/train route is a checkpoint
    /// barrier). A no-op for non-durable entries.
    fn checkpoint_barrier(&mut self, idx: usize) -> Result<(), SplashError> {
        if self.models[idx].durable.is_some() {
            self.checkpoint_idx(idx)?;
        }
        Ok(())
    }

    fn entry(&self, name: &str) -> Result<&ModelEntry, SplashError> {
        self.models
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| SplashError::UnknownModel { name: name.to_string() })
    }

    fn index(&self, name: &str) -> Result<usize, SplashError> {
        self.models
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| SplashError::UnknownModel { name: name.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_invalid_config() {
        let mut cfg = SplashConfig::tiny();
        cfg.k = 0;
        let err = SplashService::builder(cfg).build().unwrap_err();
        assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn unknown_model_is_typed() {
        let mut service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
        let err = service.predict("nope", PredictRequest::new(0, 0.0)).unwrap_err();
        assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
        let err = service.ingest("nope", IngestRequest::new(&[])).unwrap_err();
        assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
        let err = service.remove_model("nope").unwrap_err();
        assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
    }

    #[test]
    fn empty_response_has_no_top_class() {
        assert_eq!(PredictResponse::default().top_class(), None);
    }

    /// A minimal [`ServeEngine`] honoring the streaming contract: the
    /// stream clock advances monotonically, batches reject atomically, and
    /// predictions are a pure function of `(node, time)`.
    #[derive(Debug)]
    struct MockEngine {
        last: f64,
        nodes: usize,
        edges_seen: usize,
    }

    impl ServeEngine for MockEngine {
        fn kind(&self) -> String {
            "mock".to_string()
        }

        fn last_time(&self) -> f64 {
            self.last
        }

        fn known_nodes(&self) -> usize {
            self.nodes
        }

        fn try_push_edges(&mut self, edges: &[TemporalEdge]) -> Result<(), SplashError> {
            let mut prev = self.last;
            for e in edges {
                if e.time < prev {
                    return Err(SplashError::OutOfOrderEdge { got: e.time, last: prev });
                }
                prev = e.time;
            }
            for e in edges {
                self.try_observe_edge(e)?;
            }
            Ok(())
        }

        fn try_observe_edge(&mut self, edge: &TemporalEdge) -> Result<(), SplashError> {
            if edge.time < self.last {
                return Err(SplashError::OutOfOrderEdge { got: edge.time, last: self.last });
            }
            self.last = edge.time;
            self.edges_seen += 1;
            self.nodes = self.nodes.max(edge.src as usize + 1).max(edge.dst as usize + 1);
            Ok(())
        }

        fn try_predict_into(
            &self,
            node: NodeId,
            time: f64,
            out: &mut Vec<f32>,
        ) -> Result<(), SplashError> {
            if time < self.last {
                return Err(SplashError::PastQuery { got: time, last: self.last });
            }
            out.clear();
            out.extend_from_slice(&[node as f32, time as f32]);
            Ok(())
        }

        fn try_predict_batch(&self, queries: &[PropertyQuery]) -> Result<Matrix, SplashError> {
            let mut data = Vec::with_capacity(queries.len() * 2);
            let mut scratch = Vec::new();
            for q in queries {
                self.try_predict_into(q.node, q.time, &mut scratch)?;
                data.extend_from_slice(&scratch);
            }
            Ok(Matrix::from_vec(queries.len(), 2, data))
        }
    }

    fn edge(src: NodeId, dst: NodeId, time: f64) -> TemporalEdge {
        TemporalEdge { src, dst, time, weight: 1.0, feat: Box::new([]) }
    }

    #[test]
    fn external_engine_serves_through_registry_slots() {
        let mut service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
        service
            .register_engine("mock", Box::new(MockEngine { last: f64::NEG_INFINITY, nodes: 4, edges_seen: 0 }))
            .unwrap();

        // Same ingest path and counters as a SPLASH slot.
        let report =
            service.ingest("mock", IngestRequest::new(&[edge(0, 1, 1.0), edge(1, 2, 2.0)])).unwrap();
        assert_eq!((report.ingested, report.dropped), (2, 0));
        assert_eq!(service.model_last_time("mock").unwrap(), 2.0);

        // Late-edge policy applies: whole batch rejected atomically.
        let err = service.ingest("mock", IngestRequest::new(&[edge(2, 3, 0.5)])).unwrap_err();
        assert!(matches!(err, SplashError::OutOfOrderEdge { .. }), "{err:?}");

        // Queries serve and count.
        let resp = service.predict("mock", PredictRequest::new(3, 5.0)).unwrap();
        assert_eq!(resp.logits, vec![3.0, 5.0]);
        let stats = service.stats();
        assert_eq!(stats.edges_ingested, 2);
        assert_eq!(stats.queries_served, 1);

        // Serving-only: no trainer, no persistence, no direct predictor.
        let q = PropertyQuery { node: 0, time: 9.0, label: ctdg::Label::Class(0) };
        let err = service.observe_labels("mock", std::slice::from_ref(&q)).unwrap_err();
        assert!(matches!(err, SplashError::OnlineDisabled { .. }), "{err:?}");
        let err = service.save_model("mock", Path::new("/tmp/never-written")).unwrap_err();
        assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
        let err = service.model("mock").unwrap_err();
        assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn models_info_reports_engine_kinds() {
        let mut service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
        service
            .register_engine("mock", Box::new(MockEngine { last: f64::NEG_INFINITY, nodes: 1, edges_seen: 0 }))
            .unwrap();
        let info = service.models_info();
        assert_eq!(info.len(), 1);
        assert_eq!(
            info[0],
            ModelInfo {
                name: "mock".into(),
                engine: "mock".into(),
                shards: 1,
                online: false,
                durable: false,
            }
        );
        assert_eq!(info[0].to_string(), "mock engine=mock shards=1 online=off durable=off");
    }
}
