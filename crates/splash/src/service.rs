//! The serving façade: [`SplashService`].
//!
//! [`crate::stream::StreamingPredictor`] is the numeric core of
//! deployment; this module is the *operational* surface a production
//! system actually talks to. The service owns a registry of **named
//! models** (train in place, load from a persisted artifact, hot-swap
//! either way while serving), speaks **typed requests and responses**
//! ([`IngestRequest`]/[`IngestReport`], [`PredictRequest`]/
//! [`PredictResponse`]), reports every input problem as a
//! [`SplashError`] instead of aborting the process, and keeps cheap
//! serving counters ([`ServiceStats`]).
//!
//! Two properties are pinned by tests and worth relying on:
//!
//! * **Bit-identity** — a prediction served through the façade is exactly
//!   the prediction the underlying [`StreamingPredictor`] would produce;
//!   the service adds policy and accounting, never arithmetic.
//! * **Zero-alloc steady state** — [`SplashService::predict_into`] with a
//!   reused [`PredictResponse`] performs no heap allocation after warm-up
//!   (enforced by the counting-allocator test in
//!   `crates/splash/tests/alloc.rs`).
//!
//! ```
//! use datasets::synthetic_shift;
//! use splash::service::{IngestRequest, PredictRequest, SplashService};
//! use splash::{truncate_to_available, FeatureProcess, SplashConfig};
//!
//! let dataset = truncate_to_available(&synthetic_shift(40, 6), 0.5);
//! let mut cfg = SplashConfig::tiny();
//! cfg.epochs = 2;
//!
//! let mut service = SplashService::builder(cfg).build().unwrap();
//! service
//!     .train_model_with_process("live", &dataset, FeatureProcess::Random)
//!     .unwrap();
//!
//! // Serve: ingest the unseen tail, then answer a query.
//! let tail = &dataset.stream.edges()[dataset.stream.len() / 2..];
//! let report = service.ingest("live", IngestRequest::new(tail)).unwrap();
//! assert_eq!(report.dropped, 0);
//! let resp = service
//!     .predict("live", PredictRequest::new(0, report.last_time + 1.0))
//!     .unwrap();
//! assert!(resp.logits.iter().all(|v| v.is_finite()));
//! ```

use std::cell::Cell;
use std::path::Path;

use ctdg::{NodeId, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use nn::Matrix;

use crate::augment::FeatureProcess;
use crate::config::SplashConfig;
use crate::error::SplashError;
use crate::stream::StreamingPredictor;
use crate::task::argmax;

/// What [`SplashService::ingest`] does with an edge whose timestamp
/// precedes the model's last observed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LateEdgePolicy {
    /// Reject the whole batch with [`SplashError::OutOfOrderEdge`],
    /// leaving the model's state exactly as it was (the default: loud,
    /// lossless, lets the caller repair and retry).
    #[default]
    Error,
    /// Silently drop late edges, count them in [`IngestReport::dropped`],
    /// and ingest the rest — the model behaves exactly as if it had been
    /// fed the chronologically filtered stream.
    DropLate,
}

/// A micro-batch of edges for [`SplashService::ingest`].
#[derive(Debug, Clone, Copy)]
pub struct IngestRequest<'a> {
    /// The edges, expected in chronological order.
    pub edges: &'a [TemporalEdge],
    /// Per-request override of the service's [`LateEdgePolicy`].
    pub policy: Option<LateEdgePolicy>,
}

impl<'a> IngestRequest<'a> {
    /// A request carrying `edges` under the service's configured policy.
    pub fn new(edges: &'a [TemporalEdge]) -> Self {
        Self { edges, policy: None }
    }

    /// Overrides the late-edge policy for this request only.
    pub fn with_policy(mut self, policy: LateEdgePolicy) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// What [`SplashService::ingest`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// Edges applied to the model.
    pub ingested: usize,
    /// Late edges dropped (always 0 under [`LateEdgePolicy::Error`]).
    pub dropped: usize,
    /// The model's stream clock after the batch.
    pub last_time: f64,
}

/// One label query for [`SplashService::predict`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictRequest {
    /// The node whose property is queried.
    pub node: NodeId,
    /// Query time; must not precede the model's last observed edge.
    pub time: f64,
}

impl PredictRequest {
    /// A query for `node` at `time`.
    pub fn new(node: NodeId, time: f64) -> Self {
        Self { node, time }
    }
}

/// The answer to a [`PredictRequest`].
///
/// Reuse one response across calls ([`SplashService::predict_into`]) and
/// the logits buffer is recycled — that is the allocation-free serving
/// path.
#[derive(Debug, Clone, Default)]
pub struct PredictResponse {
    /// Property logits, one per class (width = the model's output dim).
    pub logits: Vec<f32>,
}

impl PredictResponse {
    /// Index of the highest logit, or `None` before the first prediction.
    pub fn top_class(&self) -> Option<usize> {
        if self.logits.is_empty() {
            None
        } else {
            Some(argmax(&self.logits))
        }
    }
}

/// Cheap serving counters, snapshotted by [`SplashService::stats`].
/// Aggregated across all models in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Edges applied to any model.
    pub edges_ingested: u64,
    /// Late edges dropped under [`LateEdgePolicy::DropLate`].
    pub edges_dropped: u64,
    /// Predictions served (single + batched).
    pub queries_served: u64,
}

/// One named slot in the registry.
#[derive(Debug)]
struct ModelEntry {
    name: String,
    predictor: StreamingPredictor,
}

/// Configures and checks a [`SplashService`] before it starts serving.
#[derive(Debug, Clone, Copy)]
pub struct SplashServiceBuilder {
    cfg: SplashConfig,
    policy: LateEdgePolicy,
    strict_nodes: bool,
}

impl SplashServiceBuilder {
    /// Sets the service-wide late-edge policy (default:
    /// [`LateEdgePolicy::Error`]).
    pub fn late_edge_policy(mut self, policy: LateEdgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// When `true`, a [`PredictRequest`] naming a node outside the model's
    /// known universe is rejected with [`SplashError::UnknownNode`]
    /// instead of served from zero/propagated features (default: `false`,
    /// the paper's unseen-node semantics).
    pub fn strict_nodes(mut self, strict: bool) -> Self {
        self.strict_nodes = strict;
        self
    }

    /// Validates the configuration and produces an empty service; add
    /// models with [`SplashService::train_model`] /
    /// [`SplashService::load_model`].
    pub fn build(self) -> Result<SplashService, SplashError> {
        self.cfg.validate()?;
        Ok(SplashService {
            cfg: self.cfg,
            policy: self.policy,
            strict_nodes: self.strict_nodes,
            models: Vec::new(),
            edges_ingested: 0,
            edges_dropped: 0,
            queries_served: Cell::new(0),
        })
    }
}

/// A serving façade over a registry of named streaming models.
///
/// See the [module docs](self) for the full contract; in short: typed
/// fallible requests in, bit-identical predictions out, and the process
/// never aborts on bad input.
#[derive(Debug)]
pub struct SplashService {
    cfg: SplashConfig,
    policy: LateEdgePolicy,
    strict_nodes: bool,
    models: Vec<ModelEntry>,
    edges_ingested: u64,
    edges_dropped: u64,
    /// `Cell` because predictions go through `&self` (the predictor's own
    /// scratch is interior-mutable for the same reason) — the service is
    /// single-threaded (`!Sync`) like the predictors it holds; for
    /// concurrent serving, run one service per worker.
    queries_served: Cell<u64>,
}

impl SplashService {
    /// Starts configuring a service around `cfg` (used by the in-service
    /// training entry points; loaded models carry their own config).
    pub fn builder(cfg: SplashConfig) -> SplashServiceBuilder {
        SplashServiceBuilder { cfg, policy: LateEdgePolicy::default(), strict_nodes: false }
    }

    /// Trains a model on `dataset` with automatic feature selection and
    /// installs it under `name` (replacing — hot-swapping — any model
    /// already there). Returns the selected augmentation process.
    pub fn train_model(
        &mut self,
        name: &str,
        dataset: &Dataset,
    ) -> Result<FeatureProcess, SplashError> {
        let predictor = StreamingPredictor::train(dataset, &self.cfg);
        let process = predictor.process();
        self.install(name, predictor);
        Ok(process)
    }

    /// Like [`SplashService::train_model`] but with a fixed augmentation
    /// process (skipping selection).
    pub fn train_model_with_process(
        &mut self,
        name: &str,
        dataset: &Dataset,
        process: FeatureProcess,
    ) -> Result<(), SplashError> {
        let predictor = StreamingPredictor::train_with_process(dataset, &self.cfg, process);
        self.install(name, predictor);
        Ok(())
    }

    /// Loads a persisted model from `path`, rebuilds its streaming state
    /// from `dataset`'s training prefix, and installs it under `name`
    /// (hot-swapping any model already there — in-flight state of the
    /// replaced model is discarded).
    ///
    /// The saved file's own config is validated and used; the service's
    /// config only governs models trained in-service.
    pub fn load_model(
        &mut self,
        name: &str,
        path: &Path,
        dataset: &Dataset,
    ) -> Result<(), SplashError> {
        let saved = crate::persist::load_model(path)?;
        saved.cfg.validate()?;
        let predictor = StreamingPredictor::try_from_saved(saved, dataset)?;
        self.install(name, predictor);
        Ok(())
    }

    /// Persists the named model to `path`; the artifact restores through
    /// [`SplashService::load_model`].
    pub fn save_model(&mut self, name: &str, path: &Path) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        self.models[idx].predictor.save(path)
    }

    /// Removes the named model from the registry.
    pub fn remove_model(&mut self, name: &str) -> Result<(), SplashError> {
        let idx = self.index(name)?;
        self.models.remove(idx);
        Ok(())
    }

    /// The registered model names, in installation order.
    pub fn model_names(&self) -> impl Iterator<Item = &str> {
        self.models.iter().map(|e| e.name.as_str())
    }

    /// Direct (read-only) access to a registered predictor — the escape
    /// hatch for callers that need core APIs the façade does not wrap
    /// (representations, `predict_many`, …).
    pub fn model(&self, name: &str) -> Result<&StreamingPredictor, SplashError> {
        Ok(&self.entry(name)?.predictor)
    }

    /// Applies a batch of edges to the named model under the request's (or
    /// the service's) [`LateEdgePolicy`].
    ///
    /// Under [`LateEdgePolicy::Error`] the whole batch is validated before
    /// any state changes, so a rejected batch leaves the model untouched
    /// and the service keeps serving. Under [`LateEdgePolicy::DropLate`]
    /// the model ends up exactly as if it had consumed the
    /// chronologically filtered stream.
    pub fn ingest(
        &mut self,
        name: &str,
        req: IngestRequest<'_>,
    ) -> Result<IngestReport, SplashError> {
        let policy = req.policy.unwrap_or(self.policy);
        let idx = self.index(name)?;
        let predictor = &mut self.models[idx].predictor;
        let dropped = match policy {
            LateEdgePolicy::Error => {
                predictor.try_push_edges(req.edges)?;
                0
            }
            LateEdgePolicy::DropLate => {
                // A clean batch (the common case) takes the batched path
                // with its single-pass validation and up-front ring
                // growth; only a batch that actually contains late edges
                // pays the per-edge filter.
                let mut prev = predictor.last_time();
                let mut clean = true;
                for edge in req.edges {
                    if edge.time < prev {
                        clean = false;
                        break;
                    }
                    prev = edge.time;
                }
                if clean {
                    predictor.try_push_edges(req.edges)?;
                    0
                } else {
                    let mut dropped = 0usize;
                    for edge in req.edges {
                        match predictor.try_observe_edge(edge) {
                            Ok(()) => {}
                            Err(SplashError::OutOfOrderEdge { .. }) => dropped += 1,
                            Err(other) => return Err(other),
                        }
                    }
                    dropped
                }
            }
        };
        let ingested = req.edges.len() - dropped;
        self.edges_ingested += ingested as u64;
        self.edges_dropped += dropped as u64;
        Ok(IngestReport {
            ingested,
            dropped,
            last_time: self.models[idx].predictor.last_time(),
        })
    }

    /// Answers one query, writing the logits into `resp` (whose buffer is
    /// reused across calls — the allocation-free serving path).
    ///
    /// The logits are bit-identical to
    /// [`StreamingPredictor::predict_into`] on the same model.
    pub fn predict_into(
        &self,
        name: &str,
        req: PredictRequest,
        resp: &mut PredictResponse,
    ) -> Result<(), SplashError> {
        let entry = self.entry(name)?;
        if self.strict_nodes {
            let known = entry.predictor.known_nodes();
            if req.node as usize >= known {
                return Err(SplashError::UnknownNode { node: req.node, known });
            }
        }
        entry.predictor.try_predict_into(req.node, req.time, &mut resp.logits)?;
        self.queries_served.set(self.queries_served.get() + 1);
        Ok(())
    }

    /// Convenience form of [`SplashService::predict_into`] returning a
    /// fresh response (allocates the logits vector).
    pub fn predict(
        &self,
        name: &str,
        req: PredictRequest,
    ) -> Result<PredictResponse, SplashError> {
        let mut resp = PredictResponse::default();
        self.predict_into(name, req, &mut resp)?;
        Ok(resp)
    }

    /// Answers a micro-batch of queries in one forward pass; row `i` holds
    /// the logits for `queries[i]` (labels are ignored). Bit-identical to
    /// [`StreamingPredictor::predict_batch`].
    pub fn predict_batch(
        &self,
        name: &str,
        queries: &[PropertyQuery],
    ) -> Result<Matrix, SplashError> {
        let entry = self.entry(name)?;
        if self.strict_nodes {
            let known = entry.predictor.known_nodes();
            if let Some(q) = queries.iter().find(|q| q.node as usize >= known) {
                return Err(SplashError::UnknownNode { node: q.node, known });
            }
        }
        let out = entry.predictor.try_predict_batch(queries)?;
        self.queries_served.set(self.queries_served.get() + queries.len() as u64);
        Ok(out)
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            edges_ingested: self.edges_ingested,
            edges_dropped: self.edges_dropped,
            queries_served: self.queries_served.get(),
        }
    }

    /// The service-wide late-edge policy.
    pub fn late_edge_policy(&self) -> LateEdgePolicy {
        self.policy
    }

    fn install(&mut self, name: &str, predictor: StreamingPredictor) {
        match self.models.iter_mut().find(|e| e.name == name) {
            Some(entry) => entry.predictor = predictor,
            None => self.models.push(ModelEntry { name: name.to_string(), predictor }),
        }
    }

    fn entry(&self, name: &str) -> Result<&ModelEntry, SplashError> {
        self.models
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| SplashError::UnknownModel { name: name.to_string() })
    }

    fn index(&self, name: &str) -> Result<usize, SplashError> {
        self.models
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| SplashError::UnknownModel { name: name.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_invalid_config() {
        let mut cfg = SplashConfig::tiny();
        cfg.k = 0;
        let err = SplashService::builder(cfg).build().unwrap_err();
        assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn unknown_model_is_typed() {
        let mut service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
        let err = service.predict("nope", PredictRequest::new(0, 0.0)).unwrap_err();
        assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
        let err = service.ingest("nope", IngestRequest::new(&[])).unwrap_err();
        assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
        let err = service.remove_model("nope").unwrap_err();
        assert!(matches!(err, SplashError::UnknownModel { .. }), "{err:?}");
    }

    #[test]
    fn empty_response_has_no_top_class() {
        assert_eq!(PredictResponse::default().top_class(), None);
    }
}
