//! The end-to-end SPLASH pipeline (paper Fig. 5): feature augmentation →
//! automatic feature selection → SLIM training → streaming inference, under
//! the chronological 10/10/80 train/validation/test protocol.

use std::time::Instant;

use ctdg::Label;
use datasets::Dataset;
use nn::{Adam, Matrix, Parameterized, Workspace};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::augment::FeatureProcess;
use crate::capture::{capture, Capture, CapturedQuery, InputFeatures};
use crate::config::SplashConfig;
use crate::select::{select_features, SelectionReport};
use crate::slim::{SlimBatch, SlimCache, SlimModel};
use crate::task::{evaluate, loss_and_grad, output_dim};

/// Fraction of queries in the train split.
pub const TRAIN_FRAC: f64 = 0.1;
/// Fraction of queries in train + validation (= the "seen" period).
pub const SEEN_FRAC: f64 = 0.2;

/// Result of one pipeline run.
#[derive(Debug, Clone)]
pub struct SplashOutput {
    /// Test metric (AUC / weighted F1 / NDCG@10 depending on the task).
    pub metric: f64,
    /// The selected augmentation process, when selection ran.
    pub selected: Option<FeatureProcess>,
    /// Selection risks per process, when selection ran.
    pub risks: Option<[f64; 3]>,
    /// Trainable parameter count of the model.
    pub num_params: usize,
    /// Wall-clock seconds spent training the model.
    pub train_secs: f64,
    /// Wall-clock seconds spent on test-set model inference.
    pub infer_secs: f64,
    /// Test-set logits, aligned with `test_range`.
    pub test_logits: Matrix,
    /// `[start, end)` indices of the test queries within the dataset's
    /// query list.
    pub test_range: (usize, usize),
}

/// Index boundaries of the 10/10/80 split over `n` queries.
pub fn split_bounds(n: usize) -> (usize, usize) {
    split_bounds_frac(n, TRAIN_FRAC, SEEN_FRAC)
}

/// Index boundaries for an arbitrary chronological `train / seen` split
/// (used by the unseen-ratio sweep of the paper's Fig. 9: train =
/// `90−T`%, val = 10%, test = `T`%).
pub fn split_bounds_frac(n: usize, train_frac: f64, seen_frac: f64) -> (usize, usize) {
    let train_end = ((n as f64) * train_frac) as usize;
    let val_end = ((n as f64) * seen_frac) as usize;
    (train_end.max(1).min(n), val_end.max(1).min(n))
}

/// Trains a SLIM model on the given captured queries.
///
/// The whole run shares one [`Workspace`], one packed batch, one forward
/// cache, and one pair of output buffers: after the first step warms them
/// up, the per-step hot loop (pack → forward → backward → Adam) stays off
/// the allocator.
pub fn train_slim(
    cap: &Capture,
    dataset: &Dataset,
    train_queries: &[CapturedQuery],
    cfg: &SplashConfig,
) -> (SlimModel, f64) {
    let out_dim = output_dim(dataset.task, dataset.num_classes);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x511D);
    let mut model = SlimModel::new(cfg, cap.feat_dim, cap.edge_feat_dim, out_dim, &mut rng);
    let mut opt = Adam::new(cfg.lr);
    let n = train_queries.len();
    let start = Instant::now();
    if n > 0 {
        let mut ws = Workspace::new();
        let mut batch = SlimBatch::default();
        let mut cache = SlimCache::default();
        let mut logits = Matrix::default();
        let mut h = Matrix::default();
        let mut refs: Vec<&CapturedQuery> = Vec::with_capacity(cfg.batch_size.min(n));
        let mut labels: Vec<&Label> = Vec::with_capacity(cfg.batch_size.min(n));
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..cfg.epochs {
            // Fisher–Yates shuffle per epoch; captured inputs are immutable
            // snapshots, so revisiting them in any order is sound.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut pos = 0;
            while pos < n {
                let end = (pos + cfg.batch_size).min(n);
                refs.clear();
                refs.extend(order[pos..end].iter().map(|&i| &train_queries[i]));
                labels.clear();
                labels.extend(refs.iter().map(|q| &q.label));
                model.build_batch_into(&refs, &mut batch);
                model.forward_into(&batch, &mut logits, &mut h, &mut cache, &mut ws);
                let (_, dlogits) = loss_and_grad(dataset.task, &logits, &labels);
                model.backward_ws(&cache, &dlogits, &mut ws);
                opt.step(model.params_mut());
                pos = end;
            }
        }
    }
    (model, start.elapsed().as_secs_f64())
}

/// Runs `apply` over `queries` in chunks of `batch_size` and stacks the
/// resulting row blocks in query order.
///
/// With the `parallel` feature (the default) the chunks are distributed
/// over scoped threads; each chunk's rows depend only on that chunk's
/// queries, so the stacked result is bit-identical to the serial loop —
/// parallelism changes wall-clock time, never logits.
fn map_query_chunks(
    model: &SlimModel,
    queries: &[CapturedQuery],
    batch_size: usize,
    apply: impl Fn(&SlimModel, &[CapturedQuery]) -> Matrix + Sync,
) -> Matrix {
    let batch_size = batch_size.max(1);
    let n_chunks = queries.len().div_ceil(batch_size);
    if n_chunks == 0 {
        return Matrix::zeros(0, 0);
    }
    let mut blocks: Vec<Matrix> = vec![Matrix::zeros(0, 0); n_chunks];

    #[cfg(feature = "parallel")]
    {
        // Same thread policy as the matmul backend (NN_THREADS honored).
        let threads = nn::backend::num_threads().min(n_chunks);
        if threads > 1 {
            let per_thread = n_chunks.div_ceil(threads);
            std::thread::scope(|scope| {
                for (ti, out_chunk) in blocks.chunks_mut(per_thread).enumerate() {
                    let apply = &apply;
                    scope.spawn(move || {
                        // Already parallel at chunk grain: pin the inner
                        // matmuls to the serial kernels (same bits) so the
                        // machine isn't oversubscribed with nested spawns.
                        nn::backend::with_serial_backend(|| {
                            for (oi, out) in out_chunk.iter_mut().enumerate() {
                                let ci = ti * per_thread + oi;
                                let start = ci * batch_size;
                                let end = (start + batch_size).min(queries.len());
                                *out = apply(model, &queries[start..end]);
                            }
                        });
                    });
                }
            });
            let refs: Vec<&Matrix> = blocks.iter().collect();
            return Matrix::concat_rows(&refs);
        }
    }

    for (ci, out) in blocks.iter_mut().enumerate() {
        let start = ci * batch_size;
        let end = (start + batch_size).min(queries.len());
        *out = apply(model, &queries[start..end]);
    }
    let refs: Vec<&Matrix> = blocks.iter().collect();
    Matrix::concat_rows(&refs)
}

/// Batched inference over captured queries; returns the logits
/// (chunk-parallel under the `parallel` feature, same bits either way).
pub fn predict_slim(model: &SlimModel, queries: &[CapturedQuery], batch_size: usize) -> Matrix {
    map_query_chunks(model, queries, batch_size, |m, chunk| {
        let refs: Vec<&CapturedQuery> = chunk.iter().collect();
        m.infer(&m.build_batch(&refs))
    })
}

/// Batched representation extraction (Eq. 18 outputs) for qualitative
/// analysis.
pub fn represent_slim(model: &SlimModel, queries: &[CapturedQuery], batch_size: usize) -> Matrix {
    map_query_chunks(model, queries, batch_size, |m, chunk| {
        let refs: Vec<&CapturedQuery> = chunk.iter().collect();
        m.represent(&m.build_batch(&refs))
    })
}

/// Runs SLIM with a fixed feature mode (the ablation entry point:
/// SLIM+ZF, SLIM+RF, SLIM+Process X, SLIM+Joint).
pub fn run_slim_with(dataset: &Dataset, cfg: &SplashConfig, mode: InputFeatures) -> SplashOutput {
    run_inner(dataset, cfg, mode, None, TRAIN_FRAC, SEEN_FRAC)
}

/// Runs the full SPLASH pipeline: automatic feature selection on the
/// available period, then SLIM with the selected process.
pub fn run_splash(dataset: &Dataset, cfg: &SplashConfig) -> SplashOutput {
    run_splash_frac(dataset, cfg, TRAIN_FRAC, SEEN_FRAC)
}

/// Fallible form of [`run_splash`]: validates `cfg` first, so a bad knob
/// surfaces as [`crate::SplashError::InvalidConfig`] instead of a panic
/// (or a hang) deep inside training.
pub fn try_run_splash(
    dataset: &Dataset,
    cfg: &SplashConfig,
) -> Result<SplashOutput, crate::SplashError> {
    cfg.validate()?;
    Ok(run_splash(dataset, cfg))
}

/// Fallible form of [`run_slim_with`] (config validated up front).
pub fn try_run_slim_with(
    dataset: &Dataset,
    cfg: &SplashConfig,
    mode: InputFeatures,
) -> Result<SplashOutput, crate::SplashError> {
    cfg.validate()?;
    Ok(run_slim_with(dataset, cfg, mode))
}

/// Full pipeline under a custom chronological split (Fig. 9's unseen-ratio
/// sweep): train on the first `train_frac`, validate up to `seen_frac`, test
/// on the rest.
pub fn run_splash_frac(
    dataset: &Dataset,
    cfg: &SplashConfig,
    train_frac: f64,
    seen_frac: f64,
) -> SplashOutput {
    let report = select_features(dataset, cfg, seen_frac);
    run_inner(
        dataset,
        cfg,
        InputFeatures::Process(report.selected),
        Some(report),
        train_frac,
        seen_frac,
    )
}

/// Fixed-mode SLIM under a custom chronological split.
pub fn run_slim_with_frac(
    dataset: &Dataset,
    cfg: &SplashConfig,
    mode: InputFeatures,
    train_frac: f64,
    seen_frac: f64,
) -> SplashOutput {
    run_inner(dataset, cfg, mode, None, train_frac, seen_frac)
}

fn run_inner(
    dataset: &Dataset,
    cfg: &SplashConfig,
    mode: InputFeatures,
    report: Option<SelectionReport>,
    train_frac: f64,
    seen_frac: f64,
) -> SplashOutput {
    let cap = capture(dataset, mode, cfg, seen_frac);
    let n = cap.queries.len();
    let (train_end, val_end) = split_bounds_frac(n, train_frac, seen_frac);
    let (model, train_secs) = train_slim(&cap, dataset, &cap.queries[..train_end], cfg);

    let test = &cap.queries[val_end..];
    let start = Instant::now();
    let test_logits = predict_slim(&model, test, cfg.batch_size.max(256));
    let infer_secs = start.elapsed().as_secs_f64();
    let labels: Vec<&Label> = test.iter().map(|q| &q.label).collect();
    let metric = evaluate(dataset.task, &test_logits, &labels);

    SplashOutput {
        metric,
        selected: report.as_ref().map(|r| r.selected),
        risks: report.map(|r| r.risks),
        num_params: model_params(&model),
        train_secs,
        infer_secs,
        test_logits,
        test_range: (val_end, n),
    }
}

fn model_params(model: &SlimModel) -> usize {
    // `num_params` needs &self only through the trait; route via a clone-free
    // helper on the trait object.
    Parameterized::num_params(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::synthetic_shift;

    #[test]
    fn split_bounds_cover_protocol() {
        assert_eq!(split_bounds(100), (10, 20));
        assert_eq!(split_bounds(7), (1, 1));
    }

    #[test]
    fn slim_with_positional_beats_zero_features_on_shifted_data() {
        // End-to-end check of the paper's core claim: on community-structured
        // data under shift, propagated positional features must clearly beat
        // zero features (Table IV's SLIM+ZF row vs SLIM+Process P).
        let dataset = synthetic_shift(70, 11);
        let cfg = SplashConfig::default();
        let zf = run_slim_with(&dataset, &cfg, InputFeatures::Zero);
        let pos =
            run_slim_with(&dataset, &cfg, InputFeatures::Process(FeatureProcess::Positional));
        assert!(
            pos.metric > zf.metric + 0.05,
            "positional SLIM ({:.3}) should clearly beat zero-feature SLIM ({:.3})",
            pos.metric,
            zf.metric
        );
    }

    #[test]
    fn full_pipeline_runs_and_reports() {
        let dataset = synthetic_shift(50, 3);
        let cfg = SplashConfig::tiny();
        let out = run_splash(&dataset, &cfg);
        assert!(out.selected.is_some());
        assert!(out.risks.is_some());
        assert!(out.num_params > 0);
        assert!(out.metric > 0.0 && out.metric <= 1.0);
        let (s, e) = out.test_range;
        assert_eq!(out.test_logits.rows(), e - s);
    }
}
