//! Horizontal scale-out: hash-partitioned sharding over the streaming
//! engine.
//!
//! A [`crate::stream::StreamingPredictor`] is single-threaded by design
//! (interior scratch makes it `!Sync`), so one engine caps throughput at
//! one core. [`ShardedPredictor`] multiplies that: nodes are
//! hash-partitioned across `N` shards ([`shard_of`]), each shard owning the
//! rings of its partition, and
//!
//! * **ingest** runs one shared *witness pass* — a single writer updates
//!   the engine's one `WitnessState` (feature tracker + stream clock),
//!   and only the owner shard(s) of each edge's endpoints take ring
//!   writes. Serially the pass writes those ring slots directly from the
//!   augmenter (the unsharded engine's single-copy path); with threads it
//!   materializes each edge's feature snapshots into a reusable batch of
//!   `EdgeSnapshot`s that the shard threads consume concurrently;
//! * **queries** scatter to the owner shard of each queried node and
//!   gather back into the caller's buffers, so the expensive part — the
//!   SLIM forward — fans out across engines (thread-per-shard under the
//!   `parallel` feature).
//!
//! # One witness, N ring partitions — and why this is exactly bit-identical
//!
//! SPLASH's per-node state is a ring of *snapshots*: each entry stores the
//! **neighbor's** feature as of edge-arrival time (Eq. 14), and the
//! structural process encodes the neighbor's **global** degree. Both are
//! functions of the whole stream, not of the owned partition — so they are
//! computed exactly once, by the engine's single witness, in stream order.
//! What a shard writes into a ring slot — directly or via a snapshot — is
//! byte-for-byte the feature vector the unsharded engine would have read
//! from its own tracker at the same instant; the rings are filled in the
//! same edge order; and every query routes to the owner shard, which reads the
//! shared witness for the target feature and its own rings for neighbors.
//! Sharded output is the unsharded output, bit for bit, for **any** shard
//! count and any valid stream — pinned by the
//! `sharded_matches_unsharded_*` proptests.
//!
//! The cost model: the witness pass is the *serial prefix* of ingest —
//! O(E) tracker updates plus one feature materialization per endpoint,
//! paid once regardless of shard count — and the per-shard ring writes
//! are O(E_owned), so total routed ingest work is O(E), ~flat in N
//! instead of growing linearly (the pre-refactor design re-ran the
//! witness on every shard). State per shard is its partition's rings
//! only; the flat feature tables live once, on the shared witness.
//! Threaded ring writes are safe because shards touch disjoint rings and
//! the snapshot batch is read-only during the scatter.
//!
//! Persistence stores the model bytes once: [`ShardedPredictor::save`]
//! writes a manifest plus a single shard file ([`crate::persist`]), and
//! [`ShardedPredictor::try_load`] reshards on load — an artifact saved at
//! `N` shards serves identically at any `M`. Durable checkpoints mirror
//! the split: one witness file plus `N` ring-partition files.

use std::cell::RefCell;
use std::path::Path;

use ctdg::{NodeId, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use nn::Matrix;

use crate::augment::FeatureProcess;
use crate::config::SplashConfig;
use crate::error::SplashError;
use crate::persist::SavedModel;
use crate::stream::{EdgeSnapshot, StreamingPredictor, WitnessState};
use crate::telemetry::{escape_label_value, Counter, Registry};

/// The owner shard of `node` under an `shards`-way partition.
///
/// A splitmix64-style finalizer avalanches the (dense) node ids so
/// consecutive ids spread across shards instead of striping; the function
/// is pure and version-independent *within a process*, and nothing
/// persisted depends on it — ownership is recomputed from scratch when an
/// artifact loads, which is what makes resharding-on-load free.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut x = (node as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// A snapshot of one shard's serving counters
/// ([`ShardedPredictor::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Which shard this row describes.
    pub shard: usize,
    /// Nodes whose rings live on this shard (at least one entry).
    pub owned_nodes: usize,
    /// Edges with at least one endpoint owned here (ring writes).
    pub owned_edges: u64,
    /// Queries answered by this shard.
    pub queries_served: u64,
}

/// Per-shard counters, held as [`Counter`] handles (atomics) so
/// predictions count through `&self` and an installed engine can expose
/// the same cells as registry series on `/metrics`
/// ([`ShardedPredictor::register_telemetry`]).
#[derive(Debug, Default)]
struct ShardCounters {
    owned_edges: Counter,
    queries: Counter,
}

impl Clone for ShardCounters {
    /// A clone gets **detached** copies of the cells: counter handles
    /// share their atomic, so a derived clone would leave two predictors
    /// double-counting into one registry series.
    fn clone(&self) -> Self {
        Self {
            owned_edges: self.owned_edges.detached_copy(),
            queries: self.queries.detached_copy(),
        }
    }
}

/// Reusable scatter–gather buffers: per-shard query sub-batches, the
/// original row index of each scattered query, and per-shard logit blocks.
/// Warmed up by the first batches, then reused verbatim, so
/// [`ShardedPredictor::try_predict_batch_into`] stays off the allocator.
#[derive(Debug, Clone, Default)]
struct GatherScratch {
    queries: Vec<Vec<PropertyQuery>>,
    index: Vec<Vec<usize>>,
    rows: Vec<Matrix>,
}

/// `N` hash-partitioned ring engines behind one shared witness and one
/// ingest/query surface.
///
/// See the [module docs](self) for the partitioning and determinism
/// contract; in short: same API shape as [`StreamingPredictor`], same bits
/// out, state and query compute split `N` ways.
#[derive(Debug)]
pub struct ShardedPredictor {
    /// The engine's single witness: one feature tracker + stream clock,
    /// written by the serial ingest prefix, read by every query path.
    witness: WitnessState,
    /// Witness-less ring partitions (their `witness` field is `None`; all
    /// shared state routes through [`ShardedPredictor::witness`]).
    shards: Vec<StreamingPredictor>,
    counters: Vec<ShardCounters>,
    /// Total edges witnessed (each edge is witnessed exactly once).
    witnessed: Counter,
    /// The reusable snapshot batch the *thread-parallel* witness pass
    /// materializes and the shard threads consume (serial ingest writes
    /// ring slots directly and never touches it); grown to the high-water
    /// batch size, then reused allocation-free.
    snaps: Vec<EdgeSnapshot>,
    /// Per-shard routing built by the same parallel-path witness pass:
    /// element `s` lists the indices into the snapshot batch that shard
    /// `s` owns (src- or dst-side). Shard threads iterate only their own
    /// list, so per-shard ingest touches O(edges owned) snapshots instead
    /// of scanning the batch. Reused allocation-free like the batch.
    routes: Vec<Vec<u32>>,
    scratch: RefCell<GatherScratch>,
}

impl Clone for ShardedPredictor {
    /// A clone gets a **detached** copy of the witnessed-edges cell (like
    /// the per-shard `ShardCounters`): counter handles share their atomic, so a derived
    /// clone would double-count into one registry series.
    fn clone(&self) -> Self {
        Self {
            witness: self.witness.clone(),
            shards: self.shards.clone(),
            counters: self.counters.clone(),
            witnessed: self.witnessed.detached_copy(),
            snaps: self.snaps.clone(),
            routes: self.routes.clone(),
            scratch: self.scratch.clone(),
        }
    }
}

impl ShardedPredictor {
    /// Splits a (trained or restored) predictor into one shared witness
    /// plus `shards` ring partitions: the base predictor's witness is
    /// detached onto the engine, and each (witness-less) shard keeps only
    /// its partition's rings. `shards` must be positive.
    pub fn from_predictor(
        mut predictor: StreamingPredictor,
        shards: usize,
    ) -> Result<Self, SplashError> {
        if shards == 0 {
            return Err(SplashError::InvalidConfig {
                what: "shard count must be positive".into(),
            });
        }
        let witness = predictor.detach_witness();
        let mut parts = Vec::with_capacity(shards);
        for s in 0..shards - 1 {
            let mut p = predictor.clone();
            p.retain_ring_nodes(|v| shard_of(v, shards) == s);
            parts.push(p);
        }
        let mut p = predictor;
        p.retain_ring_nodes(|v| shard_of(v, shards) == shards - 1);
        parts.push(p);
        Ok(Self {
            witness,
            shards: parts,
            counters: vec![ShardCounters::default(); shards],
            witnessed: Counter::new(),
            snaps: Vec::new(),
            routes: vec![Vec::new(); shards],
            scratch: RefCell::new(GatherScratch {
                queries: vec![Vec::new(); shards],
                index: vec![Vec::new(); shards],
                rows: vec![Matrix::default(); shards],
            }),
        })
    }

    /// Trains SPLASH (with automatic feature selection) and shards the
    /// result `shards` ways. See [`StreamingPredictor::train`].
    pub fn train(dataset: &Dataset, cfg: &SplashConfig, shards: usize) -> Result<Self, SplashError> {
        Self::from_predictor(StreamingPredictor::train(dataset, cfg), shards)
    }

    /// Like [`ShardedPredictor::train`] with a fixed augmentation process.
    pub fn train_with_process(
        dataset: &Dataset,
        cfg: &SplashConfig,
        process: FeatureProcess,
        shards: usize,
    ) -> Result<Self, SplashError> {
        Self::from_predictor(
            StreamingPredictor::train_with_process(dataset, cfg, process),
            shards,
        )
    }

    /// Rebuilds a sharded predictor from a restored model; the streaming
    /// state is reconstructed from `dataset`'s training prefix exactly as
    /// in [`StreamingPredictor::try_from_saved`], then partitioned.
    pub fn try_from_saved(
        saved: SavedModel,
        dataset: &Dataset,
        shards: usize,
    ) -> Result<Self, SplashError> {
        Self::from_predictor(StreamingPredictor::try_from_saved(saved, dataset)?, shards)
    }

    /// The witness half of a durable checkpoint: the engine's single
    /// feature-tracker state, ring capacity, and stream clock — written
    /// once per checkpoint, not once per shard.
    pub(crate) fn durable_witness(&self) -> crate::stream::WitnessSnapshot {
        crate::stream::WitnessSnapshot {
            augmenter: self.witness.augmenter.durable_state(),
            k: self.config().k,
            last_time: self.witness.last_time,
        }
    }

    /// The ring half of a durable checkpoint: element `i` is shard `i`'s
    /// partition of the per-node rings (non-empty rings only, in storage
    /// order with cursors).
    pub(crate) fn durable_ring_shards(&self) -> Vec<Vec<crate::stream::RingState>> {
        self.shards.iter().map(|s| s.durable_rings()).collect()
    }

    /// Rebuilds a sharded predictor from a restored model plus an
    /// assembled [`crate::stream::StreamState`] (one recovered witness +
    /// the ring union). The rings are repartitioned for `shards` engines,
    /// so a checkpoint taken at any shard count restores at any other
    /// (resharding-on-restore, mirroring [`ShardedPredictor::try_load`]).
    pub(crate) fn try_from_saved_state(
        saved: SavedModel,
        state: crate::stream::StreamState,
        shards: usize,
    ) -> Result<Self, SplashError> {
        let predictor = StreamingPredictor::try_from_saved_state(saved, state)?;
        Self::from_predictor(predictor, shards)
    }

    /// The model-artifact bytes of this engine's weights (every shard
    /// shares them), with an optional `SAVEDOPT` optimizer trailer.
    pub(crate) fn model_artifact_bytes(
        &mut self,
        opt: Option<&crate::slim::AdamState>,
    ) -> Result<Vec<u8>, SplashError> {
        self.shards[0].model_artifact_bytes(opt)
    }

    /// Loads a sharded artifact (manifest + model file, written by
    /// [`ShardedPredictor::save`]) and serves it with `shards` engines —
    /// `None` keeps the artifact's saved count. This is resharding-on-load:
    /// ownership is recomputed, state is rebuilt from the training stream,
    /// so any saved count loads at any serving count with identical output.
    pub fn try_load(
        path: &Path,
        dataset: &Dataset,
        shards: Option<usize>,
    ) -> Result<Self, SplashError> {
        let (manifest, saved) = crate::persist::load_sharded_model(path)?;
        saved.cfg.validate()?;
        Self::try_from_saved(saved, dataset, shards.unwrap_or(manifest.shards))
    }

    /// Persists this predictor as a sharded artifact at `path`: the
    /// manifest (which records the shard count) plus one model file
    /// (`<path>.shard0`) — shards share weights, so the bytes are stored
    /// once. Restores through [`ShardedPredictor::try_load`] at any shard
    /// count, or the model file alone through
    /// [`crate::persist::load_model`].
    pub fn save(&mut self, path: &Path) -> Result<(), SplashError> {
        self.save_with_opt(path, None)
    }

    /// [`ShardedPredictor::save`] plus an optional checkpoint of the
    /// online-fine-tuning optimizer; the model file carries the `SAVEDOPT`
    /// section (shards share weights *and* their optimizer).
    pub fn save_with_opt(
        &mut self,
        path: &Path,
        opt: Option<&crate::slim::AdamState>,
    ) -> Result<(), SplashError> {
        let shards = self.shards.len();
        self.shards[0].save_sharded(path, shards, opt)
    }

    /// Atomically publishes `src`'s weights into **every** shard engine
    /// (shards share weights by construction — see the module docs — so
    /// one publish fans out N ways; allocation-free per shard). Streaming
    /// state is untouched.
    pub(crate) fn set_weights(&mut self, src: &crate::slim::SlimModel) {
        for shard in &mut self.shards {
            shard.set_model_weights(src);
        }
    }

    /// Label-carrying ingest, routed: the owner shard of `node` holds its
    /// rings, so it (and only it) assembles the training example — which
    /// makes the captured bits identical to the unsharded capture. See
    /// [`StreamingPredictor::capture_labeled_into`].
    pub(crate) fn capture_labeled_into(
        &self,
        node: NodeId,
        time: f64,
        label: &ctdg::Label,
        q: &mut crate::capture::CapturedQuery,
        spare: &mut Vec<crate::capture::CapturedNeighbor>,
    ) -> Result<(), SplashError> {
        let s = shard_of(node, self.shards.len());
        self.shards[s].capture_labeled_into_with(&self.witness, node, time, label, q, spare)
    }

    /// Number of shards serving this predictor.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Arrival time of the most recently observed edge (the engine's one
    /// shared stream clock).
    pub fn last_time(&self) -> f64 {
        self.witness.last_time
    }

    /// Number of node ids with allocated state; see
    /// [`StreamingPredictor::known_nodes`].
    pub fn known_nodes(&self) -> usize {
        self.witness.augmenter.known_nodes()
    }

    /// Output (logit) width of the model: one column per class.
    pub fn out_dim(&self) -> usize {
        self.shards[0].out_dim()
    }

    /// The configuration the underlying model was trained (or restored)
    /// with.
    pub fn config(&self) -> &SplashConfig {
        self.shards[0].config()
    }

    /// The augmentation process the underlying model consumes.
    pub fn process(&self) -> FeatureProcess {
        self.shards[0].process()
    }

    /// Read-only access to one shard's engine, or `None` past the shard
    /// count. Crate-internal: shard members are witness-less, so their
    /// stream-dependent methods panic — the service façade uses this only
    /// to clone the shared model weights.
    pub(crate) fn shard(&self, index: usize) -> Option<&StreamingPredictor> {
        self.shards.get(index)
    }

    /// Per-shard serving counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .zip(&self.counters)
            .enumerate()
            .map(|(shard, (engine, c))| ShardStats {
                shard,
                owned_nodes: engine.active_rings(),
                owned_edges: c.owned_edges.get(),
                queries_served: c.queries.get(),
            })
            .collect()
    }

    /// Total edges the shared witness has observed — a single global
    /// counter (each edge is witnessed exactly once, by the engine's one
    /// witness, regardless of the shard count).
    pub fn witnessed_edges(&self) -> u64 {
        self.witnessed.get()
    }

    /// Total queries answered across all shards.
    pub fn queries_served(&self) -> u64 {
        self.counters.iter().map(|c| c.queries.get()).sum()
    }

    /// Exposes the engine's counters as labelled series in `registry`: the
    /// global `splash_witness_edges_total{model="..."}` (one witness, one
    /// series) plus per-shard
    /// `splash_shard_edges_owned_total{model="...",shard="N"}` and
    /// `splash_shard_queries_total{model="...",shard="N"}`. The handles
    /// share the engine's own cells — counting on the serving path stays a
    /// plain atomic increment; registration (here, at install time) is the
    /// only step that allocates.
    pub(crate) fn register_telemetry(&self, registry: &Registry, model: &str) {
        let model = escape_label_value(model);
        registry.register_counter(
            "splash_witness_edges_total",
            &format!("model=\"{model}\""),
            "Edges observed by the engine's single shared witness (feature tracker).",
            &self.witnessed,
        );
        for (shard, c) in self.counters.iter().enumerate() {
            let labels = format!("model=\"{model}\",shard=\"{shard}\"");
            registry.register_counter(
                "splash_shard_edges_owned_total",
                &labels,
                "Edges whose ring snapshot was written on this shard (owner writes).",
                &c.owned_edges,
            );
            registry.register_counter(
                "splash_shard_queries_total",
                &labels,
                "Queries answered by this shard (owner of the queried node).",
                &c.queries,
            );
        }
    }

    /// Ingests a chronologically ordered micro-batch through the one
    /// shared witness: each edge is observed exactly once, and only its
    /// endpoints' owner shard(s) take ring writes — total ingest work is
    /// O(E) regardless of the shard count.
    ///
    /// Batch-atomic like [`StreamingPredictor::try_push_edges`]: the whole
    /// batch is validated against the stream clock before anything
    /// mutates, so on [`SplashError::OutOfOrderEdge`] the engine is
    /// exactly as it was. Serially, the witness pass writes the owner
    /// shards' ring slots directly from the augmenter — the same
    /// single-copy path the unsharded engine takes. With the `parallel`
    /// feature and more than one available thread, the witness pass
    /// instead materializes per-edge `EdgeSnapshot`s plus per-shard
    /// routing index lists, and one thread per shard consumes its routed
    /// snapshots (disjoint rings, read-only batch — same bits, less wall
    /// clock).
    pub fn try_push_edges(&mut self, edges: &[TemporalEdge]) -> Result<(), SplashError> {
        let mut prev = self.witness.last_time;
        let mut max_node = 0;
        for edge in edges {
            if edge.time < prev {
                return Err(SplashError::OutOfOrderEdge { got: edge.time, last: prev });
            }
            prev = edge.time;
            max_node = max_node.max(edge.src).max(edge.dst);
        }
        let Some(last) = edges.last() else { return Ok(()) };
        let n = self.shards.len();
        let process = self.process();
        #[cfg(feature = "parallel")]
        {
            if n > 1 && nn::backend::num_threads() > 1 && !nn::backend::serial_pinned() {
                // The snapshot batch persists at its high-water length;
                // only a batch larger than any before grows it.
                if self.snaps.len() < edges.len() {
                    self.snaps.resize_with(edges.len(), EdgeSnapshot::default);
                }
                for (edge, snap) in edges.iter().zip(&mut self.snaps) {
                    self.witness.observe_into(edge, process, n, snap);
                }
                let snaps = &self.snaps[..edges.len()];
                // Route each snapshot to its owner shard(s) once, so every
                // shard iterates only the indices it owns instead of
                // scanning the batch.
                for r in self.routes.iter_mut() {
                    r.clear();
                }
                for (i, s) in snaps.iter().enumerate() {
                    self.routes[s.owner_src].push(i as u32);
                    if s.owner_dst != s.owner_src {
                        self.routes[s.owner_dst].push(i as u32);
                    }
                }
                // Ring tables are sized up front so the shard threads only
                // ever write into existing rings.
                for shard in self.shards.iter_mut() {
                    shard.ensure_ring_capacity(max_node);
                }
                let routes = &self.routes;
                std::thread::scope(|scope| {
                    for (s, shard) in self.shards.iter_mut().enumerate() {
                        scope.spawn(move || shard.apply_snapshots(snaps, &routes[s], s));
                    }
                });
                for s in snaps {
                    self.counters[s.owner_src].owned_edges.inc();
                    if s.owner_dst != s.owner_src {
                        self.counters[s.owner_dst].owned_edges.inc();
                    }
                }
                self.witnessed.add(edges.len() as u64);
                return Ok(());
            }
        }
        // Serial: the witness pass writes each owner's ring slot directly
        // from the augmenter — no intermediate snapshot, no per-shard
        // batch scan. Src slot before dst slot, exactly the unsharded
        // engine's write order.
        for edge in edges {
            self.witness.augmenter.observe(edge);
            let owner_src = shard_of(edge.src, n);
            self.shards[owner_src]
                .remember_side(&self.witness.augmenter, process, edge.src, edge.dst, edge);
            self.counters[owner_src].owned_edges.inc();
            if edge.src != edge.dst {
                let owner_dst = shard_of(edge.dst, n);
                self.shards[owner_dst]
                    .remember_side(&self.witness.augmenter, process, edge.dst, edge.src, edge);
                if owner_dst != owner_src {
                    self.counters[owner_dst].owned_edges.inc();
                }
            }
        }
        self.witness.last_time = last.time;
        self.witnessed.add(edges.len() as u64);
        Ok(())
    }

    /// Ingests one edge (the per-edge path a `DropLate` serving layer
    /// uses): a late edge reports [`SplashError::OutOfOrderEdge`] with
    /// the engine untouched — the drop decision lives on the one shared
    /// stream clock, so it is identical to the unsharded engine's.
    pub fn try_observe_edge(&mut self, edge: &TemporalEdge) -> Result<(), SplashError> {
        if edge.time < self.witness.last_time {
            return Err(SplashError::OutOfOrderEdge {
                got: edge.time,
                last: self.witness.last_time,
            });
        }
        let n = self.shards.len();
        let process = self.process();
        // Only the owner shard(s) take ring writes, straight from the
        // augmenter — the same direct path as serial batch ingest.
        self.witness.augmenter.observe(edge);
        let owner_src = shard_of(edge.src, n);
        self.shards[owner_src]
            .remember_side(&self.witness.augmenter, process, edge.src, edge.dst, edge);
        self.counters[owner_src].owned_edges.inc();
        if edge.src != edge.dst {
            let owner_dst = shard_of(edge.dst, n);
            self.shards[owner_dst]
                .remember_side(&self.witness.augmenter, process, edge.dst, edge.src, edge);
            if owner_dst != owner_src {
                self.counters[owner_dst].owned_edges.inc();
            }
        }
        self.witness.last_time = edge.time;
        self.witnessed.inc();
        Ok(())
    }

    /// Predicts the property logits of `node` at `time`, answered by the
    /// owner shard. Bit-identical to the unsharded predictor; zero heap
    /// allocations after warm-up (the owner's scratch is reused).
    pub fn try_predict_into(
        &self,
        node: NodeId,
        time: f64,
        out: &mut Vec<f32>,
    ) -> Result<(), SplashError> {
        let s = shard_of(node, self.shards.len());
        self.shards[s].try_predict_into_with(&self.witness, node, time, out)?;
        self.counters[s].queries.inc();
        Ok(())
    }

    /// Convenience form of [`ShardedPredictor::try_predict_into`]
    /// (allocates only the returned vector).
    pub fn try_predict(&self, node: NodeId, time: f64) -> Result<Vec<f32>, SplashError> {
        let mut out = Vec::new();
        self.try_predict_into(node, time, &mut out)?;
        Ok(out)
    }

    /// Answers a micro-batch of label queries: scatter to owner shards,
    /// one batched forward per shard, gather rows back into query order.
    /// Row `i` holds the logits for `queries[i]`; bit-identical to
    /// [`StreamingPredictor::try_predict_batch`] on the unsharded engine.
    ///
    /// Allocates the returned matrix; the reusing (and, with `parallel`,
    /// thread-per-shard) form is
    /// [`ShardedPredictor::try_predict_batch_into`].
    pub fn try_predict_batch(&self, queries: &[PropertyQuery]) -> Result<Matrix, SplashError> {
        let mut out = Matrix::default();
        self.validate_and_scatter(queries)?;
        let out_dim = self.out_dim();
        let witness = &self.witness;
        let mut guard = self.scratch.borrow_mut();
        let scratch = &mut *guard;
        for ((shard, qs), rows) in
            self.shards.iter().zip(&scratch.queries).zip(&mut scratch.rows)
        {
            shard
                .try_predict_batch_into_with(witness, qs, rows)
                .expect("query times validated before the scatter");
        }
        gather_rows(scratch, &self.counters, out_dim, queries.len(), &mut out);
        Ok(out)
    }

    /// [`ShardedPredictor::try_predict_batch`] into a caller-owned matrix —
    /// the scatter–gather serving path. Per-shard sub-batches, index maps,
    /// and logit blocks are all reused across calls, so a warmed-up caller
    /// performs **zero** heap allocations per batch (pinned by the `alloc`
    /// regression test).
    ///
    /// Takes `&mut self` so that, under the `parallel` feature with more
    /// than one available thread, each shard's forward pass can run on its
    /// own thread (the engines are `!Sync` by design; exclusive access is
    /// what lets them fan out). The serial and threaded paths are
    /// bit-identical.
    pub fn try_predict_batch_into(
        &mut self,
        queries: &[PropertyQuery],
        out: &mut Matrix,
    ) -> Result<(), SplashError> {
        self.validate_and_scatter(queries)?;
        let out_dim = self.shards[0].out_dim();
        let witness = &self.witness;
        let scratch = self.scratch.get_mut();
        #[cfg(feature = "parallel")]
        {
            let n = self.shards.len();
            if n > 1 && nn::backend::num_threads() > 1 && !nn::backend::serial_pinned() {
                std::thread::scope(|scope| {
                    for ((shard, qs), rows) in
                        self.shards.iter_mut().zip(&scratch.queries).zip(&mut scratch.rows)
                    {
                        scope.spawn(move || {
                            nn::backend::with_serial_backend(|| {
                                shard
                                    .try_predict_batch_into_with(witness, qs, rows)
                                    .expect("query times validated before the scatter");
                            });
                        });
                    }
                });
                gather_rows(scratch, &self.counters, out_dim, queries.len(), out);
                return Ok(());
            }
        }
        for ((shard, qs), rows) in
            self.shards.iter().zip(&scratch.queries).zip(&mut scratch.rows)
        {
            shard
                .try_predict_batch_into_with(witness, qs, rows)
                .expect("query times validated before the scatter");
        }
        gather_rows(scratch, &self.counters, out_dim, queries.len(), out);
        Ok(())
    }

    /// Validates every query time (batch atomicity: nothing runs if any
    /// query is in the past), then partitions the batch into the reused
    /// per-shard sub-batches. Labels are replaced by a class-0 placeholder —
    /// predictions ignore them, and cloning a placeholder never allocates.
    fn validate_and_scatter(&self, queries: &[PropertyQuery]) -> Result<(), SplashError> {
        let last = self.last_time();
        for q in queries {
            if q.time < last {
                return Err(SplashError::PastQuery { got: q.time, last });
            }
        }
        let n = self.shards.len();
        let mut guard = self.scratch.borrow_mut();
        let scratch = &mut *guard;
        for (qs, ix) in scratch.queries.iter_mut().zip(&mut scratch.index) {
            qs.clear();
            ix.clear();
        }
        for (i, q) in queries.iter().enumerate() {
            let s = shard_of(q.node, n);
            scratch.queries[s].push(PropertyQuery {
                node: q.node,
                time: q.time,
                label: ctdg::Label::Class(0),
            });
            scratch.index[s].push(i);
        }
        Ok(())
    }

}

/// Copies the per-shard logit blocks back into query order and bumps the
/// per-shard query counters (a free function so the caller can keep its
/// exclusive borrow of the scatter scratch).
fn gather_rows(
    scratch: &GatherScratch,
    counters: &[ShardCounters],
    out_dim: usize,
    n_queries: usize,
    out: &mut Matrix,
) {
    if n_queries == 0 {
        // Match the unsharded batch path's 0×0 result bit for bit.
        out.resize_zeroed(0, 0);
        return;
    }
    out.resize_zeroed(n_queries, out_dim);
    for ((ix, rows), c) in scratch.index.iter().zip(&scratch.rows).zip(counters) {
        for (local, &orig) in ix.iter().enumerate() {
            out.row_mut(orig).copy_from_slice(rows.row(local));
        }
        c.queries.add(ix.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_partitions_every_node() {
        for shards in [1usize, 2, 3, 7, 16] {
            let mut hit = vec![0usize; shards];
            for v in 0..10_000u32 {
                let s = shard_of(v, shards);
                assert!(s < shards);
                hit[s] += 1;
            }
            // The hash must actually spread dense ids: no shard may be
            // starved below half of a perfectly uniform share.
            let floor = 10_000 / shards / 2;
            for (s, &count) in hit.iter().enumerate() {
                assert!(count >= floor, "shard {s}/{shards} got {count} of 10000");
            }
        }
    }

    #[test]
    fn shard_of_is_stable() {
        // Routing is a pure function: the same node maps to the same shard
        // on every call (ingest and query sides must agree).
        for v in [0u32, 1, 17, 1 << 20, u32::MAX] {
            assert_eq!(shard_of(v, 7), shard_of(v, 7));
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let dataset =
            crate::truncate_to_available(&datasets::synthetic_shift(30, 5), 0.5);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let p = StreamingPredictor::train_with_process(
            &dataset,
            &cfg,
            FeatureProcess::Random,
        );
        let err = ShardedPredictor::from_predictor(p, 0).unwrap_err();
        assert!(matches!(err, SplashError::InvalidConfig { .. }), "{err:?}");
    }
}
