//! The unified telemetry plane: a zero-alloc metrics [`Registry`] and a
//! fixed-capacity ring of per-request [`TraceSpan`]s, shared by every
//! runtime layer (server → service → shard → online → durable).
//!
//! Before this module, each layer kept its own ad-hoc counters — plain
//! `u64` fields in the service, a server-local `AtomicU64` for shed
//! requests, per-shard cells — and `/stats` was the only window into any
//! of them. Now there is **one source of truth**: every counter is a slot
//! in the registry, recorded through cheap cloneable handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) and read by every surface
//! (`/stats`, `/metrics`, `/statz.json`, the CLI serve report) from the
//! same atomics, so the surfaces can no longer disagree.
//!
//! Three properties are load-bearing and pinned by tests:
//!
//! * **Zero-alloc recording** — a [`Counter::add`], [`Gauge::set`],
//!   [`Histogram::record_ns`] or [`Telemetry::record_span`] performs no
//!   heap allocation: counters and gauges are single atomic adds/stores,
//!   histograms are one atomic increment into a fixed bucket array, and
//!   spans are copied into a preallocated ring slot. The counting-
//!   allocator tests in `crates/splash/tests/alloc.rs` prove the serving
//!   hot paths stay allocation-free with telemetry recording enabled.
//!   (Registration allocates — it happens at install/startup time, never
//!   on the request path.)
//! * **Lock-free metric recording** — handles are `Arc`'d atomics, so the
//!   connection workers count shed requests and healthz probes without
//!   touching the engine thread. Only the span ring takes a (short,
//!   uncontended) mutex.
//! * **Deterministic exposition** — [`Registry::render_prometheus`] and
//!   [`Registry::render_statz_json`] emit series in sorted order with
//!   shortest-roundtrip float formatting, so two replays of the same
//!   stream produce byte-identical output once timing-dependent fields
//!   (histograms, spans) are gated off (`/statz.json?timing=0`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of fixed buckets in a [`LatencyHistogram`].
pub const LATENCY_BUCKETS: usize = 32;

/// A fixed-bucket latency histogram with geometric (power-of-two) bucket
/// bounds: bucket `i` counts samples strictly below `1024 << i`
/// nanoseconds (~1 µs for bucket 0, doubling up to ~2200 s), and the last
/// bucket absorbs everything larger.
///
/// Recording is a single array-index increment — **zero heap allocations**
/// on the record path, so the wire front end can time every request
/// without disturbing the zero-alloc steady-state contract. Percentile
/// reads ([`LatencyHistogram::quantile_ns`]) walk the fixed array and are
/// fully deterministic for a fixed recorded sequence (pinned in
/// `tests/server.rs`).
///
/// # Percentile semantics
///
/// A quantile resolves to the **upper bound of the bucket containing that
/// rank**, not an interpolated sample value: the histogram keeps counts,
/// not samples, so `p99_ns()` answers "99% of samples were *at most*
/// this" with one-bucket (2×) resolution. The unbounded last bucket
/// resolves to the exact recorded maximum instead (there is no finite
/// upper bound to report). This makes every percentile an upper bound —
/// conservative, never flattering — and makes percentile reads of a fixed
/// recorded sequence bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Upper bound (exclusive, in nanoseconds) of bucket `i`; the last
    /// bucket is unbounded.
    fn bound_ns(i: usize) -> u64 {
        1024u64 << i
    }

    /// Index of the bucket a sample of `ns` nanoseconds falls into.
    fn bucket_of(ns: u64) -> usize {
        // First i with ns < 1024 << i, i.e. floor(log2(ns / 1024)) + 1 for
        // ns >= 1024; clamped into the fixed range.
        if ns < 1024 {
            return 0;
        }
        let msb = 63 - ns.leading_zeros() as usize; // ns >= 1024 => msb >= 10
        (msb - 9).min(LATENCY_BUCKETS - 1)
    }

    /// Counts one sample of `ns` nanoseconds. Never allocates.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds `other`'s samples into `self` — the aggregation path for
    /// per-shard and per-cell histograms (bucket bounds are fixed and
    /// identical, so merging is element-wise addition and quantiles of the
    /// merged histogram are exactly the quantiles of the union of both
    /// recorded multisets, at bucket resolution).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample, in nanoseconds (0 before the first record).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Sum of all samples, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// The latency below which a fraction `q` of samples fell, resolved to
    /// the upper bound of the bucket containing that rank (the exact
    /// recorded maximum for the unbounded last bucket; 0 while empty).
    /// `q` is clamped into `[0, 1]`. See the type docs for the
    /// percentile-as-bucket-upper-bound semantics.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return if i == LATENCY_BUCKETS - 1 {
                    self.max_ns
                } else {
                    Self::bound_ns(i)
                };
            }
        }
        self.max_ns
    }

    /// Median latency bound, in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency bound, in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency bound, in nanoseconds.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }
}

// ---------------------------------------------------------------------------
// Handles: the write side of the registry.

/// A monotonically increasing counter handle. Cloning shares the
/// underlying atomic (handles are `Arc`'d); recording is one relaxed
/// `fetch_add` — lock-free and allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at 0 (register it with
    /// [`Registry::register_counter`] to expose it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the absolute value — for durable recovery, which
    /// restores persisted lifetime counters rather than re-counting.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// A **detached** copy: a fresh atomic seeded with the current value.
    /// Cloning a structure that owns counters (e.g. a sharded engine)
    /// must not leave both copies incrementing the same cell.
    pub fn detached_copy(&self) -> Self {
        Self(Arc::new(AtomicU64::new(self.get())))
    }
}

/// A gauge handle: an arbitrary settable value (queue depths, buffer
/// fill, engine counts). Same sharing and zero-alloc properties as
/// [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared storage behind a [`Histogram`] handle: the same fixed
/// power-of-two buckets as [`LatencyHistogram`], in atomics.
#[derive(Debug, Default)]
struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// A histogram handle over shared atomic buckets (bounds identical to
/// [`LatencyHistogram`]). Recording is a handful of relaxed atomic ops —
/// lock-free, allocation-free; reads snapshot into a plain
/// [`LatencyHistogram`] for quantiles and rendering.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one sample of `ns` nanoseconds. Never allocates.
    pub fn record_ns(&self, ns: u64) {
        let h = &*self.0;
        h.buckets[LatencyHistogram::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        h.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy as a plain [`LatencyHistogram`] (the read
    /// side: quantiles, merging, rendering).
    pub fn snapshot(&self) -> LatencyHistogram {
        let h = &*self.0;
        let mut out = LatencyHistogram::default();
        for (b, a) in out.buckets.iter_mut().zip(h.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        out.count = h.count.load(Ordering::Relaxed);
        out.sum_ns = h.sum_ns.load(Ordering::Relaxed);
        out.max_ns = h.max_ns.load(Ordering::Relaxed);
        out
    }
}

// ---------------------------------------------------------------------------
// The registry: names, help text, exposition.

/// What kind of value a registered series carries.
#[derive(Debug, Clone)]
enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One registered series: a metric family name, an optional label set
/// (rendered verbatim inside `{...}`), help text, and the shared handle.
#[derive(Debug, Clone)]
struct Metric {
    name: String,
    labels: String,
    help: String,
    value: MetricValue,
}

/// The metric registry: a flat, mutex-guarded list of registered series.
///
/// The mutex guards **registration and exposition only** — recording goes
/// through the [`Counter`]/[`Gauge`]/[`Histogram`] handles and never
/// takes it. Registration is idempotent per `(name, labels)` key: asking
/// for an existing series of the same kind returns a handle to the same
/// atomics, and registering over an existing key replaces the entry
/// (hot-swap semantics — a re-installed model re-registers its per-shard
/// series).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Vec<Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name` (no labels), creating
    /// it if absent.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut g = self.inner.lock().expect("registry poisoned");
        if let Some(m) = g.iter().find(|m| m.name == name && m.labels.is_empty()) {
            if let MetricValue::Counter(c) = &m.value {
                return c.clone();
            }
        }
        let c = Counter::new();
        Self::upsert(&mut g, name, "", help, MetricValue::Counter(c.clone()));
        c
    }

    /// Returns the gauge registered under `name` (no labels), creating it
    /// if absent.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut g = self.inner.lock().expect("registry poisoned");
        if let Some(m) = g.iter().find(|m| m.name == name && m.labels.is_empty()) {
            if let MetricValue::Gauge(v) = &m.value {
                return v.clone();
            }
        }
        let v = Gauge::new();
        Self::upsert(&mut g, name, "", help, MetricValue::Gauge(v.clone()));
        v
    }

    /// Returns the histogram registered under `name` (no labels), creating
    /// it if absent.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut g = self.inner.lock().expect("registry poisoned");
        if let Some(m) = g.iter().find(|m| m.name == name && m.labels.is_empty()) {
            if let MetricValue::Histogram(h) = &m.value {
                return h.clone();
            }
        }
        let h = Histogram::new();
        Self::upsert(&mut g, name, "", help, MetricValue::Histogram(h.clone()));
        h
    }

    /// Exposes an existing counter handle under `(name, labels)` —
    /// the path for structures that own their counters (per-shard
    /// engines) and register them at install time. `labels` is rendered
    /// verbatim inside `{...}` (e.g. `model="live",shard="0"`); pass `""`
    /// for none. Replaces any series already at that key.
    pub fn register_counter(&self, name: &str, labels: &str, help: &str, c: &Counter) {
        let mut g = self.inner.lock().expect("registry poisoned");
        Self::upsert(&mut g, name, labels, help, MetricValue::Counter(c.clone()));
    }

    /// Exposes an existing gauge handle under `(name, labels)`; see
    /// [`Registry::register_counter`].
    pub fn register_gauge(&self, name: &str, labels: &str, help: &str, v: &Gauge) {
        let mut g = self.inner.lock().expect("registry poisoned");
        Self::upsert(&mut g, name, labels, help, MetricValue::Gauge(v.clone()));
    }

    /// Exposes an existing histogram handle under `(name, labels)`; see
    /// [`Registry::register_counter`].
    pub fn register_histogram(&self, name: &str, labels: &str, help: &str, h: &Histogram) {
        let mut g = self.inner.lock().expect("registry poisoned");
        Self::upsert(&mut g, name, labels, help, MetricValue::Histogram(h.clone()));
    }

    /// Drops every labelled series whose label string contains `needle`
    /// (e.g. `model="beta"` when a model is removed from the service).
    /// Unlabelled series are never removed.
    pub fn remove_series_with_label(&self, needle: &str) {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.retain(|m| m.labels.is_empty() || !m.labels.contains(needle));
    }

    fn upsert(list: &mut Vec<Metric>, name: &str, labels: &str, help: &str, value: MetricValue) {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name {name:?} violates the exposition grammar"
        );
        match list.iter_mut().find(|m| m.name == name && m.labels == labels) {
            Some(m) => {
                m.help = help.to_string();
                m.value = value;
            }
            None => list.push(Metric {
                name: name.to_string(),
                labels: labels.to_string(),
                help: help.to_string(),
                value,
            }),
        }
    }

    /// A sorted snapshot of the registered series.
    fn sorted(&self) -> Vec<Metric> {
        let mut list = self.inner.lock().expect("registry poisoned").clone();
        list.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        list
    }

    /// Renders the Prometheus text exposition format, hand-rolled:
    /// `# HELP` / `# TYPE` per family, one sample line per series, series
    /// sorted by `(name, labels)`, floats in Rust's shortest-roundtrip
    /// `{}` form. The output is **byte-deterministic** for fixed recorded
    /// values — no timestamps, no random iteration order.
    ///
    /// Histograms follow the Prometheus convention: cumulative
    /// `name_bucket{le="..."}` lines (bounds in seconds), a final
    /// `le="+Inf"` bucket, and `name_sum` (seconds) / `name_count` lines.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for m in self.sorted() {
            if m.name != last_family {
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                last_family = m.name.clone();
            }
            let series = |out: &mut String, suffix: &str, extra: &str| {
                out.push_str(&m.name);
                out.push_str(suffix);
                if !m.labels.is_empty() || !extra.is_empty() {
                    out.push('{');
                    out.push_str(&m.labels);
                    if !m.labels.is_empty() && !extra.is_empty() {
                        out.push(',');
                    }
                    out.push_str(extra);
                    out.push('}');
                }
                out.push(' ');
            };
            match &m.value {
                MetricValue::Counter(c) => {
                    series(&mut out, "", "");
                    let _ = writeln!(out, "{}", c.get());
                }
                MetricValue::Gauge(v) => {
                    series(&mut out, "", "");
                    let _ = writeln!(out, "{}", v.get());
                }
                MetricValue::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for i in 0..LATENCY_BUCKETS {
                        cum += snap.buckets[i];
                        let bound_s = LatencyHistogram::bound_ns(i) as f64 / 1e9;
                        let mut le = String::new();
                        let _ = write!(le, "le=\"{bound_s}\"");
                        series(&mut out, "_bucket", &le);
                        let _ = writeln!(out, "{cum}");
                    }
                    series(&mut out, "_bucket", "le=\"+Inf\"");
                    let _ = writeln!(out, "{}", snap.count);
                    series(&mut out, "_sum", "");
                    let _ = writeln!(out, "{}", snap.sum_ns as f64 / 1e9);
                    series(&mut out, "_count", "");
                    let _ = writeln!(out, "{}", snap.count);
                }
            }
        }
        out
    }

    /// Renders the machine-readable `/statz.json` body: sorted keys,
    /// counters and gauges always, histograms only when `timing` is on —
    /// with timing off the output is **byte-identical across identical
    /// replays** (pinned by the CI telemetry leg).
    pub fn render_statz_json(&self, timing: bool) -> String {
        let mut out = String::from("{");
        let list = self.sorted();
        let key = |m: &Metric| {
            if m.labels.is_empty() {
                m.name.clone()
            } else {
                format!("{}{{{}}}", m.name, m.labels)
            }
        };
        for (section, want) in [("counters", 0usize), ("gauges", 1)] {
            let _ = write!(out, "\"{section}\":{{");
            let mut first = true;
            for m in &list {
                let v = match (&m.value, want) {
                    (MetricValue::Counter(c), 0) => c.get(),
                    (MetricValue::Gauge(v), 1) => v.get(),
                    _ => continue,
                };
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{}", key(m), v);
            }
            out.push_str("},");
        }
        if timing {
            out.push_str("\"histograms\":{");
            let mut first = true;
            for m in &list {
                let MetricValue::Histogram(h) = &m.value else { continue };
                let snap = h.snapshot();
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\"{}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50_ns\":{},\
                     \"p99_ns\":{},\"p999_ns\":{}}}",
                    key(m),
                    snap.count(),
                    snap.sum_ns(),
                    snap.max_ns(),
                    snap.p50_ns(),
                    snap.p99_ns(),
                    snap.p999_ns(),
                );
            }
            out.push_str("},");
        }
        let _ = write!(out, "\"timing\":{timing}}}");
        out.push('\n');
        out
    }
}

// ---------------------------------------------------------------------------
// Trace spans: the per-request ring.

/// Byte capacity of the inline model-name buffer in a [`TraceSpan`]
/// (longer names are truncated at a UTF-8 character boundary — the span
/// record path must not allocate).
pub const TRACE_MODEL_BYTES: usize = 24;

/// Default capacity of the span ring ([`Telemetry::new`]).
pub const TRACE_CAPACITY: usize = 256;

/// One request's timing decomposition, recorded at the server/service/
/// durable seams. All fields are inline (`Copy`) so recording into the
/// ring is a plain slot overwrite — no allocation.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpan {
    /// Monotonically increasing request id (1-based, server lifetime).
    pub id: u64,
    /// Static route label (`"predict"`, `"ingest"`, `"stats"`, …).
    pub route: &'static str,
    /// Time spent queued between arrival at a worker and pickup by the
    /// engine thread.
    pub queue_wait_ns: u64,
    /// Time inside the engine executing the service call (includes
    /// WAL-commit time, which [`TraceSpan::wal_commit_ns`] breaks out).
    pub execute_ns: u64,
    /// Time spent group-committing the request's WAL record (0 for reads
    /// and non-durable models).
    pub wal_commit_ns: u64,
    /// Request body bytes.
    pub bytes_in: u64,
    /// Response body bytes.
    pub bytes_out: u64,
    /// HTTP status answered.
    pub status: u16,
    /// `"ok"`, or the machine-readable error kind
    /// ([`crate::SplashError::kind`] / `"DeadlineExpired"` / …).
    pub outcome: &'static str,
    model_len: u8,
    model: [u8; TRACE_MODEL_BYTES],
}

impl TraceSpan {
    /// The model name the request addressed (`""` for registry-wide
    /// routes), truncated to [`TRACE_MODEL_BYTES`].
    pub fn model(&self) -> &str {
        std::str::from_utf8(&self.model[..self.model_len as usize]).unwrap_or("")
    }

    /// End-to-end time: queue wait plus engine execution.
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns + self.execute_ns
    }
}

impl Default for TraceSpan {
    fn default() -> Self {
        Self {
            id: 0,
            route: "",
            queue_wait_ns: 0,
            execute_ns: 0,
            wal_commit_ns: 0,
            bytes_in: 0,
            bytes_out: 0,
            status: 0,
            outcome: "",
            model_len: 0,
            model: [0; TRACE_MODEL_BYTES],
        }
    }
}

/// Escapes `s` for use inside a Prometheus label value: `\` becomes
/// `\\`, `"` becomes `\"`, and newlines become `\n` — the three escapes
/// the exposition grammar defines for quoted label values.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends `s` to `out` as a JSON string body (no surrounding quotes):
/// escapes `"` and `\`, hex-escapes control characters, passes other
/// UTF-8 through raw (valid JSON).
fn push_json_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A fixed-capacity ring of the most recent [`TraceSpan`]s. Preallocated
/// once; recording overwrites the oldest slot.
#[derive(Debug)]
struct TraceRing {
    spans: Box<[TraceSpan]>,
    /// Next slot to overwrite.
    next: usize,
    /// Spans currently retained (saturates at capacity).
    len: usize,
}

impl TraceRing {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            spans: vec![TraceSpan::default(); capacity.max(1)].into_boxed_slice(),
            next: 0,
            len: 0,
        }
    }

    fn record(&mut self, span: TraceSpan) {
        self.spans[self.next] = span;
        self.next = (self.next + 1) % self.spans.len();
        self.len = (self.len + 1).min(self.spans.len());
    }

    /// The last `k` retained spans, oldest first.
    fn last(&self, k: usize) -> Vec<TraceSpan> {
        let k = k.min(self.len);
        let mut out = Vec::with_capacity(k);
        let cap = self.spans.len();
        for i in 0..k {
            let idx = (self.next + cap - k + i) % cap;
            out.push(self.spans[idx]);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Telemetry: the pre-registered handle set the whole stack records into.

/// The service-wide telemetry plane: one [`Registry`] plus pre-registered
/// handles for every counter the stack keeps, and the trace-span ring.
///
/// Created by the service builder and shared (`Arc`) with the wire front
/// end, so worker threads (shed counting, `/healthz`, `/metrics`) and the
/// engine thread (everything else) record into the same cells. All handle
/// fields are public — recording through them is the telemetry API.
#[derive(Debug)]
pub struct Telemetry {
    registry: Registry,

    /// Edges applied to any model.
    pub edges_ingested: Counter,
    /// Late edges dropped under the drop-late policy.
    pub edges_dropped: Counter,
    /// Predictions served (single + batched).
    pub queries_served: Counter,
    /// Ground-truth labels captured for continual learning.
    pub labels_buffered: Counter,
    /// Past-time labels dropped under the drop-late policy.
    pub labels_dropped: Counter,
    /// Online tune rounds completed (manual + automatic).
    pub fine_tunes: Counter,
    /// Adam steps executed across all tune rounds.
    pub fine_tune_steps: Counter,
    /// Weight publications into serving engines.
    pub publishes: Counter,
    /// Wire requests shed by admission control (worker-side, 429).
    pub requests_shed: Counter,
    /// Wire requests whose deadline expired while queued (504).
    pub deadlines_expired: Counter,
    /// Durable checkpoints committed.
    pub snapshots_written: Counter,
    /// WAL records group-committed.
    pub wal_records_appended: Counter,
    /// WAL records replayed on top of recovered snapshots.
    pub wal_records_replayed: Counter,
    /// Crash recoveries completed.
    pub recoveries: Counter,
    /// Torn WAL tails truncated during recovery.
    pub wal_truncations: Counter,
    /// `/healthz` probes answered worker-direct (never queued).
    pub healthz_requests: Counter,
    /// Registered models (gauge).
    pub models: Gauge,
    /// Shard engines across the registry (gauge; a single-engine model
    /// counts 1).
    pub shards: Gauge,
    /// End-to-end latency of executed wire requests.
    pub request_latency: Histogram,
    /// Latency of worker-direct `/healthz` probes (never queued — this is
    /// parse-to-response time on the worker thread).
    pub healthz_latency: Histogram,

    /// WAL-commit duration of the most recent append, staged by the
    /// durable seam for the engine loop to fold into the request's span.
    last_wal_commit_ns: AtomicU64,
    trace_seq: AtomicU64,
    trace: Mutex<TraceRing>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A telemetry plane with the default span-ring capacity
    /// ([`TRACE_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_trace_capacity(TRACE_CAPACITY)
    }

    /// A telemetry plane retaining the last `capacity` spans (min 1).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        let registry = Registry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        Self {
            edges_ingested: c("splash_edges_ingested_total", "Edges applied to any model."),
            edges_dropped: c(
                "splash_edges_dropped_total",
                "Late edges dropped under the drop-late policy.",
            ),
            queries_served: c(
                "splash_queries_served_total",
                "Predictions served (single + batched).",
            ),
            labels_buffered: c(
                "splash_labels_buffered_total",
                "Ground-truth labels captured for continual learning.",
            ),
            labels_dropped: c(
                "splash_labels_dropped_total",
                "Past-time labels dropped under the drop-late policy.",
            ),
            fine_tunes: c(
                "splash_fine_tunes_total",
                "Online tune rounds completed (manual + automatic).",
            ),
            fine_tune_steps: c(
                "splash_fine_tune_steps_total",
                "Adam steps executed across all tune rounds.",
            ),
            publishes: c(
                "splash_publishes_total",
                "Weight publications into serving engines.",
            ),
            requests_shed: c(
                "splash_requests_shed_total",
                "Wire requests rejected by admission control (429).",
            ),
            deadlines_expired: c(
                "splash_deadlines_expired_total",
                "Wire requests whose deadline expired while queued (504).",
            ),
            snapshots_written: c(
                "splash_snapshots_written_total",
                "Durable checkpoints committed.",
            ),
            wal_records_appended: c(
                "splash_wal_records_appended_total",
                "Write-ahead-log records group-committed.",
            ),
            wal_records_replayed: c(
                "splash_wal_records_replayed_total",
                "WAL records replayed on top of recovered snapshots.",
            ),
            recoveries: c("splash_recoveries_total", "Crash recoveries completed."),
            wal_truncations: c(
                "splash_wal_truncations_total",
                "Torn WAL tails truncated during recovery.",
            ),
            healthz_requests: c(
                "splash_healthz_requests_total",
                "Health probes answered worker-direct (never queued).",
            ),
            models: registry.gauge("splash_models", "Registered models."),
            shards: registry.gauge(
                "splash_shard_engines",
                "Shard engines across the registry (a single-engine model counts 1).",
            ),
            request_latency: registry.histogram(
                "splash_request_latency_seconds",
                "End-to-end latency of executed wire requests.",
            ),
            healthz_latency: registry.histogram(
                "splash_healthz_latency_seconds",
                "Latency of worker-direct health probes.",
            ),
            last_wal_commit_ns: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            trace: Mutex::new(TraceRing::with_capacity(capacity)),
            registry,
        }
    }

    /// The registry, for registering further series (per-shard counters,
    /// server gauges) and for exposition.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Stages the WAL-commit duration of the append the engine is
    /// currently executing (called by the durable seam; zero-alloc).
    pub fn note_wal_commit_ns(&self, ns: u64) {
        self.last_wal_commit_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Drains the staged WAL-commit duration (called by the engine loop
    /// around each request so the span attributes commit time correctly).
    pub fn take_wal_commit_ns(&self) -> u64 {
        self.last_wal_commit_ns.swap(0, Ordering::Relaxed)
    }

    /// Records one request span into the ring (assigns the next request
    /// id and returns it). Copies `model` into the span's inline buffer —
    /// no heap allocation on this path.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        route: &'static str,
        model: &str,
        queue_wait_ns: u64,
        execute_ns: u64,
        wal_commit_ns: u64,
        bytes_in: u64,
        bytes_out: u64,
        status: u16,
        outcome: &'static str,
    ) -> u64 {
        let id = self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut span = TraceSpan {
            id,
            route,
            queue_wait_ns,
            execute_ns,
            wal_commit_ns,
            bytes_in,
            bytes_out,
            status,
            outcome,
            ..TraceSpan::default()
        };
        let mut len = model.len().min(TRACE_MODEL_BYTES);
        while !model.is_char_boundary(len) {
            len -= 1;
        }
        span.model[..len].copy_from_slice(&model.as_bytes()[..len]);
        span.model_len = len as u8;
        self.trace.lock().expect("trace ring poisoned").record(span);
        id
    }

    /// Total spans recorded over the server's lifetime (the ring retains
    /// only the most recent ones).
    pub fn spans_recorded(&self) -> u64 {
        self.trace_seq.load(Ordering::Relaxed)
    }

    /// The last `k` retained spans, oldest first.
    pub fn last_spans(&self, k: usize) -> Vec<TraceSpan> {
        self.trace.lock().expect("trace ring poisoned").last(k)
    }

    /// The retained spans whose end-to-end time is at least
    /// `threshold_ns`, oldest first — the slow-request log.
    pub fn slow_log(&self, threshold_ns: u64) -> Vec<TraceSpan> {
        let g = self.trace.lock().expect("trace ring poisoned");
        g.last(g.len).into_iter().filter(|s| s.total_ns() >= threshold_ns).collect()
    }

    /// Renders the last `k` spans as a JSON array (oldest first), the
    /// `GET /trace?n=K` body.
    pub fn render_trace_json(&self, k: usize) -> String {
        let spans = self.last_spans(k);
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"route\":\"{}\",\"model\":\"", s.id, s.route);
            push_json_escaped(&mut out, s.model());
            let _ = write!(
                out,
                "\",\"queue_wait_ns\":{},\"execute_ns\":{},\"wal_commit_ns\":{},\
                 \"bytes_in\":{},\"bytes_out\":{},\"status\":{},\"outcome\":\"{}\"}}",
                s.queue_wait_ns,
                s.execute_ns,
                s.wal_commit_ns,
                s.bytes_in,
                s.bytes_out,
                s.status,
                s.outcome,
            );
        }
        out.push_str("]\n");
        out
    }

    /// The operator-facing shutdown summary the CLI `serve` report embeds:
    /// lifetime span/probe counts, and — when `slow_threshold_ns` is set —
    /// the retained spans at or over the threshold, slowest-last.
    pub fn summary(&self, slow_threshold_ns: Option<u64>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry      : {} spans recorded, {} healthz probes",
            self.spans_recorded(),
            self.healthz_requests.get(),
        );
        if let Some(threshold) = slow_threshold_ns {
            let slow = self.slow_log(threshold);
            let _ = writeln!(
                out,
                "slow requests  : {} retained at/over {:.3}ms",
                slow.len(),
                threshold as f64 / 1e6,
            );
            for s in slow.iter().rev().take(8).rev() {
                let ms = |ns: u64| ns as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "  #{} {} {:?} queue {:.3}ms exec {:.3}ms wal {:.3}ms -> {} {}",
                    s.id,
                    s.route,
                    s.model(),
                    ms(s.queue_wait_ns),
                    ms(s.execute_ns),
                    ms(s.wal_commit_ns),
                    s.status,
                    s.outcome,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_and_set() {
        let reg = Registry::new();
        let a = reg.counter("t_total", "help");
        let b = reg.counter("t_total", "help");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "same name returns the same cell");
        a.set(10);
        assert_eq!(b.get(), 10);
        let d = a.detached_copy();
        d.inc();
        assert_eq!((a.get(), d.get()), (10, 11), "detached copies diverge");
        let g = reg.gauge("t_gauge", "help");
        g.set(7);
        assert_eq!(reg.gauge("t_gauge", "help").get(), 7);
    }

    #[test]
    fn histogram_handle_matches_plain_histogram() {
        let h = Histogram::new();
        let mut plain = LatencyHistogram::default();
        for ns in [100, 2_000, 1_000_000, 123_456_789, u64::MAX / 2] {
            h.record_ns(ns);
            plain.record_ns(ns);
        }
        assert_eq!(h.snapshot(), plain);
    }

    #[test]
    fn merge_is_elementwise_union() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for ns in [500, 1_500, 3_000_000] {
            a.record_ns(ns);
            whole.record_ns(ns);
        }
        for ns in [900, 70_000, 200_000_000] {
            b.record_ns(ns);
            whole.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 6);
        assert_eq!(a.p99_ns(), whole.p99_ns());
    }

    #[test]
    fn top_bucket_saturates_and_reports_exact_max() {
        let mut h = LatencyHistogram::default();
        // Everything from the last finite bound upward lands in bucket 31.
        let top_bound = 1024u64 << (LATENCY_BUCKETS - 1);
        h.record_ns(top_bound);
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX); // sum saturates instead of wrapping
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), u64::MAX);
        assert_eq!(
            h.p50_ns(),
            h.max_ns(),
            "quantiles landing in the unbounded bucket resolve to the exact max"
        );
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("z_total", "last family").add(2);
        reg.counter("a_total", "first family").inc();
        let shard = Counter::new();
        shard.add(5);
        reg.register_counter("m_total", "model=\"live\",shard=\"0\"", "labeled", &shard);
        let text = reg.render_prometheus();
        let a = text.find("a_total 1").expect("a_total sample");
        let m = text.find("m_total{model=\"live\",shard=\"0\"} 5").expect("labeled sample");
        let z = text.find("z_total 2").expect("z_total sample");
        assert!(a < m && m < z, "series are sorted by name:\n{text}");
        assert!(text.contains("# TYPE a_total counter"));
        assert_eq!(text, reg.render_prometheus(), "rendering is deterministic");
    }

    #[test]
    fn histogram_exposition_is_cumulative_with_inf() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "latency");
        h.record_ns(500); // bucket 0
        h.record_ns(2_000); // bucket 1
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"0.000001024\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"0.000002048\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_count 2"), "{text}");
        assert!(text.contains("lat_seconds_sum 0.0000025"), "{text}");
    }

    #[test]
    fn statz_json_gates_histograms_behind_timing() {
        let reg = Registry::new();
        reg.counter("c_total", "c").add(3);
        reg.histogram("h_seconds", "h").record_ns(1);
        let gated = reg.render_statz_json(false);
        assert!(gated.contains("\"c_total\":3"), "{gated}");
        assert!(!gated.contains("histograms"), "{gated}");
        assert!(gated.ends_with("\"timing\":false}\n"), "{gated}");
        let timed = reg.render_statz_json(true);
        assert!(timed.contains("\"h_seconds\":{\"count\":1"), "{timed}");
        assert_eq!(gated, reg.render_statz_json(false), "gated form is deterministic");
    }

    #[test]
    fn trace_ring_wraps_and_slow_log_filters() {
        let tel = Telemetry::with_trace_capacity(4);
        for i in 0..6u64 {
            tel.record_span("predict", "live", i * 1_000, 500, 0, 10, 20, 200, "ok");
        }
        assert_eq!(tel.spans_recorded(), 6);
        let last = tel.last_spans(10);
        assert_eq!(last.len(), 4, "ring retains only its capacity");
        assert_eq!(last.first().unwrap().id, 3, "oldest retained span");
        assert_eq!(last.last().unwrap().id, 6, "newest span last");
        let slow = tel.slow_log(4_000);
        assert_eq!(slow.len(), 2, "spans 5 and 6 wait >= 4µs: {slow:?}");
        assert!(slow.iter().all(|s| s.total_ns() >= 4_000));
    }

    #[test]
    fn span_model_names_truncate_at_char_boundaries() {
        let tel = Telemetry::with_trace_capacity(2);
        let name = "模型".repeat(8); // 48 bytes of multi-byte chars
        tel.record_span("ingest", &name, 0, 0, 0, 0, 0, 200, "ok");
        let span = tel.last_spans(1)[0];
        assert!(span.model().len() <= TRACE_MODEL_BYTES);
        assert!(name.starts_with(span.model()));
        let json = tel.render_trace_json(1);
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"route\":\"ingest\""), "{json}");
    }

    #[test]
    fn wal_commit_staging_accumulates_and_drains() {
        let tel = Telemetry::new();
        assert_eq!(tel.take_wal_commit_ns(), 0);
        tel.note_wal_commit_ns(120);
        tel.note_wal_commit_ns(30);
        assert_eq!(tel.take_wal_commit_ns(), 150);
        assert_eq!(tel.take_wal_commit_ns(), 0, "draining resets the stage");
    }
}
