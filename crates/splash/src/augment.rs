//! Node feature augmentation for CTDGs (paper §IV-A).
//!
//! Three augmentation processes produce candidate node features:
//!
//! * **Random** (`R`): fixed Gaussian vectors for seen nodes — stable
//!   absolute positions in feature space;
//! * **Positional** (`P`): node2vec over the training-prefix snapshot
//!   (Eq. 1) — stable relative positions;
//! * **Structural** (`S`): sinusoidal encodings of the incrementally
//!   maintained node degree (Eqs. 2–3) — time-varying structural roles.
//!
//! Nodes unseen during training get structural features directly from their
//! degree; their random/positional features start at zero and are filled by
//! *feature propagation* (Eqs. 4–5): each new incident edge linearly
//! interpolates the neighbor's feature into the unseen node's feature, in
//! `O(d_v)` per edge.

use ctdg::{DegreeTracker, EdgeStream, GraphSnapshot, NodeId, TemporalEdge};
use embed::{grarep, node2vec, Node2VecConfig};
use nn::{randn_matrix, DegreeEncode, Matrix};
use rand::{rngs::StdRng, SeedableRng};

use crate::config::PositionalSource;

/// The three feature augmentation processes `X ∈ {R, P, S}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureProcess {
    /// Random Gaussian features (process `R`).
    Random,
    /// node2vec positional features (process `P`).
    Positional,
    /// Sinusoidal degree (structural) features (process `S`).
    Structural,
}

impl FeatureProcess {
    /// All processes, in the paper's order.
    pub const ALL: [FeatureProcess; 3] =
        [FeatureProcess::Random, FeatureProcess::Positional, FeatureProcess::Structural];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureProcess::Random => "R",
            FeatureProcess::Positional => "P",
            FeatureProcess::Structural => "S",
        }
    }
}

/// Streaming feature-augmentation state: fixed features for seen nodes,
/// propagated features plus incremental degrees for everything else.
#[derive(Debug, Clone)]
pub struct Augmenter {
    dv: usize,
    /// Nodes that appeared during the training period (`V_seen`).
    seen: Vec<bool>,
    random_seen: Matrix,
    positional_seen: Matrix,
    /// Propagated features for unseen nodes, keyed by node id; `None` until
    /// first touched.
    random_prop: Vec<Option<Vec<f32>>>,
    positional_prop: Vec<Option<Vec<f32>>>,
    degrees: DegreeTracker,
    degree_enc: DegreeEncode,
    /// Reusable pre-update feature snapshots for [`Augmenter::observe`] so
    /// steady-state edge ingestion performs no heap allocation.
    scratch: ObserveScratch,
}

/// Scratch buffers holding the endpoints' pre-update features during one
/// [`Augmenter::observe`] call.
#[derive(Debug, Clone, Default)]
struct ObserveScratch {
    src_rand: Vec<f32>,
    src_pos: Vec<f32>,
    dst_rand: Vec<f32>,
    dst_pos: Vec<f32>,
}

impl Augmenter {
    /// Builds augmentation state from the training prefix (`prefix_len`
    /// edges) of `stream`, then replays those edges through the incremental
    /// path so degrees are current as of the end of the prefix.
    ///
    /// `num_nodes_hint` must cover every node id that can ever appear
    /// (seen or unseen).
    pub fn new(
        stream: &EdgeStream,
        prefix_len: usize,
        num_nodes_hint: usize,
        dv: usize,
        n2v: &Node2VecConfig,
        degree_alpha: f32,
        seed: u64,
    ) -> Self {
        Self::with_source(
            stream,
            prefix_len,
            num_nodes_hint,
            dv,
            n2v,
            PositionalSource::Node2Vec,
            degree_alpha,
            seed,
        )
    }

    /// [`Augmenter::new`] with an explicit positional `Embedding` function
    /// for Eq. 1 (node2vec or GraRep; see [`PositionalSource`]).
    #[allow(clippy::too_many_arguments)]
    pub fn with_source(
        stream: &EdgeStream,
        prefix_len: usize,
        num_nodes_hint: usize,
        dv: usize,
        n2v: &Node2VecConfig,
        positional: PositionalSource,
        degree_alpha: f32,
        seed: u64,
    ) -> Self {
        let n = num_nodes_hint.max(stream.num_nodes());
        let prefix_len = prefix_len.min(stream.len());
        let mut seen = vec![false; n];
        for e in &stream.edges()[..prefix_len] {
            seen[e.src as usize] = true;
            seen[e.dst as usize] = true;
        }

        // Process R: fixed Gaussian rows for every node slot; only seen
        // nodes' rows are ever served as "seen" features.
        let mut rng = StdRng::seed_from_u64(seed);
        let random_seen = randn_matrix(n, dv, 1.0, &mut rng);

        // Process P: the selected Embedding over the training snapshot
        // (Eq. 1); node2vec by default.
        let snapshot = GraphSnapshot::from_stream_prefix(stream, prefix_len);
        let emb = match positional {
            PositionalSource::Node2Vec => {
                let mut n2v_cfg = *n2v;
                n2v_cfg.sgns.dim = dv;
                node2vec(&snapshot, &n2v_cfg, seed ^ 0x5EED)
            }
            PositionalSource::GraRep(mut gr_cfg) => {
                gr_cfg.dim = dv;
                grarep(&snapshot, &gr_cfg, seed ^ 0x5EED)
            }
        };
        let mut positional_seen = Matrix::zeros(n, dv);
        for i in 0..emb.rows().min(n) {
            positional_seen.set_row(i, emb.row(i));
        }

        let mut aug = Self {
            dv,
            seen,
            random_seen,
            positional_seen,
            random_prop: vec![None; n],
            positional_prop: vec![None; n],
            degrees: DegreeTracker::new(n),
            degree_enc: DegreeEncode::new(dv, degree_alpha),
            scratch: ObserveScratch::default(),
        };
        for e in &stream.edges()[..prefix_len] {
            aug.observe(e);
        }
        aug
    }

    /// Feature dimension `d_v`.
    pub fn feat_dim(&self) -> usize {
        self.dv
    }

    /// Whether `node` was seen during the training period.
    pub fn is_seen(&self, node: NodeId) -> bool {
        self.seen.get(node as usize).copied().unwrap_or(false)
    }

    /// Number of node ids this augmenter has allocated state for: the
    /// training stream's node universe, grown by every ingested edge.
    /// Valid ids are `0..known_nodes()`; larger ids are still servable
    /// (they get zero/propagated features) but a strict caller can use
    /// this bound to reject them.
    pub fn known_nodes(&self) -> usize {
        self.seen.len()
    }

    /// Current degree of `node`.
    pub fn degree(&self, node: NodeId) -> u64 {
        self.degrees.degree(node)
    }

    fn grow(&mut self, node: NodeId) {
        let need = node as usize + 1;
        if self.seen.len() < need {
            self.seen.resize(need, false);
            self.random_prop.resize(need, None);
            self.positional_prop.resize(need, None);
            // Seen matrices stay fixed; out-of-range unseen nodes only use
            // the propagated tables.
        }
    }

    /// Ingests one temporal edge: updates degrees and propagates
    /// random/positional features into unseen endpoints (Eqs. 4–5).
    ///
    /// Must be called exactly once per edge, in chronological order,
    /// *including* the training-prefix edges (handled by [`Augmenter::new`]).
    pub fn observe(&mut self, edge: &TemporalEdge) {
        self.grow(edge.src.max(edge.dst));
        // Pre-update degrees and features (Eqs. 4–5 use t(n−1) values).
        // Feature snapshots land in the reusable scratch (taken out of
        // `self` for the duration so `feature_into` can borrow `&self`),
        // and only the snapshots a propagation will read are computed.
        let deg_src = self.degrees.degree(edge.src);
        let deg_dst = self.degrees.degree(edge.dst);
        let src_unseen = !self.is_seen(edge.src);
        let dst_unseen = !self.is_seen(edge.dst) && edge.src != edge.dst;
        let mut s = std::mem::take(&mut self.scratch);
        if src_unseen {
            self.feature_into(FeatureProcess::Random, edge.dst, &mut s.dst_rand);
            self.feature_into(FeatureProcess::Positional, edge.dst, &mut s.dst_pos);
        }
        if dst_unseen {
            self.feature_into(FeatureProcess::Random, edge.src, &mut s.src_rand);
            self.feature_into(FeatureProcess::Positional, edge.src, &mut s.src_pos);
        }
        if src_unseen {
            propagate(&mut self.random_prop[edge.src as usize], deg_src, &s.dst_rand);
            propagate(&mut self.positional_prop[edge.src as usize], deg_src, &s.dst_pos);
        }
        if dst_unseen {
            propagate(&mut self.random_prop[edge.dst as usize], deg_dst, &s.src_rand);
            propagate(&mut self.positional_prop[edge.dst as usize], deg_dst, &s.src_pos);
        }
        self.scratch = s;
        self.degrees.update(edge);
    }

    /// The current feature `x_i(t) = X(v_i(t))` of `node` under `process`.
    pub fn feature(&self, process: FeatureProcess, node: NodeId) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dv);
        self.feature_into(process, node, &mut out);
        out
    }

    /// [`Augmenter::feature`] into a caller-owned vector: `out` is cleared
    /// and refilled, reusing its allocation. The streaming hot paths call
    /// this per edge/query, so after warm-up it performs no heap
    /// allocation.
    pub fn feature_into(&self, process: FeatureProcess, node: NodeId, out: &mut Vec<f32>) {
        out.clear();
        let idx = node as usize;
        let fixed_or_propagated =
            |seen: &Matrix, prop: &[Option<Vec<f32>>], out: &mut Vec<f32>| {
                if self.is_seen(node) {
                    out.extend_from_slice(seen.row(idx));
                } else {
                    match prop.get(idx).and_then(|o| o.as_deref()) {
                        Some(f) => out.extend_from_slice(f),
                        None => out.resize(self.dv, 0.0),
                    }
                }
            };
        match process {
            FeatureProcess::Random => {
                fixed_or_propagated(&self.random_seen, &self.random_prop, out)
            }
            FeatureProcess::Positional => {
                fixed_or_propagated(&self.positional_seen, &self.positional_prop, out)
            }
            FeatureProcess::Structural => {
                out.resize(self.dv, 0.0);
                self.degree_enc.encode_into(self.degrees.degree(node), out);
            }
        }
    }

    /// Clones every field a durable checkpoint must persist. Scratch buffers
    /// and the degree encoder are excluded: both are rebuilt from the config
    /// on restore ([`Augmenter::from_durable_state`]).
    pub(crate) fn durable_state(&self) -> AugmenterState {
        AugmenterState {
            dv: self.dv,
            seen: self.seen.clone(),
            random_seen: self.random_seen.clone(),
            positional_seen: self.positional_seen.clone(),
            random_prop: self.random_prop.clone(),
            positional_prop: self.positional_prop.clone(),
            degrees: self.degrees.degrees_raw().to_vec(),
            degrees_total: self.degrees.total(),
        }
    }

    /// Rebuilds an augmenter from a captured [`AugmenterState`], bypassing
    /// the embedding build and prefix replay of [`Augmenter::with_source`]
    /// entirely — this is what makes restart O(state) instead of O(stream).
    pub(crate) fn from_durable_state(state: AugmenterState, degree_alpha: f32) -> Self {
        Self {
            dv: state.dv,
            seen: state.seen,
            random_seen: state.random_seen,
            positional_seen: state.positional_seen,
            random_prop: state.random_prop,
            positional_prop: state.positional_prop,
            degrees: DegreeTracker::from_raw(state.degrees, state.degrees_total),
            degree_enc: DegreeEncode::new(state.dv, degree_alpha),
            scratch: ObserveScratch::default(),
        }
    }

    /// Concatenated `[R || P || S]` feature (the SLIM+Joint ablation input).
    pub fn joint_feature(&self, node: NodeId) -> Vec<f32> {
        let mut out = self.feature(FeatureProcess::Random, node);
        out.extend(self.feature(FeatureProcess::Positional, node));
        out.extend(self.feature(FeatureProcess::Structural, node));
        out
    }
}

/// Owned snapshot of an [`Augmenter`]'s persistent state, produced by
/// [`Augmenter::durable_state`] and consumed by
/// [`Augmenter::from_durable_state`]. The degree encoder and observe
/// scratch are derived state and deliberately absent.
#[derive(Debug, Clone)]
pub(crate) struct AugmenterState {
    /// Feature dimension `d_v`.
    pub dv: usize,
    /// Training-period visibility flags (`V_seen`), grown by ingestion.
    pub seen: Vec<bool>,
    /// Fixed Gaussian features for seen nodes (process `R`).
    pub random_seen: Matrix,
    /// Positional embedding rows for seen nodes (process `P`, Eq. 1).
    pub positional_seen: Matrix,
    /// Propagated random features for unseen nodes (Eqs. 4–5).
    pub random_prop: Vec<Option<Vec<f32>>>,
    /// Propagated positional features for unseen nodes (Eqs. 4–5).
    pub positional_prop: Vec<Option<Vec<f32>>>,
    /// Raw per-node degree counts (Eq. 2).
    pub degrees: Vec<u64>,
    /// Sum of all degrees (2 × ingested edges).
    pub degrees_total: u64,
}

/// Eq. 4/5: `x_i ← (deg_i · x_i + x_j) / (deg_i + 1)` with zero
/// initialization on first touch.
fn propagate(slot: &mut Option<Vec<f32>>, degree: u64, neighbor_feat: &[f32]) {
    match slot {
        None => {
            // x_i(t^(n-1)) = 0 ⇒ update reduces to x_j / (deg + 1).
            let denom = (degree + 1) as f32;
            *slot = Some(neighbor_feat.iter().map(|&v| v / denom).collect());
        }
        Some(cur) => {
            let d = degree as f32;
            let denom = d + 1.0;
            for (c, &nf) in cur.iter_mut().zip(neighbor_feat) {
                *c = (d * *c + nf) / denom;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::TemporalEdge;
    use embed::Node2VecConfig;

    fn make_stream() -> EdgeStream {
        // Seen period: nodes 0..4 interact; later node 10 (unseen) arrives.
        EdgeStream::new(vec![
            TemporalEdge::plain(0, 1, 1.0),
            TemporalEdge::plain(1, 2, 2.0),
            TemporalEdge::plain(2, 3, 3.0),
            TemporalEdge::plain(0, 3, 4.0),
            TemporalEdge::plain(10, 0, 10.0),
            TemporalEdge::plain(10, 1, 11.0),
        ])
        .unwrap()
    }

    fn augmenter(prefix: usize) -> Augmenter {
        let stream = make_stream();
        Augmenter::new(&stream, prefix, 12, 8, &Node2VecConfig::fast(8), 50.0, 3)
    }

    #[test]
    fn seen_random_features_are_fixed() {
        let stream = make_stream();
        let mut aug = augmenter(4);
        let before = aug.feature(FeatureProcess::Random, 0);
        aug.observe(&stream.edges()[4]);
        aug.observe(&stream.edges()[5]);
        assert_eq!(aug.feature(FeatureProcess::Random, 0), before);
    }

    #[test]
    fn structural_features_track_degree() {
        let stream = make_stream();
        let mut aug = augmenter(4);
        // Node 10 has degree 0 → encoding of 0.
        let enc = DegreeEncode::new(8, 50.0);
        assert_eq!(aug.feature(FeatureProcess::Structural, 10), enc.encode(0));
        aug.observe(&stream.edges()[4]);
        assert_eq!(aug.feature(FeatureProcess::Structural, 10), enc.encode(1));
        aug.observe(&stream.edges()[5]);
        assert_eq!(aug.feature(FeatureProcess::Structural, 10), enc.encode(2));
    }

    #[test]
    fn propagation_matches_example_9() {
        // Reproduces the paper's worked Example 9 exactly.
        let stream = EdgeStream::new(vec![
            TemporalEdge::plain(1, 2, 1.0), // training edge making 1, 2 seen
            TemporalEdge::plain(11, 1, 10.0),
            TemporalEdge::plain(11, 2, 11.0),
        ])
        .unwrap();
        let mut aug = Augmenter::new(&stream, 1, 12, 2, &Node2VecConfig::fast(2), 50.0, 0);
        // Overwrite seen features with the example's values.
        aug.random_seen.set_row(1, &[0.1, -0.2]);
        aug.random_seen.set_row(2, &[0.1, 0.3]);
        assert_eq!(aug.feature(FeatureProcess::Random, 11), vec![0.0, 0.0]);
        aug.observe(&stream.edges()[1]);
        let r = aug.feature(FeatureProcess::Random, 11);
        assert!((r[0] - 0.1).abs() < 1e-6 && (r[1] + 0.2).abs() < 1e-6, "{r:?}");
        aug.observe(&stream.edges()[2]);
        let r = aug.feature(FeatureProcess::Random, 11);
        assert!((r[0] - 0.1).abs() < 1e-6 && (r[1] - 0.05).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn unseen_features_live_in_seen_feature_space() {
        let stream = make_stream();
        let mut aug = augmenter(4);
        for e in &stream.edges()[4..] {
            aug.observe(e);
        }
        // Node 10's propagated random feature is the average of nodes 0 and 1.
        let r10 = aug.feature(FeatureProcess::Random, 10);
        let r0 = aug.feature(FeatureProcess::Random, 0);
        let r1 = aug.feature(FeatureProcess::Random, 1);
        for i in 0..8 {
            assert!((r10[i] - (r0[i] + r1[i]) / 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn positional_features_cover_seen_nodes() {
        let aug = augmenter(4);
        for v in [0u32, 1, 2, 3] {
            let p = aug.feature(FeatureProcess::Positional, v);
            assert!(p.iter().any(|&x| x != 0.0), "node {v} positional feature is zero");
        }
    }

    #[test]
    fn joint_concatenates_all_processes() {
        let aug = augmenter(4);
        let j = aug.joint_feature(1);
        assert_eq!(j.len(), 24);
        assert_eq!(&j[..8], aug.feature(FeatureProcess::Random, 1).as_slice());
        assert_eq!(&j[8..16], aug.feature(FeatureProcess::Positional, 1).as_slice());
        assert_eq!(&j[16..], aug.feature(FeatureProcess::Structural, 1).as_slice());
    }

    #[test]
    fn grarep_source_swaps_the_positional_embedding_only() {
        let stream = make_stream();
        let n2v = Node2VecConfig::fast(8);
        let gr = crate::PositionalSource::GraRep(embed::GraRepConfig {
            dim: 8,
            transition_steps: 2,
            svd_iters: 3,
        });
        let a = Augmenter::with_source(&stream, 4, 12, 8, &n2v, gr, 50.0, 3);
        let b = augmenter(4); // node2vec source, same seed
        // Positional features differ (different embedding function)…
        assert_ne!(
            a.feature(FeatureProcess::Positional, 0),
            b.feature(FeatureProcess::Positional, 0)
        );
        // …while random and structural features are identical.
        for v in [0u32, 1, 2, 3] {
            assert_eq!(
                a.feature(FeatureProcess::Random, v),
                b.feature(FeatureProcess::Random, v)
            );
            assert_eq!(
                a.feature(FeatureProcess::Structural, v),
                b.feature(FeatureProcess::Structural, v)
            );
        }
        // GraRep positional features are live for the connected seen nodes.
        assert!(a
            .feature(FeatureProcess::Positional, 1)
            .iter()
            .any(|&x| x != 0.0));
    }

    #[test]
    fn durable_state_round_trips_bit_identically() {
        let stream = make_stream();
        let mut aug = augmenter(4);
        for e in &stream.edges()[4..] {
            aug.observe(e);
        }
        let restored = Augmenter::from_durable_state(aug.durable_state(), 50.0);
        for v in 0..12u32 {
            for p in FeatureProcess::ALL {
                assert_eq!(aug.feature(p, v), restored.feature(p, v), "node {v} {}", p.name());
            }
        }
        assert_eq!(aug.known_nodes(), restored.known_nodes());
        assert_eq!(aug.degree(10), restored.degree(10));
    }

    #[test]
    fn never_touched_unseen_node_is_zero() {
        let aug = augmenter(4);
        assert_eq!(aug.feature(FeatureProcess::Random, 11), vec![0.0; 8]);
        assert_eq!(aug.feature(FeatureProcess::Positional, 11), vec![0.0; 8]);
    }
}
