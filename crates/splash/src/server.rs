//! The wire front end: a hand-rolled HTTP/1.1 server over
//! [`std::net::TcpListener`] that puts a socket in front of
//! [`SplashService`].
//!
//! The offline build has no async runtime, so the design is the honest
//! thread-per-core one the sharded engine already uses: a bounded pool of
//! **connection workers** parses requests, and a single **engine thread**
//! owns the (deliberately `!Sync`) service and executes them in arrival
//! order — which is exactly what makes a stream replayed over the wire
//! **bit-identical** to the same stream driven in-process (pinned by
//! `tests/server.rs` at shard counts 1 and 3).
//!
//! Between the workers and the engine sits a **bounded job queue**, and
//! that queue is the admission-control surface:
//!
//! * **Load shedding** — when the queue is full, a request is answered
//!   `429 Too Many Requests` immediately instead of building unbounded
//!   backlog ([`crate::service::ServiceStats::requests_shed`] counts them).
//! * **Deadlines** — every request carries its arrival instant; if it
//!   waited longer than [`ServerConfig::deadline`] before the engine got
//!   to it, the engine answers `504 Gateway Timeout` without touching the
//!   model ([`crate::service::ServiceStats::deadlines_expired`]).
//! * **Latency** — executed requests are timed arrival-to-completion into
//!   the fixed-bucket [`crate::service::LatencyHistogram`] (zero
//!   allocations on the record path).
//!
//! Every counter the front end keeps lives in the service's shared
//! [`Telemetry`] plane, and the **observability routes** are answered by
//! the worker that parsed them — straight off the telemetry atomics,
//! never queued behind the engine: `GET /metrics` (Prometheus text
//! exposition), `GET /statz.json` (`?timing=0` gates the
//! latency-histogram fields off for byte-deterministic replays), and
//! `GET /trace?n=K` (the last K request spans as JSON, queue-wait and
//! engine-execute separated). `GET /healthz` is counted — probes and
//! their non-queued latency — without touching the engine thread.
//!
//! # Wire protocol
//!
//! HTTP/1.1 with length-delimited bodies (`content-length` required on
//! bodies; no chunked encoding), `text/plain` payloads in the repo's CSV
//! interchange formats, keep-alive by default. Errors carry the
//! [`SplashError`] taxonomy: the status code comes from
//! [`SplashError::http_status`] and the machine-readable variant name is
//! echoed in the `x-splash-error` response header. The full route ↔
//! service-call and error ↔ status tables live in ARCHITECTURE.md
//! ("Wire protocol & backpressure").
//!
//! | Route | Service call |
//! |---|---|
//! | `GET /healthz` | (answered by the worker, never queued; counted) |
//! | `GET /metrics` | (worker-direct: Prometheus text exposition) |
//! | `GET /statz.json` | (worker-direct: counters as JSON, `?timing=0`) |
//! | `GET /trace` | (worker-direct: last `?n=K` request spans as JSON) |
//! | `GET /stats` | [`SplashService::stats`] |
//! | `GET /models` | [`SplashService::models_info`] |
//! | `POST /models/{name}/ingest` | [`SplashService::ingest`] |
//! | `POST /models/{name}/predict` | [`SplashService::predict_into`] |
//! | `POST /models/{name}/labels` | [`SplashService::observe_labels`] |
//! | `POST /models/{name}/fine-tune` | [`SplashService::fine_tune`] |
//! | `POST /models/{name}/publish` | [`SplashService::publish`] |
//! | `POST /models/{name}/load` | [`SplashService::load_model`] (hot-swap) |
//!
//! ```no_run
//! use splash::server::{ServerConfig, SplashServer};
//! use splash::{SplashConfig, SplashService};
//!
//! let service = SplashService::builder(SplashConfig::tiny()).build().unwrap();
//! let handle = SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! let service = handle.shutdown(); // joins every thread, returns the service
//! # let _ = service;
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctdg::{Label, TemporalEdge};
use datasets::{queries_from_csv, Dataset, Task};

use crate::error::SplashError;
use crate::service::{
    IngestRequest, PredictRequest, PredictResponse, SplashService,
};
use crate::telemetry::Telemetry;

/// Limits and knobs of one [`SplashServer`] deployment.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection-worker threads parsing requests and writing responses
    /// (the engine thread executing them is always exactly one — that is
    /// the determinism contract). Must be positive.
    pub workers: usize,
    /// Capacity of the bounded job queue between workers and the engine.
    /// A request arriving while the queue holds this many is shed with
    /// `429`. Must be positive.
    pub queue_depth: usize,
    /// Per-request deadline, measured from arrival at the worker to the
    /// moment the engine picks the job up. Expired jobs are answered `504`
    /// without executing. Must be non-zero.
    pub deadline: Duration,
    /// Largest accepted request body; a `content-length` above this is
    /// answered `413` without reading the body.
    pub max_body: usize,
    /// Socket read timeout: an idle keep-alive connection is re-polled at
    /// this cadence (so shutdown is never blocked on a silent client), and
    /// a client that stalls mid-request — e.g. a `content-length` lying
    /// about a body it never sends — is disconnected after it.
    pub read_timeout: Duration,
    /// When `true`, the engine honors an `x-splash-delay-ms` request
    /// header by sleeping before the deadline check — a deterministic way
    /// for tests and benches to simulate slow requests. Off by default;
    /// never enable it on a real deployment.
    pub allow_test_delay: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 128,
            deadline: Duration::from_secs(2),
            max_body: 16 << 20,
            read_timeout: Duration::from_millis(500),
            allow_test_delay: false,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), SplashError> {
        if self.workers == 0 {
            return Err(SplashError::InvalidConfig {
                what: "server workers must be positive".into(),
            });
        }
        if self.queue_depth == 0 {
            return Err(SplashError::InvalidConfig {
                what: "server queue_depth must be positive".into(),
            });
        }
        if self.deadline.is_zero() {
            return Err(SplashError::InvalidConfig {
                what: "server deadline must be non-zero".into(),
            });
        }
        if self.read_timeout.is_zero() {
            return Err(SplashError::InvalidConfig {
                what: "server read_timeout must be non-zero".into(),
            });
        }
        Ok(())
    }
}

/// One HTTP response on its way back to a worker.
#[derive(Debug, Clone)]
struct Response {
    status: u16,
    /// `x-splash-error` header value on failures (a [`SplashError::kind`]
    /// or a wire-level kind like `QueueFull` / `DeadlineExpired`).
    kind: Option<&'static str>,
    content_type: &'static str,
    body: String,
}

const TEXT_PLAIN: &str = "text/plain; charset=utf-8";
/// The Prometheus text exposition content type (scrapers key on the
/// `version` parameter).
const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
const APPLICATION_JSON: &str = "application/json";

impl Response {
    fn ok(body: String) -> Self {
        Self { status: 200, kind: None, content_type: TEXT_PLAIN, body }
    }

    fn ok_typed(body: String, content_type: &'static str) -> Self {
        Self { status: 200, kind: None, content_type, body }
    }

    fn err(status: u16, kind: &'static str, msg: impl Into<String>) -> Self {
        let mut body = msg.into();
        body.push('\n');
        Self { status, kind: Some(kind), content_type: TEXT_PLAIN, body }
    }

    fn splash(e: &SplashError) -> Self {
        Self::err(e.http_status(), e.kind(), format!("error: {e}"))
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Which service call a request maps to (resolved by the worker so that
/// path/method garbage never reaches the engine queue).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    Stats,
    Models,
    Ingest(String),
    Predict(String),
    Labels(String),
    FineTune(String),
    Publish(String),
    Load(String),
}

impl Route {
    /// The span label for this route (static — span recording allocates
    /// nothing).
    fn label(&self) -> &'static str {
        match self {
            Route::Stats => "stats",
            Route::Models => "models",
            Route::Ingest(_) => "ingest",
            Route::Predict(_) => "predict",
            Route::Labels(_) => "labels",
            Route::FineTune(_) => "fine-tune",
            Route::Publish(_) => "publish",
            Route::Load(_) => "load",
        }
    }

    /// The model a route addresses (empty for registry-wide routes).
    fn model(&self) -> &str {
        match self {
            Route::Stats | Route::Models => "",
            Route::Ingest(n)
            | Route::Predict(n)
            | Route::Labels(n)
            | Route::FineTune(n)
            | Route::Publish(n)
            | Route::Load(n) => n,
        }
    }
}

/// An observability route the worker answers itself, straight off the
/// shared [`Telemetry`] atomics — never queued behind the engine, so
/// health probes and metric scrapes stay responsive under full load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirectRoute {
    Healthz,
    Metrics,
    /// `timing: false` (`?timing=0`) gates the latency-histogram fields
    /// off, making the dump byte-deterministic across identical replays.
    Statz { timing: bool },
    /// The last `n` request spans as JSON.
    Trace { n: usize },
}

/// Where a request goes: through the engine queue, or answered by the
/// worker directly.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Routed {
    Engine(Route),
    Direct(DirectRoute),
}

/// The value of `key` in a raw query string (`a=1&b=2`), if present.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// One queued request: everything the engine needs to execute and reply.
struct Job {
    route: Route,
    body: Vec<u8>,
    arrival: Instant,
    delay_ms: u64,
    reply: SyncSender<Response>,
}

/// A parsed request as the worker hands it to routing.
struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
    delay_ms: u64,
}

/// Why reading a request off a connection stopped without one.
enum ReadOutcome {
    /// A complete request.
    Request(HttpRequest),
    /// Clean end of stream before any request bytes.
    Eof,
    /// The socket idled past the read timeout between requests — poll the
    /// stop flag and keep waiting.
    Idle,
    /// The client disconnected or stalled mid-request; nothing can be
    /// answered.
    Disconnect,
    /// The bytes were not a usable request; answer `resp` and close.
    Malformed(Response),
}

const MAX_HEADER_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;

/// Reads one CRLF-delimited line with a length cap. `Ok(None)` is EOF.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    first_byte_of_request: bool,
) -> Result<Option<String>, ReadOutcome> {
    let mut line = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(if first_byte_of_request && line.is_empty() {
                    ReadOutcome::Idle
                } else {
                    ReadOutcome::Disconnect
                });
            }
            Err(_) => return Err(ReadOutcome::Disconnect),
        };
        if available.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ReadOutcome::Disconnect)
            };
        }
        let nl = available.iter().position(|&b| b == b'\n');
        let take = nl.map_or(available.len(), |i| i + 1);
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if line.len() > MAX_HEADER_LINE {
            return Err(ReadOutcome::Malformed(Response::err(
                431,
                "HeaderTooLarge",
                format!("error: header line exceeds {MAX_HEADER_LINE} bytes"),
            )));
        }
        if nl.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(ReadOutcome::Malformed(Response::err(
                    400,
                    "BadRequest",
                    "error: request header is not valid UTF-8",
                ))),
            };
        }
    }
}

/// Parses one request (request line, headers, length-delimited body) off
/// the connection.
fn read_request(reader: &mut BufReader<TcpStream>, max_body: usize) -> ReadOutcome {
    let request_line = match read_line_capped(reader, true) {
        Ok(None) => return ReadOutcome::Eof,
        Ok(Some(line)) => line,
        Err(out) => return out,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => {
            return ReadOutcome::Malformed(Response::err(
                400,
                "BadRequest",
                format!("error: malformed request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed(Response::err(
            400,
            "BadRequest",
            format!("error: unsupported protocol {version:?}"),
        ));
    }

    let mut content_length: Option<usize> = None;
    let mut keep_alive = true;
    let mut delay_ms = 0u64;
    let mut headers = 0usize;
    loop {
        let line = match read_line_capped(reader, false) {
            Ok(None) => return ReadOutcome::Disconnect,
            Ok(Some(line)) => line,
            Err(out) => return out,
        };
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return ReadOutcome::Malformed(Response::err(
                431,
                "HeaderTooLarge",
                format!("error: more than {MAX_HEADERS} headers"),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Malformed(Response::err(
                400,
                "BadRequest",
                format!("error: malformed header line {line:?}"),
            ));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) => content_length = Some(n),
                Err(_) => {
                    return ReadOutcome::Malformed(Response::err(
                        400,
                        "BadRequest",
                        format!("error: unparsable content-length {value:?}"),
                    ))
                }
            },
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "transfer-encoding" => {
                // Only length-delimited bodies are spoken here.
                return ReadOutcome::Malformed(Response::err(
                    400,
                    "BadRequest",
                    format!("error: transfer-encoding {value:?} is not supported \
                             (use content-length)"),
                ));
            }
            "x-splash-delay-ms" => delay_ms = value.parse().unwrap_or(0),
            _ => {}
        }
    }

    let len = content_length.unwrap_or(0);
    if len > max_body {
        return ReadOutcome::Malformed(Response::err(
            413,
            "BodyTooLarge",
            format!("error: body of {len} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    if len > 0 {
        // A lying content-length (more promised than sent) stalls here and
        // resolves to a disconnect after the read timeout — never a hang.
        if reader.read_exact(&mut body).is_err() {
            return ReadOutcome::Disconnect;
        }
    }
    ReadOutcome::Request(HttpRequest { method, path, body, keep_alive, delay_ms })
}

/// Resolves method + path (query string included) to a route; errors are
/// complete responses.
fn route_of(method: &str, path: &str) -> Result<Routed, Response> {
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    let model_route = |name: &str, verb: &str| -> Option<Route> {
        if name.is_empty() {
            return None;
        }
        let name = name.to_string();
        match verb {
            "ingest" => Some(Route::Ingest(name)),
            "predict" => Some(Route::Predict(name)),
            "labels" => Some(Route::Labels(name)),
            "fine-tune" => Some(Route::FineTune(name)),
            "publish" => Some(Route::Publish(name)),
            "load" => Some(Route::Load(name)),
            _ => None,
        }
    };
    let post_route = |path: &str| -> Option<Route> {
        let rest = path.strip_prefix("/models/")?;
        let (name, verb) = rest.split_once('/')?;
        if verb.contains('/') {
            return None;
        }
        model_route(name, verb)
    };
    match method {
        "GET" => match path {
            "/healthz" => Ok(Routed::Direct(DirectRoute::Healthz)),
            "/metrics" => Ok(Routed::Direct(DirectRoute::Metrics)),
            "/statz.json" => {
                let timing = query_param(query, "timing") != Some("0");
                Ok(Routed::Direct(DirectRoute::Statz { timing }))
            }
            "/trace" => {
                let n = query_param(query, "n")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_TRACE_SPANS);
                Ok(Routed::Direct(DirectRoute::Trace { n }))
            }
            "/stats" => Ok(Routed::Engine(Route::Stats)),
            "/models" => Ok(Routed::Engine(Route::Models)),
            other if post_route(other).is_some() => Err(Response::err(
                405,
                "MethodNotAllowed",
                format!("error: {other} expects POST"),
            )),
            other => Err(Response::err(404, "NotFound", format!("error: no route {other}"))),
        },
        "POST" => match post_route(path) {
            Some(route) => Ok(Routed::Engine(route)),
            None if matches!(
                path,
                "/healthz" | "/metrics" | "/statz.json" | "/trace" | "/stats" | "/models"
            ) =>
            {
                Err(Response::err(
                    405,
                    "MethodNotAllowed",
                    format!("error: {path} expects GET"),
                ))
            }
            None => Err(Response::err(404, "NotFound", format!("error: no route {path}"))),
        },
        other => Err(Response::err(
            405,
            "MethodNotAllowed",
            format!("error: method {other:?} is not served here (GET or POST)"),
        )),
    }
}

/// Spans returned by `GET /trace` when the request names no `n`.
const DEFAULT_TRACE_SPANS: usize = 32;

/// Answers an observability route off the telemetry plane. Health probes
/// are counted here — requests and their (non-queued) latency — which is
/// what makes them visible in `/metrics` at all: they never reach the
/// engine thread.
fn serve_direct(route: DirectRoute, tel: &Telemetry, arrival: Instant) -> Response {
    match route {
        DirectRoute::Healthz => {
            let resp = Response::ok("ok\n".into());
            tel.healthz_requests.inc();
            tel.healthz_latency.record_ns(arrival.elapsed().as_nanos() as u64);
            resp
        }
        DirectRoute::Metrics => {
            Response::ok_typed(tel.registry().render_prometheus(), PROMETHEUS_TEXT)
        }
        DirectRoute::Statz { timing } => {
            Response::ok_typed(tel.registry().render_statz_json(timing), APPLICATION_JSON)
        }
        DirectRoute::Trace { n } => {
            Response::ok_typed(tel.render_trace_json(n), APPLICATION_JSON)
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response, keep_alive: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(kind) = resp.kind {
        head.push_str("x-splash-error: ");
        head.push_str(kind);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Request bodies: the repo's CSV interchange formats.

/// Parses an ingest body: the edge CSV interchange format (`src,dst,time,
/// weight[,feat...]` under a header line). Unlike `datasets::edges_from_csv`
/// this does **not** require the batch to be internally sorted — ordering
/// policy belongs to the service's [`crate::LateEdgePolicy`].
fn parse_edges(text: &str) -> Result<Vec<TemporalEdge>, String> {
    let mut edges = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 4 {
            return Err(format!("line {}: expected at least src,dst,time,weight", i + 1));
        }
        let field = |j: usize, what: &str| -> Result<f64, String> {
            cells[j]
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("line {}: {what} {:?}: {e}", i + 1, cells[j]))
        };
        let src = cells[0]
            .trim()
            .parse::<u32>()
            .map_err(|e| format!("line {}: src {:?}: {e}", i + 1, cells[0]))?;
        let dst = cells[1]
            .trim()
            .parse::<u32>()
            .map_err(|e| format!("line {}: dst {:?}: {e}", i + 1, cells[1]))?;
        let time = field(2, "time")?;
        let weight = field(3, "weight")? as f32;
        let feat: Vec<f32> = (4..cells.len())
            .map(|j| field(j, "feat").map(|v| v as f32))
            .collect::<Result<_, _>>()?;
        edges.push(TemporalEdge { src, dst, feat: feat.into(), weight, time });
    }
    Ok(edges)
}

/// Parses a predict body: one `node,time` pair per line (an optional
/// literal `node,time` header line is skipped).
fn parse_predict(text: &str) -> Result<Vec<(u32, f64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (i == 0 && line == "node,time") {
            continue;
        }
        let Some((node, time)) = line.split_once(',') else {
            return Err(format!("line {}: expected node,time", i + 1));
        };
        let node = node
            .trim()
            .parse::<u32>()
            .map_err(|e| format!("line {}: node {node:?}: {e}", i + 1))?;
        let time = time
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("line {}: time {time:?}: {e}", i + 1))?;
        out.push((node, time));
    }
    Ok(out)
}

/// Parses a load body: `key=value` lines naming server-local files
/// (`model`, `edges`, `queries`, `task`, optional `classes`).
fn parse_load(text: &str) -> Result<(String, String, String, Task, Option<usize>), String> {
    let (mut model, mut edges, mut queries, mut task, mut classes) =
        (None, None, None, None, None);
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected key=value", i + 1));
        };
        let value = value.trim().to_string();
        match key.trim() {
            "model" => model = Some(value),
            "edges" => edges = Some(value),
            "queries" => queries = Some(value),
            "task" => {
                task = Some(match value.as_str() {
                    "anomaly" => Task::Anomaly,
                    "classification" => Task::Classification,
                    "affinity" => Task::Affinity,
                    other => return Err(format!("unknown task {other:?}")),
                })
            }
            "classes" => {
                classes = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| format!("classes {value:?}: {e}"))?,
                )
            }
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    match (model, edges, queries, task) {
        (Some(m), Some(e), Some(q), Some(t)) => Ok((m, e, q, t, classes)),
        _ => Err("a load body needs model=, edges=, queries= and task= lines".into()),
    }
}

// ---------------------------------------------------------------------------
// The engine thread: sole owner of the service.

fn execute(service: &mut SplashService, route: &Route, body: &[u8]) -> Response {
    let text = match route {
        Route::Stats | Route::Models | Route::FineTune(_) | Route::Publish(_) => "",
        _ => match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => {
                return Response::err(400, "BadRequest", "error: body is not valid UTF-8")
            }
        },
    };
    match route {
        // Shedding happens on the worker threads, but they and the
        // service count into the same registry atomics — no overlay.
        Route::Stats => Response::ok(format!("{}", service.stats())),
        Route::Models => {
            let mut body = String::new();
            for info in service.models_info() {
                body.push_str(&info.to_string());
                body.push('\n');
            }
            Response::ok(body)
        }
        Route::Ingest(name) => {
            let edges = match parse_edges(text) {
                Ok(e) => e,
                Err(msg) => {
                    return Response::err(400, "BadRequest", format!("error: bad edge csv: {msg}"))
                }
            };
            match service.ingest(name, IngestRequest::new(&edges)) {
                Ok(r) => Response::ok(format!(
                    "ingested={} dropped={} last_time={}\n",
                    r.ingested, r.dropped, r.last_time
                )),
                Err(e) => Response::splash(&e),
            }
        }
        Route::Predict(name) => {
            let queries = match parse_predict(text) {
                Ok(q) => q,
                Err(msg) => {
                    return Response::err(400, "BadRequest", format!("error: bad query: {msg}"))
                }
            };
            let mut resp = PredictResponse::default();
            let mut body = String::new();
            for (node, time) in queries {
                if let Err(e) =
                    service.predict_into(name, PredictRequest::new(node, time), &mut resp)
                {
                    return Response::splash(&e);
                }
                let mut first = true;
                for v in &resp.logits {
                    if !first {
                        body.push(',');
                    }
                    first = false;
                    // `{v}` prints the shortest exactly-roundtripping
                    // decimal, so logits survive the wire bit-for-bit.
                    body.push_str(&format!("{v}"));
                }
                body.push('\n');
            }
            Response::ok(body)
        }
        Route::Labels(name) => {
            let task = match service.trainer(name) {
                Ok(t) => t.task(),
                Err(e) => return Response::splash(&e),
            };
            let queries = match queries_from_csv(text, task) {
                Ok(q) => q,
                Err(e) => {
                    return Response::err(400, "BadRequest", format!("error: bad label csv: {e}"))
                }
            };
            match service.observe_labels(name, &queries) {
                Ok(r) => Response::ok(format!(
                    "buffered={} dropped={} tunes={} steps={}\n",
                    r.buffered, r.dropped, r.tunes, r.steps
                )),
                Err(e) => Response::splash(&e),
            }
        }
        Route::FineTune(name) => match service.fine_tune(name) {
            Ok(r) => Response::ok(format!(
                "steps={} examples={} published={}\n",
                r.steps, r.examples, r.published
            )),
            Err(e) => Response::splash(&e),
        },
        Route::Publish(name) => match service.publish(name) {
            Ok(()) => Response::ok("published\n".into()),
            Err(e) => Response::splash(&e),
        },
        Route::Load(name) => {
            let (model, edges, queries, task, classes) = match parse_load(text) {
                Ok(parts) => parts,
                Err(msg) => {
                    return Response::err(400, "BadRequest", format!("error: bad load body: {msg}"))
                }
            };
            match load_dataset_for(&model, &edges, &queries, task, classes) {
                Ok(dataset) => match service.load_model(name, Path::new(&model), &dataset) {
                    Ok(()) => Response::ok(format!("loaded {name} from {model}\n")),
                    Err(e) => Response::splash(&e),
                },
                Err(resp) => resp,
            }
        }
    }
}

/// Loads the dataset a hot-swapped artifact rebuilds its streaming state
/// from (the artifact's own `out_dim` caps the label universe when the
/// request does not name `classes` explicitly).
fn load_dataset_for(
    model: &str,
    edges: &str,
    queries: &str,
    task: Task,
    classes: Option<usize>,
) -> Result<Dataset, Response> {
    let classes = match classes {
        Some(c) => c,
        None => {
            let saved = match crate::persist::load_model(Path::new(model)) {
                Ok(s) => s,
                Err(e) => return Err(Response::splash(&e)),
            };
            saved.out_dim
        }
    };
    let read = |p: &str| {
        std::fs::read_to_string(p)
            .map_err(|e| Response::err(422, "Io", format!("error: {p}: {e}")))
    };
    let stream = datasets::edges_from_csv(&read(edges)?)
        .map_err(|e| Response::err(400, "BadRequest", format!("error: {edges}: {e}")))?;
    let parsed = queries_from_csv(&read(queries)?, task)
        .map_err(|e| Response::err(400, "BadRequest", format!("error: {queries}: {e}")))?;
    if parsed.is_empty() {
        return Err(Response::err(400, "BadRequest", "error: the query file has no queries"));
    }
    for q in &parsed {
        let fits = match (&q.label, task) {
            (Label::Affinity(a), Task::Affinity) => a.len() == classes,
            (Label::Class(c), Task::Anomaly | Task::Classification) => *c < classes,
            _ => false,
        };
        if !fits {
            return Err(Response::err(
                400,
                "BadRequest",
                format!("error: query at t={} has a label incompatible with task/classes", q.time),
            ));
        }
    }
    Ok(Dataset {
        name: "wire-load".into(),
        task,
        stream,
        queries: parsed,
        num_classes: classes,
        node_feats: None,
    })
}

fn engine_loop(mut service: SplashService, rx: Receiver<Job>, cfg: ServerConfig) -> SplashService {
    let tel = service.telemetry();
    // Drain WAL-commit time staged before serving started (e.g. by a
    // make_durable bootstrap) so the first span is not over-attributed.
    let _ = tel.take_wal_commit_ns();
    while let Ok(job) = rx.recv() {
        if cfg.allow_test_delay && job.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(job.delay_ms));
        }
        let waited = job.arrival.elapsed();
        if waited > cfg.deadline {
            service.note_deadline_expired();
            let resp = Response::err(
                504,
                "DeadlineExpired",
                format!(
                    "error: request waited {}ms, past its {}ms deadline",
                    waited.as_millis(),
                    cfg.deadline.as_millis()
                ),
            );
            tel.record_span(
                job.route.label(),
                job.route.model(),
                waited.as_nanos() as u64,
                0,
                0,
                job.body.len() as u64,
                resp.body.len() as u64,
                resp.status,
                "DeadlineExpired",
            );
            let _ = job.reply.send(resp);
            continue;
        }
        let started = Instant::now();
        let resp = execute(&mut service, &job.route, &job.body);
        let execute_ns = started.elapsed().as_nanos() as u64;
        // Whatever the durable seam staged during this execute belongs to
        // this request's span.
        let wal_commit_ns = tel.take_wal_commit_ns();
        service.record_request_latency_ns(job.arrival.elapsed().as_nanos() as u64);
        tel.record_span(
            job.route.label(),
            job.route.model(),
            waited.as_nanos() as u64,
            execute_ns,
            wal_commit_ns,
            job.body.len() as u64,
            resp.body.len() as u64,
            resp.status,
            resp.kind.unwrap_or("ok"),
        );
        let _ = job.reply.send(resp);
    }
    service
}

// ---------------------------------------------------------------------------
// Workers and acceptor.

fn handle_connection(
    stream: TcpStream,
    job_tx: &SyncSender<Job>,
    cfg: &ServerConfig,
    stop: &AtomicBool,
    tel: &Telemetry,
) {
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err() {
        return;
    }
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, cfg.max_body) {
            ReadOutcome::Eof | ReadOutcome::Disconnect => return,
            ReadOutcome::Idle => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            ReadOutcome::Malformed(resp) => {
                let _ = write_response(&mut write_half, &resp, false);
                let _ = write_half.shutdown(Shutdown::Both);
                return;
            }
            ReadOutcome::Request(req) => {
                let arrival = Instant::now();
                let resp = match route_of(&req.method, &req.path) {
                    Err(resp) => resp,
                    Ok(Routed::Direct(route)) => serve_direct(route, tel, arrival),
                    Ok(Routed::Engine(route)) => {
                        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                        let job = Job {
                            route,
                            body: req.body,
                            arrival,
                            delay_ms: req.delay_ms,
                            reply: reply_tx,
                        };
                        match job_tx.try_send(job) {
                            Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                                Response::err(503, "Shutdown", "error: server is shutting down")
                            }),
                            Err(TrySendError::Full(_)) => {
                                tel.requests_shed.inc();
                                Response::err(
                                    429,
                                    "QueueFull",
                                    "error: request queue is full, retry later",
                                )
                            }
                            Err(TrySendError::Disconnected(_)) => Response::err(
                                503,
                                "Shutdown",
                                "error: server is shutting down",
                            ),
                        }
                    }
                };
                if write_response(&mut write_half, &resp, req.keep_alive).is_err() {
                    return;
                }
                if !req.keep_alive {
                    let _ = write_half.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    }
}

/// Binds and runs [`SplashService`] behind a socket. See the
/// [module docs](self) for the design and protocol.
#[derive(Debug)]
pub struct SplashServer;

impl SplashServer {
    /// Validates `cfg`, binds `addr` (use port 0 for an ephemeral port),
    /// spawns the acceptor, the connection workers, and the engine thread,
    /// and hands back the running server's [`ServerHandle`]. The service —
    /// with every model already installed — moves into the engine thread
    /// and comes back out of [`ServerHandle::shutdown`].
    pub fn bind(
        service: SplashService,
        addr: &str,
        cfg: ServerConfig,
    ) -> Result<ServerHandle, SplashError> {
        cfg.validate()?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let tel = service.telemetry();
        // Deployment-shape gauges: registered every bind, so a service
        // re-served under a different config re-exposes the new shape.
        tel.registry()
            .gauge("splash_server_workers", "Connection-worker threads parsing requests.")
            .set(cfg.workers as u64);
        tel.registry()
            .gauge(
                "splash_server_queue_depth",
                "Capacity of the bounded job queue between workers and the engine.",
            )
            .set(cfg.queue_depth as u64);

        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let engine = std::thread::Builder::new()
            .name("splash-engine".into())
            .spawn(move || engine_loop(service, job_rx, cfg))
            .map_err(SplashError::Io)?;

        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let conn_rx = Arc::clone(&conn_rx);
            let job_tx = job_tx.clone();
            let stop = Arc::clone(&stop);
            let tel = Arc::clone(&tel);
            let worker = std::thread::Builder::new()
                .name(format!("splash-worker-{i}"))
                .spawn(move || loop {
                    let next = conn_rx.lock().expect("worker lock poisoned").recv();
                    match next {
                        Ok(stream) => handle_connection(stream, &job_tx, &cfg, &stop, &tel),
                        Err(_) => return,
                    }
                })
                .map_err(SplashError::Io)?;
            workers.push(worker);
        }
        // Workers hold the only long-lived job senders: when the acceptor
        // drops `conn_tx` and the workers drain out, the engine's receiver
        // disconnects and the engine loop returns the service.
        drop(job_tx);

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("splash-acceptor".into())
                .spawn(move || {
                    for accepted in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Ok(stream) = accepted {
                            if conn_tx.send(stream).is_err() {
                                break;
                            }
                        }
                    }
                })
                .map_err(SplashError::Io)?
        };

        Ok(ServerHandle {
            addr: local,
            stop,
            tel,
            acceptor: Some(acceptor),
            workers,
            engine: Some(engine),
        })
    }
}

/// A running [`SplashServer`]: the bound address plus the thread handles.
///
/// Dropping the handle shuts the server down (discarding the service);
/// call [`ServerHandle::shutdown`] to get the service back for inspection.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tel: Arc<Telemetry>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    engine: Option<JoinHandle<SplashService>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wire requests shed so far by admission control — the same registry
    /// counter `/stats` and `/metrics` report.
    pub fn requests_shed(&self) -> u64 {
        self.tel.requests_shed.get()
    }

    /// The service's telemetry plane, observable while the server runs
    /// (the engine thread owns the service itself until
    /// [`ServerHandle::shutdown`]).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.tel)
    }

    /// Stops accepting, drains queued requests, joins every thread, and
    /// returns the service. Every counter — including worker-side sheds
    /// and health probes — already lives in the service's shared registry,
    /// so the returned service's [`SplashService::stats`] needs no
    /// overlay.
    ///
    /// In-flight requests are answered before their connections close; a
    /// shutdown never loses an accepted request.
    pub fn shutdown(mut self) -> SplashService {
        self.stop_threads();
        self.engine
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("engine thread panicked")
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with one throwaway
        // connection; it then sees the stop flag and exits, dropping the
        // connection channel the workers drain from.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_threads();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_is_typed() {
        let bad = ServerConfig { workers: 0, ..ServerConfig::default() };
        assert!(matches!(bad.validate(), Err(SplashError::InvalidConfig { .. })));
        let bad = ServerConfig { queue_depth: 0, ..ServerConfig::default() };
        assert!(matches!(bad.validate(), Err(SplashError::InvalidConfig { .. })));
        let bad = ServerConfig { deadline: Duration::ZERO, ..ServerConfig::default() };
        assert!(matches!(bad.validate(), Err(SplashError::InvalidConfig { .. })));
        assert!(ServerConfig::default().validate().is_ok());
    }

    #[test]
    fn routes_resolve_and_reject() {
        assert_eq!(route_of("GET", "/healthz").unwrap(), Routed::Direct(DirectRoute::Healthz));
        assert_eq!(route_of("GET", "/metrics").unwrap(), Routed::Direct(DirectRoute::Metrics));
        assert_eq!(route_of("GET", "/stats").unwrap(), Routed::Engine(Route::Stats));
        assert_eq!(
            route_of("POST", "/models/live/ingest").unwrap(),
            Routed::Engine(Route::Ingest("live".into()))
        );
        assert_eq!(
            route_of("POST", "/models/a b/predict").unwrap(),
            Routed::Engine(Route::Predict("a b".into()))
        );
        assert_eq!(route_of("GET", "/models/live/ingest").unwrap_err().status, 405);
        assert_eq!(route_of("POST", "/stats").unwrap_err().status, 405);
        assert_eq!(route_of("POST", "/metrics").unwrap_err().status, 405);
        assert_eq!(route_of("PUT", "/stats").unwrap_err().status, 405);
        assert_eq!(route_of("GET", "/nope").unwrap_err().status, 404);
        assert_eq!(route_of("POST", "/models//ingest").unwrap_err().status, 404);
        assert_eq!(route_of("POST", "/models/live/frobnicate").unwrap_err().status, 404);
    }

    #[test]
    fn observability_routes_parse_their_query_strings() {
        assert_eq!(
            route_of("GET", "/statz.json").unwrap(),
            Routed::Direct(DirectRoute::Statz { timing: true })
        );
        assert_eq!(
            route_of("GET", "/statz.json?timing=0").unwrap(),
            Routed::Direct(DirectRoute::Statz { timing: false })
        );
        assert_eq!(
            route_of("GET", "/trace?n=7").unwrap(),
            Routed::Direct(DirectRoute::Trace { n: 7 })
        );
        assert_eq!(
            route_of("GET", "/trace").unwrap(),
            Routed::Direct(DirectRoute::Trace { n: DEFAULT_TRACE_SPANS })
        );
        assert_eq!(
            route_of("GET", "/trace?n=bogus").unwrap(),
            Routed::Direct(DirectRoute::Trace { n: DEFAULT_TRACE_SPANS })
        );
    }

    #[test]
    fn edge_bodies_parse_without_ordering_requirements() {
        let text = "src,dst,time,weight\n1,2,5.0,1.0\n3,4,3.0,0.5\n";
        let edges = parse_edges(text).unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[1].time, 3.0, "late rows are the service's call, not the parser's");
        assert!(parse_edges("src,dst,time,weight\n1,2\n").is_err());
        assert!(parse_edges("src,dst,time,weight\nx,2,1.0,1.0\n").is_err());
    }

    #[test]
    fn predict_bodies_parse() {
        let qs = parse_predict("node,time\n3,17.5\n4,18\n").unwrap();
        assert_eq!(qs, vec![(3, 17.5), (4, 18.0)]);
        let qs = parse_predict("3,17.5\n").unwrap();
        assert_eq!(qs, vec![(3, 17.5)]);
        assert!(parse_predict("nope\n").is_err());
    }

    #[test]
    fn load_bodies_parse() {
        let (m, e, q, t, c) =
            parse_load("model=/a.bin\nedges=/e.csv\nqueries=/q.csv\ntask=anomaly\nclasses=2\n")
                .unwrap();
        assert_eq!((m.as_str(), e.as_str(), q.as_str()), ("/a.bin", "/e.csv", "/q.csv"));
        assert_eq!(t, Task::Anomaly);
        assert_eq!(c, Some(2));
        assert!(parse_load("model=/a.bin\n").is_err());
        assert!(parse_load("task=frob\n").is_err());
    }
}
