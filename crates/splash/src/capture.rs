//! Streaming capture of per-query model inputs.
//!
//! TGNN training and inference on a CTDG are defined over the memory state
//! *at each query's time* (paper Fig. 4). This module replays edges and
//! queries chronologically once, snapshotting — at the moment each edge
//! arrives — the features its endpoints have *then* (Eq. 7 and Eq. 14 use
//! `x_j(t^{(l)})`, the neighbor feature at edge time). The captured inputs
//! are immutable afterwards, so models can train for multiple epochs over
//! minibatches without violating streaming semantics.

use ctdg::{replay, Event, Label, NodeId};
use datasets::Dataset;
use nn::{Matrix, randn_matrix};
use rand::{rngs::StdRng, SeedableRng};

use crate::augment::{Augmenter, FeatureProcess};
use crate::config::SplashConfig;
use crate::error::SplashError;

/// Which node features a model receives as input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFeatures {
    /// Zero vectors (featureless baselines; the SLIM+ZF ablation).
    Zero,
    /// A fixed random vector per node, *including* unseen nodes, without
    /// propagation — the paper's `+RF` baselines and the SLIM+RF ablation.
    RawRandom,
    /// External dataset node features when present, zeros otherwise
    /// (what plain baselines consume on GDELT).
    External,
    /// One augmented process with propagation for unseen nodes (§IV-A).
    Process(FeatureProcess),
    /// All three augmented processes concatenated (the SLIM+Joint ablation).
    Joint,
}

impl InputFeatures {
    /// Short display name used in harness tables.
    pub fn name(self) -> &'static str {
        match self {
            InputFeatures::Zero => "ZF",
            InputFeatures::RawRandom => "RF",
            InputFeatures::External => "ext",
            InputFeatures::Process(FeatureProcess::Random) => "R",
            InputFeatures::Process(FeatureProcess::Positional) => "P",
            InputFeatures::Process(FeatureProcess::Structural) => "S",
            InputFeatures::Joint => "joint",
        }
    }
}

/// One remembered incident edge with feature snapshots taken at its arrival.
#[derive(Debug, Default)]
pub struct CapturedNeighbor {
    /// The other endpoint.
    pub other: NodeId,
    /// The other endpoint's node feature at edge time, `x_j(t^{(l)})`.
    pub feat: Vec<f32>,
    /// The edge's feature `x_ij`.
    pub edge_feat: Vec<f32>,
    /// The edge's arrival time `t^{(l)}`.
    pub time: f64,
    /// The edge's weight `w_ij`.
    pub weight: f32,
}

impl Clone for CapturedNeighbor {
    fn clone(&self) -> Self {
        Self {
            other: self.other,
            feat: self.feat.clone(),
            edge_feat: self.edge_feat.clone(),
            time: self.time,
            weight: self.weight,
        }
    }

    /// Allocation-reusing overwrite: the feature vectors keep their heap
    /// buffers (the streaming predictor leans on this for zero-allocation
    /// steady-state query assembly).
    fn clone_from(&mut self, source: &Self) {
        self.other = source.other;
        self.feat.clone_from(&source.feat);
        self.edge_feat.clone_from(&source.edge_feat);
        self.time = source.time;
        self.weight = source.weight;
    }
}

/// Everything a model needs to answer one label query.
#[derive(Debug, Clone)]
pub struct CapturedQuery {
    /// The queried node.
    pub node: NodeId,
    /// Query time `t`.
    pub time: f64,
    /// The queried node's feature at query time, `x_i(t)`.
    pub target_feat: Vec<f32>,
    /// `N_i(t)`: the `k` most recent incident edges, oldest first.
    pub neighbors: Vec<CapturedNeighbor>,
    /// Ground truth `Y_i(t)`.
    pub label: Label,
}

impl Default for CapturedQuery {
    /// An empty query (class-0 placeholder label) whose buffers are meant
    /// to be refilled in place by streaming query assembly.
    fn default() -> Self {
        Self {
            node: 0,
            time: 0.0,
            target_feat: Vec::new(),
            neighbors: Vec::new(),
            label: Label::Class(0),
        }
    }
}

/// A full capture: one entry per dataset query, in chronological order.
#[derive(Debug, Clone)]
pub struct Capture {
    /// Captured inputs, aligned with the dataset's query order.
    pub queries: Vec<CapturedQuery>,
    /// Node feature dimension of the captured features.
    pub feat_dim: usize,
    /// Edge feature dimension.
    pub edge_feat_dim: usize,
}

/// A fixed-size ring of [`CapturedNeighbor`]s per node.
#[derive(Debug)]
struct FeatRing {
    entries: Vec<CapturedNeighbor>,
    head: usize,
}

#[derive(Debug)]
struct FeatMemory {
    rings: Vec<FeatRing>,
    k: usize,
}

impl FeatMemory {
    fn new(n: usize, k: usize) -> Self {
        Self {
            rings: (0..n).map(|_| FeatRing { entries: Vec::new(), head: 0 }).collect(),
            k,
        }
    }

    fn grow(&mut self, node: NodeId) {
        let need = node as usize + 1;
        while self.rings.len() < need {
            self.rings.push(FeatRing { entries: Vec::new(), head: 0 });
        }
    }

    fn push(&mut self, node: NodeId, entry: CapturedNeighbor) {
        self.grow(node);
        let k = self.k;
        let ring = &mut self.rings[node as usize];
        if ring.entries.len() < k {
            ring.entries.push(entry);
        } else {
            ring.entries[ring.head] = entry;
            ring.head = (ring.head + 1) % k;
        }
    }

    fn collect(&self, node: NodeId) -> Vec<CapturedNeighbor> {
        match self.rings.get(node as usize) {
            None => Vec::new(),
            Some(ring) => {
                // Oldest-first = entries[head..] then entries[..head]: two
                // contiguous memcpy-able slices instead of a per-entry
                // modulo walk.
                let mut out = Vec::with_capacity(ring.entries.len());
                out.extend_from_slice(&ring.entries[ring.head..]);
                out.extend_from_slice(&ring.entries[..ring.head]);
                out
            }
        }
    }
}

/// The feature provider behind a capture run.
enum Provider {
    Constant { table: ConstantTable },
    Augmented { aug: Augmenter, process: FeatureProcess },
    Joint { aug: Augmenter },
}

#[derive(Debug)]
enum ConstantTable {
    Zero(usize),
    Random { dv: usize, seed: u64 },
    External { feats: Matrix },
}

impl ConstantTable {
    fn feat(&self, node: NodeId) -> Vec<f32> {
        match self {
            ConstantTable::Zero(dv) => vec![0.0; *dv],
            ConstantTable::Random { dv, seed } => {
                // Deterministic per-node Gaussian, lazily derived so unseen
                // nodes get features too (the +RF convention).
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (node as u64).wrapping_mul(0x9E37_79B9));
                randn_matrix(1, *dv, 1.0, &mut rng).row(0).to_vec()
            }
            ConstantTable::External { feats } => {
                if (node as usize) < feats.rows() {
                    feats.row(node as usize).to_vec()
                } else {
                    vec![0.0; feats.cols()]
                }
            }
        }
    }

    fn dim(&self) -> usize {
        match self {
            ConstantTable::Zero(dv) | ConstantTable::Random { dv, .. } => *dv,
            ConstantTable::External { feats } => feats.cols(),
        }
    }
}

impl Provider {
    fn observe(&mut self, edge: &ctdg::TemporalEdge) {
        match self {
            Provider::Constant { .. } => {}
            Provider::Augmented { aug, .. } | Provider::Joint { aug } => aug.observe(edge),
        }
    }

    fn feat(&self, node: NodeId) -> Vec<f32> {
        match self {
            Provider::Constant { table } => table.feat(node),
            Provider::Augmented { aug, process } => aug.feature(*process, node),
            Provider::Joint { aug } => aug.joint_feature(node),
        }
    }

    fn dim(&self) -> usize {
        match self {
            Provider::Constant { table } => table.dim(),
            Provider::Augmented { aug, .. } => aug.feat_dim(),
            Provider::Joint { aug } => 3 * aug.feat_dim(),
        }
    }
}

/// The timestamp ending the "seen" period: the time of the last query in the
/// first `seen_frac` of queries (train + validation under 10/10/80).
pub fn seen_end_time(dataset: &Dataset, seen_frac: f64) -> f64 {
    if dataset.queries.is_empty() {
        return f64::NEG_INFINITY;
    }
    let idx = (((dataset.queries.len() as f64) * seen_frac) as usize)
        .saturating_sub(1)
        .min(dataset.queries.len() - 1);
    dataset.queries[idx].time
}

fn build_provider(dataset: &Dataset, mode: InputFeatures, cfg: &SplashConfig, seen_frac: f64) -> Provider {
    match mode {
        InputFeatures::Zero => {
            Provider::Constant { table: ConstantTable::Zero(cfg.feat_dim) }
        }
        InputFeatures::RawRandom => Provider::Constant {
            table: ConstantTable::Random { dv: cfg.feat_dim, seed: cfg.seed ^ 0x0BAD_F00D },
        },
        InputFeatures::External => match &dataset.node_feats {
            Some(f) => Provider::Constant { table: ConstantTable::External { feats: f.clone() } },
            None => Provider::Constant { table: ConstantTable::Zero(cfg.feat_dim) },
        },
        InputFeatures::Process(process) => {
            let aug = make_augmenter(dataset, cfg, seen_frac);
            Provider::Augmented { aug, process }
        }
        InputFeatures::Joint => {
            let aug = make_augmenter(dataset, cfg, seen_frac);
            Provider::Joint { aug }
        }
    }
}

fn make_augmenter(dataset: &Dataset, cfg: &SplashConfig, seen_frac: f64) -> Augmenter {
    let t_seen = seen_end_time(dataset, seen_frac);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    Augmenter::with_source(
        &dataset.stream,
        prefix,
        dataset.stream.num_nodes(),
        cfg.feat_dim,
        &cfg.node2vec,
        cfg.positional,
        cfg.degree_alpha,
        cfg.seed,
    )
}

/// Replays `dataset` chronologically and captures every query's model input
/// under feature mode `mode`. `seen_frac` is the fraction of queries whose
/// period defines `V_seen` (0.2 under the 10/10/80 protocol).
pub fn capture(dataset: &Dataset, mode: InputFeatures, cfg: &SplashConfig, seen_frac: f64) -> Capture {
    let mut provider = build_provider(dataset, mode, cfg, seen_frac);
    let t_seen = seen_end_time(dataset, seen_frac);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let feat_dim = provider.dim();
    let edge_feat_dim = dataset.stream.feat_dim();

    let mut memory = FeatMemory::new(dataset.stream.num_nodes(), cfg.k);
    let mut captured = Vec::with_capacity(dataset.queries.len());

    // Augmented providers were already fed the training prefix by
    // `Augmenter::new`; feed constant providers nothing. Track which edges
    // still need `observe`.
    let events = replay(&dataset.stream, &dataset.queries);
    for event in events {
        match event {
            Event::Edge(idx, edge) => {
                let needs_observe = match &provider {
                    Provider::Constant { .. } => false,
                    _ => idx >= prefix,
                };
                if needs_observe {
                    provider.observe(edge);
                }
                // Snapshot post-edge features (degrees include this edge).
                let src_feat = provider.feat(edge.src);
                let dst_feat = provider.feat(edge.dst);
                memory.push(
                    edge.src,
                    CapturedNeighbor {
                        other: edge.dst,
                        feat: dst_feat,
                        edge_feat: edge.feat.to_vec(),
                        time: edge.time,
                        weight: edge.weight,
                    },
                );
                if edge.src != edge.dst {
                    memory.push(
                        edge.dst,
                        CapturedNeighbor {
                            other: edge.src,
                            feat: src_feat,
                            edge_feat: edge.feat.to_vec(),
                            time: edge.time,
                            weight: edge.weight,
                        },
                    );
                }
            }
            Event::Query(_, q) => {
                captured.push(CapturedQuery {
                    node: q.node,
                    time: q.time,
                    target_feat: provider.feat(q.node),
                    neighbors: memory.collect(q.node),
                    label: q.label.clone(),
                });
            }
        }
    }
    Capture { queries: captured, feat_dim, edge_feat_dim }
}

/// A *streaming* counterpart of [`capture`] for the constant feature modes
/// ([`InputFeatures::Zero`], [`InputFeatures::RawRandom`],
/// [`InputFeatures::External`]): edges arrive one batch at a time, and a
/// query's model input can be assembled at any instant — bit-identical to
/// what the offline [`capture`] pass would have produced for the same
/// `(node, time)` against the same edge order.
///
/// This is the state behind serving a *baseline* TGNN through the
/// [`crate::SplashService`] registry: the `baselines` crate wraps a
/// trained model plus one `CaptureStream` into an engine
/// ([`crate::service::ServeEngine`]), giving every Table III competitor
/// the same streamed, Eq. 14-snapshotted inputs SPLASH sees. Augmented
/// modes ([`InputFeatures::Process`], [`InputFeatures::Joint`]) need the
/// full [`crate::StreamingPredictor`] (their features evolve with the
/// stream) and are rejected with [`SplashError::NotStreamable`].
#[derive(Debug)]
pub struct CaptureStream {
    table: ConstantTable,
    memory: FeatMemory,
    /// Initial node-universe size (rings may grow past it as unseen nodes
    /// stream in).
    initial_nodes: usize,
    edge_feat_dim: usize,
    last_time: f64,
}

impl CaptureStream {
    /// A stream over `dataset`'s node universe under constant feature mode
    /// `mode`, with **no edges observed yet**. Feed the training prefix
    /// with [`CaptureStream::try_push_edges`] to reach the state a
    /// deployment starts serving from.
    pub fn try_new(
        dataset: &Dataset,
        mode: InputFeatures,
        cfg: &SplashConfig,
    ) -> Result<Self, SplashError> {
        let table = match build_provider(dataset, mode, cfg, 0.0) {
            Provider::Constant { table } => table,
            Provider::Augmented { .. } | Provider::Joint { .. } => {
                return Err(SplashError::NotStreamable { mode: mode.name() })
            }
        };
        Ok(Self {
            table,
            memory: FeatMemory::new(dataset.stream.num_nodes(), cfg.k),
            initial_nodes: dataset.stream.num_nodes(),
            edge_feat_dim: dataset.stream.feat_dim(),
            last_time: f64::NEG_INFINITY,
        })
    }

    /// Arrival time of the most recently observed edge
    /// (`f64::NEG_INFINITY` before the first).
    pub fn last_time(&self) -> f64 {
        self.last_time
    }

    /// Size of the known node universe (initial nodes plus any later ids
    /// the stream has touched).
    pub fn known_nodes(&self) -> usize {
        self.initial_nodes.max(self.memory.rings.len())
    }

    /// Node feature dimension of the captured features.
    pub fn feat_dim(&self) -> usize {
        self.table.dim()
    }

    /// Edge feature dimension.
    pub fn edge_feat_dim(&self) -> usize {
        self.edge_feat_dim
    }

    /// Observes one edge, snapshotting both endpoints' features at its
    /// arrival (Eq. 14) into the endpoint rings. Rejects time travel with
    /// [`SplashError::OutOfOrderEdge`], leaving the state untouched.
    pub fn try_observe_edge(&mut self, edge: &ctdg::TemporalEdge) -> Result<(), SplashError> {
        if edge.time < self.last_time {
            return Err(SplashError::OutOfOrderEdge { got: edge.time, last: self.last_time });
        }
        self.last_time = edge.time;
        let dst_feat = self.table.feat(edge.dst);
        self.memory.push(
            edge.src,
            CapturedNeighbor {
                other: edge.dst,
                feat: dst_feat,
                edge_feat: edge.feat.to_vec(),
                time: edge.time,
                weight: edge.weight,
            },
        );
        if edge.src != edge.dst {
            let src_feat = self.table.feat(edge.src);
            self.memory.push(
                edge.dst,
                CapturedNeighbor {
                    other: edge.src,
                    feat: src_feat,
                    edge_feat: edge.feat.to_vec(),
                    time: edge.time,
                    weight: edge.weight,
                },
            );
        }
        Ok(())
    }

    /// Observes a chronological batch atomically: the whole batch is
    /// validated against the stream clock before any state changes, so a
    /// rejected batch leaves the stream exactly as it was.
    pub fn try_push_edges(&mut self, edges: &[ctdg::TemporalEdge]) -> Result<(), SplashError> {
        let mut prev = self.last_time;
        for edge in edges {
            if edge.time < prev {
                return Err(SplashError::OutOfOrderEdge { got: edge.time, last: prev });
            }
            prev = edge.time;
        }
        for edge in edges {
            self.try_observe_edge(edge)?;
        }
        Ok(())
    }

    /// Assembles the model input for `node` at `time` into `q` (buffers
    /// reused across calls), exactly as the offline [`capture`] pass would
    /// have: current target feature, ring neighbors oldest-first, `label`
    /// attached. A query before the stream clock is
    /// [`SplashError::PastQuery`] — the rings it would need are gone.
    pub fn capture_into(
        &self,
        node: NodeId,
        time: f64,
        label: &Label,
        q: &mut CapturedQuery,
    ) -> Result<(), SplashError> {
        if time < self.last_time {
            return Err(SplashError::PastQuery { got: time, last: self.last_time });
        }
        q.node = node;
        q.time = time;
        q.target_feat.clear();
        q.target_feat.extend_from_slice(&self.table.feat(node));
        q.neighbors.clear();
        if let Some(ring) = self.memory.rings.get(node as usize) {
            q.neighbors.extend_from_slice(&ring.entries[ring.head..]);
            q.neighbors.extend_from_slice(&ring.entries[..ring.head]);
        }
        q.label = label.clone();
        Ok(())
    }
}

/// Fills one Eq. 7 encoding row: `[x_i(t) ‖ mean_{δ ∈ N_i(t)} x_j(t^{(l)})]`.
fn encoding_row(q: &CapturedQuery, dv: usize, row: &mut [f32]) {
    row[..dv].copy_from_slice(&q.target_feat);
    if !q.neighbors.is_empty() {
        for nb in &q.neighbors {
            for (j, &v) in nb.feat.iter().enumerate() {
                row[dv + j] += v;
            }
        }
        let inv = 1.0 / q.neighbors.len() as f32;
        for v in &mut row[dv..] {
            *v *= inv;
        }
    }
}

/// The node encoding of Eq. 7, one row per captured query. Zero mean part
/// when `N_i(t)` is empty. Rows are independent, so under the `parallel`
/// feature they are filled by scoped threads (identical output either way).
pub fn encodings(capture: &Capture) -> Matrix {
    let dv = capture.feat_dim;
    let width = 2 * dv;
    let mut out = Matrix::zeros(capture.queries.len(), width);

    #[cfg(feature = "parallel")]
    {
        // Row fills are cheap; only fan out when there is real work.
        // par_rows honors the shared num_threads()/NN_THREADS policy.
        if capture.queries.len() * width >= 1 << 16 {
            nn::backend::par_rows(&mut out, |rows, row0| {
                for (r, row) in rows.chunks_mut(width.max(1)).enumerate() {
                    encoding_row(&capture.queries[row0 + r], dv, row);
                }
            });
            return out;
        }
    }

    for (i, q) in capture.queries.iter().enumerate() {
        encoding_row(q, dv, out.row_mut(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctdg::{EdgeStream, PropertyQuery, TemporalEdge};
    use datasets::Task;

    fn tiny_dataset() -> Dataset {
        let edges = vec![
            TemporalEdge::plain(0, 1, 1.0),
            TemporalEdge::plain(1, 2, 2.0),
            TemporalEdge::plain(0, 2, 3.0),
            TemporalEdge::plain(3, 0, 10.0),
            TemporalEdge::plain(3, 1, 11.0),
        ];
        let queries = vec![
            PropertyQuery { node: 0, time: 1.5, label: Label::Class(0) },
            PropertyQuery { node: 1, time: 2.5, label: Label::Class(1) },
            PropertyQuery { node: 3, time: 10.5, label: Label::Class(0) },
            PropertyQuery { node: 3, time: 12.0, label: Label::Class(1) },
        ];
        Dataset {
            name: "tiny".into(),
            task: Task::Classification,
            stream: EdgeStream::new(edges).unwrap(),
            queries,
            num_classes: 2,
            node_feats: None,
        }
    }

    #[test]
    fn queries_see_only_past_edges() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let cap = capture(&d, InputFeatures::RawRandom, &cfg, 0.5);
        // Query 0 at t=1.5: node 0 has one incident edge (t=1).
        assert_eq!(cap.queries[0].neighbors.len(), 1);
        assert_eq!(cap.queries[0].neighbors[0].other, 1);
        // Query 2 at t=10.5: node 3 has one incident edge (t=10).
        assert_eq!(cap.queries[2].neighbors.len(), 1);
        // Query 3 at t=12: node 3 has two.
        assert_eq!(cap.queries[3].neighbors.len(), 2);
    }

    #[test]
    fn k_bounds_neighbor_lists() {
        let d = tiny_dataset();
        let mut cfg = SplashConfig::tiny();
        cfg.k = 1;
        let cap = capture(&d, InputFeatures::Zero, &cfg, 0.5);
        assert!(cap.queries.iter().all(|q| q.neighbors.len() <= 1));
        // With k = 1, node 3's last query sees only the latest edge (t=11).
        assert_eq!(cap.queries[3].neighbors[0].time, 11.0);
    }

    #[test]
    fn raw_random_is_deterministic_and_distinct() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let a = capture(&d, InputFeatures::RawRandom, &cfg, 0.5);
        let b = capture(&d, InputFeatures::RawRandom, &cfg, 0.5);
        assert_eq!(a.queries[0].target_feat, b.queries[0].target_feat);
        // Distinct nodes get distinct features.
        assert_ne!(a.queries[0].target_feat, a.queries[1].target_feat);
    }

    #[test]
    fn zero_mode_is_all_zero() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let cap = capture(&d, InputFeatures::Zero, &cfg, 0.5);
        for q in &cap.queries {
            assert!(q.target_feat.iter().all(|&v| v == 0.0));
            for nb in &q.neighbors {
                assert!(nb.feat.iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn structural_snapshots_freeze_edge_time_degrees() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let cap = capture(
            &d,
            InputFeatures::Process(FeatureProcess::Structural),
            &cfg,
            0.5,
        );
        // Node 3's second query: the first remembered edge snapshotted node
        // 0's structural feature at t=10, when node 0 had degree 3.
        let enc = nn::DegreeEncode::new(cfg.feat_dim, cfg.degree_alpha);
        let q3 = &cap.queries[3];
        assert_eq!(q3.neighbors[0].feat, enc.encode(3));
        // And the target feature reflects node 3's current degree (2).
        assert_eq!(q3.target_feat, enc.encode(2));
    }

    #[test]
    fn encodings_shape_and_mean() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let cap = capture(&d, InputFeatures::RawRandom, &cfg, 0.5);
        let enc = encodings(&cap);
        assert_eq!(enc.shape(), (4, 2 * cfg.feat_dim));
        // Row 3: mean of two neighbor snapshots.
        let q = &cap.queries[3];
        for j in 0..cfg.feat_dim {
            let expected = (q.neighbors[0].feat[j] + q.neighbors[1].feat[j]) / 2.0;
            assert!((enc.get(3, cfg.feat_dim + j) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn joint_dim_is_triple() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let cap = capture(&d, InputFeatures::Joint, &cfg, 0.5);
        assert_eq!(cap.feat_dim, 3 * cfg.feat_dim);
        assert_eq!(cap.queries[0].target_feat.len(), 3 * cfg.feat_dim);
    }

    /// The streamed constant-mode capture must reproduce the offline pass
    /// bit for bit: same rings, same snapshot features, same ordering —
    /// this is the contract that lets a baseline served through the
    /// registry see exactly the inputs its offline harness saw.
    #[test]
    fn capture_stream_matches_offline_capture() {
        for mode in [InputFeatures::RawRandom, InputFeatures::Zero, InputFeatures::External] {
            let d = tiny_dataset();
            let mut cfg = SplashConfig::tiny();
            cfg.k = 2;
            let offline = capture(&d, mode, &cfg, 0.5);

            let mut stream = CaptureStream::try_new(&d, mode, &cfg).unwrap();
            let mut pending: Vec<TemporalEdge> = Vec::new();
            let mut q = CapturedQuery::default();
            let mut qi = 0usize;
            for event in replay(&d.stream, &d.queries) {
                match event {
                    Event::Edge(_, edge) => pending.push(edge.clone()),
                    Event::Query(_, query) => {
                        stream.try_push_edges(&pending).unwrap();
                        pending.clear();
                        stream
                            .capture_into(query.node, query.time, &query.label, &mut q)
                            .unwrap();
                        let want = &offline.queries[qi];
                        assert_eq!(q.target_feat, want.target_feat, "{mode:?} query {qi}");
                        assert_eq!(q.neighbors.len(), want.neighbors.len());
                        for (a, b) in q.neighbors.iter().zip(&want.neighbors) {
                            assert_eq!(a.other, b.other);
                            assert_eq!(a.feat, b.feat);
                            assert_eq!(a.edge_feat, b.edge_feat);
                            assert_eq!(a.time, b.time);
                            assert_eq!(a.weight, b.weight);
                        }
                        qi += 1;
                    }
                }
            }
            assert_eq!(qi, offline.queries.len());
        }
    }

    #[test]
    fn capture_stream_rejects_what_it_cannot_stream() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let err = CaptureStream::try_new(&d, InputFeatures::Joint, &cfg).unwrap_err();
        assert!(matches!(err, SplashError::NotStreamable { .. }), "{err:?}");

        let mut s = CaptureStream::try_new(&d, InputFeatures::Zero, &cfg).unwrap();
        s.try_push_edges(d.stream.edges()).unwrap();
        let last = d.stream.end_time().unwrap();
        let err = s.try_observe_edge(&TemporalEdge::plain(0, 1, last - 1.0)).unwrap_err();
        assert!(matches!(err, SplashError::OutOfOrderEdge { .. }), "{err:?}");
        let mut q = CapturedQuery::default();
        let err = s.capture_into(0, last - 1.0, &Label::Class(0), &mut q).unwrap_err();
        assert!(matches!(err, SplashError::PastQuery { .. }), "{err:?}");
    }

    #[test]
    fn external_falls_back_to_zero() {
        let d = tiny_dataset();
        let cfg = SplashConfig::tiny();
        let cap = capture(&d, InputFeatures::External, &cfg, 0.5);
        assert!(cap.queries[0].target_feat.iter().all(|&v| v == 0.0));
    }
}
