//! SLIM — Simple MLP-based model with Integration of Messages (paper §IV-C).
//!
//! SLIM computes a node's dynamic representation from its `k` most recent
//! incident edges with nothing but MLPs:
//!
//! * message encoding (Eqs. 14–16): each recent edge yields a raw message
//!   `[x*_j(t^{(l)}) ‖ x_ij ‖ φ_t(t − t^{(l)})]`, passed through `MLP₁` and
//!   scaled by the edge weight;
//! * aggregation (Eqs. 17–18): the mean message is concatenated with the
//!   target's own feature and passed through `MLP₂`; LayerNorm plus a
//!   weighted skip connection over the message *sum* gives the final
//!   representation;
//! * prediction (Eq. 19): an MLP decoder maps the representation to the
//!   predicted property.

use nn::{
    FixedTimeEncode, LayerNorm, LayerNormCache, Matrix, Mlp, MlpCache, Param, Parameterized,
    Workspace,
};
use rand::Rng;

/// A checkpoint of the Adam optimizer driving a [`SlimModel`]: the step
/// count and, per parameter (in [`Parameterized::params_mut`] order), the
/// first/second moment estimates.
///
/// Carrying this across a save/load makes resume-after-restart
/// **bit-identical** to never restarting: the restored optimizer continues
/// the exact bias-correction schedule and moment trajectories of the saved
/// one (pinned by the resume-equivalence tests in
/// `crates/splash/tests/online.rs`).
#[derive(Debug, Clone)]
pub struct AdamState {
    /// Optimizer steps taken so far (Adam's bias-correction clock `t`).
    pub steps: u64,
    /// `(m, v)` moment matrices, one pair per parameter, in the model's
    /// stable parameter order.
    pub moments: Vec<(Matrix, Matrix)>,
}

use crate::capture::CapturedQuery;
use crate::config::SplashConfig;

/// The SLIM model.
#[derive(Debug, Clone)]
pub struct SlimModel {
    mlp1: Mlp,
    mlp2: Mlp,
    ln1: LayerNorm,
    ln2: LayerNorm,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    lambda_s: f32,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
}

/// A packed minibatch of captured queries.
///
/// `Default` yields an empty batch meant to be (re)filled with
/// [`SlimModel::build_batch_into`], reusing its buffers across steps.
#[derive(Debug, Clone, Default)]
pub struct SlimBatch {
    /// Raw messages `(B·k, d_v + d_e + d_t)`; zero rows pad short lists.
    raw: Matrix,
    /// Per-row edge weights (0 for padding).
    weights: Vec<f32>,
    /// Valid message count per query.
    lens: Vec<usize>,
    /// Target features `(B, d_v)`.
    target: Matrix,
}

/// Backward cache for one SLIM forward.
///
/// `Default` yields an empty cache that [`SlimModel::forward_into`] sizes
/// and reuses — carry one across training steps.
#[derive(Debug, Default)]
pub struct SlimCache {
    mlp1: MlpCache,
    mlp2: MlpCache,
    ln1: LayerNormCache,
    ln2: LayerNormCache,
    decoder: MlpCache,
    weights: Vec<f32>,
    lens: Vec<usize>,
}

impl SlimModel {
    /// Builds SLIM for inputs of node-feature width `feat_dim`, edge-feature
    /// width `edge_feat_dim`, and output width `out_dim`.
    pub fn new<R: Rng + ?Sized>(
        cfg: &SplashConfig,
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let dh = cfg.hidden;
        let raw_dim = feat_dim + edge_feat_dim + cfg.time_dim;
        Self {
            mlp1: Mlp::new(&[raw_dim, dh, dh], nn::Activation::Relu, rng),
            mlp2: Mlp::new(&[feat_dim + dh, dh, dh], nn::Activation::Relu, rng),
            ln1: LayerNorm::new(dh),
            ln2: LayerNorm::new(dh),
            decoder: Mlp::new(&[dh, dh, out_dim], nn::Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            lambda_s: cfg.lambda_s,
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
        }
    }

    /// Recent-edge capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output (logit) width: one column per class / affinity candidate.
    pub fn out_dim(&self) -> usize {
        self.decoder.out_dim()
    }

    /// Packs captured queries into a dense batch.
    pub fn build_batch(&self, queries: &[&CapturedQuery]) -> SlimBatch {
        let mut batch = SlimBatch::default();
        self.build_batch_into(queries, &mut batch);
        batch
    }

    /// [`SlimModel::build_batch`] into a reusable batch: every buffer is
    /// resized in place, so repacking with a steady batch size performs no
    /// heap allocation after the first call.
    ///
    /// Generic over [`std::borrow::Borrow`] so callers can pass either a
    /// slice of references (`&[&CapturedQuery]`, the training loop's shape)
    /// or a plain slice of owned queries (`&[CapturedQuery]`, the
    /// zero-allocation streaming paths — no per-call reference vector).
    pub fn build_batch_into<Q: std::borrow::Borrow<CapturedQuery>>(
        &self,
        queries: &[Q],
        batch: &mut SlimBatch,
    ) {
        let b = queries.len();
        let raw_dim = self.feat_dim + self.edge_feat_dim + self.time_enc.dim();
        batch.raw.resize_zeroed(b * self.k, raw_dim);
        batch.weights.clear();
        batch.weights.resize(b * self.k, 0.0);
        batch.lens.clear();
        batch.lens.resize(b, 0);
        batch.target.resize_zeroed(b, self.feat_dim);
        for (qi, q) in queries.iter().enumerate() {
            let q = q.borrow();
            batch.target.set_row(qi, &q.target_feat);
            let len = q.neighbors.len().min(self.k);
            batch.lens[qi] = len;
            // Use the most recent `len` entries (they are oldest-first).
            let skip = q.neighbors.len() - len;
            for (slot, nb) in q.neighbors[skip..].iter().enumerate() {
                let row = batch.raw.row_mut(qi * self.k + slot);
                row[..self.feat_dim].copy_from_slice(&nb.feat);
                row[self.feat_dim..self.feat_dim + self.edge_feat_dim]
                    .copy_from_slice(&nb.edge_feat);
                self.time_enc.encode_into(
                    q.time - nb.time,
                    &mut row[self.feat_dim + self.edge_feat_dim..],
                );
                batch.weights[qi * self.k + slot] = nb.weight;
            }
        }
    }

    /// Sums the (weighted) messages of each query into `sum` and writes the
    /// per-query mean into `mean` (both pre-sized `(B, d_h)` and zeroed).
    fn aggregate_messages(&self, m: &Matrix, lens: &[usize], sum: &mut Matrix, mean: &mut Matrix) {
        for (qi, &len) in lens.iter().enumerate() {
            for slot in 0..len {
                let src = m.row(qi * self.k + slot);
                let s = sum.row_mut(qi);
                for (o, &v) in s.iter_mut().zip(src) {
                    *o += v;
                }
            }
            if len > 0 {
                let inv = 1.0 / len as f32;
                for (o, &v) in mean.row_mut(qi).iter_mut().zip(sum.row(qi)) {
                    *o = v * inv;
                }
            }
        }
    }

    /// Fills `concat` (pre-sized `(B, d_v + d_h)`) with `[target ‖ mean]`.
    fn fill_concat(&self, target: &Matrix, mean: &Matrix, concat: &mut Matrix) {
        let dv = self.feat_dim;
        for qi in 0..target.rows() {
            let row = concat.row_mut(qi);
            row[..dv].copy_from_slice(target.row(qi));
            row[dv..].copy_from_slice(mean.row(qi));
        }
    }

    /// Forward pass producing `(logits, representation, cache)`.
    pub fn forward(&self, batch: &SlimBatch) -> (Matrix, Matrix, SlimCache) {
        let mut cache = SlimCache::default();
        let mut logits = Matrix::default();
        let mut h = Matrix::default();
        self.forward_into(batch, &mut logits, &mut h, &mut cache, &mut Workspace::new());
        (logits, h, cache)
    }

    /// [`SlimModel::forward`] into caller-owned `logits`/`h` buffers with a
    /// reusable cache, drawing intermediates from `ws`. Allocation-free
    /// once the buffers have warmed up to the batch shape; bit-identical to
    /// [`SlimModel::forward`].
    pub fn forward_into(
        &self,
        batch: &SlimBatch,
        logits: &mut Matrix,
        h: &mut Matrix,
        cache: &mut SlimCache,
        ws: &mut Workspace,
    ) {
        let b = batch.lens.len();
        let dh = self.ln1.dim();
        let mut m = ws.take(0, 0);
        self.mlp1.forward_into(&batch.raw, &mut m, &mut cache.mlp1, ws);
        m.scale_rows_assign(&batch.weights);
        let mut mean = ws.take(b, dh);
        let mut sum = ws.take(b, dh);
        self.aggregate_messages(&m, &batch.lens, &mut sum, &mut mean);
        let mut concat = ws.take(b, self.feat_dim + dh);
        self.fill_concat(&batch.target, &mean, &mut concat);
        let mut h_tilde = ws.take(0, 0);
        self.mlp2.forward_into(&concat, &mut h_tilde, &mut cache.mlp2, ws);
        let mut n1 = ws.take(0, 0);
        self.ln1.forward_into(&h_tilde, &mut n1, &mut cache.ln1);
        let mut n2 = ws.take(0, 0);
        self.ln2.forward_into(&sum, &mut n2, &mut cache.ln2);
        // h = LN1(h̃) + λ_s · LN2(sum), fused in place (same mul-then-add
        // per element as the allocating `n1.add(&n2.scale(λ_s))`).
        h.copy_from(&n1);
        h.axpy(self.lambda_s, &n2);
        self.decoder.forward_into(h, logits, &mut cache.decoder, ws);
        cache.weights.clone_from(&batch.weights);
        cache.lens.clone_from(&batch.lens);
        ws.give(m);
        ws.give(mean);
        ws.give(sum);
        ws.give(concat);
        ws.give(h_tilde);
        ws.give(n1);
        ws.give(n2);
    }

    /// Cache-free representation `h_i(t)` (Eq. 18) into `h` — the shared
    /// trunk of the inference paths.
    fn represent_core(&self, batch: &SlimBatch, h: &mut Matrix, ws: &mut Workspace) {
        let b = batch.lens.len();
        let dh = self.ln1.dim();
        let mut m = ws.take(0, 0);
        self.mlp1.infer_into(&batch.raw, &mut m, ws);
        m.scale_rows_assign(&batch.weights);
        let mut mean = ws.take(b, dh);
        let mut sum = ws.take(b, dh);
        self.aggregate_messages(&m, &batch.lens, &mut sum, &mut mean);
        let mut concat = ws.take(b, self.feat_dim + dh);
        self.fill_concat(&batch.target, &mean, &mut concat);
        let mut h_tilde = ws.take(0, 0);
        self.mlp2.infer_into(&concat, &mut h_tilde, ws);
        let mut n2 = ws.take(0, 0);
        self.ln1.infer_into(&h_tilde, h);
        self.ln2.infer_into(&sum, &mut n2);
        h.axpy(self.lambda_s, &n2);
        ws.give(m);
        ws.give(mean);
        ws.give(sum);
        ws.give(concat);
        ws.give(h_tilde);
        ws.give(n2);
    }

    /// Inference-only logits.
    pub fn infer(&self, batch: &SlimBatch) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(batch, &mut out, &mut Workspace::new());
        out
    }

    /// [`SlimModel::infer`] into a caller-owned buffer, drawing every
    /// intermediate from `ws`: the streaming predictor's steady-state path,
    /// which performs zero heap allocations once warmed up. Bit-identical
    /// to `forward(batch).0`.
    pub fn infer_into(&self, batch: &SlimBatch, out: &mut Matrix, ws: &mut Workspace) {
        let mut h = ws.take(0, 0);
        self.represent_core(batch, &mut h, ws);
        self.decoder.infer_into(&h, out, ws);
        ws.give(h);
    }

    /// Inference-only representation `h_i(t)` (Eq. 18), for qualitative
    /// analysis (paper Fig. 14).
    pub fn represent(&self, batch: &SlimBatch) -> Matrix {
        let mut h = Matrix::default();
        self.represent_core(batch, &mut h, &mut Workspace::new());
        h
    }

    /// [`SlimModel::represent`] into a caller-owned buffer, drawing every
    /// intermediate from `ws` (allocation-free after warm-up).
    pub fn represent_into(&self, batch: &SlimBatch, h: &mut Matrix, ws: &mut Workspace) {
        self.represent_core(batch, h, ws);
    }

    /// Backward pass from `dlogits`; accumulates all parameter gradients.
    pub fn backward(&mut self, cache: &SlimCache, dlogits: &Matrix) {
        self.backward_ws(cache, dlogits, &mut Workspace::new());
    }

    /// [`SlimModel::backward`] drawing every gradient temporary from `ws`
    /// (allocation-free after warm-up, bit-identical gradients).
    pub fn backward_ws(&mut self, cache: &SlimCache, dlogits: &Matrix, ws: &mut Workspace) {
        let b = cache.lens.len();
        let dh_width = self.ln1.dim();
        let mut dh = ws.take(0, 0);
        self.decoder.backward_into(&cache.decoder, dlogits, &mut dh, ws);
        // h = LN1(h̃) + λ_s · LN2(sum)
        let mut dh_tilde = ws.take(0, 0);
        self.ln1.backward_into(&cache.ln1, &dh, &mut dh_tilde);
        let mut dh_scaled = ws.take(0, 0);
        dh_scaled.copy_from(&dh);
        dh_scaled.scale_assign(self.lambda_s);
        let mut dsum = ws.take(0, 0);
        self.ln2.backward_into(&cache.ln2, &dh_scaled, &mut dsum);
        // h̃ = MLP2([target ‖ mean])
        let mut dconcat = ws.take(0, 0);
        self.mlp2.backward_into(&cache.mlp2, &dh_tilde, &mut dconcat, ws);
        // mean/sum → per-message gradients; the mean block of `dconcat` is
        // read in place instead of sliced into a copy.
        let mut dm = ws.take(b * self.k, dh_width);
        for qi in 0..b {
            let len = cache.lens[qi];
            if len == 0 {
                continue;
            }
            let inv = 1.0 / len as f32;
            for slot in 0..len {
                let row = dm.row_mut(qi * self.k + slot);
                let dmean_row = &dconcat.row(qi)[self.feat_dim..self.feat_dim + dh_width];
                let dsum_row = dsum.row(qi);
                for j in 0..dh_width {
                    row[j] = dmean_row[j] * inv + dsum_row[j];
                }
            }
        }
        // m = MLP1(raw) ⊙ w
        dm.scale_rows_assign(&cache.weights);
        let mut dx_sink = ws.take(0, 0);
        self.mlp1.backward_into(&cache.mlp1, &dm, &mut dx_sink, ws);
        ws.give(dh);
        ws.give(dh_tilde);
        ws.give(dh_scaled);
        ws.give(dsum);
        ws.give(dconcat);
        ws.give(dm);
        ws.give(dx_sink);
    }
}

impl SlimModel {
    /// Overwrites this model's parameter *values* with `other`'s (same
    /// architecture required; gradients and optimizer moments untouched),
    /// reusing every existing buffer — the allocation-free weight-publish
    /// primitive behind [`crate::service::SplashService::publish`].
    pub fn copy_weights_from(&mut self, other: &SlimModel) {
        self.mlp1.copy_weights_from(&other.mlp1);
        self.mlp2.copy_weights_from(&other.mlp2);
        self.ln1.copy_weights_from(&other.ln1);
        self.ln2.copy_weights_from(&other.ln2);
        self.decoder.copy_weights_from(&other.decoder);
    }

    /// Snapshots the Adam moments attached to this model's parameters as an
    /// [`AdamState`] at optimizer step `steps` (checkpoint side; `&mut`
    /// only because parameter access goes through
    /// [`Parameterized::params_mut`]).
    pub fn extract_adam_state(&mut self, steps: u64) -> AdamState {
        let moments = self
            .params_mut()
            .into_iter()
            .map(|p| {
                let (m, v) = p.adam_state();
                (m.clone(), v.clone())
            })
            .collect();
        AdamState { steps, moments }
    }

    /// Restores checkpointed Adam moments into this model's parameters
    /// (resume side). Panics on a parameter-count or shape mismatch — the
    /// persistence layer validates states against the architecture before
    /// they get here.
    pub fn restore_adam_state(&mut self, state: &AdamState) {
        let params = self.params_mut();
        assert_eq!(
            params.len(),
            state.moments.len(),
            "optimizer state does not match the architecture"
        );
        for (p, (m, v)) in params.into_iter().zip(&state.moments) {
            assert_eq!(p.value.shape(), m.shape(), "moment shape mismatch");
            assert_eq!(p.value.shape(), v.shape(), "moment shape mismatch");
            let (pm, pv) = p.adam_state_mut();
            pm.copy_from(m);
            pv.copy_from(v);
        }
    }
}

impl Parameterized for SlimModel {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.mlp1.params_mut();
        out.extend(self.mlp2.params_mut());
        out.extend(self.ln1.params_mut());
        out.extend(self.ln2.params_mut());
        out.extend(self.decoder.params_mut());
        out
    }

    fn num_params(&self) -> usize {
        self.mlp1.num_params()
            + self.mlp2.num_params()
            + self.ln1.num_params()
            + self.ln2.num_params()
            + self.decoder.num_params()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Same stable order as `params_mut` (the visitor-based Adam step
        // and the checkpoint layout both depend on it).
        self.mlp1.visit_params(f);
        self.mlp2.visit_params(f);
        self.ln1.visit_params(f);
        self.ln2.visit_params(f);
        self.decoder.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CapturedNeighbor;
    use ctdg::Label;
    use nn::{softmax_cross_entropy, Adam};
    use rand::{rngs::StdRng, SeedableRng};

    fn query(feat: Vec<f32>, neighbors: Vec<CapturedNeighbor>) -> CapturedQuery {
        CapturedQuery { node: 0, time: 100.0, target_feat: feat, neighbors, label: Label::Class(0) }
    }

    fn neighbor(feat: Vec<f32>, t: f64, w: f32) -> CapturedNeighbor {
        CapturedNeighbor { other: 1, feat, edge_feat: vec![], time: t, weight: w }
    }

    fn tiny_model(seed: u64) -> SlimModel {
        let mut cfg = SplashConfig::tiny();
        cfg.k = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        SlimModel::new(&cfg, 4, 0, 2, &mut rng)
    }

    #[test]
    fn shapes() {
        let model = tiny_model(0);
        let q1 = query(vec![1.0, 0.0, 0.0, 0.0], vec![neighbor(vec![0.5; 4], 90.0, 1.0)]);
        let q2 = query(vec![0.0; 4], vec![]);
        let batch = model.build_batch(&[&q1, &q2]);
        let (logits, h, _) = model.forward(&batch);
        assert_eq!(logits.shape(), (2, 2));
        assert_eq!(h.shape(), (2, 16));
    }

    #[test]
    fn truncates_to_k_most_recent() {
        let model = tiny_model(1);
        let neighbors: Vec<CapturedNeighbor> =
            (0..5).map(|i| neighbor(vec![i as f32; 4], i as f64, 1.0)).collect();
        let q = query(vec![0.0; 4], neighbors);
        let batch = model.build_batch(&[&q]);
        assert_eq!(batch.lens[0], 3);
        // First used neighbor is the one at t=2 (the 3 most recent of 5).
        assert_eq!(batch.raw.get(0, 0), 2.0);
    }

    #[test]
    fn zero_weight_messages_do_not_contribute() {
        let model = tiny_model(2);
        let q_with = query(vec![0.1; 4], vec![neighbor(vec![9.0; 4], 90.0, 0.0)]);
        let q_empty = query(vec![0.1; 4], vec![]);
        // A zero-weight message contributes zero to sum and mean... but the
        // *mean* divides by len=1, so both give zero message aggregate.
        let (l1, _, _) = model.forward(&model.build_batch(&[&q_with]));
        let (l2, _, _) = model.forward(&model.build_batch(&[&q_empty]));
        for (a, b) in l1.data().iter().zip(l2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_train_a_separable_task() {
        // Two query archetypes distinguishable by neighbor features.
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = SplashConfig::tiny();
        cfg.k = 3;
        let mut model = SlimModel::new(&cfg, 4, 0, 2, &mut rng);
        let make = |sign: f32| {
            query(
                vec![0.0; 4],
                vec![
                    neighbor(vec![sign, -sign, sign, 0.3], 95.0, 1.0),
                    neighbor(vec![sign, sign, -sign, -0.2], 97.0, 1.0),
                ],
            )
        };
        let qs = [make(1.0), make(-1.0), make(1.0), make(-1.0)];
        let targets = [0usize, 1, 0, 1];
        let refs: Vec<&CapturedQuery> = qs.iter().collect();
        let batch = model.build_batch(&refs);
        let mut opt = Adam::new(0.01);
        let mut last = f32::MAX;
        for _ in 0..300 {
            let (logits, _, cache) = model.forward(&batch);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &targets);
            last = loss;
            model.backward(&cache, &dlogits);
            opt.step(model.params_mut());
        }
        assert!(last < 0.05, "SLIM failed to fit separable data: loss {last}");
    }

    #[test]
    fn gradient_matches_finite_differences_on_params() {
        // End-to-end FD check through the full SLIM stack on a few params.
        let mut model = tiny_model(4);
        let q1 = query(
            vec![0.3, -0.2, 0.5, 0.1],
            vec![neighbor(vec![0.4, 0.1, -0.3, 0.2], 95.0, 1.3), neighbor(vec![0.1; 4], 97.0, 0.7)],
        );
        let q2 = query(vec![-0.4, 0.2, 0.0, 0.6], vec![neighbor(vec![-0.2, 0.3, 0.1, 0.0], 99.0, 2.0)]);
        let batch = model.build_batch(&[&q1, &q2]);
        let (logits, _, cache) = model.forward(&batch);
        let coef = nn::test_util::probe_coefficients(logits.rows(), logits.cols());
        model.zero_grad();
        model.backward(&cache, &coef);
        let grads: Vec<Matrix> = model.params_mut().iter().map(|p| p.grad.clone()).collect();
        let eps = 5e-3f32;
        // Spot-check a handful of parameters from every module.
        let n_params = grads.len();
        for pi in (0..n_params).step_by(3) {
            let n_elems = grads[pi].len();
            for ei in (0..n_elems).step_by(7) {
                let orig = {
                    let mut ps = model.params_mut();
                    let v = ps[pi].value.data_mut();
                    let o = v[ei];
                    v[ei] = o + eps;
                    o
                };
                let lp = model.infer(&batch).hadamard(&coef).sum();
                {
                    model.params_mut()[pi].value.data_mut()[ei] = orig - eps;
                }
                let lm = model.infer(&batch).hadamard(&coef).sum();
                {
                    model.params_mut()[pi].value.data_mut()[ei] = orig;
                }
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[pi].data()[ei];
                assert!(
                    (analytic - numeric).abs() < 5e-2 * 1.0f32.max(analytic.abs()),
                    "param[{pi}][{ei}]: {analytic} vs {numeric}"
                );
            }
        }
    }

    /// The cache-free inference trunk (`represent_core`, behind `infer` /
    /// `represent` / `*_into`) and the cache-building `forward` are two
    /// code paths over the same math; this pins them bit-equal so an edit
    /// to one that misses the other fails immediately.
    #[test]
    fn infer_and_represent_match_forward_bitwise() {
        let model = tiny_model(6);
        let q1 = query(
            vec![0.2, -0.4, 0.6, 0.0],
            vec![neighbor(vec![0.3, 0.1, -0.2, 0.5], 96.0, 1.1), neighbor(vec![0.2; 4], 98.0, 0.4)],
        );
        let q2 = query(vec![0.9, 0.0, -0.1, 0.3], vec![]);
        let batch = model.build_batch(&[&q1, &q2]);
        let (logits, h, _) = model.forward(&batch);
        assert_eq!(logits.data(), model.infer(&batch).data());
        assert_eq!(h.data(), model.represent(&batch).data());
        let mut ws = nn::Workspace::new();
        let mut out = nn::Matrix::default();
        model.infer_into(&batch, &mut out, &mut ws);
        assert_eq!(logits.data(), out.data());
        model.represent_into(&batch, &mut out, &mut ws);
        assert_eq!(h.data(), out.data());
    }

    /// The visitor traversal must enumerate exactly the `params_mut`
    /// sequence — the optimizer step and the checkpoint layout both assume
    /// the two orders agree.
    #[test]
    fn visit_params_matches_params_mut_order() {
        let mut a = tiny_model(7);
        let mut b = a.clone();
        let shapes: Vec<(usize, usize)> =
            a.params_mut().iter().map(|p| p.value.shape()).collect();
        let mut visited = Vec::new();
        b.visit_params(&mut |p| visited.push(p.value.shape()));
        assert_eq!(shapes, visited);
        assert_eq!(shapes.len(), 16, "SLIM is 3 two-layer MLPs + 2 LayerNorms");
    }

    #[test]
    fn copy_weights_from_transfers_values_only() {
        let mut src = tiny_model(8);
        let mut dst = tiny_model(9);
        // Give src a non-trivial moment so we can check it is NOT copied.
        src.params_mut()[0].grad.data_mut()[0] = 1.0;
        let mut opt = nn::Adam::new(0.01);
        opt.step_visit(&mut src);
        dst.copy_weights_from(&src);
        let q = query(vec![0.3, -0.2, 0.5, 0.1], vec![neighbor(vec![0.4; 4], 95.0, 1.0)]);
        let batch = src.build_batch(&[&q]);
        assert_eq!(src.infer(&batch).data(), dst.infer(&batch).data());
        // Moments stayed put: dst's are still all zero.
        let params = dst.params_mut();
        let (m, _) = params[0].adam_state();
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    /// Extract → restore round-trips the optimizer clock and moments so a
    /// resumed Adam continues bit-identically.
    #[test]
    fn adam_state_round_trips() {
        let mut trained = tiny_model(10);
        let q = query(vec![0.1; 4], vec![neighbor(vec![0.2; 4], 90.0, 1.0)]);
        let batch = trained.build_batch(&[&q]);
        let mut opt = nn::Adam::new(0.02);
        for _ in 0..3 {
            let (logits, _, cache) = trained.forward(&batch);
            let (_, dlogits) = nn::softmax_cross_entropy(&logits, &[1]);
            trained.backward(&cache, &dlogits);
            opt.step_visit(&mut trained);
        }
        let state = trained.extract_adam_state(opt.steps());
        assert_eq!(state.steps, 3);
        let mut resumed = tiny_model(10);
        resumed.copy_weights_from(&trained);
        resumed.restore_adam_state(&state);

        // One more identical step on both must produce identical weights.
        let mut opt2 = nn::Adam::new(0.02);
        opt2.set_steps(state.steps);
        for (model, o) in [(&mut trained, &mut opt), (&mut resumed, &mut opt2)] {
            let (logits, _, cache) = model.forward(&batch);
            let (_, dlogits) = nn::softmax_cross_entropy(&logits, &[1]);
            model.backward(&cache, &dlogits);
            o.step_visit(model);
        }
        for (p, q) in trained.params_mut().into_iter().zip(resumed.params_mut()) {
            assert_eq!(p.value.data(), q.value.data());
        }
    }

    #[test]
    fn param_count_is_reported() {
        let model = tiny_model(5);
        assert!(Parameterized::num_params(&model) > 0);
        // MLP-only model: params = Σ layer params; spot-check it is small.
        assert!(Parameterized::num_params(&model) < 5000);
    }
}
