//! Task-generic glue: losses and metrics keyed by the dataset's task.
//!
//! * dynamic anomaly detection → softmax CE training, ROC-AUC evaluation;
//! * dynamic node classification → softmax CE training, weighted-F1
//!   evaluation;
//! * node affinity prediction → soft-label CE training, NDCG@10 evaluation
//!   (the paper's Table III metrics).

use ctdg::Label;
use datasets::Task;
use eval::{mean_ndcg_at_k, roc_auc, weighted_f1};
use nn::{soft_cross_entropy, softmax, softmax_cross_entropy, Matrix};

/// The paper's ranking cutoff for affinity prediction.
pub const NDCG_K: usize = 10;

/// Model output width for a task: `num_classes` for (anomaly)
/// classification, `d_a` for affinity.
pub fn output_dim(_task: Task, num_classes: usize) -> usize {
    num_classes
}

/// Canonical lowercase name of a task (error messages, report keys).
pub fn name(task: Task) -> &'static str {
    match task {
        Task::Anomaly => "anomaly",
        Task::Classification => "classification",
        Task::Affinity => "affinity",
    }
}

/// Empirical risk and its gradient w.r.t. `logits` for a labeled batch.
pub fn loss_and_grad(task: Task, logits: &Matrix, labels: &[&Label]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len());
    match task {
        Task::Anomaly | Task::Classification => {
            let targets: Vec<usize> = labels.iter().map(|l| l.class()).collect();
            softmax_cross_entropy(logits, &targets)
        }
        Task::Affinity => {
            let mut target = Matrix::zeros(logits.rows(), logits.cols());
            for (i, l) in labels.iter().enumerate() {
                target.set_row(i, l.affinity());
            }
            soft_cross_entropy(logits, &target)
        }
    }
}

/// Empirical risk only (validation-side of feature selection, Eq. 11).
pub fn loss(task: Task, logits: &Matrix, labels: &[&Label]) -> f32 {
    loss_and_grad(task, logits, labels).0
}

/// The paper's evaluation metric for a task (higher is better, in [0, 1]).
pub fn evaluate(task: Task, logits: &Matrix, labels: &[&Label]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    match task {
        Task::Anomaly => {
            let p = softmax(logits);
            let scores: Vec<f32> = (0..p.rows()).map(|i| p.get(i, 1)).collect();
            let truth: Vec<bool> = labels.iter().map(|l| l.class() == 1).collect();
            roc_auc(&scores, &truth)
        }
        Task::Classification => {
            let preds: Vec<usize> = (0..logits.rows())
                .map(|i| argmax(logits.row(i)))
                .collect();
            let targets: Vec<usize> = labels.iter().map(|l| l.class()).collect();
            let num_classes = logits.cols();
            weighted_f1(&preds, &targets, num_classes)
        }
        Task::Affinity => {
            let queries: Vec<(Vec<f32>, Vec<f32>)> = (0..logits.rows())
                .map(|i| (logits.row(i).to_vec(), labels[i].affinity().to_vec()))
                .collect();
            mean_ndcg_at_k(&queries, NDCG_K)
        }
    }
}

/// Index of the largest element.
pub fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_metric_is_weighted_f1() {
        let logits = Matrix::from_vec(3, 2, vec![2.0, -1.0, -1.0, 2.0, 2.0, -1.0]);
        let labels = [Label::Class(0), Label::Class(1), Label::Class(1)];
        let refs: Vec<&Label> = labels.iter().collect();
        let m = evaluate(Task::Classification, &logits, &refs);
        // predictions [0, 1, 0] vs targets [0, 1, 1]
        let expected = weighted_f1(&[0, 1, 0], &[0, 1, 1], 2);
        assert!((m - expected).abs() < 1e-12);
    }

    #[test]
    fn anomaly_metric_is_auc() {
        let logits = Matrix::from_vec(4, 2, vec![
            2.0, -2.0, // strongly normal
            -2.0, 2.0, // strongly abnormal
            1.0, -1.0, 0.5, -0.5,
        ]);
        let labels = [Label::Class(0), Label::Class(1), Label::Class(0), Label::Class(0)];
        let refs: Vec<&Label> = labels.iter().collect();
        assert_eq!(evaluate(Task::Anomaly, &logits, &refs), 1.0);
    }

    #[test]
    fn affinity_metric_is_ndcg() {
        let logits = Matrix::from_vec(1, 3, vec![3.0, 2.0, 1.0]);
        let labels = [Label::Affinity(vec![0.7, 0.2, 0.1].into())];
        let refs: Vec<&Label> = labels.iter().collect();
        assert!((evaluate(Task::Affinity, &logits, &refs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_decreases_with_better_logits() {
        let labels = [Label::Class(1)];
        let refs: Vec<&Label> = labels.iter().collect();
        let bad = Matrix::from_vec(1, 2, vec![2.0, -2.0]);
        let good = Matrix::from_vec(1, 2, vec![-2.0, 2.0]);
        assert!(loss(Task::Classification, &good, &refs) < loss(Task::Classification, &bad, &refs));
    }

    #[test]
    fn grad_shape_matches_logits() {
        let labels = [Label::Affinity(vec![0.5, 0.5].into()), Label::Affinity(vec![1.0, 0.0].into())];
        let refs: Vec<&Label> = labels.iter().collect();
        let logits = Matrix::zeros(2, 2);
        let (_, g) = loss_and_grad(Task::Affinity, &logits, &refs);
        assert_eq!(g.shape(), (2, 2));
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }
}
