//! Durable streaming state: versioned checkpoints plus an edge WAL.
//!
//! The persistence layer ([`crate::persist`]) makes model *weights*
//! durable; everything else a serving deployment accumulates — per-node
//! rings, augmenter/tracker state, the stream clock, the online replay
//! buffer, ingest counters — used to be recoverable only by re-delivering
//! the entire stream. This module makes that state durable too, so a
//! `kill -9` mid-ingest restarts in O(state + WAL tail) instead of
//! O(stream), with the same bit-exact guarantees.
//!
//! # Layout
//!
//! A checkpoint directory holds numbered **epochs**. Epoch `e` consists of
//!
//! * `model.<e>.bin` — the standard model artifact ([`crate::persist`]
//!   format, including the `SAVEDOPT` optimizer trailer); at shard counts
//!   above one this is the usual `SPLASHS` manifest plus a single
//!   `model.<e>.bin.shard0` file (shards share weights, stored once);
//! * `witness.<e>.bin` — the **global witness snapshot** (magic `SPLASHG`):
//!   the augmenter/tracker state, ring capacity, and stream clock. These
//!   are global functions of the edge stream (there is exactly one writer),
//!   so they are written once per checkpoint regardless of shard count;
//! * `state.<e>.bin.shard<i>` — one **ring partition per shard** (magic
//!   `SPLASHD`): just that shard's per-node rings;
//! * `state.<e>.bin` — the state **manifest** (magic `SPLASHX`): the
//!   witness file's name + FNV-1a checksum, per-shard file names +
//!   checksums (the `SPLASHS` discipline), the durable service counters,
//!   the optional online replay buffer, and a whole-file checksum;
//! * `wal.<e>.log` — the **append-only edge WAL** (magic `SPLASHW`):
//!   everything applied since the snapshot, as length-prefixed,
//!   per-record-checksummed entries, group-committed once per accepted
//!   request from the server's single engine thread.
//!
//! A tiny `CURRENT` file (magic `SPLASHC`) names the committed epoch. It
//! is rewritten via write-temp + atomic rename **last**, after every file
//! of the new epoch is complete — so a crash at *any* byte leaves
//! `CURRENT` pointing at a complete epoch. Recovery reads `CURRENT`, loads
//! that epoch's model + state, replays its WAL (truncating a torn tail at
//! the last valid record), and deletes the orphans of uncommitted epochs.
//!
//! # Durability scope
//!
//! Appends and snapshots are flushed to the OS but **not fsynced**: the
//! unit of failure is the *process* (`kill -9`, panic, OOM-kill), not the
//! machine. Power-loss durability would add an `fsync` per group commit
//! without changing any format below.
//!
//! # Fault injection
//!
//! Every byte headed for a checkpoint directory flows through a
//! [`DurableWriter`], and every file operation consults a shared
//! [`FaultPlan`]. A test harness arms the plan with "kill the `n`-th
//! operation after `b` bytes" (or "before its rename") and gets back
//! exactly the on-disk prefix a real crash at that point would leave. The
//! crash-recovery suite (`tests/durable.rs`) drives this over every
//! operation of the checkpoint sequence and every byte of a WAL append,
//! proving restart bit-identity at shard counts 1 and 3.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use ctdg::{Label, PropertyQuery, TemporalEdge};
use datasets::Task;
use nn::Matrix;

use crate::augment::AugmenterState;
use crate::capture::{CapturedNeighbor, CapturedQuery};
use crate::error::SplashError;
use crate::persist::{
    self, bad, corrupt_or_io, fnv1a, get_f32, get_u32, get_u64, get_u8, put_f32, put_u32,
    put_u64, put_u8, sane_dim, SavedModel,
};
use crate::stream::{RingState, WitnessSnapshot};

/// Magic of the global witness snapshot file (augmenter + stream clock).
const WITNESS_MAGIC: &[u8; 8] = b"SPLASHG\x01";
/// Format revision of the witness snapshot.
const WITNESS_VERSION: u32 = 1;
/// Magic of one per-shard ring-partition file.
const STATE_MAGIC: &[u8; 8] = b"SPLASHD\x01";
/// Format revision of the ring partition (v2: rings only — the augmenter
/// and clock moved to the witness file; v1 checkpoints do not load).
const STATE_VERSION: u32 = 2;
/// Magic of the state manifest (witness + per-shard checksums + service
/// sections).
const STATE_MANIFEST_MAGIC: &[u8; 8] = b"SPLASHX\x01";
/// Format revision of the state manifest (v2 adds the witness entry).
const STATE_MANIFEST_VERSION: u32 = 2;
/// Magic of the write-ahead log.
const WAL_MAGIC: &[u8; 8] = b"SPLASHW\x01";
/// Format revision of the WAL.
const WAL_VERSION: u32 = 1;
/// Magic of the `CURRENT` epoch pointer.
const CURRENT_MAGIC: &[u8; 8] = b"SPLASHC\x01";
/// Format revision of the `CURRENT` pointer.
const CURRENT_VERSION: u32 = 1;

/// WAL record tag: a chronologically ordered edge batch.
const WAL_EDGES: u8 = 1;
/// WAL record tag: a batch of ground-truth label observations.
const WAL_LABELS: u8 = 2;
/// WAL record tag: an explicit fine-tune (+publish) request.
const WAL_FINE_TUNE: u8 = 3;
/// WAL record tag: an explicit weight publish.
const WAL_PUBLISH: u8 = 4;

/// Upper bound on a single WAL record's payload (1 GiB). A length prefix
/// beyond this is garbage: mid-file it is corruption, at the tail it is a
/// torn write.
const MAX_WAL_RECORD: u64 = 1 << 30;
/// Upper bound on node-indexed table lengths parsed from a state file
/// (node ids are `u32`).
const MAX_NODES: u64 = 1 << 32;
/// Upper bound on any single state-file tensor/table allocation (elements),
/// so a corrupt count surfaces as a typed error instead of an allocation
/// abort — the same discipline as [`crate::persist`]'s `MAX_TENSOR_ELEMS`.
const MAX_STATE_ELEMS: u64 = 1 << 30;

/// The name of the committed-epoch pointer file.
const CURRENT_FILE: &str = "CURRENT";

// ---------------------------------------------------------------------------
// Fault injection.

/// What a planned fault does when its target operation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Stop the operation's file write after exactly this many bytes and
    /// fail — a torn write, as a `kill -9` mid-`write(2)` would leave.
    WriteAt(u64),
    /// Let the temp file be written fully, then fail instead of renaming —
    /// a crash between the data write and the atomic publish.
    BeforeRename,
}

#[derive(Debug, Default)]
struct FaultPlanInner {
    /// Index (since arming) of the operation to kill, and how.
    target: Option<(u64, FaultKind)>,
    /// Operations issued since the last arm/reset.
    next_index: u64,
    /// Whether the planned fault has fired.
    fired: bool,
    /// When recording, every *completed* operation's label and byte count.
    recording: bool,
    trace: Vec<(String, u64)>,
}

/// A programmable crash point, shared between a test harness and the
/// durable layer.
///
/// The durable layer numbers every file operation it performs (temp-file
/// writes, renames, WAL appends) from the moment the plan is armed. The
/// harness first runs with [`FaultPlan::record_trace`] to enumerate the
/// operations and their sizes, then arms "kill operation `n` at byte `b`"
/// ([`FaultPlan::arm_write`]) or "kill operation `n` before its rename"
/// ([`FaultPlan::arm_rename`]) and replays the workload. The injected
/// failure surfaces as [`SplashError::Io`]; the bytes on disk are exactly
/// what a real crash at that point would leave, and the harness recovers
/// from them without any cleanup.
///
/// Cloning shares the plan (it is `Arc`-backed); the default plan never
/// fires and adds one uncontended mutex lock per *file* operation — noise
/// next to the I/O itself.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<FaultPlanInner>>,
}

impl FaultPlan {
    /// A plan with no fault armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the plan: the `op`-th durable file operation from now fails
    /// after writing exactly `offset` bytes.
    pub fn arm_write(&self, op: u64, offset: u64) {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        g.target = Some((op, FaultKind::WriteAt(offset)));
        g.next_index = 0;
        g.fired = false;
    }

    /// Arms the plan: the `op`-th durable file operation from now writes
    /// its bytes fully but dies before its atomic rename (for append-only
    /// WAL writes, where no rename exists, the crash lands right after the
    /// append instead).
    pub fn arm_rename(&self, op: u64) {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        g.target = Some((op, FaultKind::BeforeRename));
        g.next_index = 0;
        g.fired = false;
    }

    /// Disarms any planned fault and resets the operation counter.
    pub fn disarm(&self) {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        g.target = None;
        g.next_index = 0;
        g.fired = false;
    }

    /// Whether the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.inner.lock().expect("fault plan poisoned").fired
    }

    /// Starts recording completed operations (label + bytes written),
    /// resetting the operation counter and any previous trace.
    pub fn record_trace(&self) {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        g.recording = true;
        g.trace.clear();
        g.next_index = 0;
        g.fired = false;
        g.target = None;
    }

    /// Stops recording and returns the trace of completed operations.
    pub fn take_trace(&self) -> Vec<(String, u64)> {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        g.recording = false;
        std::mem::take(&mut g.trace)
    }

    /// Claims the next operation index; returns the fault to inject into
    /// this operation, if it is the armed target.
    fn next(&self) -> Option<FaultKind> {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        let idx = g.next_index;
        g.next_index += 1;
        match g.target {
            Some((t, kind)) if t == idx && !g.fired => {
                g.fired = true;
                Some(kind)
            }
            _ => None,
        }
    }

    /// Records a completed operation (when tracing).
    fn complete(&self, label: &str, bytes: u64) {
        let mut g = self.inner.lock().expect("fault plan poisoned");
        if g.recording {
            g.trace.push((label.to_string(), bytes));
        }
    }
}

/// The injected-crash error every fired fault surfaces as.
fn injected() -> io::Error {
    io::Error::other("injected crash (durable fault plan)")
}

/// An [`io::Write`] adapter that simulates `kill -9` at a programmed byte
/// offset: bytes strictly before the offset are written through to the
/// inner writer, the write that reaches the offset is truncated exactly
/// there, and the call fails with the injected-crash error. Without a
/// programmed offset it is a transparent pass-through.
///
/// This is the seam every durable byte flows through — checkpoint files,
/// manifests, WAL appends, the `CURRENT` pointer — so a crash can be
/// injected at *any* byte of *any* durable write.
#[derive(Debug)]
pub struct DurableWriter<W: Write> {
    inner: W,
    written: u64,
    fail_at: Option<u64>,
}

impl<W: Write> DurableWriter<W> {
    /// A transparent pass-through writer (no fault).
    pub fn new(inner: W) -> Self {
        Self { inner, written: 0, fail_at: None }
    }

    /// A writer that dies after exactly `fail_at` bytes.
    pub fn with_fault(inner: W, fail_at: u64) -> Self {
        Self { inner, written: 0, fail_at: Some(fail_at) }
    }

    /// Total bytes written through so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Write for DurableWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(limit) = self.fail_at {
            let remaining = limit.saturating_sub(self.written);
            if (buf.len() as u64) > remaining {
                // Write the surviving prefix, then die: a torn write.
                let keep = remaining as usize;
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                    self.written += keep as u64;
                }
                self.inner.flush()?;
                return Err(injected());
            }
        }
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// Configuration and reports.

/// How often and where a durable model checkpoints.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The checkpoint directory (created if absent).
    pub dir: PathBuf,
    /// Snapshot after this many WAL records have accumulated (a record is
    /// one group-committed request, not one edge). Must be positive.
    pub checkpoint_every: u64,
    /// Crash-injection plan; the default never fires.
    pub faults: FaultPlan,
}

impl DurabilityConfig {
    /// A config checkpointing `dir` every 256 WAL records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), checkpoint_every: 256, faults: FaultPlan::default() }
    }

    /// Sets the WAL-records-per-checkpoint threshold.
    pub fn checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }

    /// Installs a crash-injection plan (test harnesses only).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Validates the config.
    pub fn validate(&self) -> Result<(), SplashError> {
        if self.checkpoint_every == 0 {
            return Err(SplashError::InvalidConfig {
                what: "checkpoint_every must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Summary of a completed recovery, returned by
/// [`crate::SplashService::make_durable`] when it restored from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// The committed epoch that was restored.
    pub epoch: u64,
    /// Shard count the snapshot was written at (restore may differ).
    pub snapshot_shards: usize,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Edges contained in the replayed records.
    pub wal_edges_replayed: u64,
    /// Whether a torn WAL tail was truncated at the last valid record.
    pub wal_tail_truncated: bool,
}

/// Durable counters restored with a checkpoint (the slice of
/// [`crate::ServiceStats`] that describes *stream state* rather than
/// process lifetime — request/latency counters deliberately reset on
/// restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct PersistedCounters {
    pub edges_ingested: u64,
    pub edges_dropped: u64,
    pub labels_buffered: u64,
    pub labels_dropped: u64,
    pub fine_tunes: u64,
    pub fine_tune_steps: u64,
    pub publishes: u64,
}

/// The online trainer's replay-buffer state, persisted verbatim (storage
/// order + ring cursors) so a restored trainer fine-tunes bit-identically
/// to one that never restarted.
#[derive(Debug, Clone)]
pub(crate) struct TrainerState {
    /// The task whose loss the trainer optimizes (recovery has no dataset
    /// to read it from).
    pub task: Task,
    /// Ring storage in *storage* order (not insertion order).
    pub buffer: Vec<CapturedQuery>,
    /// Index of the oldest example.
    pub head: usize,
    /// Number of live examples.
    pub filled: usize,
    /// The ring capacity the cursors are valid against.
    pub capacity: usize,
    /// Lifetime labels absorbed.
    pub labels_seen: u64,
    /// Lifetime fine-tune invocations.
    pub tunes: u64,
    /// Labels absorbed since the last auto-tune.
    pub since_tune: usize,
}

/// One entry of a WAL, decoded: the request to re-apply on replay.
///
/// Records carry the *original* accepted request plus the effective
/// policy, so replay routes through exactly the code path the live
/// request took — drops, auto-tunes, counter increments and all.
#[derive(Debug, Clone)]
pub(crate) enum WalEntry {
    /// A chronologically ordered edge batch.
    Edges {
        /// The batch as the accepted request carried it.
        edges: Vec<TemporalEdge>,
        /// Whether the request ran under the drop-late policy.
        drop_late: bool,
    },
    /// A batch of ground-truth label observations.
    Labels(Vec<PropertyQuery>),
    /// An explicit fine-tune (+publish) request.
    FineTune,
    /// An explicit weight publish.
    Publish,
}

/// A borrowed WAL record, encoded at append time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WalRecord<'a> {
    /// One accepted ingest request.
    Edges {
        /// The batch as the request carried it.
        edges: &'a [TemporalEdge],
        /// Whether the request ran under the drop-late policy.
        drop_late: bool,
    },
    /// The observations of one label request.
    Labels(&'a [PropertyQuery]),
    /// An explicit fine-tune (+publish) request.
    FineTune,
    /// An explicit weight publish.
    Publish,
}

/// Everything one checkpoint persists, assembled by the service.
#[derive(Debug)]
pub(crate) struct CheckpointData {
    /// The serialized model artifact (stored once; shards share weights).
    pub model_bytes: Vec<u8>,
    /// The global witness snapshot (augmenter, ring capacity, clock) —
    /// one per checkpoint regardless of shard count.
    pub witness: WitnessSnapshot,
    /// Per-shard ring partitions (length = shard count, ≥ 1).
    pub ring_shards: Vec<Vec<RingState>>,
    /// Durable service counters.
    pub counters: PersistedCounters,
    /// The online replay buffer, when the trainer persists it.
    pub trainer: Option<TrainerState>,
}

/// Everything recovery restored from the committed epoch, before replay.
#[derive(Debug)]
pub(crate) struct RecoveredCheckpoint {
    /// The restored model (weights, config, optional optimizer state).
    pub saved: SavedModel,
    /// The global witness snapshot, as written.
    pub witness: WitnessSnapshot,
    /// Per-shard ring partitions, as written.
    pub ring_shards: Vec<Vec<RingState>>,
    /// Durable service counters at snapshot time.
    pub counters: PersistedCounters,
    /// The persisted replay buffer, if any.
    pub trainer: Option<TrainerState>,
    /// Decoded WAL entries to re-apply, in append order.
    pub entries: Vec<WalEntry>,
    /// Recovery summary (epoch, replay counts, truncation).
    pub report: RecoveryReport,
}

// ---------------------------------------------------------------------------
// The log.

/// The per-model durable log: the open WAL of the committed epoch plus the
/// bookkeeping to rotate it at the next checkpoint. Owned by the service's
/// model entry; all writes happen on the single engine thread.
#[derive(Debug)]
pub(crate) struct DurableLog {
    dir: PathBuf,
    checkpoint_every: u64,
    faults: FaultPlan,
    epoch: u64,
    wal: File,
    wal_records: u64,
    /// Scratch for [`DurableLog::append`]: the encoded payload and the
    /// framed record. Warmed up by the first appends, then reused — the
    /// steady-state WAL path stays off the allocator.
    payload_buf: Vec<u8>,
    rec_buf: Vec<u8>,
}

impl DurableLog {
    /// Creates a fresh log in `cfg.dir`: writes `data` as the epoch-0
    /// checkpoint (committing it via `CURRENT`) and opens its empty WAL.
    pub(crate) fn create(
        cfg: &DurabilityConfig,
        data: CheckpointData,
    ) -> Result<Self, SplashError> {
        cfg.validate()?;
        fs::create_dir_all(&cfg.dir)?;
        let wal = write_checkpoint(&cfg.dir, &cfg.faults, 0, &data)?;
        gc_epochs(&cfg.dir, 0);
        Ok(Self {
            dir: cfg.dir.clone(),
            checkpoint_every: cfg.checkpoint_every,
            faults: cfg.faults.clone(),
            epoch: 0,
            wal,
            wal_records: 0,
            payload_buf: Vec::new(),
            rec_buf: Vec::new(),
        })
    }

    /// Opens an existing log: reads `CURRENT`, loads the committed epoch's
    /// model + state, decodes its WAL (truncating a torn tail), removes
    /// uncommitted orphans, and returns the log positioned to append.
    pub(crate) fn recover(
        cfg: &DurabilityConfig,
    ) -> Result<(Self, RecoveredCheckpoint), SplashError> {
        cfg.validate()?;
        let epoch = read_current(&cfg.dir)?;

        let model_path = cfg.dir.join(format!("model.{epoch}.bin"));
        require_checkpoint_file(&model_path, epoch)?;
        let saved = if persist::is_sharded_artifact(&model_path)? {
            persist::load_sharded_model(&model_path)?.1
        } else {
            persist::load_model(&model_path)?
        };

        let state_path = cfg.dir.join(format!("state.{epoch}.bin"));
        require_checkpoint_file(&state_path, epoch)?;
        let (witness_file, shard_files, counters, trainer) =
            read_state_manifest(&state_path)?;
        let dir = state_path.parent().unwrap_or_else(|| Path::new("."));
        let read_verified = |name: &str, checksum: u64| -> Result<Vec<u8>, SplashError> {
            let path = dir.join(name);
            require_checkpoint_file(&path, epoch)?;
            let bytes = fs::read(&path)?;
            if fnv1a(&bytes) != checksum {
                return Err(SplashError::CorruptModel {
                    what: format!("state file {name:?} does not match its manifest checksum"),
                });
            }
            Ok(bytes)
        };
        let witness =
            read_witness_snapshot(&read_verified(&witness_file.0, witness_file.1)?)?;
        let mut ring_shards = Vec::with_capacity(shard_files.len());
        for (name, checksum) in &shard_files {
            let bytes = read_verified(name, *checksum)?;
            ring_shards.push(read_state_shard(&bytes, witness.k)?);
        }

        let wal_path = cfg.dir.join(format!("wal.{epoch}.log"));
        require_checkpoint_file(&wal_path, epoch)?;
        let scan = read_wal(&wal_path, epoch)?;
        if scan.truncated {
            // Torn tail: cut the file back to its last valid record so the
            // next append starts at a clean boundary.
            OpenOptions::new().write(true).open(&wal_path)?.set_len(scan.valid_len)?;
        }
        let wal = OpenOptions::new().append(true).open(&wal_path)?;

        gc_epochs(&cfg.dir, epoch);

        let report = RecoveryReport {
            epoch,
            snapshot_shards: ring_shards.len(),
            wal_records_replayed: scan.entries.len() as u64,
            wal_edges_replayed: scan
                .entries
                .iter()
                .map(|e| match e {
                    WalEntry::Edges { edges, .. } => edges.len() as u64,
                    _ => 0,
                })
                .sum(),
            wal_tail_truncated: scan.truncated,
        };
        let recovered = RecoveredCheckpoint {
            saved,
            witness,
            ring_shards,
            counters,
            trainer,
            entries: scan.entries,
            report,
        };
        let log = Self {
            dir: cfg.dir.clone(),
            checkpoint_every: cfg.checkpoint_every,
            faults: cfg.faults.clone(),
            epoch,
            wal,
            wal_records: report.wal_records_replayed,
            payload_buf: Vec::new(),
            rec_buf: Vec::new(),
        };
        Ok((log, recovered))
    }

    /// Whether a committed checkpoint exists in `dir` (i.e. recovery has
    /// something to restore from).
    pub(crate) fn exists(dir: &Path) -> bool {
        dir.join(CURRENT_FILE).exists()
    }

    /// Appends one record, group-committed: a single `write(2)` carries
    /// the length prefix, payload, and checksum, so a crash leaves either
    /// a fully valid record or a torn tail recovery truncates away.
    pub(crate) fn append(&mut self, record: WalRecord<'_>) -> Result<(), SplashError> {
        encode_wal_payload_into(&mut self.payload_buf, record).map_err(SplashError::Io)?;
        let payload = &self.payload_buf;
        if payload.len() as u64 > MAX_WAL_RECORD {
            return Err(SplashError::InvalidConfig {
                what: format!("WAL record of {} bytes exceeds the format limit", payload.len()),
            });
        }
        let rec = &mut self.rec_buf;
        rec.clear();
        rec.reserve(payload.len() + 12);
        put_u32(rec, payload.len() as u32).map_err(SplashError::Io)?;
        rec.extend_from_slice(payload);
        put_u64(rec, fnv1a(payload)).map_err(SplashError::Io)?;

        let fault = self.faults.next();
        let mut w = match fault {
            Some(FaultKind::WriteAt(off)) => DurableWriter::with_fault(&mut self.wal, off),
            _ => DurableWriter::new(&mut self.wal),
        };
        w.write_all(rec).map_err(SplashError::Io)?;
        w.flush().map_err(SplashError::Io)?;
        if matches!(fault, Some(FaultKind::BeforeRename)) {
            // No rename in an append; the crash lands right after the
            // bytes hit the file — the record is durable, the in-memory
            // acknowledgement is not.
            return Err(SplashError::Io(injected()));
        }
        self.faults.complete("wal.append", rec.len() as u64);
        self.wal_records += 1;
        Ok(())
    }

    /// Whether the WAL has grown past the checkpoint threshold.
    pub(crate) fn should_checkpoint(&self) -> bool {
        self.wal_records >= self.checkpoint_every
    }

    /// Writes `data` as epoch `current + 1`, commits it via `CURRENT`,
    /// garbage-collects the previous epoch, and rotates the WAL. On error
    /// the log still appends to the *old* epoch's WAL — the old checkpoint
    /// remains committed and fully consistent.
    pub(crate) fn checkpoint(&mut self, data: CheckpointData) -> Result<(), SplashError> {
        let next = self.epoch + 1;
        let wal = write_checkpoint(&self.dir, &self.faults, next, &data)?;
        self.epoch = next;
        self.wal = wal;
        self.wal_records = 0;
        gc_epochs(&self.dir, next);
        Ok(())
    }

    /// The committed epoch this log appends to.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Errors a missing file of a *committed* epoch as corruption (the commit
/// protocol guarantees every file exists before `CURRENT` names the
/// epoch).
fn require_checkpoint_file(path: &Path, epoch: u64) -> Result<(), SplashError> {
    if !path.exists() {
        return Err(SplashError::CorruptModel {
            what: format!(
                "committed epoch {epoch} is missing {:?}",
                path.file_name().unwrap_or_default()
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checkpoint writing.

/// `<path>.tmp`, in the same directory (so the rename is atomic).
fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "durable".into());
    path.with_file_name(format!("{name}.tmp"))
}

/// Writes `bytes` to `path` crash-safely: through the fault seam into
/// `<path>.tmp`, then an atomic rename. One durable operation in
/// fault-plan terms.
fn write_file_atomic(
    plan: &FaultPlan,
    label: &str,
    path: &Path,
    bytes: &[u8],
) -> Result<(), SplashError> {
    let fault = plan.next();
    let tmp = tmp_path(path);
    let file = File::create(&tmp)?;
    let mut w = match fault {
        Some(FaultKind::WriteAt(off)) => DurableWriter::with_fault(file, off),
        _ => DurableWriter::new(file),
    };
    w.write_all(bytes).map_err(SplashError::Io)?;
    w.flush().map_err(SplashError::Io)?;
    drop(w);
    if matches!(fault, Some(FaultKind::BeforeRename)) {
        return Err(SplashError::Io(injected()));
    }
    fs::rename(&tmp, path)?;
    plan.complete(label, bytes.len() as u64);
    Ok(())
}

/// Writes every file of epoch `epoch` and commits it by renaming
/// `CURRENT` last. Returns the open (empty) WAL of the new epoch.
fn write_checkpoint(
    dir: &Path,
    faults: &FaultPlan,
    epoch: u64,
    data: &CheckpointData,
) -> Result<File, SplashError> {
    let shards = data.ring_shards.len();
    if shards == 0 {
        return Err(SplashError::InvalidConfig {
            what: "a checkpoint needs at least one shard state".into(),
        });
    }

    // 1. Model artifact (the persist-format bytes; shards share weights,
    //    so a sharded checkpoint stores them once behind a manifest).
    let model_path = dir.join(format!("model.{epoch}.bin"));
    if shards == 1 {
        write_file_atomic(faults, "model", &model_path, &data.model_bytes)?;
    } else {
        let checksum = fnv1a(&data.model_bytes);
        let shard_path = persist::shard_file_path(&model_path, 0);
        write_file_atomic(faults, "model.shard0", &shard_path, &data.model_bytes)?;
        let name = shard_path
            .file_name()
            .expect("shard_file_path always has a file name")
            .to_string_lossy()
            .into_owned();
        let mut manifest = Vec::new();
        manifest.extend_from_slice(persist::SHARD_MAGIC);
        put_u32(&mut manifest, persist::SHARD_VERSION).map_err(SplashError::Io)?;
        put_u64(&mut manifest, shards as u64).map_err(SplashError::Io)?;
        put_u64(&mut manifest, name.len() as u64).map_err(SplashError::Io)?;
        manifest.extend_from_slice(name.as_bytes());
        put_u64(&mut manifest, checksum).map_err(SplashError::Io)?;
        write_file_atomic(faults, "model.manifest", &model_path, &manifest)?;
    }

    // 2. The global witness snapshot — one file regardless of shard count.
    let witness_path = dir.join(format!("witness.{epoch}.bin"));
    let witness_bytes = witness_snapshot_bytes(&data.witness).map_err(SplashError::Io)?;
    write_file_atomic(faults, "witness", &witness_path, &witness_bytes)?;
    let witness_file = (
        witness_path
            .file_name()
            .expect("witness path always has a file name")
            .to_string_lossy()
            .into_owned(),
        fnv1a(&witness_bytes),
    );

    // 3. Per-shard ring partitions.
    let state_path = dir.join(format!("state.{epoch}.bin"));
    let mut shard_files = Vec::with_capacity(shards);
    for (i, rings) in data.ring_shards.iter().enumerate() {
        let bytes = state_shard_bytes(rings, i, shards).map_err(SplashError::Io)?;
        let shard_path = persist::shard_file_path(&state_path, i);
        write_file_atomic(faults, &format!("state.shard{i}"), &shard_path, &bytes)?;
        let name = shard_path
            .file_name()
            .expect("shard_file_path always has a file name")
            .to_string_lossy()
            .into_owned();
        shard_files.push((name, fnv1a(&bytes)));
    }

    // 4. State manifest (witness + shard checksums + counters + replay
    //    buffer).
    let manifest = state_manifest_bytes(
        &witness_file,
        &shard_files,
        &data.counters,
        data.trainer.as_ref(),
    )
    .map_err(SplashError::Io)?;
    write_file_atomic(faults, "state.manifest", &state_path, &manifest)?;

    // 5. The new epoch's WAL, header only. Append-only, so no temp+rename:
    //    a crash here leaves a torn orphan `CURRENT` never points at.
    let wal_path = dir.join(format!("wal.{epoch}.log"));
    let mut header = Vec::with_capacity(20);
    header.extend_from_slice(WAL_MAGIC);
    put_u32(&mut header, WAL_VERSION).map_err(SplashError::Io)?;
    put_u64(&mut header, epoch).map_err(SplashError::Io)?;
    let fault = faults.next();
    let file = File::create(&wal_path)?;
    let mut w = match fault {
        Some(FaultKind::WriteAt(off)) => DurableWriter::with_fault(file, off),
        _ => DurableWriter::new(file),
    };
    w.write_all(&header).map_err(SplashError::Io)?;
    w.flush().map_err(SplashError::Io)?;
    let DurableWriter { inner: wal, .. } = w;
    if matches!(fault, Some(FaultKind::BeforeRename)) {
        return Err(SplashError::Io(injected()));
    }
    faults.complete("wal.create", header.len() as u64);

    // 6. Commit: CURRENT now names the complete epoch.
    let mut current = Vec::with_capacity(28);
    current.extend_from_slice(CURRENT_MAGIC);
    put_u32(&mut current, CURRENT_VERSION).map_err(SplashError::Io)?;
    put_u64(&mut current, epoch).map_err(SplashError::Io)?;
    put_u64(&mut current, fnv1a(&epoch.to_le_bytes())).map_err(SplashError::Io)?;
    write_file_atomic(faults, "current", &dir.join(CURRENT_FILE), &current)?;

    Ok(wal)
}

/// Reads and validates the `CURRENT` pointer; a missing file is
/// [`SplashError::CheckpointMissing`] (nothing committed yet).
fn read_current(dir: &Path) -> Result<u64, SplashError> {
    let path = dir.join(CURRENT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(SplashError::CheckpointMissing { dir: dir.display().to_string() });
        }
        Err(e) => return Err(SplashError::Io(e)),
    };
    if bytes.len() < 12 || &bytes[..8] != CURRENT_MAGIC {
        return Err(SplashError::CorruptModel {
            what: "CURRENT is not a SPLASH epoch pointer (bad magic)".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if version != CURRENT_VERSION {
        return Err(SplashError::PersistVersionMismatch {
            found: version,
            supported: CURRENT_VERSION,
        });
    }
    if bytes.len() != 28 {
        return Err(SplashError::CorruptModel { what: "CURRENT has the wrong length".into() });
    }
    let epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("length checked"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("length checked"));
    if checksum != fnv1a(&epoch.to_le_bytes()) {
        return Err(SplashError::CorruptModel { what: "CURRENT fails its checksum".into() });
    }
    Ok(epoch)
}

/// Best-effort removal of every durable file that does not belong to
/// `keep_epoch`: uncommitted orphans from a crashed checkpoint, the
/// previous epoch after a successful one, and stray `.tmp` files. Only
/// files matching this module's naming are touched.
fn gc_epochs(dir: &Path, keep_epoch: u64) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == CURRENT_FILE {
            continue;
        }
        let doomed = match durable_file_epoch(&name) {
            Some(epoch) => epoch != keep_epoch,
            None => name.ends_with(".tmp") && durable_file_epoch(name.trim_end_matches(".tmp")).is_some()
                || name == format!("{CURRENT_FILE}.tmp"),
        };
        if doomed {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Parses the epoch out of a durable file name (`model.<e>.bin[.shardN]`,
/// `witness.<e>.bin`, `state.<e>.bin[.shardN]`, `wal.<e>.log`); `None` for
/// anything else.
fn durable_file_epoch(name: &str) -> Option<u64> {
    let rest = name
        .strip_prefix("model.")
        .or_else(|| name.strip_prefix("witness."))
        .or_else(|| name.strip_prefix("state."))
        .or_else(|| name.strip_prefix("wal."))?;
    let (epoch, suffix) = rest.split_once('.')?;
    let epoch: u64 = epoch.parse().ok()?;
    let valid = suffix == "bin"
        || suffix == "log"
        || (suffix.starts_with("bin.shard")
            && suffix["bin.shard".len()..].parse::<u64>().is_ok());
    valid.then_some(epoch)
}

// ---------------------------------------------------------------------------
// State snapshot encoding.

fn put_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> io::Result<()> {
    put_u64(w, m.rows() as u64)?;
    put_u64(w, m.cols() as u64)?;
    for &x in m.data() {
        put_f32(w, x)?;
    }
    Ok(())
}

fn read_matrix<R: Read>(r: &mut R, what: &str) -> io::Result<Matrix> {
    let rows = get_u64(r)?;
    let cols = get_u64(r)?;
    if rows > MAX_NODES || cols > persist::MAX_DIM || rows.saturating_mul(cols) > MAX_STATE_ELEMS
    {
        return Err(bad(format!("impossible {what} shape {rows}x{cols}")));
    }
    let mut m = Matrix::zeros(rows as usize, cols as usize);
    for x in m.data_mut() {
        *x = get_f32(r)?;
    }
    Ok(m)
}

fn write_prop<W: Write>(w: &mut W, prop: &[Option<Vec<f32>>]) -> io::Result<()> {
    put_u64(w, prop.len() as u64)?;
    for slot in prop {
        match slot {
            None => put_u8(w, 0)?,
            Some(f) => {
                put_u8(w, 1)?;
                put_u64(w, f.len() as u64)?;
                for &x in f {
                    put_f32(w, x)?;
                }
            }
        }
    }
    Ok(())
}

fn read_prop<R: Read>(r: &mut R, dv: usize, what: &str) -> io::Result<Vec<Option<Vec<f32>>>> {
    let len = get_u64(r)?;
    if len > MAX_NODES {
        return Err(bad(format!("impossible {what} length {len}")));
    }
    let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
    for _ in 0..len {
        match get_u8(r)? {
            0 => out.push(None),
            1 => {
                let n = get_u64(r)? as usize;
                if n != dv {
                    return Err(bad(format!(
                        "{what} entry has {n} elements, feature dim is {dv}"
                    )));
                }
                let mut f = vec![0.0f32; n];
                for x in &mut f {
                    *x = get_f32(r)?;
                }
                out.push(Some(f));
            }
            t => return Err(bad(format!("unknown {what} slot tag {t}"))),
        }
    }
    Ok(out)
}

fn write_neighbor<W: Write>(w: &mut W, e: &CapturedNeighbor) -> io::Result<()> {
    put_u32(w, e.other)?;
    put_f64(w, e.time)?;
    put_f32(w, e.weight)?;
    put_u64(w, e.feat.len() as u64)?;
    for &x in &e.feat {
        put_f32(w, x)?;
    }
    put_u64(w, e.edge_feat.len() as u64)?;
    for &x in &e.edge_feat {
        put_f32(w, x)?;
    }
    Ok(())
}

fn read_neighbor<R: Read>(r: &mut R) -> io::Result<CapturedNeighbor> {
    let other = get_u32(r)?;
    let time = get_f64(r)?;
    let weight = get_f32(r)?;
    let feat_len = sane_dim("ring-entry feature width", get_u64(r)?)?;
    let mut feat = vec![0.0f32; feat_len];
    for x in &mut feat {
        *x = get_f32(r)?;
    }
    let edge_len = sane_dim("ring-entry edge-feature width", get_u64(r)?)?;
    let mut edge_feat = vec![0.0f32; edge_len];
    for x in &mut edge_feat {
        *x = get_f32(r)?;
    }
    Ok(CapturedNeighbor { other, feat, edge_feat, time, weight })
}

/// Serializes the global witness snapshot: stream clock, ring capacity,
/// and the full augmenter/tracker state — everything that is a global
/// function of the edge stream, written once per checkpoint.
fn witness_snapshot_bytes(witness: &WitnessSnapshot) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    w.extend_from_slice(WITNESS_MAGIC);
    put_u32(&mut w, WITNESS_VERSION)?;
    put_f64(&mut w, witness.last_time)?;
    put_u64(&mut w, witness.k as u64)?;

    let a = &witness.augmenter;
    put_u64(&mut w, a.dv as u64)?;
    put_u64(&mut w, a.seen.len() as u64)?;
    for &b in &a.seen {
        put_u8(&mut w, b as u8)?;
    }
    write_matrix(&mut w, &a.random_seen)?;
    write_matrix(&mut w, &a.positional_seen)?;
    write_prop(&mut w, &a.random_prop)?;
    write_prop(&mut w, &a.positional_prop)?;
    put_u64(&mut w, a.degrees.len() as u64)?;
    for &d in &a.degrees {
        put_u64(&mut w, d)?;
    }
    put_u64(&mut w, a.degrees_total)?;
    Ok(w)
}

/// Parses the witness file (already checksum-verified against the state
/// manifest).
fn read_witness_snapshot(bytes: &[u8]) -> Result<WitnessSnapshot, SplashError> {
    let mut r = bytes;
    let r = &mut r;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(corrupt_or_io)?;
    if &magic != WITNESS_MAGIC {
        return Err(SplashError::CorruptModel {
            what: "not a SPLASH witness snapshot (bad magic)".into(),
        });
    }
    let version = get_u32(r).map_err(corrupt_or_io)?;
    if version != WITNESS_VERSION {
        return Err(SplashError::PersistVersionMismatch {
            found: version,
            supported: WITNESS_VERSION,
        });
    }
    read_witness_body(r).map_err(corrupt_or_io)
}

fn read_witness_body<R: Read>(r: &mut R) -> io::Result<WitnessSnapshot> {
    let last_time = get_f64(r)?;
    let k = sane_dim("ring capacity", get_u64(r)?)?;

    let dv = sane_dim("feature dim", get_u64(r)?)?;
    let seen_len = get_u64(r)?;
    if seen_len > MAX_NODES {
        return Err(bad(format!("impossible seen-table length {seen_len}")));
    }
    let mut seen = Vec::with_capacity(seen_len.min(1 << 20) as usize);
    for _ in 0..seen_len {
        seen.push(match get_u8(r)? {
            0 => false,
            1 => true,
            t => return Err(bad(format!("seen flag is {t}, not 0/1"))),
        });
    }
    let random_seen = read_matrix(r, "random-feature table")?;
    let positional_seen = read_matrix(r, "positional-feature table")?;
    if random_seen.cols() != dv || positional_seen.cols() != dv {
        return Err(bad("feature tables disagree with the feature dim".to_string()));
    }
    let random_prop = read_prop(r, dv, "propagated random features")?;
    let positional_prop = read_prop(r, dv, "propagated positional features")?;
    let deg_len = get_u64(r)?;
    if deg_len > MAX_NODES {
        return Err(bad(format!("impossible degree-table length {deg_len}")));
    }
    let mut degrees = Vec::with_capacity(deg_len.min(1 << 20) as usize);
    for _ in 0..deg_len {
        degrees.push(get_u64(r)?);
    }
    let degrees_total = get_u64(r)?;

    Ok(WitnessSnapshot {
        augmenter: AugmenterState {
            dv,
            seen,
            random_seen,
            positional_seen,
            random_prop,
            positional_prop,
            degrees,
            degrees_total,
        },
        k,
        last_time,
    })
}

/// Serializes one shard's ring partition (v2: rings only — the witness
/// travels in its own file).
fn state_shard_bytes(rings: &[RingState], shard: usize, shards: usize) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    w.extend_from_slice(STATE_MAGIC);
    put_u32(&mut w, STATE_VERSION)?;
    put_u64(&mut w, shard as u64)?;
    put_u64(&mut w, shards as u64)?;
    put_u64(&mut w, rings.len() as u64)?;
    for ring in rings {
        put_u32(&mut w, ring.node)?;
        put_u64(&mut w, ring.head as u64)?;
        put_u64(&mut w, ring.entries.len() as u64)?;
        for e in &ring.entries {
            write_neighbor(&mut w, e)?;
        }
    }
    Ok(w)
}

/// Parses one shard's ring-partition file (already checksum-verified
/// against the manifest). `k` is the witness's ring capacity, bounding
/// every ring's entry count.
fn read_state_shard(bytes: &[u8], k: usize) -> Result<Vec<RingState>, SplashError> {
    let mut r = bytes;
    let r = &mut r;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(corrupt_or_io)?;
    if &magic != STATE_MAGIC {
        return Err(SplashError::CorruptModel {
            what: "not a SPLASH state snapshot (bad magic)".into(),
        });
    }
    let version = get_u32(r).map_err(corrupt_or_io)?;
    if version != STATE_VERSION {
        return Err(SplashError::PersistVersionMismatch {
            found: version,
            supported: STATE_VERSION,
        });
    }
    read_state_body(r, k).map_err(corrupt_or_io)
}

fn read_state_body<R: Read>(r: &mut R, k: usize) -> io::Result<Vec<RingState>> {
    let _shard = get_u64(r)?;
    let shards = get_u64(r)?;
    if shards == 0 || shards > 1 << 20 {
        return Err(bad(format!("impossible shard count {shards}")));
    }
    let ring_count = get_u64(r)?;
    if ring_count > MAX_NODES {
        return Err(bad(format!("impossible ring count {ring_count}")));
    }
    let mut rings = Vec::with_capacity(ring_count.min(1 << 20) as usize);
    for _ in 0..ring_count {
        let node = get_u32(r)?;
        let head = get_u64(r)? as usize;
        let entries_len = get_u64(r)? as usize;
        if entries_len > k || head >= entries_len.max(1) {
            return Err(bad(format!(
                "ring for node {node} is inconsistent ({entries_len} entries, head {head}, k={k})"
            )));
        }
        let mut entries = Vec::with_capacity(entries_len);
        for _ in 0..entries_len {
            entries.push(read_neighbor(r)?);
        }
        rings.push(RingState { node, head, entries });
    }
    Ok(rings)
}

// ---------------------------------------------------------------------------
// State manifest encoding (checksums + counters + replay buffer).

fn write_label<W: Write>(w: &mut W, label: &Label) -> io::Result<()> {
    match label {
        Label::Class(c) => {
            put_u8(w, 0)?;
            put_u64(w, *c as u64)?;
        }
        Label::Affinity(a) => {
            put_u8(w, 1)?;
            put_u64(w, a.len() as u64)?;
            for &x in a.iter() {
                put_f32(w, x)?;
            }
        }
    }
    Ok(())
}

fn read_label<R: Read>(r: &mut R) -> io::Result<Label> {
    match get_u8(r)? {
        0 => Ok(Label::Class(get_u64(r)? as usize)),
        1 => {
            let n = sane_dim("affinity width", get_u64(r)?)?;
            let mut a = vec![0.0f32; n];
            for x in &mut a {
                *x = get_f32(r)?;
            }
            Ok(Label::Affinity(a.into_boxed_slice()))
        }
        t => Err(bad(format!("unknown label tag {t}"))),
    }
}

fn write_captured_query<W: Write>(w: &mut W, q: &CapturedQuery) -> io::Result<()> {
    put_u32(w, q.node)?;
    put_f64(w, q.time)?;
    put_u64(w, q.target_feat.len() as u64)?;
    for &x in &q.target_feat {
        put_f32(w, x)?;
    }
    put_u64(w, q.neighbors.len() as u64)?;
    for n in &q.neighbors {
        write_neighbor(w, n)?;
    }
    write_label(w, &q.label)
}

fn read_captured_query<R: Read>(r: &mut R) -> io::Result<CapturedQuery> {
    let node = get_u32(r)?;
    let time = get_f64(r)?;
    let feat_len = sane_dim("captured-query feature width", get_u64(r)?)?;
    let mut target_feat = vec![0.0f32; feat_len];
    for x in &mut target_feat {
        *x = get_f32(r)?;
    }
    let n_len = sane_dim("captured-query neighbor count", get_u64(r)?)?;
    let mut neighbors = Vec::with_capacity(n_len);
    for _ in 0..n_len {
        neighbors.push(read_neighbor(r)?);
    }
    let label = read_label(r)?;
    Ok(CapturedQuery { node, time, target_feat, neighbors, label })
}

/// Serializes the state manifest, ending with a whole-file FNV-1a
/// checksum so a damaged counters/buffer section loads as a typed error.
/// The witness file's entry comes first, then the per-shard ring files.
fn state_manifest_bytes(
    witness_file: &(String, u64),
    shard_files: &[(String, u64)],
    counters: &PersistedCounters,
    trainer: Option<&TrainerState>,
) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    w.extend_from_slice(STATE_MANIFEST_MAGIC);
    put_u32(&mut w, STATE_MANIFEST_VERSION)?;
    put_u64(&mut w, witness_file.0.len() as u64)?;
    w.extend_from_slice(witness_file.0.as_bytes());
    put_u64(&mut w, witness_file.1)?;
    put_u64(&mut w, shard_files.len() as u64)?;
    for (name, checksum) in shard_files {
        put_u64(&mut w, name.len() as u64)?;
        w.extend_from_slice(name.as_bytes());
        put_u64(&mut w, *checksum)?;
    }
    for v in [
        counters.edges_ingested,
        counters.edges_dropped,
        counters.labels_buffered,
        counters.labels_dropped,
        counters.fine_tunes,
        counters.fine_tune_steps,
        counters.publishes,
    ] {
        put_u64(&mut w, v)?;
    }
    match trainer {
        None => put_u8(&mut w, 0)?,
        Some(t) => {
            put_u8(&mut w, 1)?;
            put_u8(
                &mut w,
                match t.task {
                    Task::Anomaly => 0,
                    Task::Classification => 1,
                    Task::Affinity => 2,
                },
            )?;
            put_u64(&mut w, t.capacity as u64)?;
            put_u64(&mut w, t.head as u64)?;
            put_u64(&mut w, t.filled as u64)?;
            put_u64(&mut w, t.labels_seen)?;
            put_u64(&mut w, t.tunes)?;
            put_u64(&mut w, t.since_tune as u64)?;
            put_u64(&mut w, t.buffer.len() as u64)?;
            for q in &t.buffer {
                write_captured_query(&mut w, q)?;
            }
        }
    }
    let checksum = fnv1a(&w);
    put_u64(&mut w, checksum)?;
    Ok(w)
}

/// Reads the state manifest: the witness file + checksum, shard files +
/// checksums, the durable counters, and the optional replay buffer.
#[allow(clippy::type_complexity)]
fn read_state_manifest(
    path: &Path,
) -> Result<
    ((String, u64), Vec<(String, u64)>, PersistedCounters, Option<TrainerState>),
    SplashError,
> {
    let bytes = fs::read(path)?;
    if bytes.len() < 20 || &bytes[..8] != STATE_MANIFEST_MAGIC {
        return Err(SplashError::CorruptModel {
            what: "not a SPLASH state manifest (bad magic)".into(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if version != STATE_MANIFEST_VERSION {
        return Err(SplashError::PersistVersionMismatch {
            found: version,
            supported: STATE_MANIFEST_VERSION,
        });
    }
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("length checked"));
    if fnv1a(&bytes[..body_len]) != stored {
        return Err(SplashError::CorruptModel {
            what: "state manifest fails its checksum".into(),
        });
    }
    let mut r = &bytes[12..body_len];
    let r = &mut r;
    read_state_manifest_body(r).map_err(corrupt_or_io)
}

#[allow(clippy::type_complexity)]
fn read_state_manifest_body<R: Read>(
    r: &mut R,
) -> io::Result<((String, u64), Vec<(String, u64)>, PersistedCounters, Option<TrainerState>)> {
    let read_entry = |r: &mut R, what: &str| -> io::Result<(String, u64)> {
        let len = get_u64(r)? as usize;
        if len == 0 || len > 4096 {
            return Err(bad(format!("impossible {what} file-name length {len}")));
        }
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| bad(format!("{what} file name is not UTF-8")))?;
        Ok((name, get_u64(r)?))
    };
    let witness = read_entry(r, "witness")?;
    let shards = get_u64(r)?;
    if shards == 0 || shards > 1 << 20 {
        return Err(bad(format!("impossible shard count {shards}")));
    }
    let mut files = Vec::with_capacity(shards as usize);
    for _ in 0..shards {
        files.push(read_entry(r, "state")?);
    }
    let counters = PersistedCounters {
        edges_ingested: get_u64(r)?,
        edges_dropped: get_u64(r)?,
        labels_buffered: get_u64(r)?,
        labels_dropped: get_u64(r)?,
        fine_tunes: get_u64(r)?,
        fine_tune_steps: get_u64(r)?,
        publishes: get_u64(r)?,
    };
    let trainer = match get_u8(r)? {
        0 => None,
        1 => {
            let task = match get_u8(r)? {
                0 => Task::Anomaly,
                1 => Task::Classification,
                2 => Task::Affinity,
                t => return Err(bad(format!("unknown trainer task tag {t}"))),
            };
            let capacity = sane_dim("replay-buffer capacity", get_u64(r)?)?;
            let head = get_u64(r)? as usize;
            let filled = get_u64(r)? as usize;
            let labels_seen = get_u64(r)?;
            let tunes = get_u64(r)?;
            let since_tune = get_u64(r)? as usize;
            let len = sane_dim("replay-buffer length", get_u64(r)?)?;
            if len > capacity || filled > len || head >= len.max(1) {
                return Err(bad(format!(
                    "replay buffer is inconsistent ({len} stored, head {head}, \
                     filled {filled}, capacity {capacity})"
                )));
            }
            let mut buffer = Vec::with_capacity(len);
            for _ in 0..len {
                buffer.push(read_captured_query(r)?);
            }
            Some(TrainerState {
                task,
                buffer,
                head,
                filled,
                capacity,
                labels_seen,
                tunes,
                since_tune,
            })
        }
        t => return Err(bad(format!("unknown trainer-section tag {t}"))),
    };
    Ok((witness, files, counters, trainer))
}

// ---------------------------------------------------------------------------
// WAL encoding and replay.

/// Encodes `record` into `w` (cleared first). Taking the buffer from the
/// caller lets [`DurableLog::append`] reuse one scratch vector across
/// appends — the steady-state WAL path performs zero heap allocations
/// after warm-up (pinned in `crates/splash/tests/alloc.rs`).
fn encode_wal_payload_into(mut w: &mut Vec<u8>, record: WalRecord<'_>) -> io::Result<()> {
    w.clear();
    match record {
        WalRecord::Edges { edges, drop_late } => {
            put_u8(&mut w, WAL_EDGES)?;
            put_u8(&mut w, drop_late as u8)?;
            put_u64(&mut w, edges.len() as u64)?;
            for e in edges {
                put_u32(&mut w, e.src)?;
                put_u32(&mut w, e.dst)?;
                put_f64(&mut w, e.time)?;
                put_f32(&mut w, e.weight)?;
                put_u64(&mut w, e.feat.len() as u64)?;
                for &x in e.feat.iter() {
                    put_f32(&mut w, x)?;
                }
            }
        }
        WalRecord::Labels(queries) => {
            put_u8(&mut w, WAL_LABELS)?;
            put_u64(&mut w, queries.len() as u64)?;
            for q in queries {
                put_u32(&mut w, q.node)?;
                put_f64(&mut w, q.time)?;
                write_label(&mut w, &q.label)?;
            }
        }
        WalRecord::FineTune => put_u8(&mut w, WAL_FINE_TUNE)?,
        WalRecord::Publish => put_u8(&mut w, WAL_PUBLISH)?,
    }
    Ok(())
}

fn decode_wal_payload(payload: &[u8]) -> io::Result<WalEntry> {
    let mut r = payload;
    let r = &mut r;
    let entry = match get_u8(r)? {
        WAL_EDGES => {
            let drop_late = match get_u8(r)? {
                0 => false,
                1 => true,
                t => return Err(bad(format!("edge-record policy flag is {t}, not 0/1"))),
            };
            let count = get_u64(r)?;
            if count > MAX_WAL_RECORD {
                return Err(bad(format!("impossible edge count {count}")));
            }
            let mut edges = Vec::with_capacity(count.min(1 << 20) as usize);
            for _ in 0..count {
                let src = get_u32(r)?;
                let dst = get_u32(r)?;
                let time = get_f64(r)?;
                let weight = get_f32(r)?;
                let feat_len = sane_dim("edge feature width", get_u64(r)?)?;
                let mut feat = vec![0.0f32; feat_len];
                for x in &mut feat {
                    *x = get_f32(r)?;
                }
                edges.push(TemporalEdge {
                    src,
                    dst,
                    feat: feat.into_boxed_slice(),
                    weight,
                    time,
                });
            }
            WalEntry::Edges { edges, drop_late }
        }
        WAL_LABELS => {
            let count = get_u64(r)?;
            if count > MAX_WAL_RECORD {
                return Err(bad(format!("impossible label count {count}")));
            }
            let mut queries = Vec::with_capacity(count.min(1 << 20) as usize);
            for _ in 0..count {
                let node = get_u32(r)?;
                let time = get_f64(r)?;
                let label = read_label(r)?;
                queries.push(PropertyQuery { node, time, label });
            }
            WalEntry::Labels(queries)
        }
        WAL_FINE_TUNE => WalEntry::FineTune,
        WAL_PUBLISH => WalEntry::Publish,
        t => return Err(bad(format!("unknown WAL record tag {t}"))),
    };
    let mut rest = [0u8; 1];
    match r.read(&mut rest)? {
        0 => Ok(entry),
        _ => Err(bad("WAL record carries trailing bytes".to_string())),
    }
}

/// The result of scanning a WAL file.
struct WalScan {
    entries: Vec<WalEntry>,
    /// File length up to and including the last valid record.
    valid_len: u64,
    /// Whether trailing bytes past `valid_len` were found (a torn tail).
    truncated: bool,
}

/// Scans a WAL: header, then records until the file ends cleanly, a torn
/// tail is found (truncation point), or mid-file damage surfaces
/// ([`SplashError::WalCorrupt`]).
fn read_wal(path: &Path, expect_epoch: u64) -> Result<WalScan, SplashError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 20 || &bytes[..8] != WAL_MAGIC {
        return Err(SplashError::WalCorrupt {
            what: format!("{:?} is not a SPLASH WAL (bad or torn header)", path.file_name()),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if version != WAL_VERSION {
        return Err(SplashError::PersistVersionMismatch {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("length checked"));
    if epoch != expect_epoch {
        return Err(SplashError::WalCorrupt {
            what: format!("WAL header claims epoch {epoch}, CURRENT names {expect_epoch}"),
        });
    }

    let mut entries = Vec::new();
    let mut pos = 20usize;
    loop {
        if pos == bytes.len() {
            // Clean end at a record boundary.
            return Ok(WalScan { entries, valid_len: pos as u64, truncated: false });
        }
        if bytes.len() - pos < 4 {
            // Torn length prefix.
            return Ok(WalScan { entries, valid_len: pos as u64, truncated: true });
        }
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length checked")) as u64;
        let remaining = (bytes.len() - pos - 4) as u64;
        if len > MAX_WAL_RECORD {
            if remaining < len {
                // Garbage length at the tail: a torn write.
                return Ok(WalScan { entries, valid_len: pos as u64, truncated: true });
            }
            return Err(SplashError::WalCorrupt {
                what: format!("record {} claims an impossible {len}-byte payload", entries.len()),
            });
        }
        if remaining < len + 8 {
            // Payload or checksum cut short: a torn write.
            return Ok(WalScan { entries, valid_len: pos as u64, truncated: true });
        }
        let payload = &bytes[pos + 4..pos + 4 + len as usize];
        let stored = u64::from_le_bytes(
            bytes[pos + 4 + len as usize..pos + 12 + len as usize]
                .try_into()
                .expect("length checked"),
        );
        if fnv1a(payload) != stored {
            // A complete record with a bad checksum is damage, not a torn
            // tail — unless it is the *last* record, where a torn write
            // that happened to leave the right byte count is
            // indistinguishable from a flip; both resolve by truncation.
            if pos + 12 + len as usize == bytes.len() {
                return Ok(WalScan { entries, valid_len: pos as u64, truncated: true });
            }
            return Err(SplashError::WalCorrupt {
                what: format!("record {} fails its checksum", entries.len()),
            });
        }
        let entry = decode_wal_payload(payload).map_err(|e| SplashError::WalCorrupt {
            what: format!("record {} is undecodable: {e}", entries.len()),
        })?;
        entries.push(entry);
        pos += 12 + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("splash-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_writer_truncates_at_the_programmed_offset() {
        let mut sink = Vec::new();
        {
            let mut w = DurableWriter::with_fault(&mut sink, 5);
            w.write_all(b"abc").unwrap();
            let err = w.write_all(b"defgh").unwrap_err();
            assert!(err.to_string().contains("injected"));
        }
        assert_eq!(sink, b"abcde");
    }

    #[test]
    fn durable_writer_passes_through_without_a_fault() {
        let mut sink = Vec::new();
        let mut w = DurableWriter::new(&mut sink);
        w.write_all(b"hello").unwrap();
        assert_eq!(w.written(), 5);
        drop(w);
        assert_eq!(sink, b"hello");
    }

    #[test]
    fn fault_plan_targets_the_nth_operation() {
        let plan = FaultPlan::new();
        plan.arm_write(2, 7);
        assert_eq!(plan.next(), None);
        assert_eq!(plan.next(), None);
        assert_eq!(plan.next(), Some(FaultKind::WriteAt(7)));
        assert!(plan.fired());
        // Fires once.
        assert_eq!(plan.next(), None);
    }

    #[test]
    fn current_pointer_round_trips_and_rejects_damage() {
        let dir = tmp_dir("current");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CURRENT_MAGIC);
        put_u32(&mut bytes, CURRENT_VERSION).unwrap();
        put_u64(&mut bytes, 42).unwrap();
        put_u64(&mut bytes, fnv1a(&42u64.to_le_bytes())).unwrap();
        fs::write(dir.join(CURRENT_FILE), &bytes).unwrap();
        assert_eq!(read_current(&dir).unwrap(), 42);

        // Flip a byte of the epoch: checksum mismatch.
        let mut damaged = bytes.clone();
        damaged[13] ^= 0xFF;
        fs::write(dir.join(CURRENT_FILE), &damaged).unwrap();
        assert!(matches!(read_current(&dir), Err(SplashError::CorruptModel { .. })));

        // Missing: typed as CheckpointMissing.
        fs::remove_file(dir.join(CURRENT_FILE)).unwrap();
        assert!(matches!(read_current(&dir), Err(SplashError::CheckpointMissing { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_records_round_trip() {
        let dir = tmp_dir("walrt");
        let path = dir.join("wal.0.log");
        let mut header = Vec::new();
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION).unwrap();
        put_u64(&mut header, 0).unwrap();
        fs::write(&path, &header).unwrap();
        let mut log = DurableLog {
            dir: dir.clone(),
            checkpoint_every: 100,
            faults: FaultPlan::new(),
            epoch: 0,
            wal: OpenOptions::new().append(true).open(&path).unwrap(),
            wal_records: 0,
            payload_buf: Vec::new(),
            rec_buf: Vec::new(),
        };
        let edges = vec![
            TemporalEdge::plain(1, 2, 10.0),
            TemporalEdge { src: 3, dst: 4, feat: vec![0.5, -0.5].into(), weight: 2.0, time: 11.0 },
        ];
        log.append(WalRecord::Edges { edges: &edges, drop_late: true }).unwrap();
        let labels = vec![PropertyQuery { node: 7, time: 12.0, label: Label::Class(3) }];
        log.append(WalRecord::Labels(&labels)).unwrap();
        log.append(WalRecord::FineTune).unwrap();
        log.append(WalRecord::Publish).unwrap();
        assert_eq!(log.wal_records, 4);
        drop(log);

        let scan = read_wal(&path, 0).unwrap();
        assert!(!scan.truncated);
        assert_eq!(scan.entries.len(), 4);
        match &scan.entries[0] {
            WalEntry::Edges { edges: got, drop_late } => {
                assert!(drop_late);
                assert_eq!(got.len(), 2);
                assert_eq!(got[1].feat.as_ref(), &[0.5, -0.5]);
                assert_eq!(got[1].weight, 2.0);
            }
            other => panic!("expected edges, got {other:?}"),
        }
        match &scan.entries[1] {
            WalEntry::Labels(got) => assert!(matches!(got[0].label, Label::Class(3))),
            other => panic!("expected labels, got {other:?}"),
        }
        assert!(matches!(scan.entries[2], WalEntry::FineTune));
        assert!(matches!(scan.entries[3], WalEntry::Publish));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("waltorn");
        let path = dir.join("wal.0.log");
        let mut header = Vec::new();
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION).unwrap();
        put_u64(&mut header, 0).unwrap();
        fs::write(&path, &header).unwrap();
        let mut log = DurableLog {
            dir: dir.clone(),
            checkpoint_every: 100,
            faults: FaultPlan::new(),
            epoch: 0,
            wal: OpenOptions::new().append(true).open(&path).unwrap(),
            wal_records: 0,
            payload_buf: Vec::new(),
            rec_buf: Vec::new(),
        };
        let edges = vec![TemporalEdge::plain(1, 2, 10.0)];
        log.append(WalRecord::Edges { edges: &edges, drop_late: false }).unwrap();
        drop(log);
        let full = fs::read(&path).unwrap();
        let valid_len = full.len() as u64;

        // Every strict prefix past the header parses as a torn tail that
        // truncates back to the header (no complete record survives).
        for cut in (21..full.len()).rev() {
            fs::write(&path, &full[..cut]).unwrap();
            let scan = read_wal(&path, 0).unwrap();
            assert!((cut as u64) < valid_len);
            assert!(scan.truncated, "cut {cut} should be a torn tail");
            assert_eq!(scan.entries.len(), 0);
            assert_eq!(scan.valid_len, 20);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn midfile_wal_damage_is_typed_corruption() {
        let dir = tmp_dir("walflip");
        let path = dir.join("wal.0.log");
        let mut header = Vec::new();
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION).unwrap();
        put_u64(&mut header, 0).unwrap();
        fs::write(&path, &header).unwrap();
        let mut log = DurableLog {
            dir: dir.clone(),
            checkpoint_every: 100,
            faults: FaultPlan::new(),
            epoch: 0,
            wal: OpenOptions::new().append(true).open(&path).unwrap(),
            wal_records: 0,
            payload_buf: Vec::new(),
            rec_buf: Vec::new(),
        };
        log.append(WalRecord::Edges { edges: &[TemporalEdge::plain(1, 2, 10.0)], drop_late: false })
            .unwrap();
        log.append(WalRecord::Edges { edges: &[TemporalEdge::plain(2, 3, 11.0)], drop_late: false })
            .unwrap();
        drop(log);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the *first* record: complete record, bad
        // checksum, not the tail → WalCorrupt.
        bytes[26] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wal(&path, 0), Err(SplashError::WalCorrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_file_names_parse() {
        assert_eq!(durable_file_epoch("model.3.bin"), Some(3));
        assert_eq!(durable_file_epoch("model.3.bin.shard1"), Some(3));
        assert_eq!(durable_file_epoch("witness.7.bin"), Some(7));
        assert_eq!(durable_file_epoch("witness.x.bin"), None);
        assert_eq!(durable_file_epoch("state.12.bin"), Some(12));
        assert_eq!(durable_file_epoch("wal.0.log"), Some(0));
        assert_eq!(durable_file_epoch("CURRENT"), None);
        assert_eq!(durable_file_epoch("model.x.bin"), None);
        assert_eq!(durable_file_epoch("notes.txt"), None);
        assert_eq!(durable_file_epoch("model.3.bin.tmp"), None);
    }
}
