//! SPLASH hyperparameters.

use embed::{GraRepConfig, Node2VecConfig};

use crate::error::SplashError;

/// Which implementation of the positional `Embedding(G^(s))` function
/// (paper Eq. 1) augmentation uses for seen nodes. The paper uses node2vec
/// and notes any positional embedding works; GraRep is the §II-D
/// alternative provided here (DeepWalk is node2vec with `p = q = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PositionalSource {
    /// node2vec over the training snapshot (the paper's choice).
    Node2Vec,
    /// GraRep: truncated-SVD factorization of log transition powers.
    GraRep(GraRepConfig),
}

/// All knobs of the SPLASH pipeline. Defaults follow the paper's spirit at
//  the scaled-down dataset sizes used in this reproduction.
#[derive(Debug, Clone, Copy)]
pub struct SplashConfig {
    /// Augmented node feature dimension `d_v`.
    pub feat_dim: usize,
    /// Recent-neighbor memory size `k` (Eq. 6).
    pub k: usize,
    /// Time-encoding dimension `d_t` (Eq. 15).
    pub time_dim: usize,
    /// Hidden width of the SLIM MLPs.
    pub hidden: usize,
    /// Skip-connection weight `λ_s` (Eq. 18).
    pub lambda_s: f32,
    /// Degree-encoding resolution `α` (Eq. 3).
    pub degree_alpha: f32,
    /// Time-encoding scale `α` (Eq. 15).
    pub time_alpha: f32,
    /// Time-encoding scale `β` (Eq. 15).
    pub time_beta: f32,
    /// node2vec configuration for positional augmentation (Eq. 1).
    pub node2vec: Node2VecConfig,
    /// Which positional embedding implements Eq. 1 (node2vec by default).
    pub positional: PositionalSource,
    /// Adam learning rate for SLIM training.
    pub lr: f32,
    /// SLIM training epochs over the training property set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Epochs for the linear feature-selection models (§IV-B).
    pub selector_epochs: usize,
    /// Learning rate for the linear feature-selection models.
    pub selector_lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SplashConfig {
    fn default() -> Self {
        let feat_dim = 32;
        Self {
            feat_dim,
            k: 10,
            time_dim: 16,
            hidden: 64,
            lambda_s: 0.5,
            degree_alpha: 50.0,
            time_alpha: 4.0,
            time_beta: 4.0,
            node2vec: Node2VecConfig::fast(feat_dim),
            positional: PositionalSource::Node2Vec,
            lr: 1e-3,
            epochs: 10,
            batch_size: 128,
            selector_epochs: 6,
            selector_lr: 5e-3,
            seed: 17,
        }
    }
}

impl SplashConfig {
    /// Checks that the configuration describes a buildable, trainable
    /// model: structural dimensions must be positive and every scale must
    /// be finite. Called by the service builder before any training or
    /// loading happens, so a bad knob surfaces as one
    /// [`SplashError::InvalidConfig`] instead of a panic (or a hang) deep
    /// inside the pipeline.
    pub fn validate(&self) -> Result<(), SplashError> {
        let invalid = |what: String| Err(SplashError::InvalidConfig { what });
        if self.feat_dim == 0 {
            return invalid("feat_dim must be positive".into());
        }
        if self.k == 0 {
            return invalid("k (recent-neighbor memory size) must be positive".into());
        }
        if self.hidden == 0 {
            return invalid("hidden width must be positive".into());
        }
        if self.time_dim == 0 {
            return invalid("time_dim must be positive".into());
        }
        if self.batch_size == 0 {
            return invalid("batch_size must be positive".into());
        }
        for (name, value) in [
            ("lambda_s", self.lambda_s),
            ("degree_alpha", self.degree_alpha),
            ("time_alpha", self.time_alpha),
            ("time_beta", self.time_beta),
            ("lr", self.lr),
            ("selector_lr", self.selector_lr),
        ] {
            if !value.is_finite() {
                return invalid(format!("{name} must be finite, got {value}"));
            }
        }
        Ok(())
    }

    /// A smaller/faster configuration for unit tests.
    pub fn tiny() -> Self {
        let feat_dim = 8;
        Self {
            feat_dim,
            k: 4,
            time_dim: 4,
            hidden: 16,
            node2vec: Node2VecConfig::fast(feat_dim),
            epochs: 4,
            selector_epochs: 3,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_configs_validate() {
        SplashConfig::default().validate().unwrap();
        SplashConfig::tiny().validate().unwrap();
    }

    #[test]
    fn zero_dimensions_and_nonfinite_scales_are_rejected() {
        for breakage in [
            (&|c: &mut SplashConfig| c.feat_dim = 0) as &dyn Fn(&mut SplashConfig),
            &|c| c.k = 0,
            &|c| c.hidden = 0,
            &|c| c.time_dim = 0,
            &|c| c.batch_size = 0,
            &|c| c.lr = f32::NAN,
            &|c| c.time_alpha = f32::INFINITY,
            &|c| c.degree_alpha = f32::NEG_INFINITY,
        ] {
            let mut cfg = SplashConfig::tiny();
            breakage(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert!(
                matches!(err, SplashError::InvalidConfig { .. }),
                "expected InvalidConfig, got {err}"
            );
        }
    }
}
