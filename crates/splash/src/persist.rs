//! Save and load trained SLIM models.
//!
//! A saved file carries everything needed to rebuild a deployable
//! predictor: the full [`SplashConfig`], the selected augmentation process,
//! the model's input/output dimensions, and every trainable parameter.
//! Feature augmentation itself is *not* stored — the augmenter is fully
//! determined by the training stream and the (seeded) config, so a loaded
//! model paired with the same training prefix reproduces the original
//! predictor bit-for-bit (see `roundtrip_predictions_are_identical`).
//!
//! The on-disk format is a little-endian binary layout with an 8-byte magic
//! and a format-version word, written and parsed by hand: the model is a
//! flat list of shaped `f32` tensors plus a dozen scalars, which does not
//! justify a serialization dependency.
//!
//! Failures are typed ([`SplashError`]): a file that is not a SPLASH model
//! or has been damaged loads as [`SplashError::CorruptModel`], a file from
//! an incompatible format revision as
//! [`SplashError::PersistVersionMismatch`], and plain filesystem trouble
//! as [`SplashError::Io`] — so a serving layer can distinguish "retry with
//! the right file" from "re-export the model" from "fix the disk".

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use embed::{GraRepConfig, Node2VecConfig};
use nn::Parameterized;
use rand::{rngs::StdRng, SeedableRng};

use crate::augment::FeatureProcess;
use crate::capture::InputFeatures;
use crate::config::{PositionalSource, SplashConfig};
use crate::error::SplashError;
use crate::slim::SlimModel;

const MAGIC: &[u8; 8] = b"SPLASHM\x01";
const VERSION: u32 = 1;

/// A model restored from disk, with everything needed to serve it.
#[derive(Debug)]
pub struct SavedModel {
    /// The configuration the model was trained with.
    pub cfg: SplashConfig,
    /// The feature mode the model consumes (the selected process for a full
    /// SPLASH run, or the fixed mode of an ablation run) — this is what
    /// `capture` must be called with at serving time.
    pub mode: InputFeatures,
    /// Node-feature input width.
    pub feat_dim: usize,
    /// Edge-feature input width.
    pub edge_feat_dim: usize,
    /// Output (label) width.
    pub out_dim: usize,
    /// The restored model.
    pub model: SlimModel,
}

impl SavedModel {
    /// The selected augmentation process, when the mode is a single process.
    pub fn selected(&self) -> Option<FeatureProcess> {
        match self.mode {
            InputFeatures::Process(p) => Some(p),
            _ => None,
        }
    }
}

/// Writes `model` and its context to `path`.
///
/// `model` is taken mutably only because parameter access goes through
/// [`Parameterized::params_mut`]; values are not modified.
pub fn save_model(
    path: &Path,
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
) -> Result<(), SplashError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;
    write_config(&mut w, cfg)?;
    put_u8(&mut w, match mode {
        InputFeatures::Zero => 0,
        InputFeatures::RawRandom => 1,
        InputFeatures::External => 2,
        InputFeatures::Process(FeatureProcess::Random) => 3,
        InputFeatures::Process(FeatureProcess::Positional) => 4,
        InputFeatures::Process(FeatureProcess::Structural) => 5,
        InputFeatures::Joint => 6,
    })?;
    put_u64(&mut w, feat_dim as u64)?;
    put_u64(&mut w, edge_feat_dim as u64)?;
    put_u64(&mut w, out_dim as u64)?;

    let params = model.params_mut();
    put_u64(&mut w, params.len() as u64)?;
    for p in params {
        let (r, c) = p.value.shape();
        put_u64(&mut w, r as u64)?;
        put_u64(&mut w, c as u64)?;
        for &x in p.value.data() {
            put_f32(&mut w, x)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a model written by [`save_model`].
///
/// Typed failures: a wrong magic, truncation, or impossible tags/shapes
/// load as [`SplashError::CorruptModel`]; a recognisable SPLASH file from
/// another format revision as [`SplashError::PersistVersionMismatch`];
/// filesystem errors as [`SplashError::Io`].
pub fn load_model(path: &Path) -> Result<SavedModel, SplashError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(corrupt_or_io)?;
    if &magic != MAGIC {
        return Err(SplashError::CorruptModel {
            what: "not a SPLASH model file (bad magic)".into(),
        });
    }
    let version = get_u32(&mut r).map_err(corrupt_or_io)?;
    if version != VERSION {
        return Err(SplashError::PersistVersionMismatch { found: version, supported: VERSION });
    }
    read_body(&mut r).map_err(corrupt_or_io)
}

/// Classifies an error raised while parsing a file whose magic already
/// checked out: anything that means "the bytes are wrong" (truncation,
/// impossible tags or shapes) is a corrupt model; the rest is plain I/O.
fn corrupt_or_io(e: io::Error) -> SplashError {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => SplashError::CorruptModel {
            what: "file is truncated".into(),
        },
        io::ErrorKind::InvalidData => SplashError::CorruptModel { what: e.to_string() },
        _ => SplashError::Io(e),
    }
}

/// Parses everything after the magic + version header.
fn read_body<R: Read>(mut r: &mut R) -> io::Result<SavedModel> {
    let cfg = read_config(&mut r)?;
    let mode = match get_u8(&mut r)? {
        0 => InputFeatures::Zero,
        1 => InputFeatures::RawRandom,
        2 => InputFeatures::External,
        3 => InputFeatures::Process(FeatureProcess::Random),
        4 => InputFeatures::Process(FeatureProcess::Positional),
        5 => InputFeatures::Process(FeatureProcess::Structural),
        6 => InputFeatures::Joint,
        t => return Err(bad(format!("unknown feature-mode tag {t}"))),
    };
    let feat_dim = get_u64(&mut r)? as usize;
    let edge_feat_dim = get_u64(&mut r)? as usize;
    let out_dim = get_u64(&mut r)? as usize;

    // Rebuild the architecture, then overwrite every parameter in the
    // stable `params_mut` order.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x511D);
    let mut model = SlimModel::new(&cfg, feat_dim, edge_feat_dim, out_dim, &mut rng);
    let stored = get_u64(&mut r)? as usize;
    let params = model.params_mut();
    if stored != params.len() {
        return Err(bad(format!(
            "parameter count mismatch: file has {stored}, architecture has {}",
            params.len()
        )));
    }
    for (i, p) in params.into_iter().enumerate() {
        let rows = get_u64(&mut r)? as usize;
        let cols = get_u64(&mut r)? as usize;
        if (rows, cols) != p.value.shape() {
            return Err(bad(format!(
                "parameter {i} shape mismatch: file {rows}x{cols}, architecture {:?}",
                p.value.shape()
            )));
        }
        for x in p.value.data_mut() {
            *x = get_f32(&mut r)?;
        }
    }
    Ok(SavedModel { cfg, mode, feat_dim, edge_feat_dim, out_dim, model })
}

fn write_config<W: Write>(w: &mut W, cfg: &SplashConfig) -> io::Result<()> {
    put_u64(w, cfg.feat_dim as u64)?;
    put_u64(w, cfg.k as u64)?;
    put_u64(w, cfg.time_dim as u64)?;
    put_u64(w, cfg.hidden as u64)?;
    put_f32(w, cfg.lambda_s)?;
    put_f32(w, cfg.degree_alpha)?;
    put_f32(w, cfg.time_alpha)?;
    put_f32(w, cfg.time_beta)?;
    put_f32(w, cfg.lr)?;
    put_u64(w, cfg.epochs as u64)?;
    put_u64(w, cfg.batch_size as u64)?;
    put_u64(w, cfg.selector_epochs as u64)?;
    put_f32(w, cfg.selector_lr)?;
    put_u64(w, cfg.seed)?;
    // node2vec
    put_u64(w, cfg.node2vec.walk.walks_per_node as u64)?;
    put_u64(w, cfg.node2vec.walk.walk_length as u64)?;
    put_f32(w, cfg.node2vec.walk.p)?;
    put_f32(w, cfg.node2vec.walk.q)?;
    put_u64(w, cfg.node2vec.walk.threads as u64)?;
    put_u64(w, cfg.node2vec.sgns.dim as u64)?;
    put_u64(w, cfg.node2vec.sgns.window as u64)?;
    put_u64(w, cfg.node2vec.sgns.negatives as u64)?;
    put_u64(w, cfg.node2vec.sgns.epochs as u64)?;
    put_f32(w, cfg.node2vec.sgns.lr)?;
    // positional source
    match cfg.positional {
        PositionalSource::Node2Vec => put_u8(w, 0)?,
        PositionalSource::GraRep(g) => {
            put_u8(w, 1)?;
            put_u64(w, g.dim as u64)?;
            put_u64(w, g.transition_steps as u64)?;
            put_u64(w, g.svd_iters as u64)?;
        }
    }
    Ok(())
}

fn read_config<R: Read>(r: &mut R) -> io::Result<SplashConfig> {
    // Field order mirrors `write_config` exactly.
    let feat_dim = get_u64(r)? as usize;
    let k = get_u64(r)? as usize;
    let time_dim = get_u64(r)? as usize;
    let hidden = get_u64(r)? as usize;
    let lambda_s = get_f32(r)?;
    let degree_alpha = get_f32(r)?;
    let time_alpha = get_f32(r)?;
    let time_beta = get_f32(r)?;
    let lr = get_f32(r)?;
    let epochs = get_u64(r)? as usize;
    let batch_size = get_u64(r)? as usize;
    let selector_epochs = get_u64(r)? as usize;
    let selector_lr = get_f32(r)?;
    let seed = get_u64(r)?;
    let node2vec = Node2VecConfig {
        walk: embed::WalkConfig {
            walks_per_node: get_u64(r)? as usize,
            walk_length: get_u64(r)? as usize,
            p: get_f32(r)?,
            q: get_f32(r)?,
            threads: get_u64(r)? as usize,
        },
        sgns: embed::SkipGramConfig {
            dim: get_u64(r)? as usize,
            window: get_u64(r)? as usize,
            negatives: get_u64(r)? as usize,
            epochs: get_u64(r)? as usize,
            lr: get_f32(r)?,
        },
    };
    let positional = match get_u8(r)? {
        0 => PositionalSource::Node2Vec,
        1 => PositionalSource::GraRep(GraRepConfig {
            dim: get_u64(r)? as usize,
            transition_steps: get_u64(r)? as usize,
            svd_iters: get_u64(r)? as usize,
        }),
        t => return Err(bad(format!("unknown positional-source tag {t}"))),
    };
    Ok(SplashConfig {
        feat_dim,
        k,
        time_dim,
        hidden,
        lambda_s,
        degree_alpha,
        time_alpha,
        time_beta,
        node2vec,
        positional,
        lr,
        epochs,
        batch_size,
        selector_epochs,
        selector_lr,
        seed,
    })
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture, InputFeatures};
    use crate::pipeline::{predict_slim, split_bounds, train_slim, SEEN_FRAC};
    use crate::select::truncate_to_available;
    use datasets::synthetic_shift;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("splash-persist-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn roundtrip_predictions_are_identical() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.3);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let cap = capture(&dataset, InputFeatures::Process(FeatureProcess::Positional), &cfg, SEEN_FRAC);
        let (train_end, val_end) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let before = predict_slim(&model, &cap.queries[val_end..], 64);

        let path = tmp("roundtrip");
        save_model(
            &path,
            &mut model,
            &cfg,
            InputFeatures::Process(FeatureProcess::Positional),
            cap.feat_dim,
            cap.edge_feat_dim,
            dataset.num_classes,
        )
        .unwrap();
        let restored = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.selected(), Some(FeatureProcess::Positional));
        assert_eq!(restored.mode, InputFeatures::Process(FeatureProcess::Positional));
        assert_eq!(restored.feat_dim, cap.feat_dim);
        assert_eq!(restored.cfg.k, cfg.k);
        let after = predict_slim(&restored.model, &cap.queries[val_end..], 64);
        assert_eq!(before.data(), after.data(), "restored model must predict identically");
    }

    #[test]
    fn config_with_grarep_source_roundtrips() {
        let mut cfg = SplashConfig::tiny();
        cfg.positional = PositionalSource::GraRep(GraRepConfig {
            dim: 8,
            transition_steps: 3,
            svd_iters: 2,
        });
        let mut buf = Vec::new();
        write_config(&mut buf, &cfg).unwrap();
        let back = read_config(&mut buf.as_slice()).unwrap();
        assert_eq!(back.positional, cfg.positional);
        assert_eq!(back.feat_dim, cfg.feat_dim);
        assert_eq!(back.node2vec.walk.q, cfg.node2vec.walk.q);
    }

    #[test]
    fn config_roundtrips_every_field() {
        // Exercise every serialized field with non-default values.
        let cfg = SplashConfig {
            feat_dim: 17,
            k: 3,
            time_dim: 9,
            hidden: 21,
            lambda_s: 0.123,
            degree_alpha: 77.7,
            time_alpha: 2.5,
            time_beta: 6.25,
            node2vec: Node2VecConfig {
                walk: embed::WalkConfig {
                    walks_per_node: 11,
                    walk_length: 31,
                    p: 0.25,
                    q: 4.0,
                    threads: 3,
                },
                sgns: embed::SkipGramConfig {
                    dim: 17,
                    window: 5,
                    negatives: 7,
                    epochs: 4,
                    lr: 0.07,
                },
            },
            positional: PositionalSource::Node2Vec,
            lr: 3.5e-4,
            epochs: 13,
            batch_size: 57,
            selector_epochs: 2,
            selector_lr: 0.011,
            seed: 0xDEAD_BEEF,
        };
        let mut buf = Vec::new();
        write_config(&mut buf, &cfg).unwrap();
        let back = read_config(&mut buf.as_slice()).unwrap();
        assert_eq!(back.feat_dim, cfg.feat_dim);
        assert_eq!(back.k, cfg.k);
        assert_eq!(back.time_dim, cfg.time_dim);
        assert_eq!(back.hidden, cfg.hidden);
        assert_eq!(back.lambda_s, cfg.lambda_s);
        assert_eq!(back.degree_alpha, cfg.degree_alpha);
        assert_eq!(back.time_alpha, cfg.time_alpha);
        assert_eq!(back.time_beta, cfg.time_beta);
        assert_eq!(back.lr, cfg.lr);
        assert_eq!(back.epochs, cfg.epochs);
        assert_eq!(back.batch_size, cfg.batch_size);
        assert_eq!(back.selector_epochs, cfg.selector_epochs);
        assert_eq!(back.selector_lr, cfg.selector_lr);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.node2vec.walk.p, cfg.node2vec.walk.p);
        assert_eq!(back.node2vec.walk.q, cfg.node2vec.walk.q);
        assert_eq!(back.node2vec.walk.walks_per_node, cfg.node2vec.walk.walks_per_node);
        assert_eq!(back.node2vec.walk.walk_length, cfg.node2vec.walk.walk_length);
        assert_eq!(back.node2vec.walk.threads, cfg.node2vec.walk.threads);
        assert_eq!(back.node2vec.sgns.dim, cfg.node2vec.sgns.dim);
        assert_eq!(back.node2vec.sgns.window, cfg.node2vec.sgns.window);
        assert_eq!(back.node2vec.sgns.negatives, cfg.node2vec.sgns.negatives);
        assert_eq!(back.node2vec.sgns.epochs, cfg.node2vec.sgns.epochs);
        assert_eq!(back.node2vec.sgns.lr, cfg.node2vec.sgns.lr);
        assert_eq!(back.positional, cfg.positional);
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAMODELFILE....").unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn missing_file_is_io() {
        let err = load_model(Path::new("/definitely/not/here.bin")).unwrap_err();
        assert!(matches!(err, SplashError::Io(_)), "{err:?}");
    }

    /// Truncating a valid file anywhere after the header must load as
    /// `CorruptModel`, never panic and never yield a half-read model.
    #[test]
    fn truncated_file_is_corrupt() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.2);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = tmp("trunc");
        save_model(&path, &mut model, &cfg, InputFeatures::RawRandom, cap.feat_dim, cap.edge_feat_dim, 2)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in [bytes.len() / 2, MAGIC.len() + 4 + 1, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            let err = load_model(&path).unwrap_err();
            assert!(
                matches!(err, SplashError::CorruptModel { .. }),
                "truncation to {keep} bytes: {err:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// A file whose version word differs from this build's must report the
    /// found/supported pair, not a generic corruption.
    #[test]
    fn version_mismatch_is_typed() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.2);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = tmp("version");
        save_model(&path, &mut model, &cfg, InputFeatures::RawRandom, cap.feat_dim, cap.edge_feat_dim, 2)
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The version word sits right after the 8-byte magic.
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            SplashError::PersistVersionMismatch { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected PersistVersionMismatch, got {other:?}"),
        }
    }
}
