//! Save and load trained SLIM models.
//!
//! A saved file carries everything needed to rebuild a deployable
//! predictor: the full [`SplashConfig`], the selected augmentation process,
//! the model's input/output dimensions, and every trainable parameter.
//! Feature augmentation itself is *not* stored — the augmenter is fully
//! determined by the training stream and the (seeded) config, so a loaded
//! model paired with the same training prefix reproduces the original
//! predictor bit-for-bit (see `roundtrip_predictions_are_identical`).
//!
//! The on-disk format is a little-endian binary layout with an 8-byte magic
//! and a format-version word, written and parsed by hand: the model is a
//! flat list of shaped `f32` tensors plus a dozen scalars, which does not
//! justify a serialization dependency.
//!
//! Failures are typed ([`SplashError`]): a file that is not a SPLASH model
//! or has been damaged loads as [`SplashError::CorruptModel`], a file from
//! an incompatible format revision as
//! [`SplashError::PersistVersionMismatch`], and plain filesystem trouble
//! as [`SplashError::Io`] — so a serving layer can distinguish "retry with
//! the right file" from "re-export the model" from "fix the disk".

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use embed::{GraRepConfig, Node2VecConfig};
use nn::{Matrix, Parameterized};
use rand::{rngs::StdRng, SeedableRng};

use crate::augment::FeatureProcess;
use crate::capture::InputFeatures;
use crate::config::{PositionalSource, SplashConfig};
use crate::error::SplashError;
use crate::slim::{AdamState, SlimModel};

const MAGIC: &[u8; 8] = b"SPLASHM\x01";
const VERSION: u32 = 1;

/// Tag of the optional trailing optimizer-state section
/// ([`save_model_with_opt`]). Files without it load with `opt: None`, and
/// readers from before this section existed simply never read past the
/// parameters — both directions stay compatible within [`VERSION`].
const OPT_MAGIC: &[u8; 8] = b"SAVEDOPT";
/// Format revision of the optimizer-state section.
const OPT_VERSION: u32 = 1;

/// Upper bound on any persisted structural dimension. A corrupt (or
/// hostile) file claiming `hidden = 2^60` used to abort the process on
/// allocation inside `SlimModel::new` before any typed error could be
/// reported; every dimension is now checked against this bound *before*
/// the architecture is instantiated, so impossible values surface as
/// [`SplashError::CorruptModel`].
pub(crate) const MAX_DIM: u64 = 1 << 20;

/// Upper bound on any single weight tensor's element count (256 MiB of
/// `f32`). Individually sane dimensions can still multiply into an
/// allocation abort (`hidden = feat_dim = 2^20` ⇒ a 4 TiB matrix), so the
/// per-tensor products are bounded too, before `SlimModel::new` runs.
const MAX_TENSOR_ELEMS: u64 = 1 << 26;

/// Magic of a *sharded* artifact manifest (distinct from the single-model
/// [`MAGIC`], so [`is_sharded_artifact`] can sniff a path cheaply).
pub(crate) const SHARD_MAGIC: &[u8; 8] = b"SPLASHS\x01";
/// Format revision of the manifest layout.
pub(crate) const SHARD_VERSION: u32 = 2;

/// The last manifest revision that duplicated the model bytes into one
/// file per shard. Still loadable (shards share weights, so any of the N
/// identical files restores the model); no longer written.
pub(crate) const SHARD_VERSION_DUPLICATED: u32 = 1;

/// A model restored from disk, with everything needed to serve it.
#[derive(Debug)]
pub struct SavedModel {
    /// The configuration the model was trained with.
    pub cfg: SplashConfig,
    /// The feature mode the model consumes (the selected process for a full
    /// SPLASH run, or the fixed mode of an ablation run) — this is what
    /// `capture` must be called with at serving time.
    pub mode: InputFeatures,
    /// Node-feature input width.
    pub feat_dim: usize,
    /// Edge-feature input width.
    pub edge_feat_dim: usize,
    /// Output (label) width.
    pub out_dim: usize,
    /// The restored model.
    pub model: SlimModel,
    /// Checkpointed optimizer state, when the file carries a `SAVEDOPT`
    /// section ([`save_model_with_opt`]) — what makes resumed online
    /// fine-tuning bit-identical to an uninterrupted run.
    pub opt: Option<AdamState>,
}

impl SavedModel {
    /// The selected augmentation process, when the mode is a single process.
    pub fn selected(&self) -> Option<FeatureProcess> {
        match self.mode {
            InputFeatures::Process(p) => Some(p),
            _ => None,
        }
    }
}

/// Writes `model` and its context to `path`.
///
/// `model` is taken mutably only because parameter access goes through
/// [`Parameterized::params_mut`]; values are not modified.
pub fn save_model(
    path: &Path,
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
) -> Result<(), SplashError> {
    save_model_with_opt(path, model, cfg, mode, feat_dim, edge_feat_dim, out_dim, None)
}

/// [`save_model`] plus an optional `SAVEDOPT` trailer carrying the Adam
/// moments and step count of an online fine-tuning run, so the artifact
/// restores not just the weights but the optimizer mid-flight
/// ([`SavedModel::opt`]).
#[allow(clippy::too_many_arguments)]
pub fn save_model_with_opt(
    path: &Path,
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    opt: Option<&AdamState>,
) -> Result<(), SplashError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_model(&mut w, model, cfg, mode, feat_dim, edge_feat_dim, out_dim, opt)?;
    w.flush()?;
    Ok(())
}

/// [`save_model`]'s body against any writer (the sharded save serializes
/// once into memory and fans the bytes out to N files).
#[allow(clippy::too_many_arguments)]
fn write_model<W: Write>(
    mut w: W,
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    opt: Option<&AdamState>,
) -> Result<(), SplashError> {
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;
    write_config(&mut w, cfg)?;
    put_u8(&mut w, match mode {
        InputFeatures::Zero => 0,
        InputFeatures::RawRandom => 1,
        InputFeatures::External => 2,
        InputFeatures::Process(FeatureProcess::Random) => 3,
        InputFeatures::Process(FeatureProcess::Positional) => 4,
        InputFeatures::Process(FeatureProcess::Structural) => 5,
        InputFeatures::Joint => 6,
    })?;
    put_u64(&mut w, feat_dim as u64)?;
    put_u64(&mut w, edge_feat_dim as u64)?;
    put_u64(&mut w, out_dim as u64)?;

    let params = model.params_mut();
    put_u64(&mut w, params.len() as u64)?;
    for p in params {
        let (r, c) = p.value.shape();
        put_u64(&mut w, r as u64)?;
        put_u64(&mut w, c as u64)?;
        for &x in p.value.data() {
            put_f32(&mut w, x)?;
        }
    }
    if let Some(state) = opt {
        w.write_all(OPT_MAGIC)?;
        put_u32(&mut w, OPT_VERSION)?;
        put_u64(&mut w, state.steps)?;
        put_u64(&mut w, state.moments.len() as u64)?;
        for (m, v) in &state.moments {
            // Shapes are implied: the section is only valid against the
            // architecture whose parameters precede it, and the reader
            // checks each pair against the rebuilt model's shapes.
            for &x in m.data() {
                put_f32(&mut w, x)?;
            }
            for &x in v.data() {
                put_f32(&mut w, x)?;
            }
        }
    }
    Ok(())
}

/// Serializes a complete single-model artifact (magic, config, parameters,
/// optional `SAVEDOPT` trailer) into memory. The durable checkpoint layer
/// writes these bytes through its crash-injection seam instead of straight
/// to a file, so `write_model` stays the single source of format truth.
#[allow(clippy::too_many_arguments)]
pub(crate) fn model_artifact_bytes(
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    opt: Option<&AdamState>,
) -> Result<Vec<u8>, SplashError> {
    let mut bytes = Vec::new();
    write_model(&mut bytes, model, cfg, mode, feat_dim, edge_feat_dim, out_dim, opt)?;
    Ok(bytes)
}

/// Reads a model written by [`save_model`].
///
/// Typed failures: a wrong magic, truncation, or impossible tags/shapes
/// load as [`SplashError::CorruptModel`]; a recognisable SPLASH file from
/// another format revision as [`SplashError::PersistVersionMismatch`];
/// filesystem errors as [`SplashError::Io`].
pub fn load_model(path: &Path) -> Result<SavedModel, SplashError> {
    read_model(BufReader::new(File::open(path)?))
}

/// [`load_model`]'s body against any reader (the sharded load parses shard
/// 0 from the bytes it already checksummed instead of re-reading the file).
fn read_model<R: Read>(mut r: R) -> Result<SavedModel, SplashError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(corrupt_or_io)?;
    if &magic != MAGIC {
        return Err(SplashError::CorruptModel {
            what: "not a SPLASH model file (bad magic)".into(),
        });
    }
    let version = get_u32(&mut r).map_err(corrupt_or_io)?;
    if version != VERSION {
        return Err(SplashError::PersistVersionMismatch { found: version, supported: VERSION });
    }
    read_body(&mut r).map_err(corrupt_or_io)
}

// ---------------------------------------------------------------------------
// Sharded artifacts: a manifest plus one shared model file.
//
// In the sharding design ([`crate::shard`]) every shard serves the *same*
// trained weights — what a shard owns is streaming state (rings), and that
// state is rebuilt from the training stream on load, exactly like the
// single-engine path. A sharded artifact therefore is ONE model file (a
// standard [`save_model`] artifact, so it restores through [`load_model`]
// on its own) plus a manifest recording the shard count and the file's
// checksum. Because the shard count is data, not architecture, a model
// saved at N shards loads at any M ("resharding-on-load").
//
// Manifest v1 duplicated the model bytes into one file per shard; those
// artifacts still load (every listed file is checksummed, the model parses
// from the first), but new saves write the deduplicated v2 layout.

/// One entry of a [`ShardManifest`]: a model file (named relative to the
/// manifest's directory) and the FNV-1a checksum of its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFileEntry {
    /// File name, relative to the manifest's parent directory.
    pub name: String,
    /// FNV-1a (64-bit) checksum of the file's bytes.
    pub checksum: u64,
}

/// The header of a sharded artifact: how many shards it was saved with and
/// which files hold their models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard count at save time (a load may pick a different count).
    pub shards: usize,
    /// The model file(s): exactly one in the current layout; one per shard
    /// (identical bytes) in a v1 artifact.
    pub files: Vec<ShardFileEntry>,
}

/// FNV-1a over `bytes` — enough to catch a swapped or damaged shard file;
/// integrity against adversaries is out of scope for a local model store.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The conventional file name of shard `index` under manifest `path`
/// (`<manifest-name>.shard<index>` in the same directory).
pub fn shard_file_path(path: &Path, index: usize) -> std::path::PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "sharded-model".into());
    path.with_file_name(format!("{name}.shard{index}"))
}

/// Whether `path` starts with the sharded-manifest magic (reads 8 bytes;
/// a short or unreadable file is simply "not a manifest" unless the open
/// itself fails).
pub fn is_sharded_artifact(path: &Path) -> Result<bool, SplashError> {
    let mut r = File::open(path)?;
    let mut magic = [0u8; 8];
    match r.read_exact(&mut magic) {
        Ok(()) => Ok(&magic == SHARD_MAGIC),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(SplashError::Io(e)),
    }
}

/// Writes `model` as a sharded artifact at `path`: one [`save_model`] file
/// (shards share weights, so the bytes are stored once) plus the manifest
/// recording the shard count.
///
/// `model` is taken mutably only because parameter access goes through
/// [`Parameterized::params_mut`]; values are not modified.
#[allow(clippy::too_many_arguments)]
pub fn save_sharded_model(
    path: &Path,
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    shards: usize,
) -> Result<(), SplashError> {
    save_sharded_model_with_opt(
        path, model, cfg, mode, feat_dim, edge_feat_dim, out_dim, shards, None,
    )
}

/// [`save_sharded_model`] plus the optional `SAVEDOPT` optimizer trailer
/// (see [`save_model_with_opt`]); the shared model file carries the
/// section, so it restores the optimizer on its own.
#[allow(clippy::too_many_arguments)]
pub fn save_sharded_model_with_opt(
    path: &Path,
    model: &mut SlimModel,
    cfg: &SplashConfig,
    mode: InputFeatures,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    shards: usize,
    opt: Option<&AdamState>,
) -> Result<(), SplashError> {
    if shards == 0 {
        return Err(SplashError::InvalidConfig {
            what: "shard count must be positive".into(),
        });
    }
    // Shards share weights, so serialize once and store the bytes once:
    // the manifest carries the shard count, the model lives in one file.
    let mut bytes = Vec::new();
    write_model(&mut bytes, model, cfg, mode, feat_dim, edge_feat_dim, out_dim, opt)?;
    let checksum = fnv1a(&bytes);
    let shard_path = shard_file_path(path, 0);
    std::fs::write(&shard_path, &bytes)?;
    let entry = ShardFileEntry {
        name: shard_path
            .file_name()
            .expect("shard_file_path always has a file name")
            .to_string_lossy()
            .into_owned(),
        checksum,
    };
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(SHARD_MAGIC)?;
    put_u32(&mut w, SHARD_VERSION)?;
    put_u64(&mut w, shards as u64)?;
    put_u64(&mut w, entry.name.len() as u64)?;
    w.write_all(entry.name.as_bytes())?;
    put_u64(&mut w, entry.checksum)?;
    w.flush()?;
    Ok(())
}

/// Reads the manifest written by [`save_sharded_model`] (header only; no
/// shard file is touched).
///
/// Typed failures mirror [`load_model`]: wrong magic, truncation, or an
/// impossible shard count load as [`SplashError::CorruptModel`], a
/// recognisable manifest from another revision as
/// [`SplashError::PersistVersionMismatch`], filesystem trouble as
/// [`SplashError::Io`].
pub fn load_manifest(path: &Path) -> Result<ShardManifest, SplashError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(corrupt_or_io)?;
    if &magic != SHARD_MAGIC {
        return Err(SplashError::CorruptModel {
            what: "not a SPLASH shard manifest (bad magic)".into(),
        });
    }
    let version = get_u32(&mut r).map_err(corrupt_or_io)?;
    if version != SHARD_VERSION && version != SHARD_VERSION_DUPLICATED {
        return Err(SplashError::PersistVersionMismatch {
            found: version,
            supported: SHARD_VERSION,
        });
    }
    read_manifest_body(&mut r, version).map_err(corrupt_or_io)
}

/// Parses everything after the manifest magic + version header. A v2
/// manifest lists exactly one model file; the legacy v1 layout listed one
/// (identical) file per shard.
fn read_manifest_body<R: Read>(r: &mut R, version: u32) -> io::Result<ShardManifest> {
    let shards = get_u64(r)? as usize;
    if shards == 0 || shards > 1 << 20 {
        return Err(bad(format!("impossible shard count {shards}")));
    }
    let n_files = if version == SHARD_VERSION_DUPLICATED { shards } else { 1 };
    let mut files = Vec::with_capacity(n_files);
    for _ in 0..n_files {
        let len = get_u64(r)? as usize;
        if len == 0 || len > 4096 {
            return Err(bad(format!("impossible shard file-name length {len}")));
        }
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| bad("shard file name is not UTF-8".to_string()))?;
        let checksum = get_u64(r)?;
        files.push(ShardFileEntry { name, checksum });
    }
    Ok(ShardManifest { shards, files })
}

/// Loads a sharded artifact: reads the manifest, verifies every listed
/// file's checksum, and restores the model from the first (a v2 manifest
/// lists exactly one file; a legacy v1 manifest lists one identical copy
/// per shard).
///
/// A missing or altered shard file reports [`SplashError::CorruptModel`]
/// naming the file, so an operator knows *which* artifact to re-export.
pub fn load_sharded_model(path: &Path) -> Result<(ShardManifest, SavedModel), SplashError> {
    let manifest = load_manifest(path)?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut first: Option<Vec<u8>> = None;
    for entry in &manifest.files {
        let shard_path = dir.join(&entry.name);
        let bytes = std::fs::read(&shard_path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                SplashError::CorruptModel {
                    what: format!("manifest names missing shard file {:?}", entry.name),
                }
            } else {
                SplashError::Io(e)
            }
        })?;
        if fnv1a(&bytes) != entry.checksum {
            return Err(SplashError::CorruptModel {
                what: format!("shard file {:?} does not match its manifest checksum", entry.name),
            });
        }
        if first.is_none() {
            first = Some(bytes);
        }
    }
    // Parse shard 0 from the bytes just checksummed — no second read.
    let bytes = first.expect("manifests always list at least one shard");
    let saved = read_model(bytes.as_slice())?;
    Ok((manifest, saved))
}

/// Classifies an error raised while parsing a file whose magic already
/// checked out: anything that means "the bytes are wrong" (truncation,
/// impossible tags or shapes) is a corrupt model; the rest is plain I/O.
pub(crate) fn corrupt_or_io(e: io::Error) -> SplashError {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => SplashError::CorruptModel {
            what: "file is truncated".into(),
        },
        io::ErrorKind::InvalidData => SplashError::CorruptModel { what: e.to_string() },
        _ => SplashError::Io(e),
    }
}

/// Parses everything after the magic + version header.
///
/// The deserialized config is **validated before the architecture is
/// instantiated**: `SplashConfig::validate` plus a sanity bound on every
/// structural dimension ([`MAX_DIM`]). A corrupt or hostile file used to
/// reach `SlimModel::new` unchecked, where an absurd `hidden` aborted the
/// process on allocation; it now reports [`SplashError::CorruptModel`]
/// (pinned by the crafted-artifact tests).
fn read_body<R: Read>(mut r: &mut R) -> io::Result<SavedModel> {
    let cfg = read_config(&mut r)?;
    let mode = match get_u8(&mut r)? {
        0 => InputFeatures::Zero,
        1 => InputFeatures::RawRandom,
        2 => InputFeatures::External,
        3 => InputFeatures::Process(FeatureProcess::Random),
        4 => InputFeatures::Process(FeatureProcess::Positional),
        5 => InputFeatures::Process(FeatureProcess::Structural),
        6 => InputFeatures::Joint,
        t => return Err(bad(format!("unknown feature-mode tag {t}"))),
    };
    let feat_dim = sane_dim("node-feature width", get_u64(&mut r)?)?;
    let edge_feat_dim = sane_dim("edge-feature width", get_u64(&mut r)?)?;
    let out_dim = sane_dim("output width", get_u64(&mut r)?)?;
    if out_dim == 0 {
        return Err(bad("output width must be positive".to_string()));
    }
    cfg.validate()
        .map_err(|e| bad(format!("stored config fails validation: {e}")))?;
    for (name, value) in [
        ("feat_dim", cfg.feat_dim),
        ("k", cfg.k),
        ("time_dim", cfg.time_dim),
        ("hidden", cfg.hidden),
        ("batch_size", cfg.batch_size),
    ] {
        sane_dim(name, value as u64)?;
    }
    // Dimensions are individually bounded (≤ 2^20, so these u64 products
    // cannot overflow); now bound every weight tensor SlimModel::new will
    // allocate — the largest inputs to each of its three MLPs.
    let (dh, dt) = (cfg.hidden as u64, cfg.time_dim as u64);
    let raw_dim = feat_dim as u64 + edge_feat_dim as u64 + dt;
    for (name, elems) in [
        ("message-MLP input weight", raw_dim * dh),
        ("aggregate-MLP input weight", (feat_dim as u64 + dh) * dh),
        ("hidden weight", dh * dh),
        ("decoder output weight", dh * out_dim as u64),
    ] {
        if elems > MAX_TENSOR_ELEMS {
            return Err(bad(format!(
                "impossible {name}: {elems} elements (limit {MAX_TENSOR_ELEMS})"
            )));
        }
    }

    // Rebuild the architecture, then overwrite every parameter in the
    // stable `params_mut` order.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x511D);
    let mut model = SlimModel::new(&cfg, feat_dim, edge_feat_dim, out_dim, &mut rng);
    let stored = get_u64(&mut r)? as usize;
    let params = model.params_mut();
    if stored != params.len() {
        return Err(bad(format!(
            "parameter count mismatch: file has {stored}, architecture has {}",
            params.len()
        )));
    }
    for (i, p) in params.into_iter().enumerate() {
        let rows = get_u64(&mut r)? as usize;
        let cols = get_u64(&mut r)? as usize;
        if (rows, cols) != p.value.shape() {
            return Err(bad(format!(
                "parameter {i} shape mismatch: file {rows}x{cols}, architecture {:?}",
                p.value.shape()
            )));
        }
        for x in p.value.data_mut() {
            *x = get_f32(&mut r)?;
        }
    }
    let opt = read_opt_section(&mut r, &mut model)?;
    Ok(SavedModel { cfg, mode, feat_dim, edge_feat_dim, out_dim, model, opt })
}

/// Bounds-checks one persisted structural dimension against [`MAX_DIM`].
pub(crate) fn sane_dim(name: &str, value: u64) -> io::Result<usize> {
    if value > MAX_DIM {
        return Err(bad(format!("impossible {name} {value} (limit {MAX_DIM})")));
    }
    Ok(value as usize)
}

/// Parses the optional trailing `SAVEDOPT` section. Clean EOF right after
/// the parameters means "no optimizer state" (`None`); anything else that
/// is not a complete, architecture-matching section is corruption.
fn read_opt_section<R: Read>(r: &mut R, model: &mut SlimModel) -> io::Result<Option<AdamState>> {
    let mut magic = [0u8; 8];
    let mut got = 0usize;
    while got < magic.len() {
        let n = r.read(&mut magic[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got == 0 {
        return Ok(None);
    }
    if got < magic.len() || &magic != OPT_MAGIC {
        return Err(bad("trailing bytes are not a SAVEDOPT section".to_string()));
    }
    let version = get_u32(r)?;
    if version != OPT_VERSION {
        return Err(bad(format!(
            "unknown SAVEDOPT section version {version} (this build reads {OPT_VERSION})"
        )));
    }
    let steps = get_u64(r)?;
    let stored = get_u64(r)? as usize;
    let params = model.params_mut();
    if stored != params.len() {
        return Err(bad(format!(
            "SAVEDOPT moment count mismatch: file has {stored}, architecture has {}",
            params.len()
        )));
    }
    let mut moments = Vec::with_capacity(stored);
    for p in params {
        let (rows, cols) = p.value.shape();
        let mut m = Matrix::zeros(rows, cols);
        for x in m.data_mut() {
            *x = get_f32(r)?;
        }
        let mut v = Matrix::zeros(rows, cols);
        for x in v.data_mut() {
            *x = get_f32(r)?;
        }
        moments.push((m, v));
    }
    Ok(Some(AdamState { steps, moments }))
}

fn write_config<W: Write>(w: &mut W, cfg: &SplashConfig) -> io::Result<()> {
    put_u64(w, cfg.feat_dim as u64)?;
    put_u64(w, cfg.k as u64)?;
    put_u64(w, cfg.time_dim as u64)?;
    put_u64(w, cfg.hidden as u64)?;
    put_f32(w, cfg.lambda_s)?;
    put_f32(w, cfg.degree_alpha)?;
    put_f32(w, cfg.time_alpha)?;
    put_f32(w, cfg.time_beta)?;
    put_f32(w, cfg.lr)?;
    put_u64(w, cfg.epochs as u64)?;
    put_u64(w, cfg.batch_size as u64)?;
    put_u64(w, cfg.selector_epochs as u64)?;
    put_f32(w, cfg.selector_lr)?;
    put_u64(w, cfg.seed)?;
    // node2vec
    put_u64(w, cfg.node2vec.walk.walks_per_node as u64)?;
    put_u64(w, cfg.node2vec.walk.walk_length as u64)?;
    put_f32(w, cfg.node2vec.walk.p)?;
    put_f32(w, cfg.node2vec.walk.q)?;
    put_u64(w, cfg.node2vec.walk.threads as u64)?;
    put_u64(w, cfg.node2vec.sgns.dim as u64)?;
    put_u64(w, cfg.node2vec.sgns.window as u64)?;
    put_u64(w, cfg.node2vec.sgns.negatives as u64)?;
    put_u64(w, cfg.node2vec.sgns.epochs as u64)?;
    put_f32(w, cfg.node2vec.sgns.lr)?;
    // positional source
    match cfg.positional {
        PositionalSource::Node2Vec => put_u8(w, 0)?,
        PositionalSource::GraRep(g) => {
            put_u8(w, 1)?;
            put_u64(w, g.dim as u64)?;
            put_u64(w, g.transition_steps as u64)?;
            put_u64(w, g.svd_iters as u64)?;
        }
    }
    Ok(())
}

fn read_config<R: Read>(r: &mut R) -> io::Result<SplashConfig> {
    // Field order mirrors `write_config` exactly.
    let feat_dim = get_u64(r)? as usize;
    let k = get_u64(r)? as usize;
    let time_dim = get_u64(r)? as usize;
    let hidden = get_u64(r)? as usize;
    let lambda_s = get_f32(r)?;
    let degree_alpha = get_f32(r)?;
    let time_alpha = get_f32(r)?;
    let time_beta = get_f32(r)?;
    let lr = get_f32(r)?;
    let epochs = get_u64(r)? as usize;
    let batch_size = get_u64(r)? as usize;
    let selector_epochs = get_u64(r)? as usize;
    let selector_lr = get_f32(r)?;
    let seed = get_u64(r)?;
    let node2vec = Node2VecConfig {
        walk: embed::WalkConfig {
            walks_per_node: get_u64(r)? as usize,
            walk_length: get_u64(r)? as usize,
            p: get_f32(r)?,
            q: get_f32(r)?,
            threads: get_u64(r)? as usize,
        },
        sgns: embed::SkipGramConfig {
            dim: get_u64(r)? as usize,
            window: get_u64(r)? as usize,
            negatives: get_u64(r)? as usize,
            epochs: get_u64(r)? as usize,
            lr: get_f32(r)?,
        },
    };
    let positional = match get_u8(r)? {
        0 => PositionalSource::Node2Vec,
        1 => PositionalSource::GraRep(GraRepConfig {
            dim: get_u64(r)? as usize,
            transition_steps: get_u64(r)? as usize,
            svd_iters: get_u64(r)? as usize,
        }),
        t => return Err(bad(format!("unknown positional-source tag {t}"))),
    };
    Ok(SplashConfig {
        feat_dim,
        k,
        time_dim,
        hidden,
        lambda_s,
        degree_alpha,
        time_alpha,
        time_beta,
        node2vec,
        positional,
        lr,
        epochs,
        batch_size,
        selector_epochs,
        selector_lr,
        seed,
    })
}

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

pub(crate) fn put_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

pub(crate) fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn put_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn get_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture, InputFeatures};
    use crate::pipeline::{predict_slim, split_bounds, train_slim, SEEN_FRAC};
    use crate::select::truncate_to_available;
    use datasets::synthetic_shift;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("splash-persist-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn roundtrip_predictions_are_identical() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.3);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let cap = capture(&dataset, InputFeatures::Process(FeatureProcess::Positional), &cfg, SEEN_FRAC);
        let (train_end, val_end) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let before = predict_slim(&model, &cap.queries[val_end..], 64);

        let path = tmp("roundtrip");
        save_model(
            &path,
            &mut model,
            &cfg,
            InputFeatures::Process(FeatureProcess::Positional),
            cap.feat_dim,
            cap.edge_feat_dim,
            dataset.num_classes,
        )
        .unwrap();
        let restored = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.selected(), Some(FeatureProcess::Positional));
        assert_eq!(restored.mode, InputFeatures::Process(FeatureProcess::Positional));
        assert_eq!(restored.feat_dim, cap.feat_dim);
        assert_eq!(restored.cfg.k, cfg.k);
        let after = predict_slim(&restored.model, &cap.queries[val_end..], 64);
        assert_eq!(before.data(), after.data(), "restored model must predict identically");
    }

    #[test]
    fn config_with_grarep_source_roundtrips() {
        let mut cfg = SplashConfig::tiny();
        cfg.positional = PositionalSource::GraRep(GraRepConfig {
            dim: 8,
            transition_steps: 3,
            svd_iters: 2,
        });
        let mut buf = Vec::new();
        write_config(&mut buf, &cfg).unwrap();
        let back = read_config(&mut buf.as_slice()).unwrap();
        assert_eq!(back.positional, cfg.positional);
        assert_eq!(back.feat_dim, cfg.feat_dim);
        assert_eq!(back.node2vec.walk.q, cfg.node2vec.walk.q);
    }

    #[test]
    fn config_roundtrips_every_field() {
        // Exercise every serialized field with non-default values.
        let cfg = SplashConfig {
            feat_dim: 17,
            k: 3,
            time_dim: 9,
            hidden: 21,
            lambda_s: 0.123,
            degree_alpha: 77.7,
            time_alpha: 2.5,
            time_beta: 6.25,
            node2vec: Node2VecConfig {
                walk: embed::WalkConfig {
                    walks_per_node: 11,
                    walk_length: 31,
                    p: 0.25,
                    q: 4.0,
                    threads: 3,
                },
                sgns: embed::SkipGramConfig {
                    dim: 17,
                    window: 5,
                    negatives: 7,
                    epochs: 4,
                    lr: 0.07,
                },
            },
            positional: PositionalSource::Node2Vec,
            lr: 3.5e-4,
            epochs: 13,
            batch_size: 57,
            selector_epochs: 2,
            selector_lr: 0.011,
            seed: 0xDEAD_BEEF,
        };
        let mut buf = Vec::new();
        write_config(&mut buf, &cfg).unwrap();
        let back = read_config(&mut buf.as_slice()).unwrap();
        assert_eq!(back.feat_dim, cfg.feat_dim);
        assert_eq!(back.k, cfg.k);
        assert_eq!(back.time_dim, cfg.time_dim);
        assert_eq!(back.hidden, cfg.hidden);
        assert_eq!(back.lambda_s, cfg.lambda_s);
        assert_eq!(back.degree_alpha, cfg.degree_alpha);
        assert_eq!(back.time_alpha, cfg.time_alpha);
        assert_eq!(back.time_beta, cfg.time_beta);
        assert_eq!(back.lr, cfg.lr);
        assert_eq!(back.epochs, cfg.epochs);
        assert_eq!(back.batch_size, cfg.batch_size);
        assert_eq!(back.selector_epochs, cfg.selector_epochs);
        assert_eq!(back.selector_lr, cfg.selector_lr);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.node2vec.walk.p, cfg.node2vec.walk.p);
        assert_eq!(back.node2vec.walk.q, cfg.node2vec.walk.q);
        assert_eq!(back.node2vec.walk.walks_per_node, cfg.node2vec.walk.walks_per_node);
        assert_eq!(back.node2vec.walk.walk_length, cfg.node2vec.walk.walk_length);
        assert_eq!(back.node2vec.walk.threads, cfg.node2vec.walk.threads);
        assert_eq!(back.node2vec.sgns.dim, cfg.node2vec.sgns.dim);
        assert_eq!(back.node2vec.sgns.window, cfg.node2vec.sgns.window);
        assert_eq!(back.node2vec.sgns.negatives, cfg.node2vec.sgns.negatives);
        assert_eq!(back.node2vec.sgns.epochs, cfg.node2vec.sgns.epochs);
        assert_eq!(back.node2vec.sgns.lr, cfg.node2vec.sgns.lr);
        assert_eq!(back.positional, cfg.positional);
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAMODELFILE....").unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn missing_file_is_io() {
        let err = load_model(Path::new("/definitely/not/here.bin")).unwrap_err();
        assert!(matches!(err, SplashError::Io(_)), "{err:?}");
    }

    /// Truncating a valid file anywhere after the header must load as
    /// `CorruptModel`, never panic and never yield a half-read model.
    #[test]
    fn truncated_file_is_corrupt() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.2);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = tmp("trunc");
        save_model(&path, &mut model, &cfg, InputFeatures::RawRandom, cap.feat_dim, cap.edge_feat_dim, 2)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in [bytes.len() / 2, MAGIC.len() + 4 + 1, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            let err = load_model(&path).unwrap_err();
            assert!(
                matches!(err, SplashError::CorruptModel { .. }),
                "truncation to {keep} bytes: {err:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// A freshly trained tiny model saved to `path`; returns its bytes.
    fn saved_bytes(tag: &str) -> (std::path::PathBuf, Vec<u8>) {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.2);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = tmp(tag);
        save_model(
            &path,
            &mut model,
            &cfg,
            InputFeatures::RawRandom,
            cap.feat_dim,
            cap.edge_feat_dim,
            dataset.num_classes,
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    /// Byte offsets of the config fields patched by the crafted-artifact
    /// tests (magic 8 + version 4, then the `write_config` layout:
    /// feat_dim, k, time_dim, hidden as u64s, then f32 scales).
    const OFF_K: usize = 20;
    const OFF_TIME_DIM: usize = 28;
    const OFF_HIDDEN: usize = 36;
    const OFF_LR: usize = 60;

    /// Regression (crafted artifact): a file claiming `hidden = 2^60` used
    /// to abort the process on allocation inside `SlimModel::new`; it must
    /// load as a typed `CorruptModel` naming the bad dimension.
    #[test]
    fn oversized_dimension_is_corrupt_not_abort() {
        let (path, bytes) = saved_bytes("dim-bomb");
        let mut patched = bytes.clone();
        patched[OFF_HIDDEN..OFF_HIDDEN + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        std::fs::write(&path, &patched).unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("hidden"), "{err}");
    }

    /// Regression (crafted artifact): dimensions that are individually
    /// under [`MAX_DIM`] can still multiply into an allocation abort; the
    /// per-tensor element bound must catch the product.
    #[test]
    fn oversized_dimension_product_is_corrupt_not_abort() {
        let (path, bytes) = saved_bytes("dim-product-bomb");
        let mut patched = bytes.clone();
        // hidden = time_dim = 2^20: each passes sane_dim, but the message
        // MLP's input weight alone would be ≥ 2^40 elements (~4 TiB).
        patched[OFF_HIDDEN..OFF_HIDDEN + 8].copy_from_slice(&(1u64 << 20).to_le_bytes());
        patched[OFF_TIME_DIM..OFF_TIME_DIM + 8].copy_from_slice(&(1u64 << 20).to_le_bytes());
        std::fs::write(&path, &patched).unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("elements"), "{err}");
    }

    /// Regression (crafted artifact): the deserialized config must pass
    /// `SplashConfig::validate` — a zero dimension or a non-finite scale is
    /// corruption, not a panic (or a hang) later in the pipeline.
    #[test]
    fn invalid_stored_config_is_corrupt() {
        let (path, bytes) = saved_bytes("cfg-bomb");
        // Zero `k`: fails validation.
        let mut patched = bytes.clone();
        patched[OFF_K..OFF_K + 8].copy_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &patched).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("validation"), "{err}");
        // NaN learning rate: fails validation too.
        let mut patched = bytes.clone();
        patched[OFF_LR..OFF_LR + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        std::fs::write(&path, &patched).unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("lr"), "{err}");
    }

    /// Trailing bytes that are not a complete `SAVEDOPT` section are
    /// corruption, never a silent partial read.
    #[test]
    fn damaged_opt_trailer_is_corrupt() {
        let (path, bytes) = saved_bytes("opt-trailer");
        // Garbage appended after the parameters.
        let mut patched = bytes.clone();
        patched.extend_from_slice(b"JUNKJUNKJUNK");
        std::fs::write(&path, &patched).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
        assert!(err.to_string().contains("SAVEDOPT"), "{err}");
        // A truncated (but correctly tagged) section is corruption too.
        let mut patched = bytes.clone();
        patched.extend_from_slice(OPT_MAGIC);
        patched.extend_from_slice(&OPT_VERSION.to_le_bytes());
        std::fs::write(&path, &patched).unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SplashError::CorruptModel { .. }), "{err:?}");
    }

    /// The `SAVEDOPT` section round-trips the optimizer clock and every
    /// moment bit; a file without it loads with `opt: None`.
    #[test]
    fn opt_state_round_trips() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.2);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let state = model.extract_adam_state(17);
        let path = tmp("opt-roundtrip");
        save_model_with_opt(
            &path,
            &mut model,
            &cfg,
            InputFeatures::RawRandom,
            cap.feat_dim,
            cap.edge_feat_dim,
            dataset.num_classes,
            Some(&state),
        )
        .unwrap();
        let restored = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let back = restored.opt.expect("SAVEDOPT section restores");
        assert_eq!(back.steps, 17);
        assert_eq!(back.moments.len(), state.moments.len());
        for ((m1, v1), (m2, v2)) in back.moments.iter().zip(&state.moments) {
            assert_eq!(m1.data(), m2.data());
            assert_eq!(v1.data(), v2.data());
        }

        // Without the section: opt is None (the pre-existing roundtrip
        // files in the other tests already exercise this, but pin it).
        let (path, _) = saved_bytes("opt-none");
        let plain = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(plain.opt.is_none());
    }

    /// A file whose version word differs from this build's must report the
    /// found/supported pair, not a generic corruption.
    #[test]
    fn version_mismatch_is_typed() {
        let dataset = truncate_to_available(&synthetic_shift(50, 13), 0.2);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 1;
        let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
        let (train_end, _) = split_bounds(cap.queries.len());
        let (mut model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
        let path = tmp("version");
        save_model(&path, &mut model, &cfg, InputFeatures::RawRandom, cap.feat_dim, cap.edge_feat_dim, 2)
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The version word sits right after the 8-byte magic.
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = load_model(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            SplashError::PersistVersionMismatch { found, supported } => {
                assert_eq!(found, 99);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected PersistVersionMismatch, got {other:?}"),
        }
    }
}
