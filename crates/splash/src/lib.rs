//! SPLASH — Simple node Property prediction via representation Learning
//! with Augmented features under distribution SHifts (Lee et al., ICDE
//! 2025), reproduced from scratch in Rust.
//!
//! The pipeline (paper Fig. 5):
//!
//! 1. [`augment`] — random / positional / structural feature augmentation
//!    for seen nodes, with incremental feature propagation for unseen nodes;
//! 2. [`select`] — automatic feature selection via linear models over
//!    multiple chronological splits of the available property set;
//! 3. [`slim`] — the lightweight MLP-only TGNN trained on the selected
//!    features;
//! 4. [`pipeline`] — the 10/10/80 protocol tying it together.
//!
//! ```
//! use datasets::synthetic_shift;
//! use splash::{run_splash, SplashConfig};
//!
//! let dataset = synthetic_shift(50, 7);
//! let out = run_splash(&dataset, &SplashConfig::tiny());
//! assert!(out.metric > 0.2);
//! ```
//!
//! For **deployment**, the [`service`] module wraps the streaming core in
//! the [`SplashService`] façade: a registry of named, hot-swappable
//! models behind a fallible, typed request/response API ([`error`] holds
//! the [`SplashError`] taxonomy). The core speaks `try_*` / service forms
//! exclusively — bad input comes back as a value, never as an aborted
//! process. (The old infallible wrappers are gone; panicking call sites
//! spell the policy themselves with `try_* + unwrap`.)
//!
//! For **scale-out**, the [`shard`] module splits a model into one shared
//! witness — the global feature tracker and stream clock, updated once
//! per edge — plus N hash-partitioned ring partitions served by
//! [`ShardedPredictor`] engines: scatter–gather queries, routed ingest
//! where each shard touches only its owned edges, sharded persistence
//! with one shared model file — output bit-identical to the single
//! engine at every shard count.
//!
//! For **continual learning**, the [`online`] module fine-tunes a served
//! model from the live label stream without downtime: a hot-standby
//! [`OnlineTrainer`] buffers labeled snapshots, runs bounded Adam steps,
//! and publishes weights atomically into the serving engine(s);
//! checkpoints carry the optimizer (`SAVEDOPT`), so a restarted
//! deployment resumes bit-identically.
//!
//! For **networked serving**, the [`server`] module puts a hand-rolled
//! HTTP/1.1 front end ([`SplashServer`]) over the service: a bounded
//! worker pool, admission control with load shedding (`429`) and
//! per-request deadlines (`504`), and a zero-alloc latency histogram in
//! [`ServiceStats`] — with wire replay bit-identical to in-process calls.
//!
//! For **observability**, the [`telemetry`] module is the plane the whole
//! stack reports through: a metrics [`Registry`] of
//! flat atomics (zero-alloc, lock-free recording — the same counting-
//! allocator contract as `predict_into`), a fixed ring of per-request
//! [`TraceSpan`]s with queue-wait / engine-execute
//! / WAL-commit decomposed, and deterministic exposition: `GET /metrics`
//! (Prometheus text), `GET /statz.json`, `GET /trace?n=K`. Every counter
//! surface — `/stats`, [`ServiceStats`], the CLI serve report — renders
//! from this one source of truth.
//!
//! For **durability**, the [`durable`] module checkpoints the streaming
//! state the model artifact does not carry — per-node rings, augmenter
//! and degree-tracker state, the stream clock, the online replay buffer —
//! and fills the gap between checkpoints with an append-only, checksummed
//! edge WAL. A `kill -9` at *any* byte restarts bit-identically to a
//! process that never crashed, in O(state + WAL tail) instead of
//! O(stream); the [`FaultPlan`] / [`DurableWriter`] seam lets the test
//! suite prove exactly that, one injected crash offset at a time.

#![deny(missing_docs)]

pub mod augment;
pub mod capture;
pub mod config;
pub mod durable;
pub mod error;
pub mod online;
pub mod persist;
pub mod pipeline;
pub mod scenarios;
pub mod select;
pub mod server;
pub mod service;
pub mod shard;
pub mod slim;
pub mod stream;
pub mod task;
pub mod telemetry;

pub use augment::{Augmenter, FeatureProcess};
pub use capture::{
    capture, encodings, seen_end_time, Capture, CaptureStream, CapturedNeighbor, CapturedQuery,
    InputFeatures,
};
pub use config::{PositionalSource, SplashConfig};
pub use durable::{DurabilityConfig, DurableWriter, FaultPlan, RecoveryReport};
pub use error::SplashError;
pub use online::{FineTunePolicy, FineTuneReport, OnlineConfig, OnlineTrainer};
pub use persist::{
    load_manifest, load_model, load_sharded_model, save_model, save_model_with_opt,
    save_sharded_model, save_sharded_model_with_opt, SavedModel, ShardFileEntry, ShardManifest,
};
pub use pipeline::{
    predict_slim, represent_slim, run_slim_with, run_slim_with_frac, run_splash,
    run_splash_frac, split_bounds, split_bounds_frac, train_slim, try_run_slim_with,
    try_run_splash, SplashOutput, SEEN_FRAC, TRAIN_FRAC,
};
pub use scenarios::{
    run_matrix, run_scenario, EngineFactory, EngineSpec, ModelSpec, RegimeReport, ScenarioCell,
    ScenarioConfig, ScenarioReport, ScenarioSpec,
};
pub use select::{
    select_features, select_features_with_splits, truncate_to_available, SelectionReport,
    SPLIT_FRACTIONS,
};
pub use server::{ServerConfig, ServerHandle, SplashServer};
pub use service::{
    CheckpointPolicy, IngestReport, IngestRequest, LabelReport, LatencyHistogram, LateEdgePolicy,
    ModelInfo, PredictRequest, PredictResponse, ServeEngine, ServiceStats, SplashService,
    SplashServiceBuilder,
};
pub use shard::{shard_of, ShardStats, ShardedPredictor};
pub use slim::{AdamState, SlimBatch, SlimCache, SlimModel};
pub use stream::StreamingPredictor;
pub use telemetry::{Counter, Gauge, Histogram, Registry, Telemetry, TraceSpan};
