//! Property-based tests for the evaluation substrate: metric identities
//! that must hold for *every* input, checked against brute-force
//! definitions.

use eval::{
    average_precision, mean_ndcg_at_k, micro_f1, ndcg_at_k, roc_auc, silhouette_score,
    weighted_f1, ConfusionMatrix,
};
use nn::Matrix;
use proptest::prelude::*;

/// Brute-force AUC: the Mann–Whitney U statistic with half-credit for ties.
fn auc_bruteforce(scores: &[f32], labels: &[bool]) -> f64 {
    let mut pairs = 0.0f64;
    let mut wins = 0.0f64;
    for (i, &si) in scores.iter().enumerate() {
        if !labels[i] {
            continue;
        }
        for (j, &sj) in scores.iter().enumerate() {
            if labels[j] {
                continue;
            }
            pairs += 1.0;
            if si > sj {
                wins += 1.0;
            } else if si == sj {
                wins += 0.5;
            }
        }
    }
    if pairs == 0.0 {
        0.5
    } else {
        wins / pairs
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sort-based AUC equals the O(n²) Mann–Whitney definition.
    #[test]
    fn auc_matches_mann_whitney(
        raw in prop::collection::vec((0.0f32..1.0, any::<bool>()), 1..60)
    ) {
        let scores: Vec<f32> = raw.iter().map(|&(s, _)| (s * 20.0).round() / 20.0).collect();
        let labels: Vec<bool> = raw.iter().map(|&(_, l)| l).collect();
        let fast = roc_auc(&scores, &labels);
        let slow = auc_bruteforce(&scores, &labels);
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    /// AUC is invariant under strictly increasing score transforms.
    #[test]
    fn auc_is_rank_based(
        raw in prop::collection::vec((0.0f32..1.0, any::<bool>()), 2..50)
    ) {
        let scores: Vec<f32> = raw.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = raw.iter().map(|&(_, l)| l).collect();
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s).exp()).collect();
        prop_assert!((roc_auc(&scores, &labels) - roc_auc(&transformed, &labels)).abs() < 1e-9);
    }

    /// Flipping every label maps AUC to 1 − AUC (when both classes exist).
    #[test]
    fn auc_complement_under_label_flip(
        raw in prop::collection::vec((0.0f32..1.0, any::<bool>()), 2..50)
    ) {
        let scores: Vec<f32> = raw.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = raw.iter().map(|&(_, l)| l).collect();
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&scores, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    /// All F1 variants live in [0, 1]; perfect predictions give exactly 1;
    /// micro-F1 equals accuracy in single-label classification.
    #[test]
    fn f1_bounds_and_identities(
        raw in prop::collection::vec((0usize..4, 0usize..4), 1..80)
    ) {
        let preds: Vec<usize> = raw.iter().map(|&(p, _)| p).collect();
        let targets: Vec<usize> = raw.iter().map(|&(_, t)| t).collect();
        let cm = ConfusionMatrix::new(&preds, &targets, 4);
        for v in [cm.micro_f1(), cm.macro_f1(), cm.weighted_f1(), cm.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        prop_assert!((cm.micro_f1() - cm.accuracy()).abs() < 1e-12);
        prop_assert_eq!(weighted_f1(&targets, &targets, 4), 1.0);
        prop_assert_eq!(micro_f1(&targets, &targets, 4), 1.0);
    }

    /// NDCG@k is 1 for the perfect ranking, in [0, 1] always, and invariant
    /// to k beyond the list length.
    #[test]
    fn ndcg_bounds_and_perfect_ranking(
        rel in prop::collection::vec(0.0f32..1.0, 1..30),
        k in 1usize..40,
    ) {
        prop_assume!(rel.iter().any(|&r| r > 0.0));
        // Predicting the relevance itself is a perfect ranking.
        let perfect = ndcg_at_k(&rel, &rel, k);
        prop_assert!((perfect - 1.0).abs() < 1e-9, "perfect ranking ndcg {perfect}");
        // Any other prediction is bounded.
        let arbitrary: Vec<f32> = rel.iter().rev().copied().collect();
        let v = ndcg_at_k(&arbitrary, &rel, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{v}");
        // k larger than the list changes nothing.
        prop_assert!((ndcg_at_k(&rel, &rel, rel.len() + 5) - 1.0).abs() < 1e-9);
    }

    /// Mean NDCG averages per-query NDCG.
    #[test]
    fn mean_ndcg_is_the_mean(
        rels in prop::collection::vec(prop::collection::vec(0.01f32..1.0, 3..6), 1..8)
    ) {
        let queries: Vec<(Vec<f32>, Vec<f32>)> = rels
            .iter()
            .map(|r| (r.iter().rev().copied().collect(), r.clone()))
            .collect();
        let mean = mean_ndcg_at_k(&queries, 10);
        let manual: f64 = queries.iter().map(|(p, r)| ndcg_at_k(p, r, 10)).sum::<f64>()
            / queries.len() as f64;
        prop_assert!((mean - manual).abs() < 1e-12);
    }

    /// Average precision is within [0, 1] and is 1 when every positive
    /// outranks every negative.
    #[test]
    fn ap_bounds_and_perfect_separation(
        n_pos in 1usize..10,
        n_neg in 1usize..10,
    ) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            scores.push(10.0 + i as f32);
            labels.push(true);
        }
        for i in 0..n_neg {
            scores.push(-(i as f32));
            labels.push(false);
        }
        let ap = average_precision(&scores, &labels);
        prop_assert!((ap - 1.0).abs() < 1e-9, "{ap}");
    }

    /// The documented NaN policy: with scores ranked by IEEE total order,
    /// every metric stays bounded and AUC is a permutation-invariant
    /// function of the (score, label) multiset even when NaNs are present.
    /// (Under the old `partial_cmp`-with-`Equal`-fallback sorts, a NaN's
    /// effective rank depended on its input position, so rotating the
    /// inputs changed the metric.)
    #[test]
    fn metrics_with_nans_are_bounded_and_auc_is_permutation_invariant(
        raw in prop::collection::vec((0.0f32..1.0, any::<bool>(), any::<bool>()), 2..40),
        rot in 1usize..39,
    ) {
        let scores: Vec<f32> = raw
            .iter()
            .map(|&(s, _, poison)| if poison { f32::NAN } else { s })
            .collect();
        let labels: Vec<bool> = raw.iter().map(|&(_, l, _)| l).collect();

        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc), "auc {auc}");
        let ap = average_precision(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&ap), "ap {ap}");
        let rel: Vec<f32> = raw.iter().map(|&(s, _, _)| s).collect();
        let ndcg = ndcg_at_k(&scores, &rel, 10);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ndcg), "ndcg {ndcg}");

        // Rotate scores and labels together: same multiset, same AUC bits.
        let rot = rot % scores.len();
        let mut rs = scores.clone();
        rs.rotate_left(rot);
        let mut rl = labels.clone();
        rl.rotate_left(rot);
        prop_assert_eq!(auc, roc_auc(&rs, &rl), "rotation by {} changed AUC", rot);
    }

    /// Silhouette scores live in [−1, 1]; clearly separated clusters score
    /// positive; a random relabeling scores no better.
    #[test]
    fn silhouette_bounds_and_separation(offset in 5.0f32..50.0, n in 4usize..12) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            data.extend_from_slice(&[i as f32 * 0.1, 0.0]);
            labels.push(0usize);
            data.extend_from_slice(&[i as f32 * 0.1 + offset, 0.0]);
            labels.push(1usize);
        }
        let points = Matrix::from_vec(2 * n, 2, data);
        let good = silhouette_score(&points, &labels);
        prop_assert!((-1.0..=1.0).contains(&good));
        prop_assert!(good > 0.5, "separated clusters must score high: {good}");
        // Points were pushed as (cluster0, cluster1) pairs, so grouping by
        // pair index mixes both true clusters into each label.
        let bad_labels: Vec<usize> = (0..2 * n).map(|i| (i / 2) % 2).collect();
        let bad = silhouette_score(&points, &bad_labels);
        prop_assert!(good > bad, "{good} vs {bad}");
    }
}
