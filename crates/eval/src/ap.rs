//! Average precision (area under the precision–recall curve), a common
//! companion metric to ROC-AUC for the heavily imbalanced anomaly-detection
//! datasets.

/// Average precision: mean of precision values at each positive hit when
/// items are ranked by score (descending). Returns 0 when there are no
/// positives.
///
/// # NaN policy
///
/// Items are ranked by descending IEEE-754 total order
/// ([`f32::total_cmp`]), so the ranking is deterministic for any scores: a
/// NaN score (positive-sign, the kind arithmetic produces) ranks **first**
/// — above `+∞` — rather than landing wherever the sort left it; equal bit
/// patterns keep their input order (stable sort). The old
/// `partial_cmp`-with-`Equal`-fallback silently produced an
/// input-order-dependent ranking whenever a NaN was present.
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    if n_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut hits = 0usize;
    let mut sum_precision = 0.0f64;
    for (rank, &idx) in order.iter().enumerate() {
        if labels[idx] {
            hits += 1;
            sum_precision += hits as f64 / (rank + 1) as f64;
        }
    }
    sum_precision / n_pos as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(average_precision(&scores, &labels), 1.0);
    }

    #[test]
    fn worst_ranking_hand_computed() {
        // positives ranked last among 4: precisions 1/3, 2/4
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        let expected = (1.0 / 3.0 + 2.0 / 4.0) / 2.0;
        assert!((average_precision(&scores, &labels) - expected).abs() < 1e-12);
    }

    #[test]
    fn no_positives_is_zero() {
        assert_eq!(average_precision(&[0.5, 0.4], &[false, false]), 0.0);
    }

    #[test]
    fn all_positives_is_one() {
        assert_eq!(average_precision(&[0.5, 0.4], &[true, true]), 1.0);
    }

    /// Regression: the NaN policy is "ranked first", deterministically —
    /// under the old `partial_cmp` fallback the position of a NaN-scored
    /// item depended on where the sort happened to leave it.
    #[test]
    fn nan_scores_rank_first() {
        assert_eq!(average_precision(&[f32::NAN, 0.5], &[true, false]), 1.0);
        assert_eq!(average_precision(&[f32::NAN, 0.5], &[false, true]), 0.5);
        // Position of the NaN in the input does not matter.
        assert_eq!(
            average_precision(&[0.5, f32::NAN], &[false, true]),
            average_precision(&[f32::NAN, 0.5], &[true, false])
        );
    }

    #[test]
    fn random_scores_approximate_prevalence() {
        // With random scores, AP ≈ positive prevalence.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let scores: Vec<f32> = (0..n).map(|_| rng.random::<f32>()).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.random::<f32>() < 0.1).collect();
        let ap = average_precision(&scores, &labels);
        assert!((ap - 0.1).abs() < 0.02, "AP {ap}");
    }
}
