//! Principal component analysis via power iteration with deflation.
//!
//! Used to pre-reduce high-dimensional node representations before t-SNE and
//! to summarize embedding drift (paper Fig. 3a).

use nn::Matrix;

/// Projects `points` (rows) onto their top `k` principal components.
/// Returns an `(n, k)` matrix. Deterministic (fixed starting vectors).
pub fn pca(points: &Matrix, k: usize) -> Matrix {
    let (n, d) = points.shape();
    let k = k.min(d);
    if n == 0 || k == 0 {
        return Matrix::zeros(n, k);
    }
    // Center.
    let mut mean = vec![0.0f32; d];
    for i in 0..n {
        for (m, &v) in mean.iter_mut().zip(points.row(i)) {
            *m += v;
        }
    }
    mean.iter_mut().for_each(|m| *m /= n as f32);
    let mut centered = points.clone();
    for i in 0..n {
        for (v, &m) in centered.row_mut(i).iter_mut().zip(&mean) {
            *v -= m;
        }
    }
    // Covariance (d, d).
    let mut cov = centered.matmul_tn(&centered);
    cov.scale_assign(1.0 / (n.max(2) - 1) as f32);

    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    for comp_idx in 0..k {
        // Deterministic start vector, roughly uncorrelated with earlier ones.
        let mut v: Vec<f32> = (0..d)
            .map(|j| ((j * 37 + comp_idx * 101 + 13) as f32 * 0.613).sin())
            .collect();
        normalize(&mut v);
        for _ in 0..200 {
            // w = cov · v, deflated against previous components.
            let mut w = vec![0.0f32; d];
            for (r, wr) in w.iter_mut().enumerate() {
                let row = cov.row(r);
                *wr = row.iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            for c in &components {
                let proj: f32 = w.iter().zip(c).map(|(a, b)| a * b).sum();
                for (wv, cv) in w.iter_mut().zip(c) {
                    *wv -= proj * cv;
                }
            }
            let norm = normalize(&mut w);
            if norm < 1e-12 {
                break;
            }
            let diff: f32 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = w;
            if diff < 1e-7 {
                break;
            }
        }
        components.push(v);
    }

    let mut out = Matrix::zeros(n, k);
    for i in 0..n {
        let row = centered.row(i);
        for (j, c) in components.iter().enumerate() {
            out.set(i, j, row.iter().zip(c).map(|(a, b)| a * b).sum());
        }
    }
    out
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::randn_matrix;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn recovers_dominant_direction() {
        // Points along (1, 1, 0) with small noise: PC1 captures most variance.
        let mut rng = StdRng::seed_from_u64(0);
        let n = 200;
        let mut data = Vec::with_capacity(n * 3);
        for _ in 0..n {
            let t = nn::randn(&mut rng) * 10.0;
            let noise = nn::randn(&mut rng) * 0.1;
            data.extend_from_slice(&[t + noise, t - noise, noise]);
        }
        let points = Matrix::from_vec(n, 3, data);
        let proj = pca(&points, 2);
        let var = |col: usize| {
            let m: f32 = (0..n).map(|i| proj.get(i, col)).sum::<f32>() / n as f32;
            (0..n).map(|i| (proj.get(i, col) - m).powi(2)).sum::<f32>() / n as f32
        };
        assert!(var(0) > 50.0 * var(1), "pc1 var {} pc2 var {}", var(0), var(1));
    }

    #[test]
    fn projection_shape_and_centering() {
        let mut rng = StdRng::seed_from_u64(1);
        let points = randn_matrix(50, 8, 1.0, &mut rng);
        let proj = pca(&points, 3);
        assert_eq!(proj.shape(), (50, 3));
        // Projections of centered data have ~zero mean.
        for j in 0..3 {
            let m: f32 = (0..50).map(|i| proj.get(i, j)).sum::<f32>() / 50.0;
            assert!(m.abs() < 1e-3, "col {j} mean {m}");
        }
    }

    #[test]
    fn k_clamped_to_dim() {
        let points = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let proj = pca(&points, 10);
        assert_eq!(proj.cols(), 2);
    }

    #[test]
    fn empty_input() {
        let proj = pca(&Matrix::zeros(0, 4), 2);
        assert_eq!(proj.shape(), (0, 2));
    }
}
