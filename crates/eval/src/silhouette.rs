//! Silhouette score for labeled point sets (paper Fig. 14 reports it for
//! node representations).

use nn::Matrix;

fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Mean silhouette coefficient of `points` (rows) under integer `labels`.
///
/// Exact O(n²) computation. Points in singleton clusters contribute 0, the
/// sklearn convention. Returns 0 when fewer than 2 distinct clusters exist.
pub fn silhouette_score(points: &Matrix, labels: &[usize]) -> f64 {
    let n = points.rows();
    assert_eq!(n, labels.len(), "points/labels length mismatch");
    if n == 0 {
        return 0.0;
    }
    let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut cluster_sizes = vec![0usize; num_clusters];
    for &l in labels {
        cluster_sizes[l] += 1;
    }
    if cluster_sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }

    let mut total = 0.0f64;
    let mut dist_sums = vec![0.0f64; num_clusters];
    for i in 0..n {
        dist_sums.iter_mut().for_each(|d| *d = 0.0);
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sums[labels[j]] += euclidean(points.row(i), points.row(j));
        }
        let own = labels[i];
        if cluster_sizes[own] <= 1 {
            continue; // singleton → silhouette 0
        }
        let a = dist_sums[own] / (cluster_sizes[own] - 1) as f64;
        let b = (0..num_clusters)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| dist_sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a.max(b) > 0.0 { (b - a) / a.max(b) } else { 0.0 };
        total += s;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_near_one() {
        // Two tight clusters far apart.
        let mut data = Vec::new();
        for i in 0..5 {
            data.extend_from_slice(&[i as f32 * 0.01, 0.0]);
        }
        for i in 0..5 {
            data.extend_from_slice(&[100.0 + i as f32 * 0.01, 0.0]);
        }
        let points = Matrix::from_vec(10, 2, data);
        let labels: Vec<usize> = (0..10).map(|i| i / 5).collect();
        let s = silhouette_score(&points, &labels);
        assert!(s > 0.95, "score {s}");
    }

    #[test]
    fn mislabeled_clusters_negative() {
        let mut data = Vec::new();
        for i in 0..4 {
            data.extend_from_slice(&[i as f32 * 0.01, 0.0]);
        }
        for i in 0..4 {
            data.extend_from_slice(&[100.0 + i as f32 * 0.01, 0.0]);
        }
        let points = Matrix::from_vec(8, 2, data);
        // Labels alternate across the true split.
        let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&points, &labels);
        assert!(s < 0.0, "score {s}");
    }

    #[test]
    fn single_cluster_is_zero() {
        let points = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        assert_eq!(silhouette_score(&points, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        let points = Matrix::zeros(0, 2);
        assert_eq!(silhouette_score(&points, &[]), 0.0);
    }

    #[test]
    fn score_in_valid_range() {
        let points = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let labels = [0usize, 0, 1, 1, 0, 1];
        let s = silhouette_score(&points, &labels);
        assert!((-1.0..=1.0).contains(&s));
    }
}
