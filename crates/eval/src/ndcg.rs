//! NDCG@k, the paper's metric for node affinity prediction (following the
//! Temporal Graph Benchmark protocol).

/// DCG of `relevance` values already ordered by predicted rank.
fn dcg(ordered_relevance: &[f32]) -> f64 {
    ordered_relevance
        .iter()
        .enumerate()
        .map(|(i, &rel)| rel as f64 / ((i + 2) as f64).log2())
        .sum()
}

/// NDCG@k of one query: items are ranked by `predicted` (descending) and
/// gains are the ground-truth `relevance` values. Returns 1 when the
/// ground-truth relevance is all-zero (nothing to rank).
///
/// # NaN policy
///
/// Both rankings (predicted and ideal) use descending IEEE-754 total order
/// ([`f32::total_cmp`]), so they are deterministic for any inputs: a NaN
/// predicted score (positive-sign, the kind arithmetic produces) ranks its
/// item **first** — above `+∞` — instead of landing wherever the sort left
/// it; equal bit patterns keep their input order (stable sort). Relevance
/// values are assumed finite (NaN gains propagate into the DCG sums, as
/// any weighted sum would).
pub fn ndcg_at_k(predicted: &[f32], relevance: &[f32], k: usize) -> f64 {
    assert_eq!(predicted.len(), relevance.len(), "score/relevance length mismatch");
    let k = k.min(predicted.len());
    if k == 0 {
        return 1.0;
    }
    let mut by_pred: Vec<usize> = (0..predicted.len()).collect();
    by_pred.sort_by(|&a, &b| predicted[b].total_cmp(&predicted[a]));
    let top: Vec<f32> = by_pred[..k].iter().map(|&i| relevance[i]).collect();

    let mut ideal: Vec<f32> = relevance.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let ideal_dcg = dcg(&ideal[..k]);
    if ideal_dcg == 0.0 {
        return 1.0;
    }
    dcg(&top) / ideal_dcg
}

/// Mean NDCG@k over a batch of `(predicted, relevance)` query pairs.
pub fn mean_ndcg_at_k(queries: &[(Vec<f32>, Vec<f32>)], k: usize) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|(p, r)| ndcg_at_k(p, r, k))
        .sum::<f64>()
        / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let rel = [3.0f32, 2.0, 1.0, 0.0];
        let pred = [0.9f32, 0.7, 0.3, 0.1];
        assert!((ndcg_at_k(&pred, &rel, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_ranking_below_one() {
        let rel = [3.0f32, 2.0, 1.0, 0.0];
        let pred = [0.1f32, 0.3, 0.7, 0.9];
        let v = ndcg_at_k(&pred, &rel, 4);
        assert!(v < 1.0 && v > 0.0, "ndcg {v}");
    }

    #[test]
    fn hand_computed_at_2() {
        // relevance [1, 0, 2]; prediction ranks item1 > item2 > item0
        let rel = [1.0f32, 0.0, 2.0];
        let pred = [0.1f32, 0.9, 0.5];
        // top-2 by prediction: items 1, 2 → gains [0, 2]
        // dcg = 0/log2(2) + 2/log2(3)
        // ideal top-2: [2, 1] → 2/log2(2) + 1/log2(3)
        let dcg = 2.0 / 3f64.log2();
        let idcg = 2.0 + 1.0 / 3f64.log2();
        assert!((ndcg_at_k(&pred, &rel, 2) - dcg / idcg).abs() < 1e-9);
    }

    #[test]
    fn zero_relevance_is_one() {
        assert_eq!(ndcg_at_k(&[0.5, 0.1], &[0.0, 0.0], 2), 1.0);
    }

    /// Regression: a NaN predicted score deterministically ranks its item
    /// first (total order) instead of wherever the sort left it.
    #[test]
    fn nan_prediction_ranks_item_first() {
        let rel = [0.0f32, 1.0];
        // NaN on the irrelevant item: it takes rank 1, relevant item rank 2.
        let v = ndcg_at_k(&[f32::NAN, 0.9], &rel, 2);
        let expected = (1.0 / 3f64.log2()) / 1.0;
        assert!((v - expected).abs() < 1e-12, "{v}");
        // Input position of the NaN is irrelevant.
        assert_eq!(v, ndcg_at_k(&[0.9, f32::NAN], &[1.0, 0.0], 2));
        // NaN on the relevant item: perfect ranking.
        assert_eq!(ndcg_at_k(&[0.1, f32::NAN], &rel, 2), 1.0);
    }

    #[test]
    fn k_larger_than_items_clamped() {
        let rel = [1.0f32, 2.0];
        let pred = [0.9f32, 0.1];
        let a = ndcg_at_k(&pred, &rel, 10);
        let b = ndcg_at_k(&pred, &rel, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_over_queries() {
        let q1 = (vec![0.9f32, 0.1], vec![1.0f32, 0.0]); // perfect → 1
        let q2 = (vec![0.1f32, 0.9], vec![1.0f32, 0.0]); // worst at k=1 → 0
        let m = mean_ndcg_at_k(&[q1, q2], 1);
        assert!((m - 0.5).abs() < 1e-12);
        assert_eq!(mean_ndcg_at_k(&[], 5), 0.0);
    }
}
