//! Evaluation substrate for the SPLASH reproduction.
//!
//! The paper scores each task with one headline metric (Table III):
//!
//! * [`roc_auc`] — ROC-AUC for dynamic anomaly detection, computed exactly
//!   via the rank-sum formulation with midrank tie handling;
//! * [`weighted_f1`] — support-weighted F1 for dynamic node classification,
//!   built on an explicit [`ConfusionMatrix`] (with [`micro_f1`] alongside);
//! * [`ndcg_at_k`] / [`mean_ndcg_at_k`] — NDCG@10 for node affinity
//!   prediction, with the paper's log₂ discount;
//! * [`average_precision`] — used by the anomaly ablations.
//!
//! Representation quality (paper Fig. 10/11) is analysed with
//! [`silhouette_score`], [`pca`], and a from-scratch Barnes-Hut-free
//! [`tsne`] — enough to reproduce the qualitative cluster plots without any
//! plotting dependency.
//!
//! Everything is implemented from scratch on `f32` slices / [`nn::Matrix`],
//! deterministic given its inputs, and property-tested (bounds, symmetry,
//! and agreement with brute-force definitions) in `tests/proptests.rs`.

pub mod ap;
pub mod auc;
pub mod f1;
pub mod ndcg;
pub mod pca;
pub mod silhouette;
pub mod tsne;

pub use ap::average_precision;
pub use auc::roc_auc;
pub use f1::{micro_f1, weighted_f1, ConfusionMatrix};
pub use ndcg::{mean_ndcg_at_k, ndcg_at_k};
pub use pca::pca;
pub use silhouette::silhouette_score;
pub use tsne::{tsne, TsneConfig};
