//! Evaluation substrate for the SPLASH reproduction.
//!
//! The paper evaluates with ROC-AUC (dynamic anomaly detection), weighted F1
//! (dynamic node classification), and NDCG@10 (node affinity prediction),
//! and analyses representations with silhouette scores and t-SNE. All of it
//! is implemented here from scratch.

pub mod ap;
pub mod auc;
pub mod f1;
pub mod ndcg;
pub mod pca;
pub mod silhouette;
pub mod tsne;

pub use ap::average_precision;
pub use auc::roc_auc;
pub use f1::{micro_f1, weighted_f1, ConfusionMatrix};
pub use ndcg::{mean_ndcg_at_k, ndcg_at_k};
pub use pca::pca;
pub use silhouette::silhouette_score;
pub use tsne::{tsne, TsneConfig};
