//! F1 scores and confusion matrices, the paper's metric for dynamic node
//! classification.

/// A dense multi-class confusion matrix; `m[t][p]` counts samples of true
/// class `t` predicted as class `p`.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from aligned prediction/target class indices.
    pub fn new(predictions: &[usize], targets: &[usize], num_classes: usize) -> Self {
        assert_eq!(predictions.len(), targets.len());
        let mut counts = vec![vec![0u64; num_classes]; num_classes];
        for (&p, &t) in predictions.iter().zip(targets) {
            assert!(p < num_classes && t < num_classes, "class index out of range");
            counts[t][p] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// True positives for a class.
    pub fn tp(&self, c: usize) -> u64 {
        self.counts[c][c]
    }

    /// Samples whose true class is `c`.
    pub fn support(&self, c: usize) -> u64 {
        self.counts[c].iter().sum()
    }

    /// Samples predicted as class `c`.
    pub fn predicted(&self, c: usize) -> u64 {
        self.counts.iter().map(|row| row[c]).sum()
    }

    /// Per-class precision (0 when nothing was predicted as `c`).
    pub fn precision(&self, c: usize) -> f64 {
        let p = self.predicted(c);
        if p == 0 {
            0.0
        } else {
            self.tp(c) as f64 / p as f64
        }
    }

    /// Per-class recall (0 when the class has no support).
    pub fn recall(&self, c: usize) -> f64 {
        let s = self.support(c);
        if s == 0 {
            0.0
        } else {
            self.tp(c) as f64 / s as f64
        }
    }

    /// Per-class F1.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Micro-averaged F1 (= accuracy for single-label classification).
    pub fn micro_f1(&self) -> f64 {
        self.accuracy()
    }

    /// Macro-averaged F1 over classes with nonzero support.
    pub fn macro_f1(&self) -> f64 {
        let classes: Vec<usize> =
            (0..self.num_classes()).filter(|&c| self.support(c) > 0).collect();
        if classes.is_empty() {
            return 0.0;
        }
        classes.iter().map(|&c| self.f1(c)).sum::<f64>() / classes.len() as f64
    }

    /// Support-weighted F1, the "F1 Score" the paper reports for dynamic
    /// node classification.
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.num_classes())
            .map(|c| self.f1(c) * self.support(c) as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Convenience: support-weighted F1 straight from label vectors.
pub fn weighted_f1(predictions: &[usize], targets: &[usize], num_classes: usize) -> f64 {
    ConfusionMatrix::new(predictions, targets, num_classes).weighted_f1()
}

/// Convenience: micro F1 (accuracy) straight from label vectors.
pub fn micro_f1(predictions: &[usize], targets: &[usize], num_classes: usize) -> f64 {
    ConfusionMatrix::new(predictions, targets, num_classes).micro_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [0usize, 1, 2, 1, 0];
        let cm = ConfusionMatrix::new(&t, &t, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn binary_f1_hand_computed() {
        // TP=2, FP=1, FN=1, TN=1 for class 1
        let pred = [1usize, 1, 1, 0, 0];
        let targ = [1usize, 1, 0, 1, 0];
        let cm = ConfusionMatrix::new(&pred, &targ, 2);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_ignores_empty_classes() {
        // class 2 never appears as a target
        let pred = [0usize, 1, 0, 1];
        let targ = [0usize, 1, 0, 1];
        let cm = ConfusionMatrix::new(&pred, &targ, 3);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn weighted_f1_weights_by_support() {
        // Class 0: 3 samples all correct (f1 = 1); class 1: 1 sample wrong (f1 = 0).
        let pred = [0usize, 0, 0, 0];
        let targ = [0usize, 0, 0, 1];
        let cm = ConfusionMatrix::new(&pred, &targ, 2);
        // class 0: p = 3/4, r = 1 → f1 = 6/7; class 1: f1 = 0
        let expected = (6.0 / 7.0) * 3.0 / 4.0;
        assert!((cm.weighted_f1() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let cm = ConfusionMatrix::new(&[], &[], 3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.weighted_f1(), 0.0);
    }

    #[test]
    fn micro_equals_accuracy() {
        let pred = [0usize, 1, 1, 2, 0];
        let targ = [0usize, 1, 2, 2, 1];
        assert_eq!(micro_f1(&pred, &targ, 3), 3.0 / 5.0);
    }
}
