//! Area under the ROC curve, the paper's metric for dynamic anomaly
//! detection.

/// ROC-AUC via the rank-sum (Mann–Whitney U) formulation with average ranks
/// for tied scores. Returns 0.5 when either class is empty.
///
/// # NaN policy
///
/// Scores are ranked **and tied** by IEEE-754 total order
/// ([`f32::total_cmp`]), which makes the metric a deterministic,
/// permutation-invariant function of the `(score bits, label)` multiset
/// even for non-finite scores (pinned by the `auc_is_permutation_invariant
/// _with_nans` proptest):
///
/// * a NaN score (the positive-sign NaNs arithmetic produces) ranks
///   **above `+∞`** — a model emitting NaN for an item has, in effect,
///   flagged it maximally;
/// * NaNs with identical bit patterns tie with each other (and share an
///   averaged rank) but never with any real number;
/// * ties are IEEE equality *or* total-order equality, so `-0.0` and
///   `+0.0` still tie (they are mathematically equal — the Mann–Whitney
///   definition demands it) even though the sort orders them
///   deterministically.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average ranks over tie groups (1-based ranks).
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && {
            let (a, b) = (scores[order[j + 1]], scores[order[i]]);
            // IEEE equality keeps ±0.0 tied; total-order equality makes
            // identical-bit NaNs tie with each other.
            a == b || a.total_cmp(&b) == std::cmp::Ordering::Equal
        } {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.1f32, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [0.5f32; 6];
        let labels = [true, false, true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    /// Regression: NaN scores used to fall through `partial_cmp`'s `Equal`
    /// fallback, leaving the ranking at the mercy of the sort's internals.
    /// Under the total order a NaN ranks above everything, deterministically.
    #[test]
    fn nan_scores_rank_highest() {
        // The NaN-scored positive outranks every negative → perfect AUC.
        assert_eq!(roc_auc(&[f32::NAN, 0.9, 0.5], &[true, false, false]), 1.0);
        // The NaN-scored negative outranks the positives → zero AUC.
        assert_eq!(roc_auc(&[f32::NAN, 0.9, 0.5], &[false, true, true]), 0.0);
        // Identical-bit NaNs tie with each other: one positive, one
        // negative, both above the rest → that pair contributes ½.
        let auc = roc_auc(&[f32::NAN, f32::NAN, 0.1], &[true, false, false]);
        assert!((auc - 0.75).abs() < 1e-12, "{auc}");
    }

    /// `-0.0` and `+0.0` are mathematically equal and must tie (the sort
    /// orders them by total order, but the tie grouping uses IEEE
    /// equality), exactly as the Mann–Whitney definition demands.
    #[test]
    fn signed_zeros_tie() {
        assert_eq!(roc_auc(&[0.0, -0.0], &[true, false]), 0.5);
        assert_eq!(roc_auc(&[-0.0, 0.0, 0.5], &[true, false, false]), 0.25);
    }

    #[test]
    fn matches_pairwise_definition() {
        // AUC = P(score_pos > score_neg) + 0.5 P(tie)
        let scores = [0.3f32, 0.7, 0.7, 0.1, 0.9, 0.5];
        let labels = [false, true, false, false, true, true];
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for (i, &li) in labels.iter().enumerate() {
            if !li {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj {
                    continue;
                }
                total += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        assert!((roc_auc(&scores, &labels) - wins / total).abs() < 1e-12);
    }
}
