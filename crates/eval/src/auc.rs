//! Area under the ROC curve, the paper's metric for dynamic anomaly
//! detection.

/// ROC-AUC via the rank-sum (Mann–Whitney U) formulation with average ranks
/// for tied scores. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // Average ranks over tie groups (1-based ranks).
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.1f32, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [0.5f32; 6];
        let labels = [true, false, true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn matches_pairwise_definition() {
        // AUC = P(score_pos > score_neg) + 0.5 P(tie)
        let scores = [0.3f32, 0.7, 0.7, 0.1, 0.9, 0.5];
        let labels = [false, true, false, false, true, true];
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for (i, &li) in labels.iter().enumerate() {
            if !li {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj {
                    continue;
                }
                total += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        assert!((roc_auc(&scores, &labels) - wins / total).abs() < 1e-12);
    }
}
