//! Exact t-SNE (van der Maaten & Hinton 2008).
//!
//! The paper visualizes node representations and embedding drift with t-SNE
//! (Figs. 3 and 14). This is the exact O(n²) algorithm: perplexity-calibrated
//! conditional Gaussians, symmetrized affinities, early exaggeration, and
//! momentum gradient descent on the Student-t low-dimensional affinities.
//! Inputs beyond ~2k points should be PCA-reduced first (see
//! [`crate::pca::pca`]).

use nn::Matrix;
use rand::{rngs::StdRng, SeedableRng};

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of
    /// iterations.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self { perplexity: 20.0, iterations: 350, learning_rate: 100.0, exaggeration: 12.0, seed: 0 }
    }
}

/// Embeds `points` (rows) into 2-D.
pub fn tsne(points: &Matrix, config: &TsneConfig) -> Matrix {
    let n = points.rows();
    if n == 0 {
        return Matrix::zeros(0, 2);
    }
    if n == 1 {
        return Matrix::zeros(1, 2);
    }
    let p = joint_affinities(points, config.perplexity.min((n as f64 - 1.0) / 3.0).max(1.0));

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<[f64; 2]> = (0..n)
        .map(|_| [nn::randn(&mut rng) as f64 * 1e-2, nn::randn(&mut rng) as f64 * 1e-2])
        .collect();
    let mut velocity = vec![[0.0f64; 2]; n];
    let exag_end = config.iterations / 4;

    for iter in 0..config.iterations {
        let exag = if iter < exag_end { config.exaggeration } else { 1.0 };
        // Student-t affinities.
        let mut num = vec![0.0f64; n * n];
        let mut z = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let v = 1.0 / (1.0 + dx * dx + dy * dy);
                num[i * n + j] = v;
                num[j * n + i] = v;
                z += 2.0 * v;
            }
        }
        let z = z.max(1e-12);
        // Gradient: 4 Σ_j (exag·p_ij − q_ij) · num_ij · (y_i − y_j)
        let momentum = if iter < exag_end { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut g = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = num[i * n + j] / z;
                let mult = (exag * p[i * n + j] - q) * num[i * n + j];
                g[0] += mult * (y[i][0] - y[j][0]);
                g[1] += mult * (y[i][1] - y[j][1]);
            }
            for d in 0..2 {
                velocity[i][d] =
                    momentum * velocity[i][d] - config.learning_rate * 4.0 * g[d];
            }
        }
        for i in 0..n {
            y[i][0] += velocity[i][0];
            y[i][1] += velocity[i][1];
        }
        // Re-center to keep the layout bounded.
        let mean = y.iter().fold([0.0f64; 2], |acc, p| [acc[0] + p[0], acc[1] + p[1]]);
        let mean = [mean[0] / n as f64, mean[1] / n as f64];
        for p in &mut y {
            p[0] -= mean[0];
            p[1] -= mean[1];
        }
    }

    let mut out = Matrix::zeros(n, 2);
    for (i, p) in y.iter().enumerate() {
        out.set(i, 0, p[0] as f32);
        out.set(i, 1, p[1] as f32);
    }
    out
}

/// Symmetrized joint affinities `P` with per-point perplexity calibration.
fn joint_affinities(points: &Matrix, perplexity: f64) -> Vec<f64> {
    let n = points.rows();
    let d = points.cols();
    // Pairwise squared distances.
    let mut dist2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f64;
            let (ri, rj) = (points.row(i), points.row(j));
            for k in 0..d {
                let diff = (ri[k] - rj[k]) as f64;
                s += diff * diff;
            }
            dist2[i * n + j] = s;
            dist2[j * n + i] = s;
        }
    }
    let target_entropy = perplexity.ln();
    let mut p_cond = vec![0.0f64; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2σ²) for target entropy.
        let row = &dist2[i * n..(i + 1) * n];
        let mut beta = 1.0f64;
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        let mut probs = vec![0.0f64; n];
        for _ in 0..64 {
            let mut sum = 0.0f64;
            for j in 0..n {
                probs[j] = if j == i { 0.0 } else { (-beta * row[j]).exp() };
                sum += probs[j];
            }
            let sum = sum.max(1e-300);
            let mut entropy = 0.0f64;
            for p in probs.iter_mut() {
                *p /= sum;
                if *p > 1e-300 {
                    entropy -= *p * p.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                lo = beta;
                beta = if hi.is_finite() { (beta + hi) / 2.0 } else { beta * 2.0 };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        p_cond[i * n..(i + 1) * n].copy_from_slice(&probs);
    }
    // Symmetrize.
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            p[i * n + j] = ((p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(per: usize, gap: f32) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..per {
                data.push(c as f32 * gap + nn::randn(&mut rng) * 0.3);
                data.push(nn::randn(&mut rng) * 0.3);
                data.push(nn::randn(&mut rng) * 0.3);
                labels.push(c);
            }
        }
        (Matrix::from_vec(2 * per, 3, data), labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (points, labels) = two_blobs(20, 20.0);
        // lr 200 oscillates between layouts on this fixture; 50 converges
        // smoothly (silhouette ≥ 0.88 from ~800 iterations on).
        let config = TsneConfig {
            iterations: 800,
            perplexity: 8.0,
            learning_rate: 50.0,
            ..Default::default()
        };
        let emb = tsne(&points, &config);
        let score = crate::silhouette::silhouette_score(&emb, &labels);
        assert!(score > 0.5, "silhouette after t-SNE = {score}");
    }

    #[test]
    fn output_shape_and_determinism() {
        let (points, _) = two_blobs(5, 5.0);
        let config = TsneConfig { iterations: 50, ..Default::default() };
        let a = tsne(&points, &config);
        let b = tsne(&points, &config);
        assert_eq!(a.shape(), (10, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(tsne(&Matrix::zeros(0, 3), &TsneConfig::default()).shape(), (0, 2));
        assert_eq!(tsne(&Matrix::zeros(1, 3), &TsneConfig::default()).shape(), (1, 2));
    }

    #[test]
    fn affinities_are_a_distribution() {
        let (points, _) = two_blobs(6, 4.0);
        let p = joint_affinities(&points, 3.0);
        let total: f64 = p.iter().sum();
        // Σ p_ij ≈ 1 (up to the 1e-12 clamps on the diagonal)
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }
}
