//! Shared harness for the per-table / per-figure experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper's §V (see
//! DESIGN.md §3 for the index). The environment variable `SPLASH_SCALE`
//! (0 < scale ≤ 1, default 1.0) truncates every dataset chronologically for
//! quick smoke runs, and `SPLASH_EPOCHS` overrides the training epochs.

pub mod attn_slim;

pub use attn_slim::AttnSlim;

use baselines::{run_on_capture, BaselineKind, BaselineOutput};
use datasets::{Dataset, Task};
use splash::{capture, run_splash, InputFeatures, SplashConfig, SplashOutput, SEEN_FRAC};

/// One result row shared by the harness tables.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name (with feature-mode suffix).
    pub name: String,
    /// Test metric (task-dependent; higher is better).
    pub metric: f64,
    /// Trainable parameter count.
    pub params: usize,
    /// Training seconds.
    pub train_secs: f64,
    /// Test-inference seconds.
    pub infer_secs: f64,
}

impl From<BaselineOutput> for Row {
    fn from(o: BaselineOutput) -> Self {
        Row {
            name: o.name,
            metric: o.metric,
            params: o.num_params,
            train_secs: o.train_secs,
            infer_secs: o.infer_secs,
        }
    }
}

impl Row {
    /// Builds a row from a SPLASH pipeline output.
    pub fn from_splash(o: &SplashOutput) -> Self {
        Row {
            name: "SPLASH".into(),
            metric: o.metric,
            params: o.num_params,
            train_secs: o.train_secs,
            infer_secs: o.infer_secs,
        }
    }
}

/// Scale factor from `SPLASH_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("SPLASH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(1.0)
}

/// The harness-wide experiment configuration (paper defaults, with an
/// optional `SPLASH_EPOCHS` override).
pub fn config() -> SplashConfig {
    let mut cfg = SplashConfig::default();
    if let Some(e) = std::env::var("SPLASH_EPOCHS").ok().and_then(|s| s.parse().ok()) {
        cfg.epochs = e;
    }
    cfg
}

/// Applies `SPLASH_SCALE` truncation to a dataset.
pub fn prep(dataset: Dataset) -> Dataset {
    let s = scale();
    if s >= 1.0 {
        dataset
    } else {
        splash::truncate_to_available(&dataset, s)
    }
}

/// The paper's metric name for a task.
pub fn metric_name(task: Task) -> &'static str {
    match task {
        Task::Anomaly => "AUC",
        Task::Classification => "F1",
        Task::Affinity => "NDCG@10",
    }
}

/// Runs the full Table III model suite on one dataset: every applicable
/// baseline plain and `+RF`, then SPLASH.
pub fn run_suite(dataset: &Dataset, cfg: &SplashConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let cap_plain = capture(dataset, InputFeatures::External, cfg, SEEN_FRAC);
    let cap_rf = capture(dataset, InputFeatures::RawRandom, cfg, SEEN_FRAC);
    for kind in BaselineKind::ALL {
        if !kind.supports(dataset.task) {
            continue;
        }
        rows.push(run_on_capture(kind, dataset, &cap_plain, InputFeatures::External, cfg).into());
        eprintln!("  done {} plain", kind.name());
    }
    for kind in BaselineKind::ALL {
        if !kind.supports(dataset.task) {
            continue;
        }
        rows.push(run_on_capture(kind, dataset, &cap_rf, InputFeatures::RawRandom, cfg).into());
        eprintln!("  done {}+RF", kind.name());
    }
    let splash_out = run_splash(dataset, cfg);
    eprintln!(
        "  done SPLASH (selected {:?})",
        splash_out.selected.map(|p| p.name())
    );
    rows.push(Row::from_splash(&splash_out));
    rows
}

/// Prints an aligned metric table; highlights the best row with `*`.
pub fn print_rows(title: &str, metric: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "model", metric, "#params", "train (s)", "infer (s)"
    );
    let best = rows
        .iter()
        .map(|r| r.metric)
        .fold(f64::NEG_INFINITY, f64::max);
    for r in rows {
        let mark = if (r.metric - best).abs() < 1e-12 { "*" } else { " " };
        println!(
            "{:<16} {:>9.4}{} {:>10} {:>12.2} {:>12.3}",
            r.name, r.metric, mark, r.params, r.train_secs, r.infer_secs
        );
    }
}

/// Prints a simple CSV block (for plotting figures).
pub fn print_csv(header: &str, lines: &[String]) {
    println!("\n--- csv ---");
    println!("{header}");
    for l in lines {
        println!("{l}");
    }
    println!("--- end csv ---");
}
