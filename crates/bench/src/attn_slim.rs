//! SLIM's core architectural bet, made testable: an otherwise-identical
//! SLIM variant whose mean aggregation (Eq. 17) is replaced by multi-head
//! cross-attention from the target node over its encoded messages.
//!
//! The paper argues that under distribution shift the *simpler* aggregator
//! generalizes better (§IV-C); this model is the counterfactual. Everything
//! else — message MLP with edge-weight scaling (Eqs. 14–16), the
//! LayerNorm + weighted message-sum skip (Eq. 18), the MLP decoder — is
//! kept identical, so any metric difference isolates mean-vs-attention.

use baselines::common::{masked_mean_backward, pack_tokens, stack_targets, Baseline};
use ctdg::Label;
use datasets::Task;
use nn::{
    Activation, Adam, CrossAttention, FixedTimeEncode, LayerNorm, Matrix, Mlp, Parameterized,
};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

/// The attention-aggregation SLIM variant.
pub struct AttnSlim {
    mlp1: Mlp,
    attention: CrossAttention,
    mlp2: Mlp,
    ln1: LayerNorm,
    ln2: LayerNorm,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    lambda_s: f32,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
}

impl AttnSlim {
    /// Builds the variant with the same widths SLIM uses for this config.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dh = cfg.hidden;
        let raw_dim = feat_dim + edge_feat_dim + cfg.time_dim;
        let heads = if dh.is_multiple_of(4) { 4 } else { 1 };
        Self {
            mlp1: Mlp::new(&[raw_dim, dh, dh], Activation::Relu, rng),
            attention: CrossAttention::new(feat_dim, dh, dh, heads, rng),
            mlp2: Mlp::new(&[feat_dim + dh, dh, dh], Activation::Relu, rng),
            ln1: LayerNorm::new(dh),
            ln2: LayerNorm::new(dh),
            decoder: Mlp::new(&[dh, dh, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            lambda_s: cfg.lambda_s,
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
        }
    }

    /// Per-row edge weights aligned with `pack_tokens` (0 for padding).
    fn pack_weights(&self, refs: &[&CapturedQuery]) -> Vec<f32> {
        let mut weights = vec![0.0f32; refs.len() * self.k];
        for (qi, q) in refs.iter().enumerate() {
            let len = q.neighbors.len().min(self.k);
            let skip = q.neighbors.len() - len;
            for (slot, nb) in q.neighbors[skip..].iter().enumerate() {
                weights[qi * self.k + slot] = nb.weight;
            }
        }
        weights
    }

    /// Sum of weighted messages per query (the Eq. 18 skip input).
    fn message_sum(m: &Matrix, lens: &[usize], k: usize) -> Matrix {
        let mut out = Matrix::zeros(lens.len(), m.cols());
        for (qi, &len) in lens.iter().enumerate() {
            for slot in 0..len {
                let src = m.row(qi * k + slot);
                for (o, &v) in out.row_mut(qi).iter_mut().zip(src) {
                    *o += v;
                }
            }
        }
        out
    }
}

impl Baseline for AttnSlim {
    fn name(&self) -> &'static str {
        "attn-slim"
    }

    fn num_params(&self) -> usize {
        self.mlp1.num_params()
            + Parameterized::num_params(&self.attention)
            + self.mlp2.num_params()
            + Parameterized::num_params(&self.ln1)
            + Parameterized::num_params(&self.ln2)
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let (tokens, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let weights = self.pack_weights(refs);
        let (m_raw, c_mlp1) = self.mlp1.forward(&tokens);
        let m = m_raw.scale_rows(&weights);
        let target = stack_targets(refs, self.feat_dim);

        // Aggregation: attention instead of the masked mean.
        let (ctx, c_attn) = self.attention.forward(&target, &m, &lens, self.k);
        let concat = Matrix::concat_cols(&[&target, &ctx]);
        let (h_mid, c_mlp2) = self.mlp2.forward(&concat);
        let (h_ln1, c_ln1) = self.ln1.forward(&h_mid);
        let msum = Self::message_sum(&m, &lens, self.k);
        let (skip, c_ln2) = self.ln2.forward(&msum);
        let h = h_ln1.add(&skip.scale(self.lambda_s));
        let (logits, c_dec) = self.decoder.forward(&h);

        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dh = self.decoder.backward(&c_dec, &dlogits);
        let dmid = self.ln1.backward(&c_ln1, &dh);
        let dmsum = self.ln2.backward(&c_ln2, &dh.scale(self.lambda_s));
        let dconcat = self.mlp2.backward(&c_mlp2, &dmid);
        let dctx = dconcat.slice_cols(self.feat_dim, dconcat.cols());
        let (_dquery, dm_attn) = self.attention.backward(&c_attn, &dctx);
        // dm accumulates the attention path and the skip (message-sum) path.
        let mut dm = dm_attn;
        dm.add_assign(&masked_mean_backward_unscaled(&dmsum, &lens, self.k));
        let dm_raw = dm.scale_rows(&weights);
        self.mlp1.backward(&c_mlp1, &dm_raw);

        let Self { mlp1, attention, mlp2, ln1, ln2, decoder, opt, .. } = self;
        let mut params = mlp1.params_mut();
        params.extend(attention.params_mut());
        params.extend(mlp2.params_mut());
        params.extend(ln1.params_mut());
        params.extend(ln2.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        let (tokens, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let weights = self.pack_weights(refs);
        let m = self.mlp1.infer(&tokens).scale_rows(&weights);
        let target = stack_targets(refs, self.feat_dim);
        let ctx = self.attention.infer(&target, &m, &lens, self.k);
        let concat = Matrix::concat_cols(&[&target, &ctx]);
        let h_mid = self.mlp2.infer(&concat);
        let h_ln1 = self.ln1.infer(&h_mid);
        let msum = Self::message_sum(&m, &lens, self.k);
        let skip = self.ln2.infer(&msum);
        let h = h_ln1.add(&skip.scale(self.lambda_s));
        self.decoder.infer(&h)
    }
}

/// Adjoint of [`AttnSlim::message_sum`]: every valid row receives the
/// query's gradient unscaled.
fn masked_mean_backward_unscaled(dout: &Matrix, lens: &[usize], k: usize) -> Matrix {
    // `masked_mean_backward` divides by len; the sum's adjoint does not.
    let mut dm = masked_mean_backward(dout, lens, k);
    for (qi, &len) in lens.iter().enumerate() {
        for slot in 0..len {
            let scale = len as f32;
            for v in dm.row_mut(qi * k + slot) {
                *v *= scale;
            }
        }
    }
    dm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn builds_and_is_finite_on_empty_histories() {
        let cfg = SplashConfig::tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let m = AttnSlim::new(8, 0, 3, &cfg, &mut rng);
        assert!(m.num_params() > 0);
        let q = CapturedQuery {
            node: 0,
            time: 1.0,
            target_feat: vec![0.1; 8],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn learns_a_toy_task() {
        // Reuse the shared toy task through the public Baseline interface.
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = AttnSlim::new(4, 0, 2, &cfg, &mut rng);
        let mut queries = Vec::new();
        for i in 0..32 {
            let sign = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            queries.push(CapturedQuery {
                node: i as u32,
                time: 100.0,
                target_feat: vec![sign * 0.5; 4],
                neighbors: (0..3)
                    .map(|j| splash::CapturedNeighbor {
                        other: j as u32,
                        feat: vec![sign * (j as f32 + 1.0) * 0.3; 4],
                        edge_feat: vec![],
                        time: 90.0 + j as f64,
                        weight: 1.0,
                    })
                    .collect(),
                label: Label::Class((i % 2 == 1) as usize),
            });
        }
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let labels: Vec<&Label> = refs.iter().map(|q| &q.label).collect();
        let mut last = f32::MAX;
        for _ in 0..200 {
            last = m.train_batch(&refs, &labels, Task::Classification);
        }
        assert!(last < 0.2, "attention variant failed to fit: {last}");
    }

    #[test]
    fn weighted_messages_reach_the_gradient() {
        // Message weights scale both forward and backward paths; a zero
        // weight must silence that message entirely.
        let cfg = SplashConfig::tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let m = AttnSlim::new(4, 0, 2, &cfg, &mut rng);
        let mk = |w: f32| CapturedQuery {
            node: 0,
            time: 10.0,
            target_feat: vec![0.3; 4],
            neighbors: vec![splash::CapturedNeighbor {
                other: 1,
                feat: vec![0.9; 4],
                edge_feat: vec![],
                time: 9.0,
                weight: w,
            }],
            label: Label::Class(0),
        };
        let full = mk(1.0);
        let silenced = mk(0.0);
        let a = m.predict_batch(&[&full]);
        let b = m.predict_batch(&[&silenced]);
        assert_ne!(a.data(), b.data(), "weight must modulate the message path");
    }
}
