//! Online Appendix G: the Table III baselines re-run with the *selected
//! augmented node features* (the same features SPLASH's selector picks)
//! instead of plain/random inputs, across all seven dataset analogues.
//!
//! The paper's point: augmented features help the baselines too, but the
//! complex architectures still trail SLIM under distribution shift — the
//! robustness gap is architectural, not only a feature problem.

use baselines::{run_on_capture, BaselineKind};
use bench::{config, metric_name, prep, print_rows, Row};
use datasets::all_benchmarks;
use splash::{capture, run_splash, select_features, InputFeatures, SEEN_FRAC};

fn main() {
    let cfg = config();
    println!("Appendix G — baselines with selected augmented node features");
    for dataset in all_benchmarks() {
        let dataset = prep(dataset);
        eprintln!("dataset {} ({} queries)…", dataset.name, dataset.queries.len());
        let report = select_features(&dataset, &cfg, SEEN_FRAC);
        eprintln!("  selector picked {:?} (risks {:?})", report.selected.name(), report.risks);
        let mode = InputFeatures::Process(report.selected);
        let cap = capture(&dataset, mode, &cfg, SEEN_FRAC);

        let mut rows: Vec<Row> = Vec::new();
        for kind in BaselineKind::ALL {
            if !kind.supports(dataset.task) {
                continue;
            }
            rows.push(run_on_capture(kind, &dataset, &cap, mode, &cfg).into());
            eprintln!("  done {}+aug", kind.name());
        }
        let splash_out = run_splash(&dataset, &cfg);
        rows.push(Row::from_splash(&splash_out));
        print_rows(
            &format!(
                "{} ({}) — all models with selected process {}",
                dataset.name,
                metric_name(dataset.task),
                report.selected.name()
            ),
            metric_name(dataset.task),
            &rows,
        );
    }
}
