//! Hyperparameter ablation sweeps for the design choices DESIGN.md calls
//! out: the recent-neighbor memory size `k` (Eq. 6), the degree-encoding
//! resolution `α` (Eq. 3), the skip-connection weight `λ_s` (Eq. 18), the
//! feature dimension `d_v`, and the number of chronological validation
//! splits in the feature selector (§IV-B footnote 1).
//!
//! Each sweep varies one knob around the paper-default configuration on the
//! Reddit analogue (SLIM + structural features, the Table IV winner there),
//! except the split-count sweep which exercises the selector itself.

use bench::{config, prep, print_csv};
use datasets::reddit;
use splash::{
    run_slim_with, select_features_with_splits, FeatureProcess, InputFeatures, SEEN_FRAC,
    SPLIT_FRACTIONS,
};

fn main() {
    let base = config();
    let dataset = prep(reddit());
    let mode = InputFeatures::Process(FeatureProcess::Structural);
    println!("Ablation sweeps on {} (SLIM + structural features, AUC)", dataset.name);

    // Sweep 1: recent-neighbor memory size k.
    let mut lines = Vec::new();
    for k in [2usize, 5, 10, 20] {
        let mut cfg = base;
        cfg.k = k;
        let out = run_slim_with(&dataset, &cfg, mode);
        eprintln!("  k={k}: {:.4}", out.metric);
        lines.push(format!("{k},{:.4},{:.3}", out.metric, out.infer_secs));
    }
    print_csv("k,auc,infer_secs", &lines);

    // Sweep 2: degree-encoding resolution α (Eq. 3). Too small → noisy
    // high-frequency encodings; too large → smoothed-out degree detail.
    let mut lines = Vec::new();
    for alpha in [5.0f32, 20.0, 50.0, 200.0, 1000.0] {
        let mut cfg = base;
        cfg.degree_alpha = alpha;
        let out = run_slim_with(&dataset, &cfg, mode);
        eprintln!("  alpha={alpha}: {:.4}", out.metric);
        lines.push(format!("{alpha},{:.4}", out.metric));
    }
    print_csv("degree_alpha,auc", &lines);

    // Sweep 3: skip-connection weight λ_s (Eq. 18; 0 disables the skip).
    let mut lines = Vec::new();
    for lambda in [0.0f32, 0.25, 0.5, 1.0, 2.0] {
        let mut cfg = base;
        cfg.lambda_s = lambda;
        let out = run_slim_with(&dataset, &cfg, mode);
        eprintln!("  lambda_s={lambda}: {:.4}", out.metric);
        lines.push(format!("{lambda},{:.4}", out.metric));
    }
    print_csv("lambda_s,auc", &lines);

    // Sweep 4: feature dimension d_v (node2vec dims follow d_v).
    let mut lines = Vec::new();
    for dv in [8usize, 16, 32, 64] {
        let mut cfg = base;
        cfg.feat_dim = dv;
        cfg.node2vec = embed::Node2VecConfig::fast(dv);
        let out = run_slim_with(&dataset, &cfg, mode);
        eprintln!("  d_v={dv}: {:.4}", out.metric);
        lines.push(format!("{dv},{:.4},{}", out.metric, out.num_params));
    }
    print_csv("feat_dim,auc,params", &lines);

    // Sweep 5: the positional Embedding function of Eq. 1. The paper uses
    // node2vec; DeepWalk is its p = q = 1 special case (uniform second-order
    // walks), q > 1 biases walks toward BFS-like locality, and GraRep
    // (§II-D's cited alternative) factorizes log transition powers. Run on
    // the Email-EU analogue, where positional features carry the labels.
    let email = prep(datasets::email_eu());
    let mode_p = InputFeatures::Process(FeatureProcess::Positional);
    let mut lines = Vec::new();
    for (name, p, q) in [
        ("node2vec(q=0.5)", 1.0f32, 0.5f32),
        ("deepwalk(p=q=1)", 1.0, 1.0),
        ("bfs-biased(q=2)", 1.0, 2.0),
    ] {
        let mut cfg = base;
        cfg.node2vec.walk.p = p;
        cfg.node2vec.walk.q = q;
        let out = run_slim_with(&email, &cfg, mode_p);
        eprintln!("  {name}: {:.4}", out.metric);
        lines.push(format!("{name},{:.4}", out.metric));
    }
    for steps in [1usize, 2, 4] {
        let mut cfg = base;
        cfg.positional = splash::PositionalSource::GraRep(embed::GraRepConfig {
            dim: cfg.feat_dim,
            transition_steps: steps,
            svd_iters: 3,
        });
        let out = run_slim_with(&email, &cfg, mode_p);
        eprintln!("  grarep(K={steps}): {:.4}", out.metric);
        lines.push(format!("grarep(K={steps}),{:.4}", out.metric));
    }
    print_csv("embedding,f1", &lines);

    // Sweep 6: number of validation splits in the selector. The paper uses
    // five (10/90 … 90/10); fewer splits make selection cheaper but less
    // robust to the shift intensity of any single split.
    let split_sets: [&[f64]; 3] = [&[0.5], &[0.3, 0.7], &SPLIT_FRACTIONS];
    let mut lines = Vec::new();
    for splits in split_sets {
        let report = select_features_with_splits(&dataset, &base, SEEN_FRAC, splits);
        eprintln!(
            "  {} splits: selected {} (risks {:?})",
            splits.len(),
            report.selected.name(),
            report.risks
        );
        lines.push(format!(
            "{},{},{:.4},{:.4},{:.4}",
            splits.len(),
            report.selected.name(),
            report.risks[0],
            report.risks[1],
            report.risks[2]
        ));
    }
    print_csv("num_splits,selected,risk_R,risk_P,risk_S", &lines);
}
