//! Figure 12: robustness to controlled distribution-shift intensity on the
//! Synthetic-50/70/90 datasets.

use baselines::{run, run_dtdg, BaselineKind, DtdgKind};
use bench::{config, prep, print_csv};
use datasets::synthetic_shift;
use splash::{run_splash, InputFeatures};

fn main() {
    let cfg = config();
    println!("Figure 12 — performance (F1) vs distribution-shift intensity");
    let baselines = [
        BaselineKind::Jodie,
        BaselineKind::Tgat,
        BaselineKind::Tgn,
        BaselineKind::GraphMixer,
        BaselineKind::DyGFormer,
    ];
    let mut lines = Vec::new();
    for intensity in [50u32, 70, 90] {
        let dataset = prep(synthetic_shift(intensity, 1));
        let splash_out = run_splash(&dataset, &cfg);
        let mut cells = vec![format!("{intensity}"), format!("{:.4}", splash_out.metric)];
        for kind in baselines {
            let rf = run(kind, &dataset, InputFeatures::RawRandom, &cfg);
            cells.push(format!("{:.4}", rf.metric));
        }
        // The paper's DTDG-based shift-robust methods (DIDA, SLID), run with
        // the same random features as the +RF TGNNs.
        for kind in DtdgKind::ALL {
            let out = run_dtdg(kind, &dataset, InputFeatures::RawRandom, &cfg);
            cells.push(format!("{:.4}", out.metric));
        }
        // One featureless baseline to show the collapse without features.
        let plain = run(BaselineKind::Tgat, &dataset, InputFeatures::External, &cfg);
        cells.push(format!("{:.4}", plain.metric));
        eprintln!("  intensity {intensity} done");
        lines.push(cells.join(","));
    }
    print_csv(
        "intensity,SPLASH,jodie+RF,tgat+RF,tgn+RF,graphmixer+RF,dygformer+RF,dida+RF,slid+RF,tgat(plain)",
        &lines,
    );
}
