//! Table IV: ablation — SLIM+ZF / +RF / +Process R / P / S / +Joint vs the
//! full SPLASH pipeline (with automatic selection), on all seven datasets.

use bench::{config, metric_name, prep, print_rows, Row};
use datasets::all_benchmarks;
use splash::{run_slim_with, run_splash, FeatureProcess, InputFeatures};

fn main() {
    let cfg = config();
    println!("Table IV — ablation of feature augmentation and selection");
    for dataset in all_benchmarks() {
        let dataset = prep(dataset);
        eprintln!("dataset {}…", dataset.name);
        let variants = [
            ("SLIM+ZF", InputFeatures::Zero),
            ("SLIM+RF", InputFeatures::RawRandom),
            ("SLIM+ProcessR", InputFeatures::Process(FeatureProcess::Random)),
            ("SLIM+ProcessP", InputFeatures::Process(FeatureProcess::Positional)),
            ("SLIM+ProcessS", InputFeatures::Process(FeatureProcess::Structural)),
            ("SLIM+Joint", InputFeatures::Joint),
        ];
        let mut rows = Vec::new();
        for (name, mode) in variants {
            let out = run_slim_with(&dataset, &cfg, mode);
            rows.push(Row {
                name: name.into(),
                metric: out.metric,
                params: out.num_params,
                train_secs: out.train_secs,
                infer_secs: out.infer_secs,
            });
            eprintln!("  done {name}");
        }
        let out = run_splash(&dataset, &cfg);
        let selected = out.selected.map(|p| p.name()).unwrap_or("?");
        let mut row = Row::from_splash(&out);
        row.name = format!("SPLASH (X*={selected})");
        rows.push(row);
        print_rows(
            &format!("{} ({})", dataset.name, metric_name(dataset.task)),
            metric_name(dataset.task),
            &rows,
        );
    }
}
