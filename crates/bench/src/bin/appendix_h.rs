//! Online Appendix H: training-time comparison on the Reddit analogue —
//! the companion to Fig. 10's inference-time trade-off. Prints training
//! wall-clock seconds, metric, and parameter count for every Table III
//! model plus SPLASH, and the headline training-speedup ratio.

use bench::{config, prep, print_csv, run_suite};
use datasets::reddit;

fn main() {
    let cfg = config();
    let dataset = prep(reddit());
    println!("Appendix H — training time on {}", dataset.name);
    let rows = run_suite(&dataset, &cfg);

    println!(
        "\n{:<16} {:>12} {:>10} {:>10}",
        "model", "train (s)", "AUC", "#params"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12.2} {:>10.4} {:>10}",
            r.name, r.train_secs, r.metric, r.params
        );
    }

    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{:.4},{:.4},{}", r.name, r.train_secs, r.metric, r.params))
        .collect();
    print_csv("model,train_secs,auc,params", &lines);

    let splash = rows.iter().find(|r| r.name == "SPLASH").expect("SPLASH row");
    if let Some(best_other) = rows
        .iter()
        .filter(|r| r.name != "SPLASH")
        .max_by(|a, b| a.metric.partial_cmp(&b.metric).unwrap())
    {
        println!(
            "\nSPLASH vs best baseline ({}): {:.2}x faster training, {:+.2}% metric",
            best_other.name,
            best_other.train_secs / splash.train_secs.max(1e-9),
            (splash.metric - best_other.metric) * 100.0
        );
    }
}
