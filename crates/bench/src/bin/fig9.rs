//! Figure 9: performance vs unseen ratio `T` — train on the first `90−T`%
//! of queries, validate on the next 10%, test on the last `T`%.
//!
//! SPLASH is compared against a representative subset of the strongest
//! baselines (with random features) on the Email-EU analogue, where the
//! paper reports the largest widening gap (up to 3.66×).

use baselines::{run_frac, BaselineKind};
use bench::{config, prep, print_csv};
use datasets::email_eu;
use splash::{run_splash_frac, InputFeatures};

fn main() {
    let cfg = config();
    let dataset = prep(email_eu());
    println!("Figure 9 — performance (F1) vs unseen ratio T on {}", dataset.name);
    let baselines = [
        BaselineKind::Jodie,
        BaselineKind::Tgat,
        BaselineKind::Tgn,
        BaselineKind::DyGFormer,
    ];
    let mut lines = Vec::new();
    for t in [20u32, 40, 60, 80] {
        let test_frac = t as f64 / 100.0;
        let seen_frac = 1.0 - test_frac;
        let train_frac = seen_frac - 0.1;
        let splash_out = run_splash_frac(&dataset, &cfg, train_frac, seen_frac);
        let mut cells = vec![format!("{t}"), format!("{:.4}", splash_out.metric)];
        for kind in baselines {
            let out = run_frac(kind, &dataset, InputFeatures::RawRandom, &cfg, train_frac, seen_frac);
            cells.push(format!("{:.4}", out.metric));
        }
        eprintln!("  unseen ratio {t}% done");
        lines.push(cells.join(","));
    }
    print_csv("unseen_ratio,SPLASH,jodie+RF,tgat+RF,tgn+RF,dygformer+RF", &lines);
}
