//! Table III: main accuracy comparison — eight baselines, their `+RF`
//! variants, and SPLASH, across all seven dataset analogues.

use bench::{config, metric_name, prep, print_rows, run_suite};
use datasets::all_benchmarks;

fn main() {
    let cfg = config();
    println!("Table III — node property prediction performance");
    for dataset in all_benchmarks() {
        let dataset = prep(dataset);
        eprintln!("dataset {} ({} queries)…", dataset.name, dataset.queries.len());
        let rows = run_suite(&dataset, &cfg);
        print_rows(
            &format!("{} ({})", dataset.name, metric_name(dataset.task)),
            metric_name(dataset.task),
            &rows,
        );
    }
}
