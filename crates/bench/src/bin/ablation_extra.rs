//! Extra design-choice ablations flagged in DESIGN.md §5:
//! the skip-connection weight λ_s, the degree-encoding resolution α, the
//! number of selection splits, the linear-selector cost, and SLIM's core
//! bet — mean aggregation vs attention aggregation.

use baselines::run_baseline;
use bench::{config, prep, AttnSlim};
use datasets::{reddit, synthetic_shift};
use rand::{rngs::StdRng, SeedableRng};
use splash::{
    capture, run_slim_with, select_features_with_splits, FeatureProcess, InputFeatures,
    SEEN_FRAC, SPLIT_FRACTIONS,
};

fn main() {
    let base_cfg = config();
    println!("Extra ablations (DESIGN.md §5)");

    // (1) Skip-connection weight λ_s (Eq. 18) on the Reddit analogue.
    let dataset = prep(reddit());
    println!("\n(1) λ_s skip-connection weight — SLIM+S on {}", dataset.name);
    for lambda in [0.0f32, 0.5, 1.0] {
        let mut cfg = base_cfg;
        cfg.lambda_s = lambda;
        let out = run_slim_with(
            &dataset,
            &cfg,
            InputFeatures::Process(FeatureProcess::Structural),
        );
        println!("  λ_s = {lambda:<4}  AUC {:.4}", out.metric);
    }

    // (2) Degree-encoding resolution α (Eq. 3).
    println!("\n(2) degree-encoding resolution α — SLIM+S on {}", dataset.name);
    for alpha in [2.0f32, 50.0, 1000.0] {
        let mut cfg = base_cfg;
        cfg.degree_alpha = alpha;
        let out = run_slim_with(
            &dataset,
            &cfg,
            InputFeatures::Process(FeatureProcess::Structural),
        );
        println!("  α = {alpha:<6}  AUC {:.4}", out.metric);
    }

    // (3) Number of selection splits (1 vs 5) on Synthetic-70.
    let shifted = prep(synthetic_shift(70, 1));
    println!("\n(3) selection splits — {}", shifted.name);
    for (label, splits) in [("1 split (50/50)", &[0.5f64][..]), ("5 splits", &SPLIT_FRACTIONS[..])] {
        let t = std::time::Instant::now();
        let report = select_features_with_splits(&shifted, &base_cfg, SEEN_FRAC, splits);
        println!(
            "  {label:<18} selected {:<2} risks [R {:.3} | P {:.3} | S {:.3}] in {:.2}s",
            report.selected.name(),
            report.risks[0],
            report.risks[1],
            report.risks[2],
            t.elapsed().as_secs_f64()
        );
    }

    // (4) Linear selector vs training SLIM per process (§IV-B's efficiency
    // argument): the linear 5-split selector must be much cheaper than even
    // one full SLIM training run per process.
    println!("\n(4) selector cost — {}", shifted.name);
    let t = std::time::Instant::now();
    let _ = select_features_with_splits(&shifted, &base_cfg, SEEN_FRAC, &SPLIT_FRACTIONS);
    let linear_cost = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    for process in FeatureProcess::ALL {
        let _ = run_slim_with(&shifted, &base_cfg, InputFeatures::Process(process));
    }
    let slim_cost = t.elapsed().as_secs_f64();
    println!(
        "  linear selector (3 processes x 5 splits): {linear_cost:.2}s\n  \
         full SLIM training per process (3 runs):   {slim_cost:.2}s\n  \
         speedup: {:.1}x",
        slim_cost / linear_cost.max(1e-9)
    );

    // (5) Mean aggregation (Eq. 17) vs attention aggregation — SLIM's core
    // architectural bet, on the low- and high-shift synthetic datasets.
    println!("\n(5) mean vs attention aggregation — SLIM+P");
    for intensity in [50u32, 90] {
        let d = prep(synthetic_shift(intensity, 1));
        let mode = InputFeatures::Process(FeatureProcess::Positional);
        let mean_out = run_slim_with(&d, &base_cfg, mode);
        let cap = capture(&d, mode, &base_cfg, SEEN_FRAC);
        let out_dim = splash::task::output_dim(d.task, d.num_classes);
        let mut rng = StdRng::seed_from_u64(base_cfg.seed ^ 0xA77);
        let mut attn =
            AttnSlim::new(cap.feat_dim, cap.edge_feat_dim, out_dim, &base_cfg, &mut rng);
        let attn_out = run_baseline(&mut attn, &d, &cap, &base_cfg, "");
        println!(
            "  intensity {intensity}: mean {:.4} ({} params, {:.2}s) vs attention {:.4} ({} params, {:.2}s)",
            mean_out.metric,
            mean_out.num_params,
            mean_out.train_secs,
            attn_out.metric,
            attn_out.num_params,
            attn_out.train_secs
        );
    }
}
