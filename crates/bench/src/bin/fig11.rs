//! Figure 11: scalability — SPLASH training and inference time vs the
//! number of edges.
//!
//! The paper sweeps 100M–1B edges on a server; this harness sweeps a
//! laptop-scale range and checks the same claim: time grows (near-)linearly
//! with the edge count, i.e. per-edge/per-query cost is independent of
//! graph size. Structural augmentation is used so the whole pipeline is
//! incremental.

use bench::{config, print_csv, scale};
use datasets::scalability_stream;
use splash::{run_slim_with, FeatureProcess, InputFeatures};

fn main() {
    let mut cfg = config();
    cfg.epochs = 2; // timing run, not an accuracy run
    let base_sizes = [50_000usize, 100_000, 200_000, 400_000];
    let s = scale();
    println!("Figure 11 — near-linear scalability of SPLASH (structural features)");
    let mut lines = Vec::new();
    for &size in &base_sizes {
        let size = ((size as f64) * s) as usize;
        let dataset = scalability_stream(size, 2_000, 42);
        let t0 = std::time::Instant::now();
        let out = run_slim_with(
            &dataset,
            &cfg,
            InputFeatures::Process(FeatureProcess::Structural),
        );
        let total = t0.elapsed().as_secs_f64();
        eprintln!("  {size} edges done ({total:.1}s total)");
        lines.push(format!(
            "{size},{:.3},{:.3},{:.3},{:.3}",
            out.train_secs,
            out.infer_secs,
            total,
            total / size as f64 * 1e6
        ));
    }
    print_csv("edges,train_secs,infer_secs,total_secs,us_per_edge", &lines);
    println!("(near-constant us_per_edge across rows = linear scalability)");
}
