//! Figure 3: evidence of distribution shifts in an edge stream —
//! (a) positional drift of node-arrival cohorts in node2vec space,
//! (b) average degree over time, (c) anomaly-label ratio over time,
//! plus (d) PageRank hub-concentration, on the Reddit analogue.
//! All diagnostics live in `datasets::drift`.

use bench::{prep, print_csv};
use ctdg::GraphSnapshot;
use datasets::{cohort_drift, degree_trend, label_ratio_trend, pagerank_concentration_trend, reddit};
use embed::{node2vec, Node2VecConfig};
use eval::pca;

const BUCKETS: usize = 8;

fn main() {
    let dataset = prep(reddit());
    let stream = &dataset.stream;
    println!("Figure 3 — distribution shifts over time ({})", dataset.name);

    // (a) positional drift: embed the full graph, bucket nodes by first
    // appearance, average each cohort's embedding, and project to 2-D.
    let snap = GraphSnapshot::from_stream_prefix(stream, stream.len());
    let emb = node2vec(&snap, &Node2VecConfig::fast(32), 7);
    let drift = cohort_drift(&dataset, &emb, BUCKETS);
    let proj = pca(&drift.cohort_means, 2);
    let lines: Vec<String> = (0..BUCKETS)
        .map(|b| {
            format!("{b},{:.4},{:.4},{}", proj.get(b, 0), proj.get(b, 1), drift.counts[b])
        })
        .collect();
    print_csv("cohort,pc1,pc2,num_nodes  # (a) positional drift of arrival cohorts", &lines);
    println!(
        "(a) cumulative cohort drift in embedding space: {:.4}",
        drift.cumulative_drift
    );

    // (b) average degree over time.
    let lines: Vec<String> = degree_trend(&dataset, BUCKETS)
        .iter()
        .enumerate()
        .map(|(b, d)| format!("{b},{d:.3}"))
        .collect();
    print_csv("bucket,avg_degree  # (b) average degree over time", &lines);

    // (c) anomaly ratio over time.
    let lines: Vec<String> = label_ratio_trend(&dataset, 1, BUCKETS)
        .iter()
        .enumerate()
        .map(|(b, r)| format!("{b},{r:.4}"))
        .collect();
    print_csv("bucket,anomaly_ratio  # (c) property shift over time", &lines);

    // (d) PageRank hub concentration (top-decile score mass) over time.
    let lines: Vec<String> = pagerank_concentration_trend(&dataset, BUCKETS)
        .iter()
        .enumerate()
        .map(|(b, c)| format!("{b},{c:.4}"))
        .collect();
    print_csv(
        "bucket,top_decile_pagerank_mass  # (d) structural concentration over time",
        &lines,
    );
}
