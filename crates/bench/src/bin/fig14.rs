//! Figure 14: node representations on the Email-EU analogue — t-SNE layouts
//! and silhouette scores for SPLASH vs TGAT+RF vs TGN+RF.

use baselines::{build_baseline, run_baseline, BaselineKind};
use bench::{config, prep};
use datasets::email_eu;
use eval::{pca, silhouette_score, tsne, TsneConfig};
use nn::Matrix;
use splash::{
    capture, predict_slim, represent_slim, select_features, train_slim, InputFeatures, SEEN_FRAC,
};

/// Keeps each node's *last* test representation and its label; caps at
/// `max_nodes` nodes for the O(n²) analyses.
fn last_per_node(
    reps: &Matrix,
    queries: &[ctdg::PropertyQuery],
    max_nodes: usize,
) -> (Matrix, Vec<usize>) {
    let mut last: std::collections::HashMap<u32, usize> = Default::default();
    for (i, q) in queries.iter().enumerate() {
        last.insert(q.node, i);
    }
    let mut picked: Vec<(u32, usize)> = last.into_iter().collect();
    picked.sort_unstable();
    picked.truncate(max_nodes);
    let mut out = Matrix::zeros(picked.len(), reps.cols());
    let mut labels = Vec::with_capacity(picked.len());
    for (row, &(_, qi)) in picked.iter().enumerate() {
        out.set_row(row, reps.row(qi));
        labels.push(queries[qi].label.class());
    }
    (out, labels)
}

fn analyze(name: &str, reps: &Matrix, labels: &[usize]) {
    let reduced = pca(reps, 16.min(reps.cols()));
    let layout = tsne(&reduced, &TsneConfig { perplexity: 15.0, iterations: 300, ..Default::default() });
    let raw_sil = silhouette_score(reps, labels);
    let layout_sil = silhouette_score(&layout, labels);
    println!(
        "{name:<12} silhouette(raw reps) {raw_sil:+.4} | silhouette(t-SNE layout) {layout_sil:+.4} | {} nodes",
        labels.len()
    );
}

fn main() {
    let cfg = config();
    let dataset = prep(email_eu());
    println!("Figure 14 — representation quality on {}", dataset.name);
    let n = dataset.queries.len();
    let (_, val_end) = splash::split_bounds(n);
    let test_queries = &dataset.queries[val_end..];

    // SPLASH representations (Eq. 18 outputs).
    let report = select_features(&dataset, &cfg, SEEN_FRAC);
    let cap = capture(&dataset, InputFeatures::Process(report.selected), &cfg, SEEN_FRAC);
    let (train_end, _) = splash::split_bounds(cap.queries.len());
    let (model, _) = train_slim(&cap, &dataset, &cap.queries[..train_end], &cfg);
    let test_cap = &cap.queries[val_end..];
    let logits = predict_slim(&model, test_cap, 256);
    let labels_ref: Vec<&ctdg::Label> = test_cap.iter().map(|q| &q.label).collect();
    eprintln!(
        "  SPLASH trained (selected {}, F1 {:.3})",
        report.selected.name(),
        splash::task::evaluate(dataset.task, &logits, &labels_ref)
    );
    let reps = represent_slim(&model, test_cap, 256);
    let (r, l) = last_per_node(&reps, test_queries, 200);
    analyze("SPLASH", &r, &l);

    // TGAT+RF and TGN+RF representations.
    let cap_rf = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    for kind in [BaselineKind::Tgat, BaselineKind::Tgn] {
        let out_dim = dataset.num_classes;
        let mut model = build_baseline(kind, cap_rf.feat_dim, cap_rf.edge_feat_dim, out_dim, &cfg);
        let out = run_baseline(model.as_mut(), &dataset, &cap_rf, &cfg, "+RF");
        eprintln!("  {} trained (F1 {:.3})", out.name, out.metric);
        // Representations over the test split, batched.
        let test_cap = &cap_rf.queries[val_end..];
        let mut blocks = Vec::new();
        let mut pos = 0;
        while pos < test_cap.len() {
            let end = (pos + 256).min(test_cap.len());
            let refs: Vec<&splash::CapturedQuery> = test_cap[pos..end].iter().collect();
            blocks.push(model.represent_batch(&refs));
            pos = end;
        }
        let refs: Vec<&Matrix> = blocks.iter().collect();
        let reps = Matrix::concat_rows(&refs);
        let (r, l) = last_per_node(&reps, test_queries, 200);
        analyze(&out.name, &r, &l);
    }
}
