//! Figure 13: qualitative analysis — anomaly scores over time for one user
//! that transitions between normal and abnormal states (Reddit analogue),
//! from SPLASH and three baselines.

use baselines::{build_baseline, run_baseline, BaselineKind};
use bench::{config, prep, print_csv};
use datasets::reddit;
use nn::Matrix;
use splash::{capture, run_splash, InputFeatures, SEEN_FRAC};

/// Per-query anomaly score: the abnormal-vs-normal logit margin,
/// z-normalized over the test set so different models are comparable on one
/// axis (rank-equivalent to the softmax probability, but not squashed to ~0
/// under class imbalance).
fn scores(logits: &Matrix) -> Vec<f64> {
    let raw: Vec<f64> = (0..logits.rows())
        .map(|i| (logits.get(i, 1) - logits.get(i, 0)) as f64)
        .collect();
    let n = raw.len().max(1) as f64;
    let mean = raw.iter().sum::<f64>() / n;
    let std = (raw.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
        .sqrt()
        .max(1e-9);
    raw.iter().map(|v| (v - mean) / std).collect()
}

fn main() {
    let cfg = config();
    let dataset = prep(reddit());
    println!("Figure 13 — anomaly scores over time for a state-flipping user");

    // SPLASH.
    let splash_out = run_splash(&dataset, &cfg);
    let (test_start, _) = splash_out.test_range;
    let test_queries = &dataset.queries[test_start..];

    // Find a target user whose test-period state flips and has many queries.
    let mut best: Option<(u32, usize)> = None;
    let mut per_user: std::collections::HashMap<u32, (usize, bool, bool)> = Default::default();
    for q in test_queries {
        let e = per_user.entry(q.node).or_insert((0, false, false));
        e.0 += 1;
        if q.label.class() == 0 {
            e.1 = true;
        } else {
            e.2 = true;
        }
    }
    // Prefer users with a substantial abnormal episode (≥ 10 abnormal
    // queries) and many total queries.
    let mut abn_counts: std::collections::HashMap<u32, usize> = Default::default();
    for q in test_queries {
        if q.label.class() == 1 {
            *abn_counts.entry(q.node).or_default() += 1;
        }
    }
    for (&node, &(count, has_norm, has_abn)) in &per_user {
        let abn = abn_counts.get(&node).copied().unwrap_or(0);
        if has_norm && has_abn && abn >= 10 && best.is_none_or(|(_, c)| count > c) {
            best = Some((node, count));
        }
    }
    let Some((target, count)) = best else {
        println!("no state-flipping user in the test period — rerun with SPLASH_SCALE=1");
        return;
    };
    println!("target user: {target} ({count} test queries)");

    // Baselines: DyGFormer+RF, FreeDyG+RF, TGAT (plain), per the paper.
    let cap_rf = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    let cap_plain = capture(&dataset, InputFeatures::External, &cfg, SEEN_FRAC);
    let mut outputs = Vec::new();
    for (kind, cap, label) in [
        (BaselineKind::DyGFormer, &cap_rf, "dygformer+RF"),
        (BaselineKind::FreeDyG, &cap_rf, "freedyg+RF"),
        (BaselineKind::Tgat, &cap_plain, "tgat"),
    ] {
        let mut model = build_baseline(kind, cap.feat_dim, cap.edge_feat_dim, 2, &cfg);
        let out = run_baseline(model.as_mut(), &dataset, cap, &cfg, "");
        eprintln!("  {label} done (AUC {:.3})", out.metric);
        outputs.push((label, scores(&out.test_logits)));
    }
    let splash_scores = scores(&splash_out.test_logits);

    let mut lines = Vec::new();
    for (i, q) in test_queries.iter().enumerate() {
        if q.node != target {
            continue;
        }
        let mut cells = vec![
            format!("{:.1}", q.time),
            format!("{}", q.label.class()),
            format!("{:.4}", splash_scores[i]),
        ];
        for (_, s) in &outputs {
            cells.push(format!("{:.4}", s[i]));
        }
        lines.push(cells.join(","));
    }
    print_csv("time,true_state,SPLASH,dygformer+RF,freedyg+RF,tgat", &lines);

    // Summary: mean score while normal vs while abnormal for each model.
    let summarize = |name: &str, s: &[f64]| {
        let (mut sn, mut cn, mut sa, mut ca) = (0.0, 0usize, 0.0, 0usize);
        for (i, q) in test_queries.iter().enumerate() {
            if q.node != target {
                continue;
            }
            if q.label.class() == 0 {
                sn += s[i];
                cn += 1;
            } else {
                sa += s[i];
                ca += 1;
            }
        }
        println!(
            "{name:<14} mean score normal {:.4} | abnormal {:.4} | separation {:+.4}",
            sn / cn.max(1) as f64,
            sa / ca.max(1) as f64,
            sa / ca.max(1) as f64 - sn / cn.max(1) as f64
        );
    };
    summarize("SPLASH", &splash_scores);
    for (name, s) in &outputs {
        summarize(name, s);
    }
}
