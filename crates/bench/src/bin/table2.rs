//! Table II: statistics of the seven dataset analogues.

use datasets::{all_benchmarks, DatasetStats};

fn main() {
    println!("Table II — dataset statistics (synthetic analogues, scaled down)");
    println!("{}", DatasetStats::table_header());
    for dataset in all_benchmarks() {
        println!("{}", DatasetStats::compute(&dataset).table_row());
    }
}
