//! Online Appendix I: efficiency and fidelity of the linear feature
//! selector. The naive alternative to §IV-B is to train the full SLIM model
//! once per candidate process on the available period and validate each —
//! accurate but expensive. This binary runs both selectors on every dataset
//! and reports their choices, wall-clock times, and the speedup, showing the
//! linear probe recovers the expensive selector's choice at a fraction of
//! the cost (the paper's Figure 6 in the online appendix).

use std::time::Instant;

use bench::{config, prep, print_csv};
use ctdg::Label;
use datasets::{all_benchmarks, Dataset};
use splash::{
    capture, predict_slim, run_slim_with, select_features, split_bounds, train_slim,
    FeatureProcess, InputFeatures, SplashConfig, SEEN_FRAC,
};

/// The expensive selector: trains SLIM per process on the first 10% of
/// queries and validates its empirical risk on the next 10% (the same
/// available period the linear selector sees). Returns the argmin process.
fn slim_based_selection(dataset: &Dataset, cfg: &SplashConfig) -> FeatureProcess {
    let mut best = (f32::INFINITY, FeatureProcess::Random);
    for process in FeatureProcess::ALL {
        let cap = capture(dataset, InputFeatures::Process(process), cfg, SEEN_FRAC);
        let (train_end, val_end) = split_bounds(cap.queries.len());
        let (model, _) = train_slim(&cap, dataset, &cap.queries[..train_end], cfg);
        let val = &cap.queries[train_end..val_end];
        let logits = predict_slim(&model, val, cfg.batch_size.max(256));
        let labels: Vec<&Label> = val.iter().map(|q| &q.label).collect();
        let risk = splash::task::loss(dataset.task, &logits, &labels);
        if risk < best.0 {
            best = (risk, process);
        }
    }
    best.1
}

fn main() {
    let cfg = config();
    println!("Appendix I — linear feature selector vs full-SLIM selection");
    let mut lines = Vec::new();
    let mut agreements = 0usize;
    let mut total = 0usize;
    for dataset in all_benchmarks() {
        let dataset = prep(dataset);
        eprintln!("dataset {}…", dataset.name);

        let start = Instant::now();
        let report = select_features(&dataset, &cfg, SEEN_FRAC);
        let linear_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let slim_choice = slim_based_selection(&dataset, &cfg);
        let slim_secs = start.elapsed().as_secs_f64();

        total += 1;
        if report.selected == slim_choice {
            agreements += 1;
        }

        // Fidelity is judged by the end metric, not choice agreement: the
        // expensive selector is itself a noisy estimator, so we train SLIM
        // to completion under each selector's choice and compare test
        // metrics.
        let metric_linear =
            run_slim_with(&dataset, &cfg, InputFeatures::Process(report.selected)).metric;
        let metric_slim = if slim_choice == report.selected {
            metric_linear
        } else {
            run_slim_with(&dataset, &cfg, InputFeatures::Process(slim_choice)).metric
        };

        lines.push(format!(
            "{},{},{:.2},{:.4},{},{:.2},{:.4},{:.1}",
            dataset.name,
            report.selected.name(),
            linear_secs,
            metric_linear,
            slim_choice.name(),
            slim_secs,
            metric_slim,
            slim_secs / linear_secs.max(1e-9)
        ));
        eprintln!(
            "  linear {} in {:.2}s → metric {:.4}; SLIM {} in {:.2}s → metric {:.4}",
            report.selected.name(),
            linear_secs,
            metric_linear,
            slim_choice.name(),
            slim_secs,
            metric_slim
        );
    }
    print_csv(
        "dataset,linear_choice,linear_secs,linear_metric,slim_choice,slim_secs,slim_metric,speedup",
        &lines,
    );
    println!("\nchoice agreement: {agreements}/{total} datasets (fidelity is judged by the metric columns)");
}
