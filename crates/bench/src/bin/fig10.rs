//! Figure 10: trade-offs on the Reddit analogue — (left) inference time vs
//! AUC, (right) model size vs AUC, for every model of Table III.

use bench::{config, prep, print_csv, print_rows, run_suite};
use datasets::reddit;

fn main() {
    let cfg = config();
    let dataset = prep(reddit());
    println!("Figure 10 — efficiency/accuracy trade-offs on {}", dataset.name);
    let rows = run_suite(&dataset, &cfg);
    print_rows("trade-off inputs", "AUC", &rows);

    let lines: Vec<String> = rows
        .iter()
        .map(|r| format!("{},{:.4},{:.4},{}", r.name, r.infer_secs, r.metric, r.params))
        .collect();
    print_csv("model,infer_secs,auc,params", &lines);

    // Headline ratios vs the best non-SPLASH model.
    let splash = rows.iter().find(|r| r.name == "SPLASH").expect("SPLASH row");
    if let Some(best_other) = rows
        .iter()
        .filter(|r| r.name != "SPLASH")
        .max_by(|a, b| a.metric.partial_cmp(&b.metric).unwrap())
    {
        println!(
            "\nSPLASH vs best baseline ({}): {:.2}x faster inference, {:.2}x fewer parameters, {:+.2}% metric",
            best_other.name,
            best_other.infer_secs / splash.infer_secs.max(1e-9),
            best_other.params as f64 / splash.params.max(1) as f64,
            (splash.metric - best_other.metric) * 100.0
        );
    }
}
