//! Restart-cost benchmark: full stream replay vs checkpoint + WAL recovery.
//!
//! The durability claim being measured: a crashed deployment restarts in
//! O(state + WAL tail) via `make_durable` on its checkpoint directory,
//! not O(stream) like the artifact path (`load_model` + re-ingesting the
//! live tail). Both restarts must land on bit-identical logits — the
//! bench asserts that before timing anything. `BENCH_PR7.json` records
//! the measured ratio per PR.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use ctdg::TemporalEdge;
use splash::{
    seen_end_time, truncate_to_available, DurabilityConfig, FeatureProcess, IngestRequest,
    PredictRequest, SplashConfig, SplashService, SEEN_FRAC,
};

const MODEL: &str = "live";
const CHUNK: usize = 64;

struct Fixture {
    dataset: datasets::Dataset,
    cfg: SplashConfig,
    tail: Vec<TemporalEdge>,
    base: PathBuf,
    ckpt: PathBuf,
    artifact: PathBuf,
    probe_time: f64,
}

/// Trains once, streams the live tail through a durable deployment,
/// checkpoints with ~10% of the stream left, and streams the rest so the
/// WAL holds a realistic tail. Leaves behind both restart inputs: the
/// portable artifact (full-replay path) and the checkpoint directory
/// (recovery path).
fn fixture() -> Fixture {
    let dataset = truncate_to_available(&datasets::synthetic_shift(60, 10), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    let base = std::env::temp_dir().join(format!("splash-restart-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();
    let ckpt = base.join("ckpt");
    let artifact = base.join("model.bin");

    let mut service = SplashService::builder(cfg).build().unwrap();
    service
        .train_model_with_process(MODEL, &dataset, FeatureProcess::Random)
        .unwrap();
    service.save_model(MODEL, &artifact).unwrap();
    service
        .make_durable(MODEL, DurabilityConfig::new(&ckpt).checkpoint_every(1_000_000))
        .unwrap();
    let cut = tail.len() - tail.len() / 10;
    for batch in tail[..cut].chunks(CHUNK) {
        service.ingest(MODEL, IngestRequest::new(batch)).unwrap();
    }
    service.checkpoint(MODEL).unwrap();
    for batch in tail[cut..].chunks(CHUNK) {
        service.ingest(MODEL, IngestRequest::new(batch)).unwrap();
    }
    let probe_time = service.model_last_time(MODEL).unwrap() + 1.0;
    Fixture { dataset, cfg, tail, base, ckpt, artifact, probe_time }
}

fn probe(service: &mut SplashService, t: f64) -> Vec<f32> {
    (0..8u32)
        .flat_map(|i| {
            service
                .predict(MODEL, PredictRequest::new((i * 7) % 60, t + i as f64))
                .unwrap()
                .logits
        })
        .collect()
}

/// Full-replay restart: load the portable artifact, then re-ingest the
/// entire live tail to rebuild streaming state — O(stream).
fn restart_full_replay(fx: &Fixture) -> SplashService {
    let mut service = SplashService::builder(fx.cfg).build().unwrap();
    service.load_model(MODEL, &fx.artifact, &fx.dataset).unwrap();
    for batch in fx.tail.chunks(CHUNK) {
        service.ingest(MODEL, IngestRequest::new(batch)).unwrap();
    }
    service
}

/// Checkpoint + WAL restart: recover the committed snapshot and replay
/// only the WAL tail — O(state + WAL tail), no dataset access.
fn restart_recovery(fx: &Fixture) -> SplashService {
    let mut service = SplashService::builder(fx.cfg).build().unwrap();
    service
        .make_durable(MODEL, DurabilityConfig::new(&fx.ckpt).checkpoint_every(1_000_000))
        .unwrap();
    service
}

fn bench_restart(c: &mut Criterion) {
    let fx = fixture();

    // Bit-identity first: both restart paths must answer identically.
    let mut replayed = restart_full_replay(&fx);
    let mut recovered = restart_recovery(&fx);
    assert_eq!(
        probe(&mut replayed, fx.probe_time),
        probe(&mut recovered, fx.probe_time),
        "both restart paths must reconstruct the same deployment"
    );
    drop((replayed, recovered));

    // Headline ratio, measured outside criterion so it prints even on a
    // single sample (each path's cost is the whole restart).
    let reps = 5;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        black_box(restart_full_replay(&fx));
    }
    let full = t0.elapsed() / reps;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        black_box(restart_recovery(&fx));
    }
    let fast = t0.elapsed() / reps;
    println!(
        "restart tail={} edges: full replay {:?} vs checkpoint+WAL {:?} ({:.1}x faster)",
        fx.tail.len(),
        full,
        fast,
        full.as_secs_f64() / fast.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("restart");
    group.bench_function("full_replay", |b| {
        b.iter(|| black_box(restart_full_replay(&fx)))
    });
    group.bench_function("checkpoint_wal", |b| {
        b.iter(|| black_box(restart_recovery(&fx)))
    });
    group.finish();

    std::fs::remove_dir_all(&fx.base).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_restart,
}
criterion_main!(benches);
