//! Hot-loop benchmarks with heap-allocation accounting.
//!
//! This is the quick perf gate for the zero-allocation work: a train-epoch
//! benchmark, a steady-state streaming-predict benchmark, and the serial
//! matmul kernels, each reported with wall-clock time *and* the number of
//! global-allocator calls per iteration. `ci/check.sh` runs this target;
//! `BENCH_PR2.json` records its numbers across PRs so regressions in either
//! time or allocation count are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use ctdg::{Label, PropertyQuery};
use nn::{Adam, BlockedBackend, Matrix, NaiveBackend, Parameterized};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use splash::{
    capture, split_bounds, train_slim, truncate_to_available, Capture, CapturedQuery,
    FeatureProcess, InputFeatures, SlimModel, SplashConfig, StreamingPredictor, SEEN_FRAC,
};

/// Counts every allocation and reallocation that reaches the global
/// allocator (deallocations are not counted: the interesting signal for the
/// zero-allocation claim is how often the hot loop *asks* for memory).
/// Kept in sync with the identical wrapper in
/// `crates/splash/tests/alloc.rs`; see the note there on why the two
/// copies cannot share a crate.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` once and returns how many allocator calls it made.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

/// Serial matmul kernels on training-shaped operands (tall-skinny products
/// like SLIM's `(B·k, raw) · (raw, hidden)` and square ones).
fn bench_matmul_kernels(c: &mut Criterion) {
    for &(m, n, p) in &[(1024usize, 60usize, 64usize), (256, 256, 256), (384, 384, 384)] {
        let a = Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) as f32 * 0.37).sin());
        let b = Matrix::from_fn(n, p, |i, j| ((i * 13 + j * 29) as f32 * 0.53).cos());
        let mut group = c.benchmark_group(format!("matmul_{m}x{n}x{p}"));
        group.bench_function("naive", |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, &NaiveBackend).sum()))
        });
        group.bench_function("blocked", |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, &BlockedBackend).sum()))
        });
        group.finish();
    }
}

/// The pre-workspace training loop: identical math and identical step
/// order to `train_slim`, but every step packs a fresh batch and allocates
/// fresh forward/backward buffers through the convenience wrappers. Kept as
/// the reuse-vs-allocate comparison baseline.
fn train_epoch_alloc_style(
    cap: &Capture,
    dataset: &datasets::Dataset,
    train_queries: &[CapturedQuery],
    cfg: &SplashConfig,
) -> f32 {
    use splash::task::{loss_and_grad, output_dim};
    let out_dim = output_dim(dataset.task, dataset.num_classes);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x511D);
    let mut model = SlimModel::new(cfg, cap.feat_dim, cap.edge_feat_dim, out_dim, &mut rng);
    let mut opt = Adam::new(cfg.lr);
    let n = train_queries.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut sink = 0.0f32;
    for _epoch in 0..cfg.epochs {
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut pos = 0;
        while pos < n {
            let end = (pos + cfg.batch_size).min(n);
            let refs: Vec<&CapturedQuery> =
                order[pos..end].iter().map(|&i| &train_queries[i]).collect();
            let labels: Vec<&Label> = refs.iter().map(|q| &q.label).collect();
            let batch = model.build_batch(&refs);
            let (logits, _, cache) = model.forward(&batch);
            let (loss, dlogits) = loss_and_grad(dataset.task, &logits, &labels);
            sink += loss;
            model.backward(&cache, &dlogits);
            opt.step(model.params_mut());
            pos = end;
        }
    }
    sink
}

/// One full SLIM training epoch over a captured query set (the whole hot
/// path: batch packing, forward, backward, Adam), plus its allocator-call
/// count per epoch — once through the workspace-reusing `train_slim` and
/// once through the per-step-allocating wrapper loop.
fn bench_train_epoch(c: &mut Criterion) {
    let dataset = datasets::synthetic_shift(50, 5);
    let cfg = SplashConfig { epochs: 1, ..SplashConfig::default() };
    let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    let (train_end, _) = split_bounds(cap.queries.len());
    let train = &cap.queries[..train_end];

    let allocs_reuse = count_allocs(|| {
        black_box(train_slim(&cap, &dataset, train, &cfg).1);
    });
    let allocs_alloc = count_allocs(|| {
        black_box(train_epoch_alloc_style(&cap, &dataset, train, &cfg));
    });
    println!(
        "train_epoch: {allocs_reuse} allocator calls with workspace reuse vs \
         {allocs_alloc} allocating per step ({} train queries)",
        train.len()
    );
    let mut group = c.benchmark_group("train_epoch");
    group.bench_function("workspace_reuse", |b| {
        b.iter(|| black_box(train_slim(&cap, &dataset, train, &cfg).1))
    });
    group.bench_function("alloc_per_step", |b| {
        b.iter(|| black_box(train_epoch_alloc_style(&cap, &dataset, train, &cfg)))
    });
    group.finish();
}

/// Steady-state streaming prediction: one warmed-up predictor answering
/// queries one at a time, with the allocator-call count per query.
fn bench_stream_predict_steady(c: &mut Criterion) {
    let dataset = truncate_to_available(&datasets::synthetic_shift(50, 8), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let predictor =
        StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
    let t0 = predictor.last_time();
    let n_nodes = dataset.stream.num_nodes() as u32;
    let queries: Vec<PropertyQuery> = (0..512u32)
        .map(|i| PropertyQuery {
            node: (i * 7) % n_nodes,
            time: t0 + i as f64,
            label: Label::Class(0),
        })
        .collect();

    // Warm up every buffer, then count a steady-state pass of the
    // allocation-free form.
    let mut sink = 0.0f32;
    let mut out = Vec::new();
    for q in &queries {
        predictor.try_predict_into(q.node, q.time, &mut out).unwrap();
        sink += out[0];
    }
    let allocs = count_allocs(|| {
        for q in &queries {
            predictor.try_predict_into(q.node, q.time, &mut out).unwrap();
            sink += out[0];
        }
    });
    println!(
        "stream_predict_into: {:.2} allocator calls per query over {} queries (sink {sink:.3})",
        allocs as f64 / queries.len() as f64,
        queries.len()
    );
    let mut group = c.benchmark_group("stream_predict");
    group.bench_function("predict_into_x512", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for q in &queries {
                predictor.try_predict_into(q.node, q.time, &mut out).unwrap();
                acc += out[0];
            }
            black_box(acc)
        })
    });
    group.bench_function("predict_x512", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for q in &queries {
                acc += predictor.try_predict(q.node, q.time).unwrap()[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul_kernels, bench_train_epoch, bench_stream_predict_steady,
}
criterion_main!(benches);
