//! Mixed-load wire benchmark: sustained ingest throughput and query
//! latency percentiles through the `splash::server` HTTP front end, on a
//! loopback socket with a keep-alive client.
//!
//! Two numbers matter and both are printed (recorded per PR in
//! `BENCH_PR6.json`): sustained **edges/sec** while queries interleave,
//! and the server-side **p50/p99/p999 query latency** from the service's
//! fixed-bucket histogram — the same numbers an operator reads off
//! `GET /stats` in production.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use ctdg::TemporalEdge;
use splash::{
    seen_end_time, FeatureProcess, ServerConfig, ServerHandle, SplashConfig, SplashService,
    SEEN_FRAC,
};

/// One HTTP/1.1 exchange on a kept-alive connection; returns the status
/// and body.
fn request(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> (u16, String) {
    let head = format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut len = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        if header.trim_end().is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut reply = vec![0u8; len];
    reader.read_exact(&mut reply).unwrap();
    (status, String::from_utf8(reply).unwrap())
}

struct WireFixture {
    handle: ServerHandle,
    client: TcpStream,
    tail: Vec<TemporalEdge>,
    /// Advances past the model clock each round so every ingest is clean.
    clock: f64,
}

fn fixture() -> WireFixture {
    let dataset = splash::truncate_to_available(&datasets::synthetic_shift(50, 8), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let mut service = SplashService::builder(cfg).build().unwrap();
    service
        .train_model_with_process("live", &dataset, FeatureProcess::Random)
        .unwrap();
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..prefix + 64].to_vec();
    let handle =
        SplashServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = TcpStream::connect(handle.addr()).unwrap();
    client.set_nodelay(true).ok();
    let clock = dataset.stream.edges().last().unwrap().time + 1.0;
    WireFixture { handle, client, tail, clock }
}

use splash::SplashServer;

const EDGES_PER_ROUND: usize = 64;
const QUERIES_PER_ROUND: usize = 16;

/// One mixed round: a 64-edge ingest batch followed by 16 predictions,
/// all over the kept-alive socket.
fn mixed_round(fx: &mut WireFixture) {
    let mut csv = String::from("src,dst,time,weight\n");
    let mut clock = fx.clock;
    for e in &fx.tail {
        clock += 1.0;
        csv.push_str(&format!("{},{},{},{}\n", e.src, e.dst, clock, e.weight));
    }
    fx.clock = clock;
    let (status, body) = request(&mut fx.client, "POST", "/models/live/ingest", &csv);
    assert_eq!(status, 200, "{body}");

    let mut queries = String::new();
    for q in 0..QUERIES_PER_ROUND as u32 {
        queries.push_str(&format!("{},{}\n", (q * 7) % 50, fx.clock));
    }
    let (status, body) = request(&mut fx.client, "POST", "/models/live/predict", &queries);
    assert_eq!(status, 200, "{body}");
    black_box(body.len());
}

fn bench_server_mixed_load(c: &mut Criterion) {
    let mut fx = fixture();

    // Sustained run first: 200 mixed rounds timed wall-clock, then the
    // server's own histogram — these are the BENCH_PR6.json numbers.
    const ROUNDS: usize = 200;
    let started = Instant::now();
    for _ in 0..ROUNDS {
        mixed_round(&mut fx);
    }
    let wall = started.elapsed().as_secs_f64();
    let edges = (ROUNDS * EDGES_PER_ROUND) as f64;
    let queries = (ROUNDS * QUERIES_PER_ROUND) as f64;
    println!(
        "server_mixed_load sustained: {:.0} edges/s, {:.0} queries/s over {wall:.2}s wall",
        edges / wall,
        queries / wall,
    );
    let (status, stats) = request(&mut fx.client, "GET", "/stats", "");
    assert_eq!(status, 200);
    for line in stats.lines().filter(|l| l.starts_with("wire")) {
        println!("server_mixed_load {line}");
    }

    let mut group = c.benchmark_group("server_mixed_load");
    group.bench_function("round_64e_16q", |b| b.iter(|| mixed_round(&mut fx)));
    group.finish();

    // A clean drain at the end keeps the bench process leak-free.
    let WireFixture { handle, client, .. } = fx;
    drop(client);
    let service = handle.shutdown();
    assert_eq!(service.stats().deadlines_expired, 0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_mixed_load,
}
criterion_main!(benches);
