//! Shard-scaling benchmarks: routed ingest and scatter–gather batched
//! prediction at 1 / 2 / 4 / 8 shards, with heap-allocation accounting on
//! the steady-state paths.
//!
//! The contract being measured, not just asserted: sharding never changes
//! bits, only wall clock. On a single-core host (like the CI container)
//! the thread-per-shard fan-out stays disabled (`NN_THREADS` = 1), so
//! these numbers show the *serial overhead* of the routing layer — one
//! shared witness pass per batch (independent of shard count) plus the
//! scatter/gather bookkeeping; multiply-by-cores wins appear on real
//! multi-core hosts. `BENCH_PR10.json` records the numbers per PR.

use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use ctdg::{Label, PropertyQuery, TemporalEdge};
use splash::{
    seen_end_time, FeatureProcess, ShardedPredictor, SplashConfig, StreamingPredictor,
    SEEN_FRAC,
};

/// Counts every allocation and reallocation that reaches the global
/// allocator; see `crates/splash/tests/alloc.rs` for why each binary
/// carries its own copy.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` once and returns how many allocator calls it made.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fixture() -> (StreamingPredictor, Vec<TemporalEdge>, u32) {
    let dataset =
        splash::truncate_to_available(&datasets::synthetic_shift(50, 8), 0.5);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let predictor =
        StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail = dataset.stream.edges()[prefix..].to_vec();
    (predictor, tail, dataset.stream.num_nodes() as u32)
}

/// Routed batch ingest at each shard count. Each iteration re-dates the
/// same tail past the predictor's clock, so every pass exercises the full
/// route-and-remember path on warmed rings.
fn bench_shard_ingest(c: &mut Criterion) {
    let (base, tail, _) = fixture();
    let mut group = c.benchmark_group(format!("shard_ingest_x{}", tail.len()));
    for shards in SHARD_COUNTS {
        let mut sharded = ShardedPredictor::from_predictor(base.clone(), shards).unwrap();
        let mut replay = tail.clone();
        let redate = |replay: &mut Vec<TemporalEdge>, t0: f64| {
            for (i, e) in replay.iter_mut().enumerate() {
                e.time = t0 + i as f64;
            }
        };
        // Warm the rings to capacity, then measure steady-state pushes.
        for _ in 0..2 {
            redate(&mut replay, sharded.last_time());
            sharded.try_push_edges(&replay).unwrap();
        }
        redate(&mut replay, sharded.last_time());
        let allocs = count_allocs(|| sharded.try_push_edges(&replay).unwrap());
        println!(
            "shard_ingest shards={shards}: {:.3} allocator calls per edge steady-state",
            allocs as f64 / replay.len() as f64
        );
        group.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| {
                redate(&mut replay, sharded.last_time());
                sharded.try_push_edges(&replay).unwrap();
                black_box(sharded.last_time())
            })
        });
    }
    group.finish();
}

/// Scatter–gather batched prediction at each shard count (512 queries into
/// a reused output matrix — the zero-allocation serving path).
fn bench_shard_predict_batch(c: &mut Criterion) {
    let (base, tail, n_nodes) = fixture();
    let mut group = c.benchmark_group("shard_predict_batch_x512");
    for shards in SHARD_COUNTS {
        let mut sharded = ShardedPredictor::from_predictor(base.clone(), shards).unwrap();
        sharded.try_push_edges(&tail).unwrap();
        let t0 = sharded.last_time();
        let queries: Vec<PropertyQuery> = (0..512u32)
            .map(|i| PropertyQuery {
                node: (i * 7) % (n_nodes + 20),
                time: t0 + i as f64,
                label: Label::Class(0),
            })
            .collect();
        let mut out = nn::Matrix::default();
        // Warm every pool (scatter buffers, per-shard workspaces), then
        // report the steady-state allocation count next to the timing.
        for _ in 0..6 {
            sharded.try_predict_batch_into(&queries, &mut out).unwrap();
        }
        let allocs = count_allocs(|| {
            sharded.try_predict_batch_into(&queries, &mut out).unwrap();
        });
        println!(
            "shard_predict_batch shards={shards}: {:.3} allocator calls per query steady-state",
            allocs as f64 / queries.len() as f64
        );
        group.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| {
                sharded.try_predict_batch_into(&queries, &mut out).unwrap();
                black_box(out.row(0)[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shard_ingest, bench_shard_predict_batch,
}
criterion_main!(benches);
