//! Criterion micro-benchmarks for the hot paths of the SPLASH pipeline:
//! stream ingestion, feature propagation, SLIM forward/backward, node2vec
//! walk generation, and the evaluation metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use baselines::Baseline;
use ctdg::{DegreeTracker, EdgeStream, GraphSnapshot, NeighborMemory, PropertyQuery, TemporalEdge};
use nn::{BlockedBackend, Matrix, NaiveBackend, ParallelBackend};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use splash::{
    capture, seen_end_time, truncate_to_available, FeatureProcess, InputFeatures, SplashConfig,
    StreamingPredictor, SEEN_FRAC,
};

fn random_stream(n_edges: usize, n_nodes: u32, seed: u64) -> EdgeStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (0..n_edges)
        .map(|i| {
            let src = rng.random_range(0..n_nodes);
            let dst = rng.random_range(0..n_nodes);
            TemporalEdge::plain(src, dst, i as f64)
        })
        .collect();
    EdgeStream::new_unchecked(edges)
}

fn bench_memory_update(c: &mut Criterion) {
    let stream = random_stream(10_000, 500, 0);
    c.bench_function("neighbor_memory_ingest_10k_edges", |b| {
        b.iter(|| {
            let mut mem = NeighborMemory::new(500, 10);
            for (i, e) in stream.edges().iter().enumerate() {
                mem.update(i, e);
            }
            black_box(mem.edges_seen())
        })
    });
}

fn bench_degree_update(c: &mut Criterion) {
    let stream = random_stream(10_000, 500, 1);
    c.bench_function("degree_tracker_ingest_10k_edges", |b| {
        b.iter(|| {
            let mut deg = DegreeTracker::new(500);
            for e in stream.edges() {
                deg.update(e);
            }
            black_box(deg.total())
        })
    });
}

fn bench_feature_propagation(c: &mut Criterion) {
    let stream = random_stream(5_000, 400, 2);
    let cfg = SplashConfig::default();
    let mut aug = splash::Augmenter::new(
        &stream,
        1_000,
        400,
        cfg.feat_dim,
        &cfg.node2vec,
        cfg.degree_alpha,
        7,
    );
    let tail: Vec<TemporalEdge> = stream.edges()[1_000..].to_vec();
    c.bench_function("feature_propagation_4k_edges", |b| {
        b.iter(|| {
            let mut a = aug.clone();
            for e in &tail {
                a.observe(e);
            }
            black_box(a.feature(FeatureProcess::Random, 10))
        })
    });
    // keep `aug` alive for cloning costs symmetry
    aug.observe(&tail[0]);
}

fn bench_slim_forward_backward(c: &mut Criterion) {
    let dataset = datasets::synthetic_shift(50, 5);
    let cfg = SplashConfig::default();
    let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = splash::SlimModel::new(&cfg, cap.feat_dim, cap.edge_feat_dim, 5, &mut rng);
    let refs: Vec<&splash::CapturedQuery> = cap.queries[..128].iter().collect();
    let batch = model.build_batch(&refs);
    c.bench_function("slim_forward_batch128", |b| {
        b.iter(|| black_box(model.infer(&batch)))
    });
    c.bench_function("slim_forward_backward_batch128", |b| {
        b.iter(|| {
            let (logits, _, cache) = model.forward(&batch);
            let coef = nn::test_util::probe_coefficients(logits.rows(), logits.cols());
            model.backward(&cache, &coef);
            black_box(logits.sum())
        })
    });
}

fn bench_node2vec_walks(c: &mut Criterion) {
    let stream = random_stream(5_000, 300, 3);
    let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
    let config = embed::WalkConfig { walks_per_node: 4, walk_length: 12, ..Default::default() };
    c.bench_function("node2vec_walks_300_nodes", |b| {
        b.iter(|| black_box(embed::generate_walks(&snap, &config, 9).len()))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let scores: Vec<f32> = (0..10_000).map(|_| rng.random::<f32>()).collect();
    let labels: Vec<bool> = (0..10_000).map(|_| rng.random::<f32>() < 0.1).collect();
    c.bench_function("roc_auc_10k", |b| {
        b.iter(|| black_box(eval::roc_auc(&scores, &labels)))
    });
    let queries: Vec<(Vec<f32>, Vec<f32>)> = (0..200)
        .map(|_| {
            (
                (0..64).map(|_| rng.random::<f32>()).collect(),
                (0..64).map(|_| rng.random::<f32>()).collect(),
            )
        })
        .collect();
    c.bench_function("ndcg_at_10_200x64", |b| {
        b.iter(|| black_box(eval::mean_ndcg_at_k(&queries, 10)))
    });
}

fn bench_embeddings(c: &mut Criterion) {
    let stream = random_stream(5_000, 300, 7);
    let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
    c.bench_function("pagerank_300_nodes", |b| {
        b.iter(|| black_box(embed::pagerank(&snap, &embed::PageRankConfig::default())[0]))
    });
    let gr = embed::GraRepConfig { dim: 16, transition_steps: 2, svd_iters: 3 };
    c.bench_function("grarep_300_nodes_dim16", |b| {
        b.iter(|| black_box(embed::grarep(&snap, &gr, 9).sum()))
    });
    let m = nn::Matrix::from_fn(300, 300, |i, j| ((i * 13 + j * 7) as f32 * 0.29).sin());
    c.bench_function("truncated_svd_300x300_k8", |b| {
        b.iter(|| black_box(nn::truncated_svd(&m, 8, 2, 3).s[0]))
    });
}

fn bench_dtdg_view(c: &mut Criterion) {
    let stream = random_stream(10_000, 500, 5);
    c.bench_function("dtdg_view_10k_edges_8_windows", |b| {
        b.iter(|| black_box(ctdg::DtdgView::new(&stream, 8).total_temporal_edges()))
    });
}

fn bench_dtdg_baselines(c: &mut Criterion) {
    let dataset = datasets::synthetic_shift(50, 6);
    let cfg = SplashConfig::default();
    let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    let refs: Vec<&splash::CapturedQuery> = cap.queries[..128].iter().collect();
    let labels: Vec<&ctdg::Label> = refs.iter().map(|q| &q.label).collect();
    let mut rng = StdRng::seed_from_u64(6);
    let dida = baselines::Dida::new(cap.feat_dim, cap.edge_feat_dim, 5, &cfg, &mut rng);
    c.bench_function("dida_forward_batch128", |b| {
        b.iter(|| black_box(dida.predict_batch(&refs).sum()))
    });
    let mut dida = dida;
    c.bench_function("dida_train_step_batch128", |b| {
        b.iter(|| black_box(dida.train_batch(&refs, &labels, datasets::Task::Classification)))
    });
    let mut slid = baselines::Slid::new(cap.feat_dim, cap.edge_feat_dim, 5, &cfg, &mut rng);
    c.bench_function("slid_train_step_batch128", |b| {
        b.iter(|| black_box(slid.train_batch(&refs, &labels, datasets::Task::Classification)))
    });
}

/// Serial-naive vs serial-blocked vs parallel matmul on square matrices.
/// The acceptance bar for the backend work: at ≥256×256 the parallel path
/// must beat the serial paths (all three return bit-identical results).
fn bench_matmul_backends(c: &mut Criterion) {
    for &size in &[128usize, 256, 512] {
        let a = Matrix::from_fn(size, size, |i, j| ((i * 31 + j * 17) as f32 * 0.37).sin());
        let b = Matrix::from_fn(size, size, |i, j| ((i * 13 + j * 29) as f32 * 0.53).cos());
        let mut group = c.benchmark_group(format!("matmul_{size}x{size}"));
        group.bench_function("naive", |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, &NaiveBackend).sum()))
        });
        group.bench_function("blocked", |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, &BlockedBackend).sum()))
        });
        group.bench_function("parallel", |bch| {
            bch.iter(|| black_box(a.matmul_with(&b, &ParallelBackend).sum()))
        });
        group.finish();
    }
}

/// Streaming serving throughput: edge ingestion (single vs micro-batched)
/// and query answering (single vs batched), plus headline edges/sec and
/// queries/sec figures printed directly.
fn bench_streaming_throughput(c: &mut Criterion) {
    let dataset = truncate_to_available(&datasets::synthetic_shift(50, 8), 0.6);
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 2;
    let predictor =
        StreamingPredictor::train_with_process(&dataset, &cfg, FeatureProcess::Random);
    let t_seen = seen_end_time(&dataset, SEEN_FRAC);
    let prefix = dataset.stream.prefix_len_at(t_seen);
    let tail: Vec<TemporalEdge> = dataset.stream.edges()[prefix..].to_vec();

    // A primed predictor (tail ingested) for the query-side benchmarks.
    let mut primed = predictor.clone();
    primed.try_push_edges(&tail).unwrap();
    let t0 = primed.last_time();
    let n_nodes = dataset.stream.num_nodes() as u32;
    let queries: Vec<PropertyQuery> = (0..1024u32)
        .map(|i| PropertyQuery {
            node: (i * 7) % n_nodes,
            time: t0 + i as f64,
            label: ctdg::Label::Class(0),
        })
        .collect();

    // Headline throughput numbers (single measured pass each).
    let start = std::time::Instant::now();
    let mut p = predictor.clone();
    p.try_push_edges(&tail).unwrap();
    let eps = tail.len() as f64 / start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let logits = primed.try_predict_batch(&queries).unwrap();
    let qps = queries.len() as f64 / start.elapsed().as_secs_f64();
    println!(
        "streaming_throughput: {eps:.0} edges/sec ingested, {qps:.0} queries/sec answered \
         ({} tail edges, {} queries, {} logit cols)",
        tail.len(),
        queries.len(),
        logits.cols()
    );

    let mut group = c.benchmark_group("streaming");
    group.bench_function(format!("observe_edge_x{}", tail.len()), |b| {
        b.iter(|| {
            let mut p = predictor.clone();
            for e in &tail {
                p.try_observe_edge(e).unwrap();
            }
            black_box(p.last_time())
        })
    });
    group.bench_function(format!("push_edges_x{}", tail.len()), |b| {
        b.iter(|| {
            let mut p = predictor.clone();
            p.try_push_edges(&tail).unwrap();
            black_box(p.last_time())
        })
    });
    group.bench_function("predict_single_x1024", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for q in &queries {
                acc += primed.try_predict(q.node, q.time).unwrap()[0];
            }
            black_box(acc)
        })
    });
    group.bench_function("predict_batch_x1024", |b| {
        b.iter(|| black_box(primed.try_predict_batch(&queries).unwrap().sum()))
    });
    group.finish();
}

fn bench_capture_scaling(c: &mut Criterion) {
    let cfg = SplashConfig::default();
    let mut group = c.benchmark_group("capture_per_edge");
    for &size in &[2_000usize, 8_000] {
        let dataset = datasets::scalability_stream(size, 500, 11);
        group.bench_with_input(BenchmarkId::from_parameter(size), &dataset, |b, d| {
            b.iter(|| black_box(capture(d, InputFeatures::RawRandom, &cfg, SEEN_FRAC).queries.len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_matmul_backends,
        bench_streaming_throughput,
        bench_memory_update,
        bench_degree_update,
        bench_feature_propagation,
        bench_slim_forward_backward,
        bench_node2vec_walks,
        bench_metrics,
        bench_embeddings,
        bench_dtdg_view,
        bench_dtdg_baselines,
        bench_capture_scaling,
}
criterion_main!(benches);
