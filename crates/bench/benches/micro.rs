//! Criterion micro-benchmarks for the hot paths of the SPLASH pipeline:
//! stream ingestion, feature propagation, SLIM forward/backward, node2vec
//! walk generation, and the evaluation metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use baselines::Baseline;
use ctdg::{DegreeTracker, EdgeStream, GraphSnapshot, NeighborMemory, TemporalEdge};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use splash::{capture, FeatureProcess, InputFeatures, SplashConfig, SEEN_FRAC};

fn random_stream(n_edges: usize, n_nodes: u32, seed: u64) -> EdgeStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (0..n_edges)
        .map(|i| {
            let src = rng.random_range(0..n_nodes);
            let dst = rng.random_range(0..n_nodes);
            TemporalEdge::plain(src, dst, i as f64)
        })
        .collect();
    EdgeStream::new_unchecked(edges)
}

fn bench_memory_update(c: &mut Criterion) {
    let stream = random_stream(10_000, 500, 0);
    c.bench_function("neighbor_memory_ingest_10k_edges", |b| {
        b.iter(|| {
            let mut mem = NeighborMemory::new(500, 10);
            for (i, e) in stream.edges().iter().enumerate() {
                mem.update(i, e);
            }
            black_box(mem.edges_seen())
        })
    });
}

fn bench_degree_update(c: &mut Criterion) {
    let stream = random_stream(10_000, 500, 1);
    c.bench_function("degree_tracker_ingest_10k_edges", |b| {
        b.iter(|| {
            let mut deg = DegreeTracker::new(500);
            for e in stream.edges() {
                deg.update(e);
            }
            black_box(deg.total())
        })
    });
}

fn bench_feature_propagation(c: &mut Criterion) {
    let stream = random_stream(5_000, 400, 2);
    let cfg = SplashConfig::default();
    let mut aug = splash::Augmenter::new(
        &stream,
        1_000,
        400,
        cfg.feat_dim,
        &cfg.node2vec,
        cfg.degree_alpha,
        7,
    );
    let tail: Vec<TemporalEdge> = stream.edges()[1_000..].to_vec();
    c.bench_function("feature_propagation_4k_edges", |b| {
        b.iter(|| {
            let mut a = aug.clone();
            for e in &tail {
                a.observe(e);
            }
            black_box(a.feature(FeatureProcess::Random, 10))
        })
    });
    // keep `aug` alive for cloning costs symmetry
    aug.observe(&tail[0]);
}

fn bench_slim_forward_backward(c: &mut Criterion) {
    let dataset = datasets::synthetic_shift(50, 5);
    let cfg = SplashConfig::default();
    let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = splash::SlimModel::new(&cfg, cap.feat_dim, cap.edge_feat_dim, 5, &mut rng);
    let refs: Vec<&splash::CapturedQuery> = cap.queries[..128].iter().collect();
    let batch = model.build_batch(&refs);
    c.bench_function("slim_forward_batch128", |b| {
        b.iter(|| black_box(model.infer(&batch)))
    });
    c.bench_function("slim_forward_backward_batch128", |b| {
        b.iter(|| {
            let (logits, _, cache) = model.forward(&batch);
            let coef = nn::test_util::probe_coefficients(logits.rows(), logits.cols());
            model.backward(&cache, &coef);
            black_box(logits.sum())
        })
    });
}

fn bench_node2vec_walks(c: &mut Criterion) {
    let stream = random_stream(5_000, 300, 3);
    let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
    let config = embed::WalkConfig { walks_per_node: 4, walk_length: 12, ..Default::default() };
    c.bench_function("node2vec_walks_300_nodes", |b| {
        b.iter(|| black_box(embed::generate_walks(&snap, &config, 9).len()))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let scores: Vec<f32> = (0..10_000).map(|_| rng.random::<f32>()).collect();
    let labels: Vec<bool> = (0..10_000).map(|_| rng.random::<f32>() < 0.1).collect();
    c.bench_function("roc_auc_10k", |b| {
        b.iter(|| black_box(eval::roc_auc(&scores, &labels)))
    });
    let queries: Vec<(Vec<f32>, Vec<f32>)> = (0..200)
        .map(|_| {
            (
                (0..64).map(|_| rng.random::<f32>()).collect(),
                (0..64).map(|_| rng.random::<f32>()).collect(),
            )
        })
        .collect();
    c.bench_function("ndcg_at_10_200x64", |b| {
        b.iter(|| black_box(eval::mean_ndcg_at_k(&queries, 10)))
    });
}

fn bench_embeddings(c: &mut Criterion) {
    let stream = random_stream(5_000, 300, 7);
    let snap = GraphSnapshot::from_stream_prefix(&stream, stream.len());
    c.bench_function("pagerank_300_nodes", |b| {
        b.iter(|| black_box(embed::pagerank(&snap, &embed::PageRankConfig::default())[0]))
    });
    let gr = embed::GraRepConfig { dim: 16, transition_steps: 2, svd_iters: 3 };
    c.bench_function("grarep_300_nodes_dim16", |b| {
        b.iter(|| black_box(embed::grarep(&snap, &gr, 9).sum()))
    });
    let m = nn::Matrix::from_fn(300, 300, |i, j| ((i * 13 + j * 7) as f32 * 0.29).sin());
    c.bench_function("truncated_svd_300x300_k8", |b| {
        b.iter(|| black_box(nn::truncated_svd(&m, 8, 2, 3).s[0]))
    });
}

fn bench_dtdg_view(c: &mut Criterion) {
    let stream = random_stream(10_000, 500, 5);
    c.bench_function("dtdg_view_10k_edges_8_windows", |b| {
        b.iter(|| black_box(ctdg::DtdgView::new(&stream, 8).total_temporal_edges()))
    });
}

fn bench_dtdg_baselines(c: &mut Criterion) {
    let dataset = datasets::synthetic_shift(50, 6);
    let cfg = SplashConfig::default();
    let cap = capture(&dataset, InputFeatures::RawRandom, &cfg, SEEN_FRAC);
    let refs: Vec<&splash::CapturedQuery> = cap.queries[..128].iter().collect();
    let labels: Vec<&ctdg::Label> = refs.iter().map(|q| &q.label).collect();
    let mut rng = StdRng::seed_from_u64(6);
    let dida = baselines::Dida::new(cap.feat_dim, cap.edge_feat_dim, 5, &cfg, &mut rng);
    c.bench_function("dida_forward_batch128", |b| {
        b.iter(|| black_box(dida.predict_batch(&refs).sum()))
    });
    let mut dida = dida;
    c.bench_function("dida_train_step_batch128", |b| {
        b.iter(|| black_box(dida.train_batch(&refs, &labels, datasets::Task::Classification)))
    });
    let mut slid = baselines::Slid::new(cap.feat_dim, cap.edge_feat_dim, 5, &cfg, &mut rng);
    c.bench_function("slid_train_step_batch128", |b| {
        b.iter(|| black_box(slid.train_batch(&refs, &labels, datasets::Task::Classification)))
    });
}

fn bench_capture_scaling(c: &mut Criterion) {
    let cfg = SplashConfig::default();
    let mut group = c.benchmark_group("capture_per_edge");
    for &size in &[2_000usize, 8_000] {
        let dataset = datasets::scalability_stream(size, 500, 11);
        group.bench_with_input(BenchmarkId::from_parameter(size), &dataset, |b, d| {
            b.iter(|| black_box(capture(d, InputFeatures::RawRandom, &cfg, SEEN_FRAC).queries.len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_memory_update,
        bench_degree_update,
        bench_feature_propagation,
        bench_slim_forward_backward,
        bench_node2vec_walks,
        bench_metrics,
        bench_embeddings,
        bench_dtdg_view,
        bench_dtdg_baselines,
        bench_capture_scaling,
}
criterion_main!(benches);
