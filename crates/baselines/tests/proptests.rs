//! Property-based tests for the baseline-shared machinery: the intervention
//! mechanism's algebra and the DTDG micro-window encodings.

use baselines::intervention::{
    intervention_loss_weights, intervention_penalty, permute_rows, rotation_perm,
    scatter_rows_add,
};
use baselines::pack_window_onehot;
use ctdg::Label;
use nn::Matrix;
use proptest::prelude::*;
use splash::{CapturedNeighbor, CapturedQuery};

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn arb_query(max_neighbors: usize) -> impl Strategy<Value = CapturedQuery> {
    prop::collection::vec((0.0f64..1000.0, -2.0f32..2.0), 0..=max_neighbors).prop_map(|raw| {
        let mut times: Vec<f64> = raw.iter().map(|&(t, _)| t).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let neighbors = times
            .iter()
            .zip(&raw)
            .enumerate()
            .map(|(i, (&t, &(_, f)))| CapturedNeighbor {
                other: i as u32,
                feat: vec![f; 2],
                edge_feat: vec![],
                time: t,
                weight: 1.0,
            })
            .collect();
        CapturedQuery {
            node: 0,
            time: 2000.0,
            target_feat: vec![0.0; 2],
            neighbors,
            label: Label::Class(0),
        }
    })
}

proptest! {
    /// `scatter_rows_add` is the exact adjoint of `permute_rows` for every
    /// permutation produced by `rotation_perm`: `<P m, d> = <m, Pᵀ d>`.
    #[test]
    fn permutation_adjoint_identity(m in arb_matrix(8, 5), p in 0usize..8) {
        let d = Matrix::from_fn(m.rows(), m.cols(), |i, j| ((i * 31 + j * 7) as f32).sin());
        let perm = rotation_perm(m.rows(), p);
        let pm = permute_rows(&m, &perm);
        let lhs: f64 = pm.data().iter().zip(d.data()).map(|(a, b)| (a * b) as f64).sum();
        let mut dm = Matrix::zeros(m.rows(), m.cols());
        scatter_rows_add(&d, &perm, &mut dm);
        let rhs: f64 = m.data().iter().zip(dm.data()).map(|(a, b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Permuting twice with inverse rotations restores the matrix.
    #[test]
    fn rotations_compose_to_identity(m in arb_matrix(6, 4), p in 0usize..6) {
        let n = m.rows();
        let fwd = rotation_perm(n, p);
        // The inverse of rotation by (p+1) is rotation by n-(p+1)-1 shifts
        // of +1... simpler: invert explicitly.
        let mut inv = vec![0usize; n];
        for (i, &j) in fwd.iter().enumerate() {
            inv[j] = i;
        }
        let round = permute_rows(&permute_rows(&m, &fwd), &inv);
        prop_assert_eq!(round.data(), m.data());
    }

    /// The intervention gradient weights are exactly the gradient of the
    /// penalty: checked by first-order Taylor expansion against random
    /// perturbations.
    #[test]
    fn weights_are_penalty_gradient(
        losses in prop::collection::vec(0.0f32..5.0, 1..6),
        lm in 0.0f32..2.0,
        lv in 0.0f32..2.0,
    ) {
        let w = intervention_loss_weights(&losses, lm, lv);
        let base = intervention_penalty(&losses, lm, lv);
        let eps = 1e-3;
        for i in 0..losses.len() {
            let mut plus = losses.clone();
            plus[i] += eps;
            let fd = (intervention_penalty(&plus, lm, lv) - base) / eps;
            prop_assert!((fd - w[i]).abs() < 2e-2, "component {i}: {fd} vs {}", w[i]);
        }
    }

    /// Micro-window one-hots: every valid token row is an exact one-hot,
    /// every padding row is zero, and window indices are monotone over the
    /// chronological token order.
    #[test]
    fn window_onehot_invariants(
        q1 in arb_query(8),
        q2 in arb_query(8),
        k in 1usize..7,
        s in 1usize..5,
    ) {
        let refs = [&q1, &q2];
        let onehot = pack_window_onehot(&refs, k, s);
        prop_assert_eq!(onehot.shape(), (2 * k, s));
        for (qi, q) in refs.iter().enumerate() {
            let len = q.neighbors.len().min(k);
            let mut prev = 0usize;
            for slot in 0..k {
                let row = onehot.row(qi * k + slot);
                let sum: f32 = row.iter().sum();
                if slot < len {
                    prop_assert_eq!(sum, 1.0, "valid rows are one-hot");
                    let idx = row.iter().position(|&v| v == 1.0).unwrap();
                    prop_assert!(idx >= prev, "windows are monotone in time");
                    prev = idx;
                } else {
                    prop_assert_eq!(sum, 0.0, "padding rows are zero");
                }
            }
        }
    }
}
