//! Bit-identity pins for the serving adapter: a baseline registered in a
//! [`SplashService`] slot must be indistinguishable from the same engine
//! driven by hand — the façade adds policy and accounting, never numerics.

use baselines::{parse_variant, BaselineEngine};
use ctdg::{replay, Event, TemporalEdge};
use splash::{
    split_bounds, IngestRequest, PredictRequest, PredictResponse, ServeEngine, SplashConfig,
    SplashService,
};

fn small_drift() -> datasets::Dataset {
    let dataset = datasets::synthetic_shift(40, 11);
    splash::truncate_to_available(&dataset, 0.15)
}

fn tiny_cfg() -> SplashConfig {
    let mut cfg = SplashConfig::tiny();
    cfg.epochs = 1;
    cfg
}

/// The same variant, the same dataset, the same seed: one copy served
/// through `SplashService` slots, one driven directly through its
/// `ServeEngine` methods. Every prediction must match to the bit.
#[test]
fn baseline_through_service_is_bit_identical_to_direct_drive() {
    let dataset = small_drift();
    let cfg = tiny_cfg();
    let variant = parse_variant("jodie+RF").unwrap();

    let mut service = SplashService::builder(cfg).build().unwrap();
    let engine = BaselineEngine::new(variant, &dataset, &cfg).unwrap();
    service.register_engine("jodie+RF", Box::new(engine)).unwrap();
    let mut direct = BaselineEngine::new(variant, &dataset, &cfg).unwrap();

    let t_live = service.model_last_time("jodie+RF").unwrap();
    assert_eq!(direct.last_time(), t_live, "both copies consumed the same prefix");
    let prefix = dataset.stream.prefix_len_at(t_live);
    let (_, val_end) = split_bounds(dataset.queries.len());

    let mut pending: Vec<TemporalEdge> = Vec::new();
    let mut resp = PredictResponse::default();
    let mut direct_logits = Vec::new();
    let mut served = 0usize;
    for event in replay(&dataset.stream, &dataset.queries) {
        match event {
            Event::Edge(idx, edge) => {
                if idx >= prefix {
                    pending.push(edge.clone());
                }
            }
            Event::Query(qi, q) => {
                if !pending.is_empty() {
                    service.ingest("jodie+RF", IngestRequest::new(&pending)).unwrap();
                    direct.try_push_edges(&pending).unwrap();
                    pending.clear();
                }
                if qi >= val_end && q.time >= t_live {
                    service
                        .predict_into("jodie+RF", PredictRequest::new(q.node, q.time), &mut resp)
                        .unwrap();
                    direct.try_predict_into(q.node, q.time, &mut direct_logits).unwrap();
                    assert_eq!(
                        resp.logits, direct_logits,
                        "query {qi} (node {}, t {}) diverged",
                        q.node, q.time
                    );
                    served += 1;
                }
            }
        }
    }
    assert!(served > 10, "test must exercise a real query stream, served {served}");

    let stats = service.stats();
    assert_eq!(stats.queries_served, served as u64);
}

/// SLADE refuses non-anomaly regimes with the typed error, at construction.
#[test]
fn slade_engine_is_anomaly_only() {
    let dataset = small_drift(); // classification task
    let cfg = tiny_cfg();
    let variant = parse_variant("slade").unwrap();
    let err = BaselineEngine::new(variant, &dataset, &cfg).unwrap_err();
    assert_eq!(err.kind(), "TaskUnsupported");
    assert!(err.to_string().contains("slade"), "{err}");
}

/// The variant roster is the authoritative count: 8 plain + 7 `+RF`.
#[test]
fn variant_roster_is_fifteen() {
    let all = baselines::all_variants();
    assert_eq!(all.len(), 15);
    let names: Vec<String> = all.iter().map(|v| v.name()).collect();
    assert!(names.contains(&"slade".to_string()));
    assert!(!names.contains(&"slade+RF".to_string()), "SLADE runs feature-free only");
    assert!(names.contains(&"tgn+RF".to_string()));
    for name in &names {
        let parsed = baselines::parse_variant(name).unwrap();
        assert_eq!(&parsed.name(), name, "parse/name round-trip");
    }
    assert!(baselines::parse_variant("slade+RF").is_none());
    assert!(baselines::parse_variant("bogus").is_none());
}
