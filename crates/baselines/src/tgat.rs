//! TGAT (Xu et al., ICLR 2020): temporal graph attention with a learnable
//! functional time encoding.
//!
//! The target node (with time encoding φ(0)) attends over its recent
//! temporal neighbors, whose keys/values carry `[x_j ‖ x_ij ‖ φ(Δt)]` with
//! the learnable `φ(t) = cos(t·w + b)` encoding — TGAT's defining component.

use ctdg::Label;
use datasets::Task;
use nn::{
    Activation, Adam, CrossAttention, LearnableTimeEncode, Matrix, Mlp, Parameterized,
};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{stack_targets, Baseline};

/// The TGAT baseline.
pub struct Tgat {
    time_enc: LearnableTimeEncode,
    attn: CrossAttention,
    decoder: Mlp,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
}

impl Tgat {
    /// Builds TGAT for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dh = cfg.hidden;
        let dt = cfg.time_dim;
        Self {
            time_enc: LearnableTimeEncode::new(dt, rng),
            attn: CrossAttention::new(feat_dim + dt, feat_dim + edge_feat_dim + dt, dh, 2, rng),
            decoder: Mlp::new(&[dh + feat_dim, dh, out_dim], Activation::Relu, rng),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
        }
    }

    /// Packs base tokens `[x_j ‖ x_ij]` plus per-token Δt values.
    fn base_tokens(&self, refs: &[&CapturedQuery]) -> (Matrix, Vec<f64>, Vec<usize>) {
        let width = self.feat_dim + self.edge_feat_dim;
        let mut base = Matrix::zeros(refs.len() * self.k, width);
        let mut dts = vec![0.0f64; refs.len() * self.k];
        let mut lens = vec![0usize; refs.len()];
        for (qi, q) in refs.iter().enumerate() {
            let len = q.neighbors.len().min(self.k);
            lens[qi] = len;
            let skip = q.neighbors.len() - len;
            for (slot, nb) in q.neighbors[skip..].iter().enumerate() {
                let row = base.row_mut(qi * self.k + slot);
                row[..self.feat_dim].copy_from_slice(&nb.feat);
                row[self.feat_dim..].copy_from_slice(&nb.edge_feat);
                dts[qi * self.k + slot] = q.time - nb.time;
            }
        }
        (base, dts, lens)
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (
        Matrix,
        Matrix,
        nn::CrossAttentionCache,
        nn::TimeEncodeCache,
        nn::TimeEncodeCache,
        nn::MlpCache,
        Vec<usize>,
    ) {
        let b = refs.len();
        let (base, dts, lens) = self.base_tokens(refs);
        let (te_kv, te_kv_cache) = self.time_enc.forward(&dts);
        let kv = Matrix::concat_cols(&[&base, &te_kv]);
        let zeros = vec![0.0f64; b];
        let (te_q, te_q_cache) = self.time_enc.forward(&zeros);
        let target = stack_targets(refs, self.feat_dim);
        let query = Matrix::concat_cols(&[&target, &te_q]);
        let (attn_out, attn_cache) = self.attn.forward(&query, &kv, &lens, self.k);
        let concat = Matrix::concat_cols(&[&attn_out, &target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        (logits, attn_out, attn_cache, te_kv_cache, te_q_cache, dec_cache, lens)
    }

    fn step(&mut self) {
        let Self { time_enc, attn, decoder, opt, .. } = self;
        let mut params = time_enc.params_mut();
        params.extend(attn.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for Tgat {
    fn name(&self) -> &'static str {
        "tgat"
    }

    fn num_params(&self) -> usize {
        Parameterized::num_params(&self.time_enc)
            + self.attn.num_params()
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let (logits, attn_out, attn_cache, te_kv_cache, te_q_cache, dec_cache, _lens) =
            self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let dattn_out = dconcat.slice_cols(0, attn_out.cols());
        let (dquery, dkv) = self.attn.backward(&attn_cache, &dattn_out);
        // Route gradients into the learnable time encoding.
        let base_w = self.feat_dim + self.edge_feat_dim;
        let dte_kv = dkv.slice_cols(base_w, dkv.cols());
        self.time_enc.backward(&te_kv_cache, &dte_kv);
        let dte_q = dquery.slice_cols(self.feat_dim, dquery.cols());
        self.time_enc.backward(&te_q_cache, &dte_q);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> Tgat {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(1);
        Tgat::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.5; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        let logits = m.predict_batch(&[&q]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn representation_dim_is_hidden() {
        let m = model();
        let (queries, _) = crate::common::test_support::toy_queries(4, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let h = m.represent_batch(&refs);
        assert_eq!(h.shape(), (4, SplashConfig::tiny().hidden));
    }
}
