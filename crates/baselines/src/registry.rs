//! Baseline registry: uniform construction and execution of all eight
//! baselines, with and without random features (`+RF`).

use datasets::{Dataset, Task};
use rand::{rngs::StdRng, SeedableRng};
use splash::{Capture, InputFeatures, SplashConfig};

use crate::common::{run_baseline, Baseline, BaselineOutput};
use crate::dida::Dida;
use crate::dygformer::DyGFormerModel;
use crate::dysat::DySat;
use crate::freedyg::FreeDyGModel;
use crate::graphmixer::GraphMixerModel;
use crate::jodie::Jodie;
use crate::slade::Slade;
use crate::slid::Slid;
use crate::tgat::Tgat;
use crate::tgn::Tgn;

/// The eight baseline architectures of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// JODIE (RNN + time projection).
    Jodie,
    /// DySAT (structural + temporal attention over snapshots).
    DySat,
    /// TGAT (temporal graph attention, learnable time encoding).
    Tgat,
    /// TGN (GRU memory + attention readout).
    Tgn,
    /// GraphMixer (all-MLP mixer).
    GraphMixer,
    /// DyGFormer (transformer + co-occurrence encoding).
    DyGFormer,
    /// FreeDyG (learnable frequency filter).
    FreeDyG,
    /// SLADE (self-supervised anomaly scoring; anomaly task only).
    Slade,
}

impl BaselineKind {
    /// All baselines, in the paper's table order.
    pub const ALL: [BaselineKind; 8] = [
        BaselineKind::Jodie,
        BaselineKind::DySat,
        BaselineKind::Tgat,
        BaselineKind::Tgn,
        BaselineKind::GraphMixer,
        BaselineKind::DyGFormer,
        BaselineKind::FreeDyG,
        BaselineKind::Slade,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Jodie => "jodie",
            BaselineKind::DySat => "dysat",
            BaselineKind::Tgat => "tgat",
            BaselineKind::Tgn => "tgn",
            BaselineKind::GraphMixer => "graphmixer",
            BaselineKind::DyGFormer => "dygformer",
            BaselineKind::FreeDyG => "freedyg",
            BaselineKind::Slade => "slade",
        }
    }

    /// Whether this baseline applies to the given task (SLADE is
    /// anomaly-detection-only; the paper reports N/A elsewhere).
    pub fn supports(self, task: Task) -> bool {
        self != BaselineKind::Slade || task == Task::Anomaly
    }
}

/// The two DTDG-based shift-robust methods of the paper's Fig. 12. The
/// paper keeps them out of Table III because, as DTDG models, they predict a
/// single label per node per snapshot and cannot serve real-time queries;
/// they enter only the robustness comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtdgKind {
    /// DIDA (disentangled spatio-temporal attention + intervention).
    Dida,
    /// SLID/SILD (spectral disentanglement + intervention).
    Slid,
}

impl DtdgKind {
    /// Both DTDG baselines, in the paper's order.
    pub const ALL: [DtdgKind; 2] = [DtdgKind::Dida, DtdgKind::Slid];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DtdgKind::Dida => "dida",
            DtdgKind::Slid => "slid",
        }
    }
}

/// Constructs a DTDG baseline model for the given dimensions.
pub fn build_dtdg(
    kind: DtdgKind,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    cfg: &SplashConfig,
) -> Box<dyn Baseline> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (kind as u64 + 0xD1DA));
    match kind {
        DtdgKind::Dida => Box::new(Dida::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        DtdgKind::Slid => Box::new(Slid::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
    }
}

/// Captures the dataset under `mode` and runs one DTDG baseline end to end
/// under the same 10/10/80 protocol as the TGNN baselines.
pub fn run_dtdg(
    kind: DtdgKind,
    dataset: &Dataset,
    mode: InputFeatures,
    cfg: &SplashConfig,
) -> BaselineOutput {
    let cap = splash::capture(dataset, mode, cfg, splash::SEEN_FRAC);
    let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
    let mut model = build_dtdg(kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
    let suffix = if mode == InputFeatures::RawRandom { "+RF" } else { "" };
    run_baseline(model.as_mut(), dataset, &cap, cfg, suffix)
}

/// Constructs a baseline model for the given dimensions.
pub fn build_baseline(
    kind: BaselineKind,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    cfg: &SplashConfig,
) -> Box<dyn Baseline> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (kind as u64 + 0xB00));
    match kind {
        BaselineKind::Jodie => Box::new(Jodie::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::DySat => Box::new(DySat::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::Tgat => Box::new(Tgat::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::Tgn => Box::new(Tgn::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::GraphMixer => {
            Box::new(GraphMixerModel::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng))
        }
        BaselineKind::DyGFormer => {
            Box::new(DyGFormerModel::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng))
        }
        BaselineKind::FreeDyG => {
            Box::new(FreeDyGModel::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng))
        }
        BaselineKind::Slade => Box::new(Slade::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
    }
}

/// Trains and evaluates one baseline on a pre-computed capture. The
/// `mode` determines the name suffix (`""` for plain, `"+RF"` for random
/// features, etc.).
pub fn run_on_capture(
    kind: BaselineKind,
    dataset: &Dataset,
    cap: &Capture,
    mode: InputFeatures,
    cfg: &SplashConfig,
) -> BaselineOutput {
    let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
    let mut model = build_baseline(kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
    let suffix = match mode {
        InputFeatures::RawRandom => "+RF",
        InputFeatures::Zero | InputFeatures::External => "",
        other => {
            if other == InputFeatures::Joint {
                "+joint"
            } else {
                "+aug"
            }
        }
    };
    run_baseline(model.as_mut(), dataset, cap, cfg, suffix)
}

/// Captures the dataset under `mode` and runs one baseline end to end.
pub fn run(
    kind: BaselineKind,
    dataset: &Dataset,
    mode: InputFeatures,
    cfg: &SplashConfig,
) -> BaselineOutput {
    let cap = splash::capture(dataset, mode, cfg, splash::SEEN_FRAC);
    run_on_capture(kind, dataset, &cap, mode, cfg)
}

/// [`run`] under a custom chronological split (Fig. 9 sweep).
pub fn run_frac(
    kind: BaselineKind,
    dataset: &Dataset,
    mode: InputFeatures,
    cfg: &SplashConfig,
    train_frac: f64,
    seen_frac: f64,
) -> BaselineOutput {
    let cap = splash::capture(dataset, mode, cfg, seen_frac);
    let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
    let mut model = build_baseline(kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
    let suffix = if mode == InputFeatures::RawRandom { "+RF" } else { "" };
    crate::common::run_baseline_frac(
        model.as_mut(),
        dataset,
        &cap,
        cfg,
        suffix,
        train_frac,
        seen_frac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_build() {
        let cfg = SplashConfig::tiny();
        for kind in BaselineKind::ALL {
            let model = build_baseline(kind, 8, 4, 3, &cfg);
            assert!(model.num_params() > 0, "{} has no params", model.name());
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn slade_is_anomaly_only() {
        assert!(BaselineKind::Slade.supports(Task::Anomaly));
        assert!(!BaselineKind::Slade.supports(Task::Classification));
        assert!(!BaselineKind::Slade.supports(Task::Affinity));
        assert!(BaselineKind::Tgn.supports(Task::Affinity));
    }

    #[test]
    fn dtdg_baselines_build() {
        let cfg = SplashConfig::tiny();
        for kind in DtdgKind::ALL {
            let model = build_dtdg(kind, 8, 4, 3, &cfg);
            assert!(model.num_params() > 0, "{} has no params", model.name());
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn dtdg_end_to_end_on_small_dataset() {
        let dataset = datasets::synthetic_shift(50, 23);
        let small = splash::truncate_to_available(&dataset, 0.25);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let out = run_dtdg(DtdgKind::Dida, &small, InputFeatures::RawRandom, &cfg);
        assert!(out.metric > 0.0 && out.metric <= 1.0);
        assert_eq!(out.name, "dida+RF");
    }

    #[test]
    fn end_to_end_on_small_dataset() {
        let dataset = datasets::synthetic_shift(50, 21);
        // Shrink the dataset for speed.
        let small = splash::truncate_to_available(&dataset, 0.3);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let out = run(BaselineKind::Jodie, &small, InputFeatures::RawRandom, &cfg);
        assert!(out.metric > 0.0 && out.metric <= 1.0);
        assert!(out.name.ends_with("+RF"));
        assert!(out.num_params > 0);
    }
}
