//! Baseline registry: uniform construction and execution of every
//! competitor this reproduction fields. The authoritative roster is
//! [`all_variants`]: the eight [`BaselineKind`] architectures in their
//! plain (dataset-features) setting plus the seven `+RF` random-feature
//! variants — SLADE runs only in its native feature-free setting — for
//! **15 named Table III contenders** in total. The two [`DtdgKind`]
//! methods stay outside that roster (Fig. 12 only; as DTDG models they
//! cannot serve real-time queries).

use datasets::{Dataset, Task};
use rand::{rngs::StdRng, SeedableRng};
use splash::{Capture, InputFeatures, SplashConfig};

use crate::common::{run_baseline, Baseline, BaselineOutput};
use crate::dida::Dida;
use crate::dygformer::DyGFormerModel;
use crate::dysat::DySat;
use crate::freedyg::FreeDyGModel;
use crate::graphmixer::GraphMixerModel;
use crate::jodie::Jodie;
use crate::slade::Slade;
use crate::slid::Slid;
use crate::tgat::Tgat;
use crate::tgn::Tgn;

/// The eight baseline architectures of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// JODIE (RNN + time projection).
    Jodie,
    /// DySAT (structural + temporal attention over snapshots).
    DySat,
    /// TGAT (temporal graph attention, learnable time encoding).
    Tgat,
    /// TGN (GRU memory + attention readout).
    Tgn,
    /// GraphMixer (all-MLP mixer).
    GraphMixer,
    /// DyGFormer (transformer + co-occurrence encoding).
    DyGFormer,
    /// FreeDyG (learnable frequency filter).
    FreeDyG,
    /// SLADE (self-supervised anomaly scoring; anomaly task only).
    Slade,
}

impl BaselineKind {
    /// All baselines, in the paper's table order.
    pub const ALL: [BaselineKind; 8] = [
        BaselineKind::Jodie,
        BaselineKind::DySat,
        BaselineKind::Tgat,
        BaselineKind::Tgn,
        BaselineKind::GraphMixer,
        BaselineKind::DyGFormer,
        BaselineKind::FreeDyG,
        BaselineKind::Slade,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Jodie => "jodie",
            BaselineKind::DySat => "dysat",
            BaselineKind::Tgat => "tgat",
            BaselineKind::Tgn => "tgn",
            BaselineKind::GraphMixer => "graphmixer",
            BaselineKind::DyGFormer => "dygformer",
            BaselineKind::FreeDyG => "freedyg",
            BaselineKind::Slade => "slade",
        }
    }

    /// Whether this baseline applies to the given task (SLADE is
    /// anomaly-detection-only; the paper reports N/A elsewhere).
    pub fn supports(self, task: Task) -> bool {
        self != BaselineKind::Slade || task == Task::Anomaly
    }
}

/// Canonical name suffix of a feature mode (`""` plain, `"+RF"` random
/// features, `"+joint"` / `"+aug"` for the augmented captures).
pub fn mode_suffix(mode: InputFeatures) -> &'static str {
    match mode {
        InputFeatures::RawRandom => "+RF",
        InputFeatures::Zero | InputFeatures::External => "",
        other => {
            if other == InputFeatures::Joint {
                "+joint"
            } else {
                "+aug"
            }
        }
    }
}

/// One named competitor: an architecture plus the feature mode it
/// consumes. `kind.name()` + [`mode_suffix`] gives the canonical display
/// name (`"tgn"`, `"tgn+RF"`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineVariant {
    /// The architecture.
    pub kind: BaselineKind,
    /// The input-feature mode fed to its capture.
    pub mode: InputFeatures,
}

impl BaselineVariant {
    /// Canonical display name, e.g. `"tgn+RF"`.
    pub fn name(self) -> String {
        format!("{}{}", self.kind.name(), mode_suffix(self.mode))
    }

    /// Typed task-compatibility check: `Err(SplashError::TaskUnsupported)`
    /// for a pairing the paper reports as N/A (SLADE outside anomaly
    /// detection).
    pub fn ensure_supports(self, task: Task) -> Result<(), splash::SplashError> {
        if self.kind.supports(task) {
            Ok(())
        } else {
            Err(splash::SplashError::TaskUnsupported {
                model: self.name(),
                task: splash::task::name(task),
            })
        }
    }
}

/// The authoritative roster of named Table III contenders: every
/// architecture in its plain setting, plus `+RF` for all but SLADE
/// (which is self-supervised over the interaction stream itself and runs
/// only in its native feature-free setting) — 15 variants in table order.
pub fn all_variants() -> Vec<BaselineVariant> {
    let mut out = Vec::with_capacity(15);
    for kind in BaselineKind::ALL {
        out.push(BaselineVariant { kind, mode: InputFeatures::External });
        if kind != BaselineKind::Slade {
            out.push(BaselineVariant { kind, mode: InputFeatures::RawRandom });
        }
    }
    out
}

/// Parses a canonical variant name (`"tgn"`, `"tgn+RF"`; the suffix is
/// case-insensitive). Returns `None` for names outside [`all_variants`].
pub fn parse_variant(name: &str) -> Option<BaselineVariant> {
    let (base, mode) = match name.strip_suffix("+RF").or_else(|| name.strip_suffix("+rf")) {
        Some(base) => (base, InputFeatures::RawRandom),
        None => (name, InputFeatures::External),
    };
    let kind = BaselineKind::ALL.into_iter().find(|k| k.name() == base)?;
    let variant = BaselineVariant { kind, mode };
    all_variants().contains(&variant).then_some(variant)
}

/// The two DTDG-based shift-robust methods of the paper's Fig. 12. The
/// paper keeps them out of Table III because, as DTDG models, they predict a
/// single label per node per snapshot and cannot serve real-time queries;
/// they enter only the robustness comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtdgKind {
    /// DIDA (disentangled spatio-temporal attention + intervention).
    Dida,
    /// SLID/SILD (spectral disentanglement + intervention).
    Slid,
}

impl DtdgKind {
    /// Both DTDG baselines, in the paper's order.
    pub const ALL: [DtdgKind; 2] = [DtdgKind::Dida, DtdgKind::Slid];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DtdgKind::Dida => "dida",
            DtdgKind::Slid => "slid",
        }
    }
}

/// Constructs a DTDG baseline model for the given dimensions.
pub fn build_dtdg(
    kind: DtdgKind,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    cfg: &SplashConfig,
) -> Box<dyn Baseline> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (kind as u64 + 0xD1DA));
    match kind {
        DtdgKind::Dida => Box::new(Dida::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        DtdgKind::Slid => Box::new(Slid::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
    }
}

/// Captures the dataset under `mode` and runs one DTDG baseline end to end
/// under the same 10/10/80 protocol as the TGNN baselines.
pub fn run_dtdg(
    kind: DtdgKind,
    dataset: &Dataset,
    mode: InputFeatures,
    cfg: &SplashConfig,
) -> BaselineOutput {
    let cap = splash::capture(dataset, mode, cfg, splash::SEEN_FRAC);
    let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
    let mut model = build_dtdg(kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
    let suffix = if mode == InputFeatures::RawRandom { "+RF" } else { "" };
    run_baseline(model.as_mut(), dataset, &cap, cfg, suffix)
}

/// Constructs a baseline model for the given dimensions.
pub fn build_baseline(
    kind: BaselineKind,
    feat_dim: usize,
    edge_feat_dim: usize,
    out_dim: usize,
    cfg: &SplashConfig,
) -> Box<dyn Baseline> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (kind as u64 + 0xB00));
    match kind {
        BaselineKind::Jodie => Box::new(Jodie::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::DySat => Box::new(DySat::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::Tgat => Box::new(Tgat::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::Tgn => Box::new(Tgn::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
        BaselineKind::GraphMixer => {
            Box::new(GraphMixerModel::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng))
        }
        BaselineKind::DyGFormer => {
            Box::new(DyGFormerModel::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng))
        }
        BaselineKind::FreeDyG => {
            Box::new(FreeDyGModel::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng))
        }
        BaselineKind::Slade => Box::new(Slade::new(feat_dim, edge_feat_dim, out_dim, cfg, &mut rng)),
    }
}

/// Trains and evaluates one baseline on a pre-computed capture. The
/// `mode` determines the name suffix (`""` for plain, `"+RF"` for random
/// features, etc.).
pub fn run_on_capture(
    kind: BaselineKind,
    dataset: &Dataset,
    cap: &Capture,
    mode: InputFeatures,
    cfg: &SplashConfig,
) -> BaselineOutput {
    let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
    let mut model = build_baseline(kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
    run_baseline(model.as_mut(), dataset, cap, cfg, mode_suffix(mode))
}

/// Captures the dataset under `mode` and runs one baseline end to end.
pub fn run(
    kind: BaselineKind,
    dataset: &Dataset,
    mode: InputFeatures,
    cfg: &SplashConfig,
) -> BaselineOutput {
    let cap = splash::capture(dataset, mode, cfg, splash::SEEN_FRAC);
    run_on_capture(kind, dataset, &cap, mode, cfg)
}

/// [`run`] under a custom chronological split (Fig. 9 sweep).
pub fn run_frac(
    kind: BaselineKind,
    dataset: &Dataset,
    mode: InputFeatures,
    cfg: &SplashConfig,
    train_frac: f64,
    seen_frac: f64,
) -> BaselineOutput {
    let cap = splash::capture(dataset, mode, cfg, seen_frac);
    let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
    let mut model = build_baseline(kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
    let suffix = if mode == InputFeatures::RawRandom { "+RF" } else { "" };
    crate::common::run_baseline_frac(
        model.as_mut(),
        dataset,
        &cap,
        cfg,
        suffix,
        train_frac,
        seen_frac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_build() {
        let cfg = SplashConfig::tiny();
        for kind in BaselineKind::ALL {
            let model = build_baseline(kind, 8, 4, 3, &cfg);
            assert!(model.num_params() > 0, "{} has no params", model.name());
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn slade_is_anomaly_only() {
        assert!(BaselineKind::Slade.supports(Task::Anomaly));
        assert!(!BaselineKind::Slade.supports(Task::Classification));
        assert!(!BaselineKind::Slade.supports(Task::Affinity));
        assert!(BaselineKind::Tgn.supports(Task::Affinity));
    }

    #[test]
    fn dtdg_baselines_build() {
        let cfg = SplashConfig::tiny();
        for kind in DtdgKind::ALL {
            let model = build_dtdg(kind, 8, 4, 3, &cfg);
            assert!(model.num_params() > 0, "{} has no params", model.name());
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn dtdg_end_to_end_on_small_dataset() {
        let dataset = datasets::synthetic_shift(50, 23);
        let small = splash::truncate_to_available(&dataset, 0.25);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let out = run_dtdg(DtdgKind::Dida, &small, InputFeatures::RawRandom, &cfg);
        assert!(out.metric > 0.0 && out.metric <= 1.0);
        assert_eq!(out.name, "dida+RF");
    }

    #[test]
    fn end_to_end_on_small_dataset() {
        let dataset = datasets::synthetic_shift(50, 21);
        // Shrink the dataset for speed.
        let small = splash::truncate_to_available(&dataset, 0.3);
        let mut cfg = SplashConfig::tiny();
        cfg.epochs = 2;
        let out = run(BaselineKind::Jodie, &small, InputFeatures::RawRandom, &cfg);
        assert!(out.metric > 0.0 && out.metric <= 1.0);
        assert!(out.name.ends_with("+RF"));
        assert!(out.num_params > 0);
    }
}
