//! FreeDyG (Tian et al., ICLR 2024): frequency-enhanced continuous-time
//! dynamic graph model.
//!
//! The defining component is a learnable complex filter applied to the
//! recent-neighbor token sequence in the frequency domain (explicit DFT →
//! filter → inverse DFT), with a residual connection, followed by an MLP.

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, FixedTimeEncode, FrequencyFilter, Linear, Matrix, Mlp, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{masked_mean, masked_mean_backward, pack_tokens, stack_targets, Baseline};

/// The FreeDyG baseline.
pub struct FreeDyGModel {
    proj: Linear,
    filter: FrequencyFilter,
    mix: Mlp,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    channels: usize,
}

impl FreeDyGModel {
    /// Builds FreeDyG for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let channels = cfg.hidden;
        Self {
            proj: Linear::new(feat_dim + edge_feat_dim + cfg.time_dim, channels, rng),
            filter: FrequencyFilter::new(cfg.k, channels),
            mix: Mlp::new(&[channels, 2 * channels, channels], Activation::Relu, rng),
            decoder: Mlp::new(&[channels + feat_dim, cfg.hidden, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
            channels,
        }
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (
        Matrix,
        Vec<usize>,
        nn::LinearCache,
        nn::FrequencyFilterCache,
        nn::MlpCache,
        nn::MlpCache,
    ) {
        let (tokens, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let (x, proj_cache) = self.proj.forward(&tokens);
        let (f, filt_cache) = self.filter.forward(&x);
        let z = x.add(&f); // residual around the frequency filter
        let (m, mix_cache) = self.mix.forward(&z);
        let pooled = masked_mean(&m, &lens, self.k);
        let target = stack_targets(refs, self.feat_dim);
        let concat = Matrix::concat_cols(&[&pooled, &target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        (logits, lens, proj_cache, filt_cache, mix_cache, dec_cache)
    }

    fn step(&mut self) {
        let Self { proj, filter, mix, decoder, opt, .. } = self;
        let mut params = proj.params_mut();
        params.extend(filter.params_mut());
        params.extend(mix.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for FreeDyGModel {
    fn name(&self) -> &'static str {
        "freedyg"
    }

    fn num_params(&self) -> usize {
        self.proj.num_params()
            + Parameterized::num_params(&self.filter)
            + self.mix.num_params()
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let (logits, lens, proj_cache, filt_cache, mix_cache, dec_cache) = self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let dpooled = dconcat.slice_cols(0, self.channels);
        let dm = masked_mean_backward(&dpooled, &lens, self.k);
        let dz = self.mix.backward(&mix_cache, &dm);
        // z = x + filter(x)
        let df = &dz;
        let mut dx = self.filter.backward(&filt_cache, df);
        dx.add_assign(&dz);
        self.proj.backward(&proj_cache, &dx);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> FreeDyGModel {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(5);
        FreeDyGModel::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.2; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn filter_params_are_trained() {
        let mut m = model();
        let before = m.filter.re.value.clone();
        let (queries, labels) = crate::common::test_support::toy_queries(16, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let label_refs: Vec<&Label> = labels.iter().collect();
        for _ in 0..5 {
            m.train_batch(&refs, &label_refs, Task::Classification);
        }
        assert_ne!(m.filter.re.value, before, "frequency filter must receive gradients");
    }
}
