//! DIDA (Zhang et al., NeurIPS 2022): dynamic graph neural network with
//! disentangled intervention, the first of the two DTDG-based shift-robust
//! baselines of the paper's Fig. 12.
//!
//! The defining mechanism is *disentangled spatio-temporal attention*: two
//! attention heads split each node's history into an invariant summary
//! `z_I` and a variant summary `z_V`, and a batch-level intervention
//! objective (see [`crate::intervention`]) trains the predictor to be
//! insensitive to swaps of the variant part. As a DTDG method, DIDA sees its
//! input as a snapshot sequence; here each query's recent events are
//! bucketed into [`MICRO_WINDOWS`] micro-snapshots whose one-hot window ids
//! are appended to the tokens ([`pack_window_onehot`]), mirroring the
//! miniaturization documented in DESIGN.md.

use ctdg::Label;
use datasets::Task;
use nn::{Activation, Adam, FixedTimeEncode, Linear, Matrix, Mlp, Parameterized};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{pack_tokens, pack_window_onehot, stack_targets, Baseline};
use crate::intervention::{
    intervention_loss_weights, intervention_penalty, permute_rows, rotation_perm,
    scatter_rows_add, LAMBDA_MEAN, LAMBDA_VAR, NUM_INTERVENTIONS,
};

/// Number of discrete micro-snapshots per query history.
pub const MICRO_WINDOWS: usize = 4;

/// The DIDA baseline.
pub struct Dida {
    proj: Mlp,
    score_inv: Linear,
    score_var: Linear,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    hidden: usize,
}

/// Trunk activations reused by the main pass and every intervention pass.
struct Trunk {
    lens: Vec<usize>,
    h: Matrix,
    proj_cache: nn::MlpCache,
    si_cache: nn::LinearCache,
    sv_cache: nn::LinearCache,
    attn_inv: Matrix,
    attn_var: Matrix,
    z_inv: Matrix,
    z_var: Matrix,
    target: Matrix,
}

impl Dida {
    /// Builds DIDA for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let width = feat_dim + edge_feat_dim + cfg.time_dim + MICRO_WINDOWS;
        let hidden = cfg.hidden;
        Self {
            proj: Mlp::new(&[width, hidden, hidden], Activation::Tanh, rng),
            score_inv: Linear::new(hidden, 1, rng),
            score_var: Linear::new(hidden, 1, rng),
            decoder: Mlp::new(&[2 * hidden + feat_dim, hidden, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
            hidden,
        }
    }

    fn trunk(&self, refs: &[&CapturedQuery]) -> Trunk {
        let (tokens, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let windows = pack_window_onehot(refs, self.k, MICRO_WINDOWS);
        let input = Matrix::concat_cols(&[&tokens, &windows]);
        let (h, proj_cache) = self.proj.forward(&input);
        let (s_inv, si_cache) = self.score_inv.forward(&h);
        let (s_var, sv_cache) = self.score_var.forward(&h);
        let (z_inv, attn_inv) = attend(&h, &s_inv, &lens, self.k);
        let (z_var, attn_var) = attend(&h, &s_var, &lens, self.k);
        let target = stack_targets(refs, self.feat_dim);
        Trunk { lens, h, proj_cache, si_cache, sv_cache, attn_inv, attn_var, z_inv, z_var, target }
    }

    fn logits(&self, t: &Trunk) -> Matrix {
        let concat = Matrix::concat_cols(&[&t.z_inv, &t.z_var, &t.target]);
        self.decoder.infer(&concat)
    }

    fn step(&mut self) {
        let Self { proj, score_inv, score_var, decoder, opt, .. } = self;
        let mut params = proj.params_mut();
        params.extend(score_inv.params_mut());
        params.extend(score_var.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for Dida {
    fn name(&self) -> &'static str {
        "dida"
    }

    fn num_params(&self) -> usize {
        self.proj.num_params()
            + self.score_inv.num_params()
            + self.score_var.num_params()
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let t = self.trunk(refs);
        let b = refs.len();
        let d = self.hidden;

        // Main pass.
        let concat = Matrix::concat_cols(&[&t.z_inv, &t.z_var, &t.target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        let (main_loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let mut dz_inv = dconcat.slice_cols(0, d);
        let mut dz_var = dconcat.slice_cols(d, 2 * d);

        // Intervention passes: swap variant summaries across the batch.
        let mut penalty = 0.0;
        if b >= 2 {
            let mut passes = Vec::with_capacity(NUM_INTERVENTIONS);
            let mut losses = Vec::with_capacity(NUM_INTERVENTIONS);
            for p in 0..NUM_INTERVENTIONS {
                let perm = rotation_perm(b, p);
                let zv_p = permute_rows(&t.z_var, &perm);
                let concat_p = Matrix::concat_cols(&[&t.z_inv, &zv_p, &t.target]);
                let (logits_p, cache_p) = self.decoder.forward(&concat_p);
                let (loss_p, dlogits_p) = splash::task::loss_and_grad(task, &logits_p, labels);
                losses.push(loss_p);
                passes.push((perm, cache_p, dlogits_p));
            }
            let weights = intervention_loss_weights(&losses, LAMBDA_MEAN, LAMBDA_VAR);
            penalty = intervention_penalty(&losses, LAMBDA_MEAN, LAMBDA_VAR);
            for ((perm, cache_p, dlogits_p), w) in passes.into_iter().zip(weights) {
                let dconcat_p = self.decoder.backward(&cache_p, &dlogits_p.scale(w));
                dz_inv.add_assign(&dconcat_p.slice_cols(0, d));
                scatter_rows_add(&dconcat_p.slice_cols(d, 2 * d), &perm, &mut dz_var);
            }
        }

        // Attention backward for both branches.
        let (mut dh, ds_inv) = attend_backward(&t.h, &t.attn_inv, &t.lens, self.k, &dz_inv);
        let (dh_var, ds_var) = attend_backward(&t.h, &t.attn_var, &t.lens, self.k, &dz_var);
        dh.add_assign(&dh_var);
        dh.add_assign(&self.score_inv.backward(&t.si_cache, &ds_inv));
        dh.add_assign(&self.score_var.backward(&t.sv_cache, &ds_var));
        self.proj.backward(&t.proj_cache, &dh);
        self.step();
        main_loss + penalty
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        let t = self.trunk(refs);
        self.logits(&t)
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        // The invariant summary is the representation DIDA trusts.
        self.trunk(refs).z_inv
    }
}

/// Masked softmax attention pooling: per query `q` with `len` valid token
/// rows, `a = softmax(scores)` over the valid slots and `z_q = Σ_j a_j h_j`.
/// Returns `(Z (B, d), A (B, k))`; queries with no neighbors get zero rows.
fn attend(h: &Matrix, scores: &Matrix, lens: &[usize], k: usize) -> (Matrix, Matrix) {
    let d = h.cols();
    let b = lens.len();
    let mut z = Matrix::zeros(b, d);
    let mut attn = Matrix::zeros(b, k);
    for (q, &len) in lens.iter().enumerate() {
        if len == 0 {
            continue;
        }
        let mut max = f32::NEG_INFINITY;
        for j in 0..len {
            max = max.max(scores.get(q * k + j, 0));
        }
        let mut denom = 0.0;
        for j in 0..len {
            let e = (scores.get(q * k + j, 0) - max).exp();
            attn.set(q, j, e);
            denom += e;
        }
        for j in 0..len {
            let a = attn.get(q, j) / denom;
            attn.set(q, j, a);
            let src = h.row(q * k + j);
            let dst = z.row_mut(q);
            for (o, &v) in dst.iter_mut().zip(src) {
                *o += a * v;
            }
        }
    }
    (z, attn)
}

/// Adjoint of [`attend`]: given `dZ (B, d)`, returns the gradient through the
/// value path `dH (B·k, d)` and through the score path `dS (B·k, 1)`.
fn attend_backward(
    h: &Matrix,
    attn: &Matrix,
    lens: &[usize],
    k: usize,
    dz: &Matrix,
) -> (Matrix, Matrix) {
    let d = h.cols();
    let mut dh = Matrix::zeros(h.rows(), d);
    let mut ds = Matrix::zeros(h.rows(), 1);
    for (q, &len) in lens.iter().enumerate() {
        if len == 0 {
            continue;
        }
        // da_j = <dz_q, h_j>; dh_j = a_j dz_q.
        let mut da = vec![0.0f32; len];
        let dzq = dz.row(q);
        for (j, daj) in da.iter_mut().enumerate() {
            let a = attn.get(q, j);
            let src = h.row(q * k + j);
            let dst = dh.row_mut(q * k + j);
            let mut dot = 0.0;
            for ((o, &hv), &g) in dst.iter_mut().zip(src).zip(dzq) {
                *o += a * g;
                dot += hv * g;
            }
            *daj = dot;
        }
        // Softmax backward: ds_j = a_j (da_j − Σ_m a_m da_m).
        let inner: f32 = (0..len).map(|j| attn.get(q, j) * da[j]).sum();
        for (j, &daj) in da.iter().enumerate() {
            ds.set(q * k + j, 0, attn.get(q, j) * (daj - inner));
        }
    }
    (dh, ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{assert_model_learns, toy_queries};
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> Dida {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(7);
        Dida::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.2; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let m = model();
        let (queries, _) = toy_queries(6, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let t = m.trunk(&refs);
        for (q, &len) in t.lens.iter().enumerate() {
            let sum: f32 = (0..len).map(|j| t.attn_inv.get(q, j)).sum();
            assert!((sum - 1.0).abs() < 1e-5, "attention must normalize");
            for j in len..m.k {
                assert_eq!(t.attn_inv.get(q, j), 0.0, "padding slots must be masked");
            }
        }
    }

    #[test]
    fn attend_backward_matches_finite_difference() {
        // Perturb one score entry and compare dS against finite differences
        // of a scalar objective <Z, G>.
        let k = 3;
        let lens = vec![3usize, 2];
        let h = Matrix::from_fn(6, 2, |i, j| ((i * 2 + j) as f32 * 0.37).sin());
        let scores = Matrix::from_fn(6, 1, |i, _| ((i as f32) * 0.51).cos());
        let g = Matrix::from_fn(2, 2, |i, j| 0.3 + (i + j) as f32 * 0.2);
        let (_, attn) = attend(&h, &scores, &lens, k);
        let (_, ds) = attend_backward(&h, &attn, &lens, k, &g);
        let objective = |s: &Matrix| {
            let (z, _) = attend(&h, s, &lens, k);
            z.data().iter().zip(g.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let eps = 1e-3;
        for i in 0..6 {
            let mut plus = scores.clone();
            plus.set(i, 0, plus.get(i, 0) + eps);
            let mut minus = scores.clone();
            minus.set(i, 0, minus.get(i, 0) - eps);
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            assert!(
                (fd - ds.get(i, 0)).abs() < 1e-3,
                "score {i}: fd {fd} vs analytic {}",
                ds.get(i, 0)
            );
        }
    }

    #[test]
    fn variant_swap_changes_predictions_before_training() {
        // Untrained, the decoder reads z_V, so swapping variant summaries
        // across the batch must change the logits (the intervention is not a
        // no-op); after invariance training its effect is penalized away.
        let m = model();
        let (queries, _) = toy_queries(4, 4);
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let t = m.trunk(&refs);
        let base = m.logits(&t);
        let perm = rotation_perm(4, 0);
        let swapped = Matrix::concat_cols(&[&t.z_inv, &permute_rows(&t.z_var, &perm), &t.target]);
        let after = m.decoder.infer(&swapped);
        let diff = base.sub(&after).max_abs();
        assert!(diff > 1e-6, "intervention must act on the logits");
    }
}
