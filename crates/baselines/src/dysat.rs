//! DySAT (Sankar et al., WSDM 2020): structural attention within graph
//! snapshots, self-attention across snapshots.
//!
//! The CTDG variant buckets a node's recent temporal edges into a few
//! time-ordered "snapshots". A structural attention layer (shared across
//! buckets) aggregates each bucket's neighbors; a temporal self-attention
//! layer then mixes the bucket embeddings, and the most recent position is
//! decoded.

use ctdg::Label;
use datasets::Task;
use nn::{
    Activation, Adam, CrossAttention, FixedTimeEncode, Matrix, Mlp, Parameterized, SelfAttention,
};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{pack_tokens, stack_targets, Baseline};

/// Number of time buckets ("snapshots") the recent edges are split into.
const BUCKETS: usize = 3;

/// The DySAT baseline (CTDG variant).
pub struct DySat {
    structural: CrossAttention,
    temporal: SelfAttention,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    dim: usize,
}

impl DySat {
    /// Builds DySAT for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dim = cfg.hidden;
        let token_w = feat_dim + edge_feat_dim + cfg.time_dim;
        Self {
            structural: CrossAttention::new(feat_dim, token_w, dim, 2, rng),
            temporal: SelfAttention::new(dim, 2, rng),
            decoder: Mlp::new(&[dim + feat_dim, dim, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
            dim,
        }
    }

    /// Slot count per bucket.
    fn bucket_size(&self) -> usize {
        self.k.div_ceil(BUCKETS)
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (
        Matrix,
        Matrix,
        Vec<(Matrix, Vec<usize>, nn::CrossAttentionCache)>,
        nn::SelfAttentionCache,
        nn::MlpCache,
    ) {
        let b = refs.len();
        let kb = self.bucket_size();
        let (tokens, lens) =
            pack_tokens(refs, self.k, self.feat_dim, self.edge_feat_dim, &self.time_enc);
        let target = stack_targets(refs, self.feat_dim);

        // Structural attention per bucket (shared weights).
        let mut bucket_caches = Vec::with_capacity(BUCKETS);
        let mut stack = Matrix::zeros(b * BUCKETS, self.dim);
        for bu in 0..BUCKETS {
            let mut kv = Matrix::zeros(b * kb, tokens.cols());
            let mut blens = vec![0usize; b];
            for qi in 0..b {
                let avail = lens[qi].saturating_sub(bu * kb).min(kb);
                blens[qi] = avail;
                for slot in 0..avail {
                    kv.set_row(qi * kb + slot, tokens.row(qi * self.k + bu * kb + slot));
                }
            }
            let (emb, cache) = self.structural.forward(&target, &kv, &blens, kb);
            for qi in 0..b {
                stack.set_row(qi * BUCKETS + bu, emb.row(qi));
            }
            bucket_caches.push((kv, blens, cache));
        }

        // Temporal self-attention over the bucket sequence.
        let t_lens = vec![BUCKETS; b];
        let (mixed, temporal_cache) = self.temporal.forward(&stack, &t_lens, BUCKETS);
        // Read out the most recent bucket position.
        let mut out = Matrix::zeros(b, self.dim);
        for qi in 0..b {
            out.set_row(qi, mixed.row(qi * BUCKETS + (BUCKETS - 1)));
        }
        let concat = Matrix::concat_cols(&[&out, &target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        (logits, out, bucket_caches, temporal_cache, dec_cache)
    }

    fn step(&mut self) {
        let Self { structural, temporal, decoder, opt, .. } = self;
        let mut params = structural.params_mut();
        params.extend(temporal.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for DySat {
    fn name(&self) -> &'static str {
        "dysat"
    }

    fn num_params(&self) -> usize {
        self.structural.num_params()
            + Parameterized::num_params(&self.temporal)
            + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let b = refs.len();
        let (logits, _out, bucket_caches, temporal_cache, dec_cache) = self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let dout = dconcat.slice_cols(0, self.dim);
        // Scatter into the last bucket position of the temporal sequence.
        let mut dmixed = Matrix::zeros(b * BUCKETS, self.dim);
        for qi in 0..b {
            dmixed.set_row(qi * BUCKETS + (BUCKETS - 1), dout.row(qi));
        }
        let dstack = self.temporal.backward(&temporal_cache, &dmixed);
        // Back through each bucket's structural attention (shared weights —
        // gradients accumulate inside the layer).
        for (bu, (_kv, _blens, cache)) in bucket_caches.iter().enumerate() {
            let mut demb = Matrix::zeros(b, self.dim);
            for qi in 0..b {
                demb.set_row(qi, dstack.row(qi * BUCKETS + bu));
            }
            let _ = self.structural.backward(cache, &demb);
        }
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> DySat {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(6);
        DySat::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.2; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bucket_size_covers_k() {
        let m = model();
        assert!(m.bucket_size() * BUCKETS >= m.k);
    }
}
