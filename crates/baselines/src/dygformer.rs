//! DyGFormer (Yu et al., NeurIPS 2023): a transformer over the recent-
//! neighbor sequence with *neighbor co-occurrence encodings*.
//!
//! Each token carries `[x_j ‖ x_ij ‖ φ_t(Δt) ‖ co-occurrence]`, where the
//! co-occurrence channel encodes how frequently that neighbor appears in the
//! sequence — DyGFormer's defining feature (adapted from node pairs to
//! single-node property queries).

use ctdg::Label;
use datasets::Task;
use nn::{
    Activation, Adam, FixedTimeEncode, Linear, Matrix, Mlp, Parameterized, TransformerBlock,
};
use rand::Rng;
use splash::{CapturedQuery, SplashConfig};

use crate::common::{masked_mean, masked_mean_backward, stack_targets, Baseline};

/// The DyGFormer baseline.
pub struct DyGFormerModel {
    proj: Linear,
    block: TransformerBlock,
    decoder: Mlp,
    time_enc: FixedTimeEncode,
    opt: Adam,
    k: usize,
    feat_dim: usize,
    edge_feat_dim: usize,
    dim: usize,
}

impl DyGFormerModel {
    /// Builds DyGFormer for the given input/output dimensions.
    pub fn new<R: Rng + ?Sized>(
        feat_dim: usize,
        edge_feat_dim: usize,
        out_dim: usize,
        cfg: &SplashConfig,
        rng: &mut R,
    ) -> Self {
        let dim = cfg.hidden;
        let token_width = feat_dim + edge_feat_dim + cfg.time_dim + 1;
        Self {
            proj: Linear::new(token_width, dim, rng),
            block: TransformerBlock::new(dim, 2, 2 * dim, rng),
            decoder: Mlp::new(&[dim + feat_dim, dim, out_dim], Activation::Relu, rng),
            time_enc: FixedTimeEncode::new(cfg.time_dim, cfg.time_alpha, cfg.time_beta),
            opt: Adam::new(cfg.lr),
            k: cfg.k,
            feat_dim,
            edge_feat_dim,
            dim,
        }
    }

    /// Tokens with the co-occurrence channel appended.
    fn tokenize(&self, refs: &[&CapturedQuery]) -> (Matrix, Vec<usize>) {
        let dt = self.time_enc.dim();
        let width = self.feat_dim + self.edge_feat_dim + dt + 1;
        let mut tokens = Matrix::zeros(refs.len() * self.k, width);
        let mut lens = vec![0usize; refs.len()];
        for (qi, q) in refs.iter().enumerate() {
            let len = q.neighbors.len().min(self.k);
            lens[qi] = len;
            let skip = q.neighbors.len() - len;
            let window = &q.neighbors[skip..];
            for (slot, nb) in window.iter().enumerate() {
                let cooc =
                    window.iter().filter(|o| o.other == nb.other).count() as f32 / self.k as f32;
                let row = tokens.row_mut(qi * self.k + slot);
                row[..self.feat_dim].copy_from_slice(&nb.feat);
                row[self.feat_dim..self.feat_dim + self.edge_feat_dim]
                    .copy_from_slice(&nb.edge_feat);
                row[self.feat_dim + self.edge_feat_dim..width - 1]
                    .copy_from_slice(&self.time_enc.encode(q.time - nb.time));
                row[width - 1] = cooc;
            }
        }
        (tokens, lens)
    }

    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        refs: &[&CapturedQuery],
    ) -> (Matrix, Matrix, Vec<usize>, nn::LinearCache, nn::TransformerBlockCache, nn::MlpCache) {
        let (tokens, lens) = self.tokenize(refs);
        let (x, proj_cache) = self.proj.forward(&tokens);
        let (y, block_cache) = self.block.forward(&x, &lens, self.k);
        let pooled = masked_mean(&y, &lens, self.k);
        let target = stack_targets(refs, self.feat_dim);
        let concat = Matrix::concat_cols(&[&pooled, &target]);
        let (logits, dec_cache) = self.decoder.forward(&concat);
        (logits, pooled, lens, proj_cache, block_cache, dec_cache)
    }

    fn step(&mut self) {
        let Self { proj, block, decoder, opt, .. } = self;
        let mut params = proj.params_mut();
        params.extend(block.params_mut());
        params.extend(decoder.params_mut());
        opt.step(params);
    }
}

impl Baseline for DyGFormerModel {
    fn name(&self) -> &'static str {
        "dygformer"
    }

    fn num_params(&self) -> usize {
        self.proj.num_params() + Parameterized::num_params(&self.block) + self.decoder.num_params()
    }

    fn train_batch(&mut self, refs: &[&CapturedQuery], labels: &[&Label], task: Task) -> f32 {
        let (logits, _pooled, lens, proj_cache, block_cache, dec_cache) = self.forward(refs);
        let (loss, dlogits) = splash::task::loss_and_grad(task, &logits, labels);
        let dconcat = self.decoder.backward(&dec_cache, &dlogits);
        let dpooled = dconcat.slice_cols(0, self.dim);
        let dy = masked_mean_backward(&dpooled, &lens, self.k);
        let dx = self.block.backward(&block_cache, &dy);
        self.proj.backward(&proj_cache, &dx);
        self.step();
        loss
    }

    fn predict_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).0
    }

    fn represent_batch(&self, refs: &[&CapturedQuery]) -> Matrix {
        self.forward(refs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::assert_model_learns;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> DyGFormerModel {
        let mut cfg = SplashConfig::tiny();
        cfg.lr = 5e-3;
        let mut rng = StdRng::seed_from_u64(4);
        DyGFormerModel::new(4, 0, 2, &cfg, &mut rng)
    }

    #[test]
    fn learns_toy_task() {
        assert_model_learns(&mut model(), 4);
    }

    #[test]
    fn cooccurrence_channel_counts_repeats() {
        let m = model();
        let (mut queries, _) = crate::common::test_support::toy_queries(1, 4);
        // Make all three neighbors the same node id.
        for nb in &mut queries[0].neighbors {
            nb.other = 7;
        }
        let refs: Vec<&CapturedQuery> = queries.iter().collect();
        let (tokens, lens) = m.tokenize(&refs);
        assert_eq!(lens[0], 3);
        let width = tokens.cols();
        // count 3 of k=4 → 0.75 in the last channel of each valid token.
        for slot in 0..3 {
            assert!((tokens.get(slot, width - 1) - 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_neighbors_are_finite() {
        let m = model();
        let q = CapturedQuery {
            node: 0,
            time: 5.0,
            target_feat: vec![0.2; 4],
            neighbors: vec![],
            label: Label::Class(0),
        };
        assert!(m.predict_batch(&[&q]).data().iter().all(|v| v.is_finite()));
    }
}
