//! Serving adapter: any [`BaselineVariant`] behind a [`splash::ServeEngine`],
//! so the Table III competitors plug into [`splash::SplashService`] registry
//! slots next to SPLASH itself — same ingest path, same
//! [`splash::LateEdgePolicy`] and strict-node policies, same counters, same
//! typed [`SplashError`] surface.
//!
//! Construction reproduces the offline protocol bit-identically: the model
//! trains on the capture's 10% chronological training split through
//! [`crate::common::train_on_queries`] (the exact loop and RNG stream behind
//! [`crate::common::run_baseline_frac`]), then a [`CaptureStream`] is
//! advanced over the same training prefix SPLASH consumes, so every engine
//! in a multi-tenant service starts serving at one shared stream clock. The
//! bit-identity of serve-through-service vs. drive-directly is pinned in
//! `crates/baselines/tests/serve.rs`.

use std::fmt;

use ctdg::{Label, NodeId, PropertyQuery, TemporalEdge};
use datasets::Dataset;
use nn::Matrix;
use splash::{CaptureStream, CapturedQuery, ServeEngine, SplashConfig, SplashError};

use crate::common::{train_on_queries, Baseline};
use crate::registry::{build_baseline, BaselineVariant};

/// A trained baseline serving live queries from a streaming feature
/// capture — the [`ServeEngine`] the scenario matrix registers for every
/// non-SPLASH contender.
pub struct BaselineEngine {
    name: String,
    model: Box<dyn Baseline>,
    stream: CaptureStream,
    out_dim: usize,
}

impl fmt::Debug for BaselineEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaselineEngine")
            .field("name", &self.name)
            .field("last_time", &self.stream.last_time())
            .field("known_nodes", &self.stream.known_nodes())
            .finish_non_exhaustive()
    }
}

impl BaselineEngine {
    /// Trains `variant` on the dataset's 10% chronological training split
    /// and advances its capture stream over the same training prefix the
    /// in-service SPLASH engines consume.
    ///
    /// Typed failures: [`SplashError::TaskUnsupported`] for a pairing the
    /// paper reports as N/A (SLADE outside anomaly detection), and
    /// [`SplashError::NotStreamable`] for feature modes that cannot be
    /// served incrementally.
    pub fn new(
        variant: BaselineVariant,
        dataset: &Dataset,
        cfg: &SplashConfig,
    ) -> Result<Self, SplashError> {
        variant.ensure_supports(dataset.task)?;
        let mut stream = CaptureStream::try_new(dataset, variant.mode, cfg)?;

        let cap = splash::capture(dataset, variant.mode, cfg, splash::SEEN_FRAC);
        let (train_end, _) = splash::split_bounds(cap.queries.len());
        let out_dim = splash::task::output_dim(dataset.task, dataset.num_classes);
        let mut model = build_baseline(variant.kind, cap.feat_dim, cap.edge_feat_dim, out_dim, cfg);
        train_on_queries(model.as_mut(), &cap.queries[..train_end], dataset.task, cfg);

        let t_seen = splash::seen_end_time(dataset, splash::SEEN_FRAC);
        let prefix = dataset.stream.prefix_len_at(t_seen);
        stream.try_push_edges(&dataset.stream.edges()[..prefix])?;

        Ok(BaselineEngine { name: variant.name(), model, stream, out_dim })
    }

    /// The variant's canonical display name (e.g. `"tgn+RF"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn capture(&self, node: NodeId, time: f64, label: &Label) -> Result<CapturedQuery, SplashError> {
        let mut q = CapturedQuery::default();
        self.stream.capture_into(node, time, label, &mut q)?;
        Ok(q)
    }
}

impl ServeEngine for BaselineEngine {
    fn kind(&self) -> String {
        format!("baseline:{}", self.name)
    }

    fn last_time(&self) -> f64 {
        self.stream.last_time()
    }

    fn known_nodes(&self) -> usize {
        self.stream.known_nodes()
    }

    fn try_push_edges(&mut self, edges: &[TemporalEdge]) -> Result<(), SplashError> {
        self.stream.try_push_edges(edges)
    }

    fn try_observe_edge(&mut self, edge: &TemporalEdge) -> Result<(), SplashError> {
        self.stream.try_observe_edge(edge)
    }

    fn try_predict_into(
        &self,
        node: NodeId,
        time: f64,
        out: &mut Vec<f32>,
    ) -> Result<(), SplashError> {
        let q = self.capture(node, time, &Label::Class(0))?;
        let logits = self.model.predict_batch(&[&q]);
        out.clear();
        out.extend_from_slice(logits.row(0));
        Ok(())
    }

    fn try_predict_batch(&self, queries: &[PropertyQuery]) -> Result<Matrix, SplashError> {
        if queries.is_empty() {
            return Ok(Matrix::zeros(0, self.out_dim));
        }
        let mut caps = Vec::with_capacity(queries.len());
        for q in queries {
            caps.push(self.capture(q.node, q.time, &q.label)?);
        }
        let refs: Vec<&CapturedQuery> = caps.iter().collect();
        Ok(self.model.predict_batch(&refs))
    }
}

/// An [`splash::EngineFactory`] building this variant — the one-liner for
/// wiring a baseline into a [`splash::ScenarioSpec`] contender list.
pub fn engine_factory(variant: BaselineVariant) -> splash::EngineFactory {
    Box::new(move |dataset, cfg| {
        Ok(Box::new(BaselineEngine::new(variant, dataset, cfg)?) as Box<dyn ServeEngine>)
    })
}
